//! Cross-crate simulator invariants: the performance model must respond
//! to physics the way the paper's evaluation depends on.

use acc_spmm::comparison::compare_all;
use acc_spmm::{AccConfig, Arch, KernelKind, SimOptions};
use spmm_kernels::PreparedKernel;
use spmm_matrix::{gen, CsrMatrix, Dataset};
use spmm_reorder::metrics::mean_nnz_tc;

/// Simulator options mirroring the evaluation setup: the cache
/// capacities are scaled alongside the (small) test matrices so capacity
/// pressure — the regime every paper experiment runs in — exists.
fn scaled_opts() -> SimOptions {
    SimOptions::scaled(12.0)
}

fn clustered_workload(seed: u64) -> CsrMatrix {
    gen::clustered(
        gen::ClusteredConfig {
            n: 2048,
            cluster_size: 160,
            intra_deg: 48.0,
            inter_deg: 6.0,
            hub_fraction: 0.04,
            hub_factor: 8.0,
            shuffle: true,
            degree_spread: 2.5,
            size_variance: 0.6,
        },
        seed,
    )
}

#[test]
fn acc_beats_all_baselines_on_community_structure() {
    // The FY-RSR analog: dense relational communities, the regime where
    // every Acc optimization pays (Figure 8's largest type-2 wins).
    let d = Dataset::by_abbr("FY-RSR").unwrap();
    let m = d.build();
    let rows = compare_all(&m, Arch::A800, 128, &SimOptions::scaled(d.scale_factor())).unwrap();
    let acc = rows.iter().find(|r| r.kind == KernelKind::AccSpmm).unwrap();
    for r in &rows {
        if r.kind != KernelKind::AccSpmm {
            assert!(
                acc.speedup >= r.speedup,
                "{} ({:.2}x) beat Acc-SpMM ({:.2}x)",
                r.kind.name(),
                r.speedup,
                acc.speedup
            );
        }
    }
    assert!(acc.speedup > 1.2, "Acc speedup {:.2}", acc.speedup);
}

#[test]
fn bigger_feature_dims_raise_gflops() {
    let m = clustered_workload(2);
    let opts = SimOptions::default();
    let mut prev = 0.0;
    for n in [32usize, 128, 512] {
        let r = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::H100)
            .feature_dim(n)
            .build()
            .unwrap()
            .profile(Arch::H100, &opts);
        assert!(
            r.gflops > prev,
            "GFLOPS should grow with N: {} at N={n} (prev {prev})",
            r.gflops
        );
        prev = r.gflops;
    }
}

#[test]
fn h100_is_fastest_in_absolute_time() {
    let m = clustered_workload(3);
    let opts = SimOptions::default();
    let times: Vec<f64> = Arch::ALL
        .iter()
        .map(|&a| {
            PreparedKernel::builder(KernelKind::AccSpmm, &m)
                .arch(a)
                .feature_dim(128)
                .build()
                .unwrap()
                .profile(a, &opts)
                .time_s
        })
        .collect();
    // Table 3 order: RTX 4090, A800, H100.
    assert!(
        times[2] < times[0],
        "H100 {} vs 4090 {}",
        times[2],
        times[0]
    );
    assert!(
        times[2] < times[1],
        "H100 {} vs A800 {}",
        times[2],
        times[1]
    );
}

#[test]
fn relative_speedup_shrinks_on_h100() {
    // Figure 9's headline: the cuSPARSE baseline improves on Hopper, so
    // relative speedups shrink versus the A800.
    let m = clustered_workload(4);
    let opts = SimOptions::default();
    let speedup = |arch: Arch| {
        let rows = compare_all(&m, arch, 128, &opts).unwrap();
        rows.iter()
            .find(|r| r.kind == KernelKind::AccSpmm)
            .unwrap()
            .speedup
    };
    let a800 = speedup(Arch::A800);
    let h100 = speedup(Arch::H100);
    assert!(
        h100 < a800,
        "H100 speedup {h100:.2} should be below A800 {a800:.2}"
    );
}

#[test]
fn reordering_reduces_simulated_traffic() {
    let d = Dataset::by_abbr("FY-RSR").unwrap();
    let m = d.build();
    let opts = SimOptions::scaled(d.scale_factor());
    let run = |alg| {
        let mut cfg = AccConfig::full();
        cfg.reorder = alg;
        PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::A800)
            .feature_dim(128)
            .config(cfg)
            .build()
            .unwrap()
            .profile(Arch::A800, &opts)
    };
    let ident = run(spmm_reorder::Algorithm::Identity);
    let affin = run(spmm_reorder::Algorithm::Affinity);
    assert!(affin.dram_bytes < ident.dram_bytes);
    assert!(affin.time_s < ident.time_s);
    // And the underlying density metric must agree.
    let (pm, _) = spmm_reorder::reorder_apply(&m, spmm_reorder::Algorithm::Affinity);
    assert!(mean_nnz_tc(&pm, 8) > mean_nnz_tc(&m, 8));
}

#[test]
fn ablation_stages_never_hurt_meaningfully() {
    // Each cumulative Figure-15 stage should keep the kernel within 2%
    // of the previous stage or improve it (the paper notes small
    // regressions are possible for RO on specific datasets).
    let m = clustered_workload(6);
    let opts = scaled_opts();
    let mut prev: Option<f64> = None;
    for stage in 0..6 {
        let cfg = AccConfig::ablation_stage(stage);
        let t = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::H100)
            .feature_dim(128)
            .config(cfg)
            .build()
            .unwrap()
            .profile(Arch::H100, &opts)
            .time_s;
        if let Some(p) = prev {
            assert!(
                t <= p * 1.02,
                "stage {stage} regressed: {t:.3e}s vs {p:.3e}s"
            );
        }
        prev = Some(t);
    }
}

#[test]
fn eq4_model_predicts_simulated_tb_latencies() {
    // §3.5 rests on Equation (4) ranking TB workloads correctly. Check
    // that the model's per-TB time correlates strongly with the full
    // cache+pipeline simulation's per-TB latency on an imbalanced
    // matrix (Pearson r — the model needn't match absolute times, only
    // order the loads).
    // Validate on the UNBALANCED plan: one TB per RowWindow, workloads
    // spanning 1..hundreds of blocks. (After balancing, predicted times
    // are uniform by construction and the residual variance is cache
    // noise — there would be nothing for the model to rank.)
    use spmm_balance::{BalanceStrategy, ModelParams, PerfModel};
    let d = Dataset::by_abbr("protein").unwrap();
    let m = d.build();
    let opts = SimOptions::scaled(d.scale_factor());
    let mut cfg = AccConfig::full();
    cfg.balance = BalanceStrategy::None;
    let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
        .arch(Arch::A800)
        .feature_dim(128)
        .config(cfg)
        .build()
        .unwrap();
    let plan = k.plan().unwrap().clone();
    let spec = Arch::A800.spec();
    let model = PerfModel::new(ModelParams {
        feature_dim: 128,
        bandwidth: spec.dram_bw_gbps * 1e9,
        flops: spec.tc_tf32_tflops * 1e12,
        num_sms: spec.num_sms,
    });
    let predicted: Vec<f64> = plan
        .tbs
        .iter()
        .map(|tb| model.tb_time(tb.num_blocks(), tb.segments.len()))
        .collect();
    let desc = k.trace();
    let (_, trace) = spmm_sim::simulate_traced(&spec, &desc, &opts);
    let simulated: Vec<f64> = trace.spans.iter().map(|&(_, dur, _)| dur).collect();
    assert_eq!(predicted.len(), simulated.len());

    let r = pearson(&predicted, &simulated);
    assert!(
        r > 0.6,
        "Eq-4 should rank TB workloads like the simulator: r = {r:.3}"
    );
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let (mx, my) = (x.iter().sum::<f64>() / n, y.iter().sum::<f64>() / n);
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(1e-30)
}

#[test]
fn pipeline_bubble_fraction_ordering() {
    // TCGNN (synchronous) > DTC (Fig 5a) > Acc (Fig 5b) in bubble share.
    let m = clustered_workload(7);
    let opts = scaled_opts();
    // Absolute idle time: all three process the same TC blocks, so the
    // pipeline with fewer bubbles idles less in total.
    let bubbles = |kind| {
        PreparedKernel::builder(kind, &m)
            .arch(Arch::A800)
            .feature_dim(128)
            .build()
            .unwrap()
            .profile(Arch::A800, &opts)
            .bubble_s
    };
    let tcgnn = bubbles(KernelKind::TcGnn);
    let dtc = bubbles(KernelKind::DtcSpmm);
    let acc = bubbles(KernelKind::AccSpmm);
    assert!(tcgnn > dtc, "tcgnn {tcgnn:.3e} dtc {dtc:.3e}");
    assert!(dtc > acc, "dtc {dtc:.3e} acc {acc:.3e}");
}
