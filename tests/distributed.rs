//! Property tests for the sharded execution path: `spmm-dist` must be
//! **bit-identical** (NaN-position-exact; see `bits_equal`) to the
//! single-node kernel for every kernel kind, shard count, and operand —
//! including operands with non-finite values and matrices small enough
//! that some shards come out empty.

use proptest::prelude::*;
use spmm_dist::DistSpmm;
use spmm_kernels::{KernelKind, PreparedKernel, Workspace};
use spmm_matrix::{CooMatrix, CsrMatrix, DenseMatrix};

/// Non-finite / edge-case floats to splice into operands (same table as
/// tests/properties.rs).
fn special(code: usize) -> f32 {
    [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -0.0f32,
        1.0e-41f32, // denormal
        f32::MAX,
    ][code % 6]
}

/// Bit-level equality, NaN-position-exact: non-NaN elements must match
/// bitwise; NaNs must sit at the same positions (payloads may differ —
/// IEEE 754 leaves invalid-operation payload propagation unspecified).
fn bits_equal(a: &DenseMatrix, b: &DenseMatrix) -> bool {
    a.nrows() == b.nrows()
        && a.ncols() == b.ncols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()))
}

/// Strategy: an arbitrary small sparse square matrix (duplicates summed).
fn arb_matrix(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, -8i16..8i16), 0..max_nnz).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in entries {
                    coo.push(r, c, v as f32 / 2.0);
                }
                CsrMatrix::from_coo(&coo)
            },
        )
    })
}

/// Single-node reference through the same plan pipeline.
fn single_node(kind: KernelKind, m: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
    let kernel = PreparedKernel::builder(kind, m)
        .feature_dim(b.ncols())
        .build()
        .unwrap();
    let mut out = DenseMatrix::zeros(m.nrows(), b.ncols());
    let mut ws = Workspace::for_plan(kernel.execution_plan());
    kernel.execute_into(b, &mut out, &mut ws).unwrap();
    out
}

/// Splice special values into the sparse operand's stored entries.
fn splice_matrix(m: &CsrMatrix, specials: &[(usize, usize)]) -> CsrMatrix {
    if m.nnz() == 0 {
        return m.clone();
    }
    let coo = m.to_coo();
    let (rows, cols, vals) = coo.triplets();
    let mut replace = CooMatrix::new(m.nrows(), m.ncols());
    for (i, ((&r, &c), &v)) in rows.iter().zip(cols).zip(vals).enumerate() {
        let mut v = v;
        for (pos, code) in specials {
            if pos % vals.len() == i {
                v = special(*code);
            }
        }
        replace.push(r, c, v);
    }
    CsrMatrix::from_coo(&replace)
}

/// Body of `sharded_execution_is_bit_identical` (kept out of the
/// `proptest!` macro, whose token-munching recursion can't swallow a
/// block this long). Returns `Err(description)` on divergence.
fn check_sharded(
    m: &CsrMatrix,
    dim: usize,
    seed: u64,
    specials: &[(usize, usize)],
) -> Result<(), String> {
    let m = splice_matrix(m, specials);
    let mut b = DenseMatrix::random(m.ncols(), dim, seed);
    for (pos, code) in specials {
        let len = b.as_slice().len();
        b.as_mut_slice()[pos % len] = special(*code);
    }

    for kind in KernelKind::ALL {
        let expect = single_node(kind, &m, &b);
        for shards in [1usize, 2, 3, 7] {
            let dist = DistSpmm::builder(kind, &m)
                .shards(shards)
                .feature_dim(dim)
                .build()
                .map_err(|e| format!("{kind:?} x{shards} build: {e}"))?;
            let got = dist.multiply(&b).map_err(|e| e.to_string())?;
            if !bits_equal(&got, &expect) {
                return Err(format!(
                    "{kind:?} diverged at {shards} shards (n={}, nnz={}, dim={dim})",
                    m.nrows(),
                    m.nnz()
                ));
            }
            // The profiled (sequential-dispatch) path runs the same
            // bits through the same kernels.
            let (profiled, report) = dist.multiply_profiled(&b).map_err(|e| e.to_string())?;
            if !bits_equal(&profiled, &expect) {
                return Err(format!("{kind:?} profiled dispatch diverged at {shards}"));
            }
            if report.per_shard_busy.len() != shards {
                return Err("report is missing per-shard busy times".into());
            }
        }
    }
    Ok(())
}

/// Body of `halo_propagation_is_bit_identical`.
fn check_halo(m: &CsrMatrix, dim: usize, seed: u64, shards: usize) -> Result<(), String> {
    let h = DenseMatrix::random(m.nrows(), dim, seed);
    let dist = DistSpmm::builder(KernelKind::AccSpmm, m)
        .shards(shards)
        .feature_dim(dim)
        .build()
        .map_err(|e| e.to_string())?;
    let expect = dist.multiply(&h).map_err(|e| e.to_string())?;
    let parts = dist.split_rows(&h).map_err(|e| e.to_string())?;
    let out_parts = dist.propagate_halo(&parts).map_err(|e| e.to_string())?;
    let got = dist.concat_rows(&out_parts).map_err(|e| e.to_string())?;
    if !bits_equal(&got, &expect) {
        return Err(format!(
            "halo path diverged (n={}, dim={dim}, shards={shards})",
            m.nrows()
        ));
    }
    Ok(())
}

proptest! {
    // Heavier cases (each draw builds plans for 6 kernels × 4 shard
    // counts), so fewer of them — mirroring properties.rs conventions.
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The tentpole invariant: for every kernel kind and shard count —
    // including counts that leave some shards empty — sharded
    // execution is bit-identical to the single-node kernel, even with
    // NaN/Inf/denormal values spliced into both operands.
    #[test]
    fn sharded_execution_is_bit_identical(
        m in arb_matrix(48, 160),
        dim in 1usize..24,
        seed in 0u64..1000,
        specials in proptest::collection::vec((0usize..usize::MAX, 0usize..6), 0..4),
    ) {
        if let Err(e) = check_sharded(&m, dim, seed, &specials) {
            panic!("{e}");
        }
    }

    // Halo propagation (split → exchange boundary rows → per-shard
    // multiply → concat) is bit-identical to the plain sharded
    // multiply, which is itself bit-identical to single-node.
    #[test]
    fn halo_propagation_is_bit_identical(
        m in arb_matrix(48, 160),
        dim in 1usize..16,
        seed in 0u64..1000,
        shards in 1usize..6,
    ) {
        if let Err(e) = check_halo(&m, dim, seed, shards) {
            panic!("{e}");
        }
    }
}
