//! Cross-crate functional correctness: every kernel strategy, on every
//! workload class, must reproduce the FP32 dense reference within TF32
//! tolerance, regardless of reordering, format, or balancing.

use acc_spmm::{AccConfig, AccSpmm, Arch, KernelKind};
use spmm_balance::BalanceStrategy;
use spmm_common::scalar::tf32_tolerance;
use spmm_kernels::PreparedKernel;
use spmm_matrix::{gen, CooMatrix, CsrMatrix, DenseMatrix};
use spmm_reorder::Algorithm;

fn workloads() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("molecules", gen::molecule_union(768, 6, 16, true, 11)),
        ("road", gen::road_network(1024, 12)),
        (
            "rmat",
            gen::rmat(
                gen::RmatConfig {
                    scale: 10,
                    avg_deg: 12.0,
                    ..Default::default()
                },
                13,
            ),
        ),
        (
            "clustered",
            gen::clustered(
                gen::ClusteredConfig {
                    n: 768,
                    cluster_size: 96,
                    intra_deg: 40.0,
                    inter_deg: 8.0,
                    hub_fraction: 0.02,
                    hub_factor: 6.0,
                    shuffle: true,
                    degree_spread: 1.2,
                    size_variance: 0.5,
                },
                14,
            ),
        ),
        ("banded", gen::banded(512, 5, 0.7, 15)),
    ]
}

#[test]
fn all_kernels_match_reference_on_all_workloads() {
    for (name, m) in workloads() {
        for &n in &[32usize, 128] {
            let b = DenseMatrix::random(m.ncols(), n, 21);
            let reference = m.spmm_dense(&b).unwrap();
            let tol = tf32_tolerance(m.ncols());
            for kind in KernelKind::ALL {
                let k = PreparedKernel::builder(kind, &m)
                    .arch(Arch::A800)
                    .feature_dim(n)
                    .build()
                    .unwrap();
                let c = k.execute(&b).unwrap();
                assert!(
                    c.approx_eq(&reference, tol, tol),
                    "{} on {name} (N={n}): max diff {}",
                    kind.name(),
                    c.max_abs_diff(&reference)
                );
            }
        }
    }
}

#[test]
fn balancing_strategies_are_numerically_identical() {
    let m = gen::clustered(
        gen::ClusteredConfig {
            n: 512,
            cluster_size: 64,
            intra_deg: 30.0,
            inter_deg: 6.0,
            hub_fraction: 0.05,
            hub_factor: 8.0,
            shuffle: true,
            degree_spread: 1.5,
            size_variance: 0.6,
        },
        31,
    );
    let b = DenseMatrix::random(m.ncols(), 64, 5);
    let mut results = Vec::new();
    for balance in [
        BalanceStrategy::None,
        BalanceStrategy::DtcStyle,
        BalanceStrategy::AccAdaptive,
    ] {
        let mut cfg = AccConfig::full();
        cfg.balance = balance;
        let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::H100)
            .feature_dim(64)
            .config(cfg)
            .build()
            .unwrap();
        results.push(k.execute(&b).unwrap());
    }
    assert_eq!(results[0], results[1], "DTC balancing changed the result");
    assert_eq!(
        results[0], results[2],
        "adaptive balancing changed the result"
    );
}

#[test]
fn every_ablation_stage_is_correct() {
    let m = gen::molecule_union(512, 6, 14, true, 41);
    let b = DenseMatrix::random(m.ncols(), 32, 6);
    let reference = m.spmm_dense(&b).unwrap();
    let tol = tf32_tolerance(m.ncols());
    for stage in 0..6 {
        let cfg = AccConfig::ablation_stage(stage);
        let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::H100)
            .feature_dim(32)
            .config(cfg)
            .build()
            .unwrap();
        let c = k.execute(&b).unwrap();
        assert!(
            c.approx_eq(&reference, tol, tol),
            "ablation stage {stage} diverges"
        );
    }
}

#[test]
fn reordering_never_changes_results() {
    let m = gen::rmat(
        gen::RmatConfig {
            scale: 9,
            avg_deg: 10.0,
            ..Default::default()
        },
        51,
    );
    let b = DenseMatrix::random(m.ncols(), 48, 8);
    let reference = m.spmm_dense(&b).unwrap();
    let tol = tf32_tolerance(m.ncols());
    for alg in Algorithm::ALL {
        let mut cfg = AccConfig::full();
        cfg.reorder = alg;
        let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::Rtx4090)
            .feature_dim(48)
            .config(cfg)
            .build()
            .unwrap();
        let c = k.execute(&b).unwrap();
        assert!(
            c.approx_eq(&reference, tol, tol),
            "{} changed the numeric result",
            alg.name()
        );
    }
}

#[test]
fn handle_multiply_is_deterministic_and_linear() {
    let m = gen::uniform_random(400, 8.0, 61);
    let h = AccSpmm::builder(&m)
        .arch(Arch::A800)
        .feature_dim(16)
        .build()
        .unwrap();
    let x = DenseMatrix::random(m.ncols(), 16, 1);
    let y = DenseMatrix::random(m.ncols(), 16, 2);
    let cx = h.multiply(&x).unwrap();
    assert_eq!(
        cx,
        h.multiply(&x).unwrap(),
        "multiply must be deterministic"
    );

    // Linearity: A(x+y) == Ax + Ay within TF32 tolerance.
    let mut xy = x.clone();
    for (a, b) in xy.as_mut_slice().iter_mut().zip(y.as_slice()) {
        *a += b;
    }
    let cxy = h.multiply(&xy).unwrap();
    let cy = h.multiply(&y).unwrap();
    let mut sum = cx.clone();
    for (a, b) in sum.as_mut_slice().iter_mut().zip(cy.as_slice()) {
        *a += b;
    }
    let tol = tf32_tolerance(m.ncols()) * 4.0;
    assert!(
        cxy.approx_eq(&sum, tol, tol),
        "linearity violated: max diff {}",
        cxy.max_abs_diff(&sum)
    );
}

#[test]
fn every_kernel_profiles_an_empty_matrix_without_panicking() {
    use acc_spmm::SimOptions;
    let empty = CsrMatrix::from_coo(&CooMatrix::new(32, 32));
    for kind in KernelKind::ALL {
        let k = PreparedKernel::builder(kind, &empty)
            .arch(Arch::A800)
            .feature_dim(64)
            .build()
            .unwrap();
        let r = k.profile(Arch::A800, &SimOptions::default());
        assert!(
            r.time_s > 0.0,
            "{}: launch overhead still counts",
            kind.name()
        );
        assert_eq!(r.gflops, 0.0, "{}: no effective work", kind.name());
    }
}

#[test]
fn empty_and_degenerate_matrices_work_end_to_end() {
    // Empty matrix.
    let empty = CsrMatrix::from_coo(&CooMatrix::new(64, 64));
    let b = DenseMatrix::random(64, 16, 3);
    let h = AccSpmm::builder(&empty)
        .arch(Arch::H100)
        .feature_dim(16)
        .build()
        .unwrap();
    let c = h.multiply(&b).unwrap();
    assert!(c.as_slice().iter().all(|&x| x == 0.0));

    // Single entry.
    let mut coo = CooMatrix::new(16, 16);
    coo.push(7, 3, 2.0);
    let single = CsrMatrix::from_coo(&coo);
    let b = DenseMatrix::random(16, 8, 4);
    let h = AccSpmm::builder(&single)
        .arch(Arch::A800)
        .feature_dim(8)
        .build()
        .unwrap();
    let c = h.multiply(&b).unwrap();
    let reference = single.spmm_dense(&b).unwrap();
    let tol = tf32_tolerance(16);
    assert!(c.approx_eq(&reference, tol, tol));
}
