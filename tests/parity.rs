//! Numerical parity: every kernel strategy against an independent f64
//! scalar reference, and the batched API against the one-at-a-time API.
//!
//! The f64 reference shares no code with the kernels — it walks the CSR
//! rows directly and accumulates in double precision — so it catches
//! format-conversion bugs, reorder/scatter bugs, and balancing bugs
//! alike. TF32 operand rounding plus FP32 accumulation stay within
//! `tf32_tolerance` of it.

use acc_spmm::{AccSpmm, Arch, KernelKind};
use spmm_common::scalar::tf32_tolerance;
use spmm_kernels::PreparedKernel;
use spmm_matrix::{gen, CsrMatrix, DenseMatrix};

/// Scalar f64 SpMM straight off the CSR arrays: C[r] = Σ A[r,c]·B[c].
fn f64_reference(a: &CsrMatrix, b: &DenseMatrix) -> Vec<Vec<f64>> {
    let n = b.ncols();
    let mut c = vec![vec![0.0f64; n]; a.nrows()];
    for (r, crow) in c.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        for (&col, &v) in cols.iter().zip(vals.iter()) {
            let brow = b.row(col as usize);
            for (j, cj) in crow.iter_mut().enumerate() {
                *cj += v as f64 * brow[j] as f64;
            }
        }
    }
    c
}

fn max_abs_diff(got: &DenseMatrix, want: &[Vec<f64>]) -> f64 {
    let mut worst = 0.0f64;
    for (r, wrow) in want.iter().enumerate() {
        for (j, &w) in wrow.iter().enumerate() {
            worst = worst.max((got.get(r, j) as f64 - w).abs());
        }
    }
    worst
}

fn workloads() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("molecules", gen::molecule_union(640, 6, 16, true, 21)),
        (
            "rmat",
            gen::rmat(
                gen::RmatConfig {
                    scale: 9,
                    avg_deg: 10.0,
                    ..Default::default()
                },
                22,
            ),
        ),
        (
            "clustered",
            gen::clustered(
                gen::ClusteredConfig {
                    n: 768,
                    cluster_size: 96,
                    intra_deg: 14.0,
                    inter_deg: 3.0,
                    hub_fraction: 0.02,
                    hub_factor: 8.0,
                    shuffle: true,
                    ..Default::default()
                },
                23,
            ),
        ),
    ]
}

#[test]
fn all_six_kernels_match_the_f64_scalar_reference() {
    for (name, a) in workloads() {
        let b = DenseMatrix::random(a.nrows(), 32, 77);
        let want = f64_reference(&a, &b);
        // The reference accumulates in f64; the kernels round operands
        // to TF32 and accumulate in f32, so allow both error sources.
        let tol = tf32_tolerance(a.nrows()) as f64;
        for kind in KernelKind::ALL {
            let k = PreparedKernel::builder(kind, &a)
                .arch(Arch::A800)
                .feature_dim(b.ncols())
                .build()
                .unwrap();
            let c = k.execute(&b).unwrap();
            let diff = max_abs_diff(&c, &want);
            assert!(
                diff <= tol,
                "{} on {name}: max |diff| {diff} > tol {tol}",
                kind.name()
            );
        }
    }
}

#[test]
fn multiply_batch_is_bit_identical_to_looped_multiply() {
    for (name, a) in workloads() {
        let handle = AccSpmm::builder(&a)
            .arch(Arch::A800)
            .feature_dim(16)
            .build()
            .unwrap();
        let bs: Vec<DenseMatrix> = (0..10)
            .map(|i| DenseMatrix::random(a.nrows(), 16, 500 + i))
            .collect();
        let batched = handle.multiply_batch(&bs).unwrap();
        assert_eq!(batched.len(), bs.len());
        for (i, b) in bs.iter().enumerate() {
            let single = handle.multiply(b).unwrap();
            assert_eq!(
                batched[i], single,
                "{name}: batched RHS {i} differs from multiply()"
            );
        }
    }
}

#[test]
fn execute_batch_bit_identical_across_all_kernels() {
    let a = gen::molecule_union(512, 6, 14, true, 31);
    let bs: Vec<DenseMatrix> = (0..8)
        .map(|i| DenseMatrix::random(a.nrows(), 24, 900 + i))
        .collect();
    for kind in KernelKind::ALL {
        let k = PreparedKernel::builder(kind, &a)
            .arch(Arch::H100)
            .feature_dim(24)
            .build()
            .unwrap();
        let batched = k.execute_batch(&bs).unwrap();
        for (i, b) in bs.iter().enumerate() {
            assert_eq!(
                batched[i],
                k.execute(b).unwrap(),
                "{} RHS {i} not bit-identical",
                kind.name()
            );
        }
    }
}
