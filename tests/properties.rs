//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use spmm_balance::{plan, BalanceStrategy, ModelParams, PerfModel, MAX_BLOCKS_PER_TB};
use spmm_common::util::is_permutation;
use spmm_format::{BitTcf, MeTcf, Tcf, WindowPartition, PAD_COL, TILE};
use spmm_matrix::{CooMatrix, CsrMatrix, DenseMatrix};
use spmm_reorder::Algorithm;

/// Non-finite / edge-case floats to splice into operands, selected by
/// a proptest-drawn index.
fn special(code: usize) -> f32 {
    [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -0.0f32,
        1.0e-41f32, // denormal
        f32::MAX,
    ][code % 6]
}

/// The pre-change sequential BitTCF SpMM: decompress each block, gather
/// raw dense rows, and run the round-at-every-use
/// [`spmm_common::scalar::tf32_mma_8x8`]. The pre-rounded production
/// paths must stay bit-identical to this.
fn reference_bittcf_spmm(t: &BitTcf, b: &DenseMatrix) -> DenseMatrix {
    use spmm_common::scalar::tf32_mma_8x8;
    let n = b.ncols();
    let mut c = DenseMatrix::zeros(t.nrows(), n);
    let mut btile = vec![0.0f32; TILE * n];
    let mut ctile = vec![0.0f32; TILE * n];
    for w in 0..t.num_windows() {
        ctile.iter_mut().for_each(|x| *x = 0.0);
        for blk in t.window_blocks(w) {
            let a = t.decompress_block(blk);
            for (i, &col) in t.block_cols(blk).iter().enumerate() {
                if col == PAD_COL {
                    btile[i * n..(i + 1) * n].iter_mut().for_each(|x| *x = 0.0);
                } else {
                    btile[i * n..(i + 1) * n].copy_from_slice(b.row(col as usize));
                }
            }
            tf32_mma_8x8(&a, &btile, &mut ctile, n);
        }
        let lo = w * TILE;
        let hi = ((w + 1) * TILE).min(t.nrows());
        for r in lo..hi {
            c.row_mut(r)
                .copy_from_slice(&ctile[(r - lo) * n..(r - lo + 1) * n]);
        }
    }
    c
}

/// Bit-level equality, NaN-position-exact: every non-NaN element must
/// match bitwise (including signed zeros and infinities) and NaNs must
/// appear at exactly the same positions. NaN *payloads* are allowed to
/// differ — IEEE 754 leaves invalid-operation payload propagation
/// unspecified, and the compiler may commute `c + a*b`, so payloads are
/// not stable across differently-vectorized builds of the same
/// arithmetic.
fn bits_equal(a: &DenseMatrix, b: &DenseMatrix) -> bool {
    a.nrows() == b.nrows()
        && a.ncols() == b.ncols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()))
}

/// Strategy: an arbitrary small sparse square matrix (duplicates summed).
fn arb_matrix(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, -8i16..8i16), 0..max_nnz).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in entries {
                    coo.push(r, c, v as f32 / 2.0);
                }
                CsrMatrix::from_coo(&coo)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_coo_roundtrip(m in arb_matrix(64, 200)) {
        let rt = CsrMatrix::from_coo(&m.to_coo());
        prop_assert_eq!(m, rt);
    }

    #[test]
    fn transpose_is_involutive(m in arb_matrix(48, 150)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn all_tc_formats_roundtrip(m in arb_matrix(64, 256)) {
        prop_assert_eq!(BitTcf::from_csr(&m).to_csr(), m.clone());
        prop_assert_eq!(MeTcf::from_csr(&m).to_csr(), m.clone());
        prop_assert_eq!(Tcf::from_csr(&m).to_csr(), m);
    }

    #[test]
    fn bitmap_popcount_equals_offsets(m in arb_matrix(64, 256)) {
        let t = BitTcf::from_csr(&m);
        let mut total = 0usize;
        for b in 0..t.num_tc_blocks() {
            let pop = t.tc_local_bit[b].count_ones();
            prop_assert_eq!(pop, t.tc_offset[b + 1] - t.tc_offset[b]);
            total += pop as usize;
        }
        prop_assert_eq!(total, m.nnz());
        // Offsets are monotone and terminate at nnz.
        prop_assert!(t.tc_offset.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(t.row_window_offset.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn window_partition_counts_are_consistent(m in arb_matrix(64, 256)) {
        let wp = WindowPartition::build(&m);
        prop_assert_eq!(wp.num_windows(), m.nrows().div_ceil(TILE));
        prop_assert_eq!(
            wp.blocks_per_window().iter().sum::<usize>(),
            wp.num_tc_blocks()
        );
        // Each window's block count is exactly ceil(distinct cols / TILE).
        for w in 0..wp.num_windows() {
            prop_assert_eq!(
                wp.window_blocks(w).len(),
                wp.window_columns(w).len().div_ceil(TILE)
            );
        }
    }

    #[test]
    fn every_reorder_is_a_permutation(m in arb_matrix(48, 150)) {
        for alg in Algorithm::ALL {
            let perm = spmm_reorder::reorder(&m, alg);
            prop_assert!(is_permutation(&perm), "{}", alg.name());
        }
    }

    #[test]
    fn reorder_preserves_nnz_and_row_multiset(m in arb_matrix(48, 150)) {
        let (pm, perm) = spmm_reorder::reorder_apply(&m, Algorithm::Affinity);
        prop_assert_eq!(pm.nnz(), m.nnz());
        for (old, &p) in perm.iter().enumerate() {
            prop_assert_eq!(pm.row(p as usize), m.row(old));
        }
    }

    #[test]
    fn balance_plans_cover_blocks_exactly_once(
        bpw in proptest::collection::vec(0usize..40, 1..64)
    ) {
        let model = PerfModel::new(ModelParams {
            feature_dim: 128,
            bandwidth: 1e12,
            flops: 1e14,
            num_sms: 108,
        });
        let total: usize = bpw.iter().sum();
        for strategy in [
            BalanceStrategy::None,
            BalanceStrategy::DtcStyle,
            BalanceStrategy::AccAdaptive,
        ] {
            let p = plan(&bpw, strategy, &model);
            let mut next = 0u32;
            for tb in &p.tbs {
                prop_assert!(tb.num_blocks() > 0);
                // The 32-block cap binds only when redistribution was
                // actually applied (the adaptive strategy declines
                // balanced inputs and leaves windows whole).
                if p.applied {
                    prop_assert!(tb.num_blocks() <= MAX_BLOCKS_PER_TB);
                }
                for s in &tb.segments {
                    prop_assert_eq!(s.block_start, next);
                    prop_assert!(s.block_end > s.block_start);
                    next = s.block_end;
                }
            }
            prop_assert_eq!(next as usize, total, "strategy {:?}", strategy);
        }
    }

    #[test]
    fn tc_spmm_matches_reference(m in arb_matrix(40, 120), seed in 0u64..1000) {
        let n = 8;
        let b = DenseMatrix::random(m.ncols(), n, seed);
        let reference = m.spmm_dense(&b).unwrap();
        let c = BitTcf::from_csr(&m).spmm(&b).unwrap();
        let tol = spmm_common::scalar::tf32_tolerance(m.ncols()) * 8.0;
        prop_assert!(
            c.approx_eq(&reference, tol, tol),
            "max diff {}",
            c.max_abs_diff(&reference)
        );
    }

    #[test]
    fn tf32_rounding_is_monotone(a in any::<f32>(), b in any::<f32>()) {
        prop_assume!(a.is_finite() && b.is_finite());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (rl, rh) = (spmm_common::to_tf32(lo), spmm_common::to_tf32(hi));
        prop_assert!(rl <= rh, "rounding must preserve order: {lo} -> {rl}, {hi} -> {rh}");
    }

    #[test]
    fn mm_io_roundtrip(m in arb_matrix(32, 80)) {
        let mut buf = Vec::new();
        spmm_matrix::mm::write_csr(&mut buf, &m).unwrap();
        let rt = CsrMatrix::from_coo(
            &spmm_matrix::mm::read_coo(std::io::Cursor::new(buf)).unwrap()
        );
        prop_assert_eq!(m, rt);
    }

    #[test]
    fn mm_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary bytes: the parser must return Err or Ok, never panic.
        let _ = spmm_matrix::mm::read_coo(std::io::Cursor::new(bytes));
    }

    #[test]
    fn mm_parser_never_panics_on_header_plus_garbage(
        lines in proptest::collection::vec("[ -~]{0,40}", 0..20)
    ) {
        // A valid header followed by arbitrary printable lines.
        let mut text = String::from("%%MatrixMarket matrix coordinate real general\n");
        for l in &lines {
            text.push_str(l);
            text.push('\n');
        }
        let _ = spmm_matrix::mm::read_coo(std::io::Cursor::new(text.into_bytes()));
    }

    #[test]
    fn bittcf_loader_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = spmm_format::io::read_bittcf(std::io::Cursor::new(bytes));
    }

    #[test]
    fn prerounded_spmm_into_matches_sequential_reference(
        m in arb_matrix(48, 160),
        seed in 0u64..1000,
        a_specials in proptest::collection::vec((0usize..4096, 0usize..6), 0..6),
        b_specials in proptest::collection::vec((0usize..4096, 0usize..6), 0..6),
    ) {
        let n = 8;
        let mut t = BitTcf::from_csr(&m);
        let mut b = DenseMatrix::random(m.ncols(), n, seed);
        // Splice NaN/Inf/denormal edge cases into both operands: the
        // pre-rounded path must propagate them bit-for-bit like the
        // round-at-every-use reference.
        for &(i, v) in &a_specials {
            if !t.values.is_empty() {
                let idx = i % t.values.len();
                t.values[idx] = special(v);
            }
        }
        for &(i, v) in &b_specials {
            let s = b.as_mut_slice();
            let idx = i % s.len();
            s[idx] = special(v);
        }
        let reference = reference_bittcf_spmm(&t, &b);

        // Raw format (rounds the decompressed tile per block).
        let mut c = DenseMatrix::zeros(m.nrows(), n);
        t.spmm_into(&b, &mut c).unwrap();
        prop_assert!(bits_equal(&c, &reference), "raw-format path diverged");

        // Pre-rounded format (the plan-compiled configuration).
        t.preround_values();
        let mut c2 = DenseMatrix::zeros(m.nrows(), n);
        t.spmm_into(&b, &mut c2).unwrap();
        prop_assert!(bits_equal(&c2, &reference), "prerounded-format path diverged");

        // Sequential scratch path.
        let mut scratch = spmm_format::TileScratch::new();
        let mut c3 = DenseMatrix::zeros(m.nrows(), n);
        t.spmm_into_seq(&b, &mut c3, &mut scratch).unwrap();
        prop_assert!(bits_equal(&c3, &reference), "sequential path diverged");
    }

    #[test]
    fn execute_batch_is_bit_identical_to_sequential_executes(
        m in arb_matrix(40, 120),
        seeds in proptest::collection::vec(0u64..1000, 1..4),
        specials in proptest::collection::vec((0usize..4096, 0usize..6), 0..4),
    ) {
        let n = 8;
        let k = spmm_kernels::PreparedKernel::builder(spmm_kernels::KernelKind::AccSpmm, &m)
            .feature_dim(n)
            .build()
            .unwrap();
        let mut bs: Vec<DenseMatrix> = seeds
            .iter()
            .map(|&s| DenseMatrix::random(m.ncols(), n, s))
            .collect();
        for (j, &(i, v)) in specials.iter().enumerate() {
            let b = &mut bs[j % seeds.len()];
            let s = b.as_mut_slice();
            let idx = i % s.len();
            s[idx] = special(v);
        }
        let expected: Vec<DenseMatrix> =
            bs.iter().map(|b| k.execute(b).unwrap()).collect();
        let got = k.execute_batch(&bs).unwrap();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert!(bits_equal(g, e), "batched output diverged from sequential");
        }
    }

    #[test]
    fn bittcf_binary_roundtrip(m in arb_matrix(48, 160)) {
        let t = BitTcf::from_csr(&m);
        let mut buf = Vec::new();
        spmm_format::io::write_bittcf(&mut buf, &t).unwrap();
        let rt = spmm_format::io::read_bittcf(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(rt.to_csr(), m);
    }
}

proptest! {
    // Engine cases spin up worker threads; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_submit_is_bit_identical_to_direct_multiply(
        m in arb_matrix(40, 120),
        seeds in proptest::collection::vec(0u64..1000, 1..4),
        specials in proptest::collection::vec((0usize..4096, 0usize..6), 0..4),
    ) {
        use acc_spmm::{AccSpmm, Engine, SubmitOptions};
        let n = 8;
        let handle = AccSpmm::builder(&m).feature_dim(n).build().unwrap();
        let mut bs: Vec<DenseMatrix> = seeds
            .iter()
            .map(|&s| DenseMatrix::random(m.ncols(), n, s))
            .collect();
        for (j, &(i, v)) in specials.iter().enumerate() {
            let b = &mut bs[j % seeds.len()];
            let s = b.as_mut_slice();
            let idx = i % s.len();
            s[idx] = special(v);
        }
        let expected: Vec<DenseMatrix> =
            bs.iter().map(|b| handle.multiply(b).unwrap()).collect();

        let engine = Engine::builder().workers(1).build().unwrap();
        let session = engine.install(handle.prepared().clone());
        let tickets: Vec<_> = bs
            .iter()
            .map(|b| session.submit(b.clone(), SubmitOptions::new()).into_result().unwrap())
            .collect();
        for (t, e) in tickets.into_iter().zip(&expected) {
            let got = t.wait().unwrap();
            prop_assert!(bits_equal(&got, e), "engine output diverged from direct multiply");
        }
    }
}
