//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use spmm_balance::{plan, BalanceStrategy, ModelParams, PerfModel, MAX_BLOCKS_PER_TB};
use spmm_common::util::is_permutation;
use spmm_format::{BitTcf, MeTcf, Tcf, WindowPartition, TILE};
use spmm_matrix::{CooMatrix, CsrMatrix, DenseMatrix};
use spmm_reorder::Algorithm;

/// Strategy: an arbitrary small sparse square matrix (duplicates summed).
fn arb_matrix(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, -8i16..8i16), 0..max_nnz).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in entries {
                    coo.push(r, c, v as f32 / 2.0);
                }
                CsrMatrix::from_coo(&coo)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_coo_roundtrip(m in arb_matrix(64, 200)) {
        let rt = CsrMatrix::from_coo(&m.to_coo());
        prop_assert_eq!(m, rt);
    }

    #[test]
    fn transpose_is_involutive(m in arb_matrix(48, 150)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn all_tc_formats_roundtrip(m in arb_matrix(64, 256)) {
        prop_assert_eq!(BitTcf::from_csr(&m).to_csr(), m.clone());
        prop_assert_eq!(MeTcf::from_csr(&m).to_csr(), m.clone());
        prop_assert_eq!(Tcf::from_csr(&m).to_csr(), m);
    }

    #[test]
    fn bitmap_popcount_equals_offsets(m in arb_matrix(64, 256)) {
        let t = BitTcf::from_csr(&m);
        let mut total = 0usize;
        for b in 0..t.num_tc_blocks() {
            let pop = t.tc_local_bit[b].count_ones();
            prop_assert_eq!(pop, t.tc_offset[b + 1] - t.tc_offset[b]);
            total += pop as usize;
        }
        prop_assert_eq!(total, m.nnz());
        // Offsets are monotone and terminate at nnz.
        prop_assert!(t.tc_offset.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(t.row_window_offset.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn window_partition_counts_are_consistent(m in arb_matrix(64, 256)) {
        let wp = WindowPartition::build(&m);
        prop_assert_eq!(wp.num_windows(), m.nrows().div_ceil(TILE));
        prop_assert_eq!(
            wp.blocks_per_window().iter().sum::<usize>(),
            wp.num_tc_blocks()
        );
        // Each window's block count is exactly ceil(distinct cols / TILE).
        for w in 0..wp.num_windows() {
            prop_assert_eq!(
                wp.window_blocks(w).len(),
                wp.window_columns(w).len().div_ceil(TILE)
            );
        }
    }

    #[test]
    fn every_reorder_is_a_permutation(m in arb_matrix(48, 150)) {
        for alg in Algorithm::ALL {
            let perm = spmm_reorder::reorder(&m, alg);
            prop_assert!(is_permutation(&perm), "{}", alg.name());
        }
    }

    #[test]
    fn reorder_preserves_nnz_and_row_multiset(m in arb_matrix(48, 150)) {
        let (pm, perm) = spmm_reorder::reorder_apply(&m, Algorithm::Affinity);
        prop_assert_eq!(pm.nnz(), m.nnz());
        for (old, &p) in perm.iter().enumerate() {
            prop_assert_eq!(pm.row(p as usize), m.row(old));
        }
    }

    #[test]
    fn balance_plans_cover_blocks_exactly_once(
        bpw in proptest::collection::vec(0usize..40, 1..64)
    ) {
        let model = PerfModel::new(ModelParams {
            feature_dim: 128,
            bandwidth: 1e12,
            flops: 1e14,
            num_sms: 108,
        });
        let total: usize = bpw.iter().sum();
        for strategy in [
            BalanceStrategy::None,
            BalanceStrategy::DtcStyle,
            BalanceStrategy::AccAdaptive,
        ] {
            let p = plan(&bpw, strategy, &model);
            let mut next = 0u32;
            for tb in &p.tbs {
                prop_assert!(tb.num_blocks() > 0);
                // The 32-block cap binds only when redistribution was
                // actually applied (the adaptive strategy declines
                // balanced inputs and leaves windows whole).
                if p.applied {
                    prop_assert!(tb.num_blocks() <= MAX_BLOCKS_PER_TB);
                }
                for s in &tb.segments {
                    prop_assert_eq!(s.block_start, next);
                    prop_assert!(s.block_end > s.block_start);
                    next = s.block_end;
                }
            }
            prop_assert_eq!(next as usize, total, "strategy {:?}", strategy);
        }
    }

    #[test]
    fn tc_spmm_matches_reference(m in arb_matrix(40, 120), seed in 0u64..1000) {
        let n = 8;
        let b = DenseMatrix::random(m.ncols(), n, seed);
        let reference = m.spmm_dense(&b).unwrap();
        let c = BitTcf::from_csr(&m).spmm(&b).unwrap();
        let tol = spmm_common::scalar::tf32_tolerance(m.ncols()) * 8.0;
        prop_assert!(
            c.approx_eq(&reference, tol, tol),
            "max diff {}",
            c.max_abs_diff(&reference)
        );
    }

    #[test]
    fn tf32_rounding_is_monotone(a in any::<f32>(), b in any::<f32>()) {
        prop_assume!(a.is_finite() && b.is_finite());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (rl, rh) = (spmm_common::to_tf32(lo), spmm_common::to_tf32(hi));
        prop_assert!(rl <= rh, "rounding must preserve order: {lo} -> {rl}, {hi} -> {rh}");
    }

    #[test]
    fn mm_io_roundtrip(m in arb_matrix(32, 80)) {
        let mut buf = Vec::new();
        spmm_matrix::mm::write_csr(&mut buf, &m).unwrap();
        let rt = CsrMatrix::from_coo(
            &spmm_matrix::mm::read_coo(std::io::Cursor::new(buf)).unwrap()
        );
        prop_assert_eq!(m, rt);
    }

    #[test]
    fn mm_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary bytes: the parser must return Err or Ok, never panic.
        let _ = spmm_matrix::mm::read_coo(std::io::Cursor::new(bytes));
    }

    #[test]
    fn mm_parser_never_panics_on_header_plus_garbage(
        lines in proptest::collection::vec("[ -~]{0,40}", 0..20)
    ) {
        // A valid header followed by arbitrary printable lines.
        let mut text = String::from("%%MatrixMarket matrix coordinate real general\n");
        for l in &lines {
            text.push_str(l);
            text.push('\n');
        }
        let _ = spmm_matrix::mm::read_coo(std::io::Cursor::new(text.into_bytes()));
    }

    #[test]
    fn bittcf_loader_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = spmm_format::io::read_bittcf(std::io::Cursor::new(bytes));
    }

    #[test]
    fn bittcf_binary_roundtrip(m in arb_matrix(48, 160)) {
        let t = BitTcf::from_csr(&m);
        let mut buf = Vec::new();
        spmm_format::io::write_bittcf(&mut buf, &t).unwrap();
        let rt = spmm_format::io::read_bittcf(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(rt.to_csr(), m);
    }
}
