//! QoS serving: many tenants with different priorities share one
//! preprocessed operand through the engine's plan cache, weighted fair
//! queue, and paged workspace allocator.
//!
//! Run with: `cargo run --release --example serving`

use acc_spmm::matrix::gen;
use acc_spmm::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let engine = Arc::new(
        Engine::builder()
            .workers(2)
            .max_batch(8)
            .batch_window(Duration::from_micros(200))
            .queue_capacity(64)
            .tenant_quota(16)
            .page_budget(4096) // 4096 × 64 KiB = 256 MiB staging cap
            .build()
            .unwrap(),
    );

    // One shared power-law graph; every client multiplies against it.
    let a = Arc::new(gen::rmat(
        gen::RmatConfig {
            scale: 12,
            avg_deg: 12.0,
            ..Default::default()
        },
        42,
    ));
    let dim = 32;
    let rounds = 32;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for client in 0..8u64 {
            let engine = Arc::clone(&engine);
            let a = Arc::clone(&a);
            s.spawn(move || {
                // All eight clients race to open a session; the plan
                // cache builds the kernel exactly once. Two of them are
                // latency-sensitive, the rest run as bulk traffic.
                let session = engine.session(&a).feature_dim(dim).open().unwrap();
                let opts = SubmitOptions::new()
                    .tenant(format!("client-{client}"))
                    .priority(if client < 2 {
                        Priority::Interactive
                    } else {
                        Priority::Batch
                    })
                    .deadline(Duration::from_secs(5));
                for r in 0..rounds {
                    let b = DenseMatrix::random(a.ncols(), dim, client * 1000 + r);
                    match session.submit(b, opts.clone()) {
                        SubmitOutcome::Accepted(ticket) => {
                            let c = ticket.wait().unwrap();
                            assert_eq!(c.nrows(), a.nrows());
                        }
                        SubmitOutcome::Rejected { retry_after, .. } => {
                            // Admission control said no — back off for
                            // the hinted interval instead of hammering.
                            if let Some(wait) = retry_after {
                                std::thread::sleep(wait.min(Duration::from_millis(5)));
                            }
                        }
                        _ => unreachable!("non-exhaustive outcome"),
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let stats = engine.stats();
    println!("8 clients x {rounds} multiplies in {elapsed:.2?}");
    println!(
        "plan builds: {} (cache hits {}, misses {})",
        stats.plan_builds, stats.cache_hits, stats.cache_misses
    );
    println!(
        "batches: {} carrying {} requests (avg occupancy {:.2})",
        stats.batches,
        stats.batched_requests,
        stats.batched_requests as f64 / stats.batches.max(1) as f64
    );
    println!(
        "served interactive/standard/batch: {}/{}/{}",
        stats.served[0], stats.served[1], stats.served[2]
    );
    println!(
        "rejected: {} (quota {}), expired: {}, late executions: {}",
        stats.rejected, stats.quota_rejected, stats.timed_out, stats.late_executions
    );
    println!(
        "pages: peak {} of {} budget ({} evictions, {} denials)",
        stats.pages_peak,
        engine.config().page_budget.unwrap_or(usize::MAX),
        stats.page_evictions,
        stats.page_denials
    );
}
