//! Concurrent serving: many clients share one preprocessed operand
//! through the engine's plan cache and micro-batching worker pool.
//!
//! Run with: `cargo run --release --example serving`

use acc_spmm::matrix::gen;
use acc_spmm::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let engine = Arc::new(
        Engine::builder()
            .workers(2)
            .max_batch(8)
            .batch_window(Duration::from_micros(200))
            .queue_capacity(64)
            .build()
            .unwrap(),
    );

    // One shared power-law graph; every client multiplies against it.
    let a = Arc::new(gen::rmat(
        gen::RmatConfig {
            scale: 12,
            avg_deg: 12.0,
            ..Default::default()
        },
        42,
    ));
    let dim = 32;
    let rounds = 32;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for client in 0..8u64 {
            let engine = Arc::clone(&engine);
            let a = Arc::clone(&a);
            s.spawn(move || {
                // All eight clients race to open a session; the plan
                // cache builds the kernel exactly once.
                let session = engine.session(&a).feature_dim(dim).open().unwrap();
                for r in 0..rounds {
                    let b = DenseMatrix::random(a.ncols(), dim, client * 1000 + r);
                    match session.try_submit(b) {
                        Submit::Accepted(ticket) => {
                            let c = ticket.wait().unwrap();
                            assert_eq!(c.nrows(), a.nrows());
                        }
                        Submit::Rejected { .. } => {
                            // Backpressure: a real server would retry
                            // with jitter or shed the request.
                        }
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let stats = engine.stats();
    println!("8 clients x {rounds} multiplies in {elapsed:.2?}");
    println!(
        "plan builds: {} (cache hits {}, misses {})",
        stats.plan_builds, stats.cache_hits, stats.cache_misses
    );
    println!(
        "batches: {} carrying {} requests (avg occupancy {:.2})",
        stats.batches,
        stats.batched_requests,
        stats.batched_requests as f64 / stats.batches.max(1) as f64
    );
    println!(
        "rejected: {}, timed out: {}",
        stats.rejected, stats.timed_out
    );
}
