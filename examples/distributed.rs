//! Sharded execution: one SpMM split across a pool of workers with
//! bit-identical results, plus a GCN forward pass that keeps features
//! sharded across layers and exchanges only halo rows.
//!
//! `DistSpmm` cuts the sparse operand into nnz-balanced row blocks
//! (priced with the balance crate's Equation-4 cost model), builds an
//! independent kernel per shard, and scatters/gathers through a
//! pluggable `Transport`. Because every output row accumulates only
//! its own nonzero lanes in a fixed order, sharding cannot change a
//! single bit of the result — which this example asserts.
//!
//! Run with: `cargo run --release --example distributed`

use acc_spmm::matrix::gen;
use acc_spmm::prelude::*;
use acc_spmm::Gcn;
use std::sync::Arc;

fn main() {
    // A community graph — the workload where halo exchange shines,
    // since most edges stay inside a shard's row range.
    let a = gen::clustered(
        gen::ClusteredConfig {
            n: 4096,
            cluster_size: 512,
            shuffle: false, // keep communities contiguous → small halos
            ..Default::default()
        },
        3,
    );
    let dim = 64;
    let b = DenseMatrix::random(a.ncols(), dim, 7);
    println!(
        "graph: {} vertices, {} edges; feature dim {dim}",
        a.nrows(),
        a.nnz() / 2
    );

    // Single-node reference.
    let single = AccSpmm::builder(&a)
        .arch(Arch::A800)
        .feature_dim(dim)
        .build()
        .expect("single-node build");
    let expect = single.multiply(&b).expect("single-node multiply");

    // Scale out: same multiply at 1/2/4/8 shards over a modeled
    // NVLink-class transport derived from the A800's DRAM constants.
    println!(
        "\n{:>7} {:>16} {:>12} {:>10}",
        "shards", "critical path", "slowest", "comm"
    );
    let mut baseline = None;
    for shards in [1usize, 2, 4, 8] {
        let dist = DistSpmm::builder(KernelKind::AccSpmm, &a)
            .shards(shards)
            .arch(Arch::A800)
            .feature_dim(dim)
            .transport(Arc::new(ModeledTransport::for_arch(Arch::A800)))
            .build()
            .expect("dist build");
        let (c, report) = dist.multiply_profiled(&b).expect("dist multiply");
        assert_eq!(c, expect, "sharded result must be bit-identical");
        let cp = report.critical_path_seconds;
        let base = *baseline.get_or_insert(cp);
        println!(
            "{shards:>7} {:>13.2} ms {:>9.2} ms {:>7.3} ms  ({:.2}x)",
            cp * 1e3,
            report.max_busy_seconds() * 1e3,
            (report.scatter_seconds + report.gather_seconds) * 1e3,
            base / cp,
        );
    }

    // A 3-layer GCN with the aggregation sharded four ways. Between
    // layers only the halo — boundary feature rows that neighbouring
    // shards reference — moves, not the full feature matrix.
    let widths = [dim, 32, 8];
    let gcn = Gcn::new(&a, &widths, Arch::A800, 11).expect("gcn build");
    let x = DenseMatrix::random(a.nrows(), dim, 13);
    let dense = gcn.forward(&x).expect("dense forward");

    let dist = gcn.shard(4).expect("gcn shard");
    let sharded = gcn.forward_sharded(&dist, &x).expect("sharded forward");
    assert_eq!(sharded, dense, "sharded GCN must be bit-identical");

    let (halo, regather) = dist.halo_traffic_rows();
    println!(
        "\nGCN {:?}: sharded forward bit-identical; halo moves {halo} rows/layer \
         vs {regather} for a full regather ({:.1}% of traffic)",
        widths,
        100.0 * halo as f64 / regather as f64,
    );
}
