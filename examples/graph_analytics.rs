//! Graph analytics on the SpMM handle: multi-source personalized
//! PageRank and spectral structure via block power iteration — the
//! "graph analysis" applications the paper's introduction motivates.
//!
//! Run with: `cargo run --release --example graph_analytics`

use acc_spmm::matrix::gen;
use acc_spmm::prelude::*;
use acc_spmm::solvers::{block_power_iteration, personalized_pagerank};

fn main() {
    // A web-like graph: host communities plus hub pages.
    let g = gen::clustered(
        gen::ClusteredConfig {
            n: 4096,
            cluster_size: 128,
            intra_deg: 12.0,
            inter_deg: 2.0,
            hub_fraction: 0.01,
            hub_factor: 12.0,
            shuffle: false,
            degree_spread: 0.8,
            size_variance: 0.4,
        },
        11,
    );
    println!(
        "graph: {} vertices, {} edges, AvgL {:.1}",
        g.nrows(),
        g.nnz() / 2,
        g.avg_row_len()
    );

    // 16 personalized PageRank computations as ONE SpMM stream.
    let sources: Vec<u32> = (0..16u32).map(|i| i * 229).collect();
    let t0 = std::time::Instant::now();
    let scores = personalized_pagerank(&g, &sources, 0.85, 30, Arch::A800).expect("pagerank");
    println!(
        "\n16-source personalized PageRank, 30 iterations: {:.0} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    for (j, &s) in sources.iter().take(4).enumerate() {
        // Top-3 vertices for this source.
        let mut ranked: Vec<usize> = (0..g.nrows()).collect();
        ranked.sort_by(|&a, &b| scores.get(b, j).partial_cmp(&scores.get(a, j)).unwrap());
        println!(
            "  source {s:>4}: top vertices {:?} (same 128-cluster: {})",
            &ranked[..3],
            ranked[..3].iter().all(|&v| v / 128 == s as usize / 128)
        );
    }

    // Spectral structure: the four dominant eigenvalues.
    let t0 = std::time::Instant::now();
    let eig = block_power_iteration(&g, 4, 40, Arch::A800).expect("power iteration");
    println!(
        "\nblock power iteration (4 vectors, 40 iters): {:.0} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!("  dominant eigenvalue estimates: {:?}", eig.eigenvalues);
    println!(
        "  (hubs with degree ~{} push the spectral radius well above AvgL {:.1})",
        (12.0f32 * 12.0) as u32,
        g.avg_row_len()
    );
}
