//! GNN feature aggregation — the workload the paper's introduction
//! motivates. A two-layer GCN-style forward pass aggregates neighbour
//! features with SpMM twice per epoch: `H' = act(A × H)`. The adjacency
//! matrix never changes, so Acc-SpMM's preprocessing (reorder + BitTCF +
//! balance plan) is paid once and amortized over every layer of every
//! epoch.
//!
//! Run with: `cargo run --release --example gnn_aggregation`

use acc_spmm::matrix::gen;
use acc_spmm::prelude::*;
use std::time::Instant;

/// ReLU, applied in place between layers.
fn relu(h: &mut DenseMatrix) {
    for x in h.as_mut_slice() {
        *x = x.max(0.0);
    }
}

fn main() {
    // A reddit-like community graph: the canonical GNN benchmark shape.
    let a = gen::clustered(
        gen::ClusteredConfig {
            n: 4096,
            cluster_size: 512,
            intra_deg: 48.0,
            inter_deg: 12.0,
            hub_fraction: 0.01,
            hub_factor: 5.0,
            shuffle: true,
            degree_spread: 1.2,
            size_variance: 0.5,
        },
        1,
    );
    let feature_dim = 128;
    let epochs = 5;
    let layers = 2;

    println!(
        "graph: {} vertices, {} edges, AvgL {:.1}",
        a.nrows(),
        a.nnz() / 2,
        a.avg_row_len()
    );

    // One-time preprocessing.
    let t0 = Instant::now();
    let handle = AccSpmm::builder(&a)
        .arch(Arch::H100)
        .feature_dim(feature_dim)
        .build()
        .expect("preprocess");
    let prep = t0.elapsed();
    println!(
        "preprocess: {:.1} ms (MeanNNZTC {:.2}, {} TC blocks)",
        prep.as_secs_f64() * 1e3,
        handle.stats().mean_nnz_tc,
        handle.stats().num_tc_blocks
    );

    // Training loop: 2 aggregations per epoch on evolving features.
    let mut h = DenseMatrix::random(a.nrows(), feature_dim, 99);
    let t0 = Instant::now();
    for epoch in 0..epochs {
        for _layer in 0..layers {
            h = handle.multiply(&h).expect("aggregate");
            relu(&mut h);
            // Keep activations bounded so the demo stays numerically tame
            // (a real GCN has a trained weight matrix here).
            let norm = h.frobenius_norm().max(1e-12);
            for x in h.as_mut_slice() {
                *x /= norm / 1000.0;
            }
        }
        println!("epoch {epoch}: feature norm {:.3e}", h.frobenius_norm());
    }
    let train = t0.elapsed();
    let per_spmm = train.as_secs_f64() / (epochs * layers) as f64;
    println!(
        "{} SpMMs in {:.1} ms ({:.1} ms each); preprocessing amortized to {:.1}% of total",
        epochs * layers,
        train.as_secs_f64() * 1e3,
        per_spmm * 1e3,
        prep.as_secs_f64() / (prep.as_secs_f64() + train.as_secs_f64()) * 100.0
    );

    // What would this cost on the simulated H100?
    let r = handle.profile_default();
    println!(
        "simulated H100 per-SpMM: {:.0} us at {:.0} effective GFLOPS",
        r.time_s * 1e6,
        r.gflops
    );
}
