//! Kernel shoot-out: run all six kernel strategies on one matrix across
//! the three simulated GPU architectures and print the Figure-7-style
//! speedup grid — the quickest way to see where each design choice pays.
//!
//! Run with: `cargo run --release --example kernel_shootout [abbr]`
//! where `abbr` is a Table-2 dataset abbreviation (default: DD).

use acc_spmm::comparison::compare_all;
use acc_spmm::matrix::Dataset;
use acc_spmm::sim::{Arch, SimOptions};

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "DD".into());
    let d = Dataset::by_abbr(&abbr).unwrap_or_else(|| {
        eprintln!("unknown dataset {abbr}; available:");
        for d in &acc_spmm::matrix::TABLE2 {
            eprintln!("  {}", d.abbr);
        }
        std::process::exit(1);
    });
    println!("building {} analog ({} rows)...", d.name, d.scaled_rows);
    let m = d.build();
    let opts = SimOptions::scaled(d.scale_factor());
    let n = 128;

    println!(
        "\n{:<12} {:>10} {:>10} {:>10}",
        "kernel", "RTX 4090", "A800", "H100"
    );
    let mut grids = Vec::new();
    for arch in Arch::ALL {
        grids.push(compare_all(&m, arch, n, &opts).expect("comparison"));
    }
    for k in 0..grids[0].len() {
        print!("{:<12}", grids[0][k].kind.name());
        for g in &grids {
            print!(" {:>9.2}x", g[k].speedup);
        }
        println!();
    }
    println!("\n(speedups normalized to cuSPARSE per architecture, N = {n})");

    for (arch, g) in Arch::ALL.iter().zip(&grids) {
        let acc = g.last().unwrap();
        println!(
            "{}: Acc-SpMM {:.2} ms, {:.0} GFLOPS, {:.0} GB/s DRAM, SM util {:.0}%",
            arch.spec().name,
            acc.report.time_s * 1e3,
            acc.report.gflops,
            acc.report.mem_throughput_gbps,
            acc.report.sm_utilization * 100.0
        );
    }
}
