//! A tour of the GPU simulator as a standalone substrate: build a
//! synthetic kernel trace by hand, compare the three tensor-core
//! pipelines on it, sweep architectures, and export a Chrome trace.
//!
//! Run with: `cargo run --release --example simulator_tour`

use spmm_sim::{
    simulate, simulate_traced, Arch, BlockTrace, CachePolicy, KernelDesc, PipelineKind, SimOptions,
    TbTrace,
};

/// A hand-built kernel: `tbs` thread blocks, each processing `blocks`
/// TC blocks that gather 8 B rows with a controllable reuse pattern.
fn synthetic_kernel(tbs: usize, blocks: usize, reuse_window: u32, n: usize) -> KernelDesc {
    let tb_list: Vec<TbTrace> = (0..tbs)
        .map(|t| TbTrace {
            blocks: (0..blocks)
                .map(|b| BlockTrace {
                    // Rows cycle within `reuse_window` distinct values:
                    // small window = hot working set, large = streaming.
                    b_rows: (0..8u32)
                        .map(|k| ((t * blocks + b) as u32 * 8 + k) % reuse_window)
                        .collect(),
                    a_bytes: 4 * 12 + 44, // ~12 nnz BitTCF block
                    flops: 2 * 64 * n as u64,
                    decode_ops: 64,
                })
                .collect(),
            c_rows: 8,
            segments: 1,
        })
        .collect();
    let effective = tb_list
        .iter()
        .flat_map(|t| t.blocks.iter())
        .map(|_| 2 * 12 * n as u64)
        .sum();
    KernelDesc {
        tbs: tb_list,
        pipeline: PipelineKind::AccLeastBubble,
        policy: CachePolicy::acc_policy(),
        mem_efficiency: 0.88,
        use_tensor_cores: true,
        feature_dim: n,
        effective_flops: effective,
        arch_boost: 1.0,
        isa_tier: spmm_common::IsaTier::Scalar,
    }
}

fn main() {
    let opts = SimOptions::default();

    // 1. Pipelines on the same trace.
    println!("pipeline comparison (256 TBs x 32 blocks, streaming gathers):");
    let mut desc = synthetic_kernel(256, 32, 1 << 20, 128);
    for kind in [
        PipelineKind::TcgnnSync,
        PipelineKind::DtcDoubleBuffer,
        PipelineKind::AccLeastBubble,
    ] {
        desc.pipeline = kind;
        let r = simulate(&Arch::A800.spec(), &desc, &opts);
        println!(
            "  {:<16} {:>8.1} us   bubbles {:>5.1}% of busy",
            format!("{kind:?}"),
            r.time_s * 1e6,
            r.bubble_s / r.busy_s * 100.0
        );
    }

    // 2. Cache behaviour: shrink the gather working set.
    println!("\nworking-set sweep (Acc pipeline, A800):");
    for reuse in [1u32 << 20, 8192, 512, 64] {
        let d = synthetic_kernel(256, 32, reuse, 128);
        let r = simulate(&Arch::A800.spec(), &d, &opts);
        println!(
            "  reuse window {:>8} rows: L1 {:>5.1}%  L2 {:>5.1}%  {:>7.1} us",
            reuse,
            r.l1_hit_rate * 100.0,
            r.l2_hit_rate * 100.0,
            r.time_s * 1e6
        );
    }

    // 3. Architecture sweep.
    println!("\narchitecture sweep (same kernel):");
    let d = synthetic_kernel(512, 16, 1 << 14, 128);
    for arch in Arch::ALL {
        let r = simulate(&arch.spec(), &d, &opts);
        println!(
            "  {:<10} {:>8.1} us  {:>7.1} GB/s DRAM",
            arch.spec().name,
            r.time_s * 1e6,
            r.mem_throughput_gbps
        );
    }

    // 4. Chrome-trace export of an imbalanced schedule.
    let mut skewed = synthetic_kernel(200, 4, 1 << 20, 128);
    // Make one giant TB.
    let big = synthetic_kernel(1, 400, 1 << 20, 128).tbs.pop().unwrap();
    skewed.tbs.push(big);
    let (r, trace) = simulate_traced(&Arch::A800.spec(), &skewed, &opts);
    let path = std::env::temp_dir().join("acc_spmm_sim_trace.json");
    trace.save_chrome_trace(&path).expect("trace export");
    println!(
        "\nimbalanced kernel: makespan {:.1} us at {:.0}% SM utilization",
        r.time_s * 1e6,
        r.sm_utilization * 100.0
    );
    println!(
        "timeline written to {} — load it in chrome://tracing to see the straggler",
        path.display()
    );
}
