//! Persisted plans: build an `ExecutionPlan` once, save its versioned
//! IR to disk, reload it in a "new process" through a fully-bound
//! `PlanLoader`, and serve it through the engine — then let the engine
//! do the same thing automatically via a persistent plan store.
//!
//! Run with: `cargo run --release --example persisted_plan`

use acc_spmm::kernels::ir;
use acc_spmm::matrix::gen;
use acc_spmm::prelude::*;
use acc_spmm::{PlanLoader, PreparedKernel as Prepared};
use std::time::Instant;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("acc-spmm-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create example dir");
    let path = dir.join("web-google.plan");

    let a = gen::rmat(
        gen::RmatConfig {
            scale: 13,
            avg_deg: 16.0,
            ..Default::default()
        },
        42,
    );
    let (arch, dim) = (Arch::A800, 64);

    // --- Process 1: compile and persist -----------------------------
    let t0 = Instant::now();
    let kernel = Prepared::builder(KernelKind::AccSpmm, &a)
        .arch(arch)
        .feature_dim(dim)
        .config(AccConfig::full())
        .build()?;
    let build_s = t0.elapsed().as_secs_f64();
    kernel.execution_plan().save(&path)?;
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "compiled {:?}/{} in {build_s:.3}s -> {} ({bytes} bytes)",
        KernelKind::AccSpmm,
        ir::arch_slug(arch),
        path.display()
    );

    // --- Process 2: reload, validate, serve -------------------------
    // A restarted server knows what it expects; every binding is pinned
    // so a stale or foreign artifact is a typed error, not a wrong
    // answer.
    let t1 = Instant::now();
    let plan = PlanLoader::new()
        .expect_kind(KernelKind::AccSpmm)
        .expect_arch(arch)
        .expect_feature_dim(dim)
        .expect_fingerprint(a.content_fingerprint())
        .expect_config(AccConfig::full())
        .load(&path)?;
    let load_s = t1.elapsed().as_secs_f64();
    println!(
        "reloaded in {load_s:.3}s ({:.1}x faster than building): \
         {:?} on {:?}, N = {}, fingerprint {:016x}",
        build_s / load_s,
        plan.kind(),
        plan.arch(),
        plan.feature_dim(),
        plan.input_fingerprint()
    );

    let engine = Engine::builder().workers(1).build()?;
    let session = engine.install(Prepared::from_plan(plan));
    let b = DenseMatrix::random(a.ncols(), dim, 7);
    let served = session.multiply(&b)?;
    let direct = kernel.execute(&b)?;
    assert!(
        served
            .as_slice()
            .iter()
            .zip(direct.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "rehydrated plan must be bit-identical to the fresh build"
    );
    println!(
        "served {} rows through the engine, bit-identical",
        served.nrows()
    );

    // --- Or: let the engine manage the store ------------------------
    // `plan_store(dir)` gives every plan the cache builds a persistent
    // tier; a restarted engine warm-starts from disk (stats record
    // store hits vs fresh builds).
    let store = dir.join("store");
    {
        let engine = Engine::builder().workers(1).plan_store(&store).build()?;
        engine.session(&a).arch(arch).feature_dim(dim).open()?; // cold: builds + persists
    }
    let engine = Engine::builder().workers(1).plan_store(&store).build()?;
    let t2 = Instant::now();
    let session = engine.session(&a).arch(arch).feature_dim(dim).open()?;
    let warm_s = t2.elapsed().as_secs_f64();
    session.multiply(&b)?;
    let stats = engine.stats();
    println!(
        "warm restart opened its session in {warm_s:.3}s \
         (store hits {}, plan builds {})",
        stats.store_hits, stats.plan_builds
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
