//! Reordering laboratory: visualize what the data-affinity reordering
//! does to a sparse matrix — TC-block density before/after, an ASCII
//! density plot of the pattern, and the downstream effect on the
//! simulated kernel.
//!
//! Run with: `cargo run --release --example reorder_lab`

use acc_spmm::matrix::gen;
use acc_spmm::prelude::*;
use acc_spmm::reorder::{metrics, reorder_apply, Algorithm};
use acc_spmm::sim::{Arch, SimOptions};
use spmm_matrix::CsrMatrix;

/// Render an ASCII density map: each character cell aggregates a
/// `rows/size × cols/size` region; darker = denser.
fn density_plot(m: &CsrMatrix, size: usize) {
    let shades = [' ', '.', ':', '+', '#', '@'];
    let rs = m.nrows().div_ceil(size);
    let cs = m.ncols().div_ceil(size);
    let mut counts = vec![0usize; size * size];
    for r in 0..m.nrows() {
        for &c in m.row(r).0 {
            counts[(r / rs).min(size - 1) * size + (c as usize / cs).min(size - 1)] += 1;
        }
    }
    let max = *counts.iter().max().unwrap_or(&1) as f64;
    for gr in 0..size {
        let line: String = (0..size)
            .map(|gc| {
                let d = counts[gr * size + gc] as f64 / max;
                shades[((d * (shades.len() - 1) as f64).ceil() as usize).min(shades.len() - 1)]
            })
            .collect();
        println!("  |{line}|");
    }
}

/// Relabel columns by `perm` (visualization only — the kernels always
/// gather B with original column indices).
fn symmetric_view(m: &CsrMatrix, perm: &[u32]) -> CsrMatrix {
    let mut coo = spmm_matrix::CooMatrix::new(m.nrows(), m.ncols());
    for r in 0..m.nrows() {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            coo.push(r as u32, perm[c as usize], v);
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn main() {
    // Shuffled community graph: structure exists but the natural order
    // hides it — exactly the case reordering rescues.
    let m = gen::clustered(
        gen::ClusteredConfig {
            n: 2048,
            cluster_size: 128,
            intra_deg: 20.0,
            inter_deg: 2.0,
            hub_fraction: 0.0,
            hub_factor: 1.0,
            shuffle: true,
            degree_spread: 0.5,
            size_variance: 0.3,
        },
        3,
    );
    println!(
        "matrix: {} rows, {} nnz, MeanNNZTC {:.2} in natural order",
        m.nrows(),
        m.nnz(),
        metrics::mean_nnz_tc(&m, 8)
    );
    println!("\nnatural order:");
    density_plot(&m, 32);

    for alg in [Algorithm::Lsh64, Algorithm::Rabbit, Algorithm::Affinity] {
        let t0 = std::time::Instant::now();
        let (pm, perm) = reorder_apply(&m, alg);
        println!(
            "\n{} ({:.0} ms): MeanNNZTC {:.2}, {} TC blocks",
            alg.name(),
            t0.elapsed().as_secs_f64() * 1e3,
            metrics::mean_nnz_tc(&pm, 8),
            metrics::num_tc_blocks(&pm, 8),
        );
        if alg == Algorithm::Affinity {
            // The kernel permutes rows only (columns keep original B
            // indices); for the picture we relabel columns by the same
            // permutation so the community structure becomes visible.
            let sym = symmetric_view(&pm, &perm);
            density_plot(&sym, 32);
        }
    }

    // Downstream effect: simulated Acc-SpMM with and without reordering.
    let opts = SimOptions::default();
    for (label, alg) in [
        ("identity", Algorithm::Identity),
        ("affinity", Algorithm::Affinity),
    ] {
        let mut cfg = AccConfig::full();
        cfg.reorder = alg;
        let r = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::A800)
            .feature_dim(128)
            .config(cfg)
            .build()
            .expect("prepare")
            .profile(Arch::A800, &opts);
        println!(
            "simulated A800 Acc-SpMM with {label} order: {:.0} us, {:.0} GFLOPS, L1 {:.1}%",
            r.time_s * 1e6,
            r.gflops,
            r.l1_hit_rate * 100.0
        );
    }
}
