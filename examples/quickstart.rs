//! Quickstart: preprocess a sparse matrix once, multiply, verify, and
//! profile on a simulated GPU.
//!
//! Run with: `cargo run --release --example quickstart`

use acc_spmm::matrix::gen;
use acc_spmm::prelude::*;

fn main() {
    // A 16k-vertex power-law graph, the bread-and-butter GNN input.
    let a = gen::rmat(
        gen::RmatConfig {
            scale: 14,
            avg_deg: 16.0,
            ..Default::default()
        },
        42,
    );
    let n = 128; // feature dimension
    let b = DenseMatrix::random(a.ncols(), n, 7);

    println!(
        "A: {} x {} with {} non-zeros (AvgL {:.2})",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.avg_row_len()
    );

    // Build the execution plan: Reorder -> FormatBuild (BitTCF) ->
    // BalancePlan -> Compile, artifacts cached for every call below.
    let handle = AccSpmm::builder(&a)
        .arch(Arch::A800)
        .feature_dim(n)
        .build()
        .expect("preprocess");
    let s = handle.stats();
    println!(
        "preprocessed in {:.1} ms: {} TC blocks, MeanNNZTC {:.2}, IBD {:.2}, balanced: {}",
        s.preprocess_seconds * 1e3,
        s.num_tc_blocks,
        s.mean_nnz_tc,
        s.ibd,
        s.balanced
    );

    // Multiply (TF32 tensor-core numerics) and verify against the FP32
    // dense reference.
    let c = handle.multiply(&b).expect("multiply");
    let reference = a.spmm_dense(&b).expect("reference");

    // Steady-state multiplies can reuse a workspace (zero allocations)...
    let mut ws = handle.workspace();
    let mut out = DenseMatrix::zeros(a.nrows(), n);
    handle
        .multiply_into(&b, &mut out, &mut ws)
        .expect("multiply_into");
    assert_eq!(out, c, "workspace path is bit-identical");

    // ...and many right-hand sides go through one batched call that
    // decodes each A block once per batch instead of once per RHS.
    let batch: Vec<DenseMatrix> = (0..4)
        .map(|s| DenseMatrix::random(a.ncols(), n, 100 + s))
        .collect();
    let outs = handle.multiply_batch(&batch).expect("multiply_batch");
    for (bi, ci) in batch.iter().zip(&outs) {
        assert_eq!(*ci, handle.multiply(bi).expect("multiply"));
    }
    println!(
        "batched multiply over {} RHS: bit-identical to looping",
        outs.len()
    );
    let rel_err = c.max_abs_diff(&reference) / reference.frobenius_norm().max(1e-30)
        * (reference.nrows() as f32 * reference.ncols() as f32).sqrt();
    println!(
        "max elementwise deviation vs FP32 reference: {:.3e} (TF32 rounding)",
        rel_err
    );

    // Profile on the simulated A800.
    let r = handle.profile_default();
    println!(
        "simulated A800: {:.3} ms, {:.1} effective GFLOPS, {:.1} GB/s DRAM, L1 hit {:.1}%, L2 hit {:.1}%",
        r.time_s * 1e3,
        r.gflops,
        r.mem_throughput_gbps,
        r.l1_hit_rate * 100.0,
        r.l2_hit_rate * 100.0
    );
}
