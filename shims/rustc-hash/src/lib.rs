//! Offline shim for the `rustc-hash` crate: the Fx (Firefox) hash
//! algorithm behind `std::collections` maps. Only the surface this
//! workspace uses is provided (`FxHashMap`, `FxHashSet`,
//! `FxBuildHasher`, `FxHasher`), but the hash function itself matches
//! the upstream word-at-a-time multiply-rotate scheme.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// Default-constructible `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// The Fx hash state: `hash = (hash.rotate_left(26) ^ word) * SEED`
/// folded over the input words.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        *m.entry(3).or_insert(0) += 1;
        *m.entry(3).or_insert(0) += 1;
        assert_eq!(m[&3], 2);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
