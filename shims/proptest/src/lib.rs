//! Offline shim for the `proptest` crate.
//!
//! Implements the macro + strategy surface this workspace's property
//! tests use (`proptest!`, `prop_compose!`, `prop_assert*`, ranges,
//! tuples, `collection::vec`, `any`, simple string patterns,
//! `prop_map`/`prop_flat_map`) as a deterministic randomized test
//! driver: every `#[test]` runs its body over `cases` pseudo-random
//! samples seeded from the test's name, so failures reproduce exactly.
//! There is no shrinking — the failing sample is printed by the
//! assertion itself.

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    /// Deterministic split-mix/xorshift RNG used to drive sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from the test name (stable across runs and platforms).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Simple regex-like string patterns: a `[...]` character class
/// (single chars and `a-b` ranges) followed by an optional `{lo,hi}`
/// repetition. Covers the patterns used by this workspace's tests,
/// e.g. `"[ -~]{0,40}"`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let mut chars: Vec<char> = Vec::new();
    let mut rest = pat;
    if let Some(close) = pat.strip_prefix('[').and_then(|p| p.find(']')) {
        let class: Vec<char> = pat[1..=close].chars().collect();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                chars.extend((a..=b).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        rest = &pat[close + 2..];
    }
    if chars.is_empty() {
        chars.extend((0x20u8..0x7f).map(|b| b as char));
    }
    let (mut lo, mut hi) = (0usize, 16usize);
    if let Some(body) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        if let Some((a, b)) = body.split_once(',') {
            lo = a.trim().parse().unwrap_or(0);
            hi = b.trim().parse().unwrap_or(lo.max(16));
        } else if let Ok(n) = body.trim().parse() {
            lo = n;
            hi = n;
        }
    }
    (chars, lo, hi)
}

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value, including edge cases like NaN.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Raw bit patterns: hits NaN, infinities, subnormals, and the
        // full exponent range — the edge cases `any::<f32>()` is for.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with element strategy `S` and a length
    /// drawn from `sizes`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi_exclusive: usize,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy {
            elem,
            lo: sizes.start,
            hi_exclusive: sizes.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi_exclusive - self.lo) as u64;
            let len = self.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_compose, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// The test-block macro: each contained `#[test] fn` runs its body over
/// `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Define a named composite strategy:
/// `prop_compose! { fn name(args)(x in s, ...) -> T { body } }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($fnargs:tt)*)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])* $vis fn $name($($fnargs)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($(($strat),)+), move |($($arg,)+)| $body)
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in 0u32..10, b in 10u32..20) -> (u32, u32) { (a, b) }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -4i16..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn vec_respects_sizes(v in crate::collection::vec(0u64..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn composed_strategy_works(p in pair()) {
            prop_assert!(p.0 < 10 && (10..20).contains(&p.1));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, 1..4))) {
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn string_pattern(s in "[ -~]{0,40}") {
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }
}
