//! Offline shim for the `criterion` crate.
//!
//! Provides the harness surface the workspace's benchmarks use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) backed by a
//! plain wall-clock timing loop: a short warm-up, then `sample_size`
//! timed samples whose median and min are printed. No plotting, no
//! statistics beyond that — enough to compare hot paths offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion-compatible).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value only.
    pub fn from_parameter<D: Display>(p: D) -> Self {
        BenchmarkId {
            name: format!("{p}"),
        }
    }

    /// Id with a function name and a parameter.
    pub fn new<D: Display>(function: &str, p: D) -> Self {
        BenchmarkId {
            name: format!("{function}/{p}"),
        }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample times, one per measured sample.
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, first warming up, then collecting samples.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that gives a
        // measurable per-sample duration.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            self.results.push(t0.elapsed() / iters as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim's sampling is
    /// count-based, not duration-based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        report(&self.name, id, &mut b.results);
        self
    }

    /// Run one benchmark over an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.name, &mut b.results);
        self
    }

    /// End the group (printing is immediate; this is a no-op).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, results: &mut [Duration]) {
    if results.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    results.sort_unstable();
    let median = results[results.len() / 2];
    let min = results[0];
    println!(
        "{group}/{id}: median {:>12?}  min {:>12?}  ({} samples)",
        median,
        min,
        results.len()
    );
}

/// The top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
    }
}
