//! Offline shim for the `rand` 0.8 crate.
//!
//! Implements exactly the surface the workspace uses — `SmallRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, `gen_bool` — on top of the same generator rand 0.8
//! ships as `SmallRng` on 64-bit targets (xoshiro256++ seeded via
//! SplitMix64), so streams are high quality and deterministic.

pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use crate::{RngCore, SeedableRng};

    /// xoshiro256++ — the 64-bit `SmallRng` of rand 0.8.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for u64 seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }
}

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed deterministically from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Unbiased uniform draw from `[0, span)` (`span == 0` means the full
/// 64-bit range) via Lemire's multiply-shift with rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (u64::MAX - span + 1) % span {
            return (m >> 64) as u64;
        }
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type uniformly.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn uniform_int_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    use super::RngCore;
}
