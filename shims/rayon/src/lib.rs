//! Offline shim for the `rayon` crate.
//!
//! Provides the combinators this workspace actually uses —
//! `(range).into_par_iter().map(..).collect()`,
//! `slice.par_iter().map(..).collect()`, and
//! `slice.par_chunks_mut(n).enumerate().for_each(..)` — executed on
//! real OS threads with `std::thread::scope`. Work is split into one
//! contiguous span per worker, so there is exactly one spawn round per
//! parallel call and results are assembled in order (parallel and
//! sequential execution are bit-identical for deterministic closures).

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Worker count: `RAYON_NUM_THREADS` if set, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Split `len` items into at most `workers` contiguous spans.
fn spans(len: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let span = base + usize::from(w < extra);
        if span == 0 {
            break;
        }
        out.push(start..start + span);
        start += span;
    }
    out
}

/// Parallel ordered map over `0..len`: each worker produces its span's
/// results, which are concatenated in index order.
fn par_map_indexed<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = current_num_threads();
    if len <= 1 || workers == 1 {
        return (0..len).map(f).collect();
    }
    let spans = spans(len, workers);
    let mut parts: Vec<Vec<U>> = Vec::with_capacity(spans.len());
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| scope.spawn(move || span.map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            parts.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Parallel for-each over an owned list of `Send` items, each tagged
/// with its original index.
fn par_for_each_indexed<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let len = items.len();
    let workers = current_num_threads();
    if len <= 1 || workers == 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let spans = spans(len, workers);
    // Hand each worker its own contiguous sub-vector of items.
    let mut rest = items;
    let mut groups: Vec<(usize, Vec<T>)> = Vec::with_capacity(spans.len());
    for span in spans.into_iter().rev() {
        let tail = rest.split_off(span.start);
        groups.push((span.start, tail));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|(base, group)| {
                scope.spawn(move || {
                    for (k, item) in group.into_iter().enumerate() {
                        f(base + k, item);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("rayon shim worker panicked");
        }
    });
}

/// Like [`par_for_each_indexed`], but each worker first builds a private
/// scratch value with `init` and threads it through its span — the shim
/// equivalent of rayon's `for_each_init` (one scratch per worker instead
/// of one per item, which is what makes allocation-free hot loops
/// possible).
fn par_for_each_indexed_init<T, S, I, F>(items: Vec<T>, init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) + Sync,
{
    let len = items.len();
    let workers = current_num_threads();
    if len <= 1 || workers == 1 {
        let mut scratch = init();
        for (i, item) in items.into_iter().enumerate() {
            f(&mut scratch, i, item);
        }
        return;
    }
    let spans = spans(len, workers);
    let mut rest = items;
    let mut groups: Vec<(usize, Vec<T>)> = Vec::with_capacity(spans.len());
    for span in spans.into_iter().rev() {
        let tail = rest.split_off(span.start);
        groups.push((span.start, tail));
    }
    let init = &init;
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|(base, group)| {
                scope.spawn(move || {
                    let mut scratch = init();
                    for (k, item) in group.into_iter().enumerate() {
                        f(&mut scratch, base + k, item);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("rayon shim worker panicked");
        }
    });
}

/// Conversion into a parallel iterator (ranges of `usize`).
pub trait IntoParallelIterator {
    /// The parallel-iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange(self)
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange(Range<usize>);

impl ParRange {
    /// Map each index through `f` (lazily; executed by `collect` or
    /// `for_each`).
    pub fn map<U, F: Fn(usize) -> U>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap { range: self.0, f }
    }

    /// Run `f` on every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let base = self.0.start;
        par_for_each_indexed((0..self.0.len()).collect(), |_, i| f(base + i));
    }
}

/// A mapped parallel range.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Execute the map in parallel and collect ordered results.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
        C: FromParallel<U>,
    {
        let base = self.range.start;
        let f = self.f;
        C::from_vec(par_map_indexed(self.range.len(), |i| f(base + i)))
    }
}

/// Collection targets for the shim's `collect`.
pub trait FromParallel<U> {
    /// Build from the ordered result vector.
    fn from_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_vec(v: Vec<U>) -> Self {
        v
    }
}

/// Parallel read-only slice iteration.
pub trait ParallelSlice<T> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParSlice<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice(self)
    }
}

/// Parallel iterator over a shared slice.
pub struct ParSlice<'a, T>(&'a [T]);

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Map each element (lazily).
    pub fn map<U, F: Fn(&'a T) -> U>(self, f: F) -> ParSliceMap<'a, T, F> {
        ParSliceMap { slice: self.0, f }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let slice = self.0;
        par_for_each_indexed((0..slice.len()).collect(), |_, i| f(&slice[i]));
    }
}

/// A mapped parallel slice.
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParSliceMap<'a, T, F> {
    /// Execute the map in parallel and collect ordered results.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        C: FromParallel<U>,
    {
        let slice = self.slice;
        let f = self.f;
        C::from_vec(par_map_indexed(slice.len(), |i| f(&slice[i])))
    }
}

/// Parallel mutable chunking.
pub trait ParallelSliceMut<T> {
    /// Split into `chunk_size`-sized mutable chunks processed in
    /// parallel (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be > 0");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'d, T> {
    chunks: Vec<&'d mut [T]>,
}

impl<'d, T: Send> ParChunksMut<'d, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'d, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F: Fn(&'d mut [T]) + Sync>(self, f: F) {
        par_for_each_indexed(self.chunks, |_, chunk| f(chunk));
    }
}

/// Enumerated parallel chunks.
pub struct ParChunksMutEnumerate<'d, T> {
    chunks: Vec<&'d mut [T]>,
}

impl<'d, T: Send> ParChunksMutEnumerate<'d, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F: Fn((usize, &'d mut [T])) + Sync>(self, f: F) {
        par_for_each_indexed(self.chunks, |i, chunk| f((i, chunk)));
    }

    /// Run `f` on every `(index, chunk)` pair with a per-worker scratch
    /// value produced by `init` (rayon's `for_each_init`).
    pub fn for_each_init<S, I, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, (usize, &'d mut [T])) + Sync,
    {
        par_for_each_indexed_init(self.chunks, init, |s, i, chunk| f(s, (i, chunk)));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_is_ordered() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn chunks_mut_enumerate_covers_everything() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x = i as u32));
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i / 10) as u32);
        }
    }

    #[test]
    fn slice_par_iter_map_collect() {
        let input: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..501).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq: Vec<u64> = (0..10_000)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        let par: Vec<u64> = (0..10_000)
            .into_par_iter()
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_init_reuses_scratch_within_a_worker() {
        let mut data = vec![0u32; 97];
        data.par_chunks_mut(4)
            .enumerate()
            .for_each_init(Vec::<u32>::new, |scratch, (i, chunk)| {
                scratch.clear();
                scratch.extend(chunk.iter().map(|_| i as u32));
                chunk.copy_from_slice(&scratch[..chunk.len()]);
            });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i / 4) as u32);
        }
    }

    #[test]
    fn spans_partition_exactly() {
        for len in [0usize, 1, 7, 64, 1001] {
            for workers in [1usize, 2, 3, 8, 200] {
                let s = super::spans(len, workers);
                let total: usize = s.iter().map(|r| r.len()).sum();
                assert_eq!(total, len);
                let mut next = 0;
                for r in &s {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
            }
        }
    }
}
