//! Umbrella crate for the Acc-SpMM reproduction workspace.
//!
//! This crate only hosts the workspace-level `examples/` and `tests/`.
//! The library proper lives in [`acc_spmm`] and the substrate crates it
//! re-exports; see the repository README for the architecture overview.

pub use acc_spmm;
pub use spmm_balance;
pub use spmm_common;
pub use spmm_format;
pub use spmm_graph;
pub use spmm_kernels;
pub use spmm_matrix;
pub use spmm_reorder;
pub use spmm_sim;
