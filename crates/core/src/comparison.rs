//! Side-by-side kernel comparison — the workhorse of the Figure 7/8/9
//! regeneration.

use spmm_common::Result;
use spmm_kernels::{KernelKind, PreparedKernel};
use spmm_matrix::CsrMatrix;
use spmm_sim::{Arch, KernelReport, SimOptions};

/// One kernel's result in a comparison sweep.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Which kernel.
    pub kind: KernelKind,
    /// Simulated execution report.
    pub report: KernelReport,
    /// Speedup over the cuSPARSE baseline of the same sweep.
    pub speedup: f64,
}

/// Run every kernel on `a` for the given architecture and feature
/// dimension; speedups are normalized to cuSPARSE as in every figure of
/// the paper.
pub fn compare_all(
    a: &CsrMatrix,
    arch: Arch,
    feature_dim: usize,
    opts: &SimOptions,
) -> Result<Vec<ComparisonRow>> {
    let mut reports = Vec::with_capacity(KernelKind::ALL.len());
    for kind in KernelKind::ALL {
        let prepared = PreparedKernel::builder(kind, a)
            .arch(arch)
            .feature_dim(feature_dim)
            .build()?;
        reports.push((kind, prepared.profile(arch, opts)));
    }
    let baseline_time = reports
        .iter()
        .find(|(k, _)| *k == KernelKind::CusparseLike)
        .map(|(_, r)| r.time_s)
        .expect("baseline always present");
    Ok(reports
        .into_iter()
        .map(|(kind, report)| ComparisonRow {
            speedup: baseline_time / report.time_s,
            kind,
            report,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen::{clustered, ClusteredConfig};

    #[test]
    fn comparison_includes_all_kernels_with_baseline_at_one() {
        let a = clustered(
            ClusteredConfig {
                n: 512,
                cluster_size: 64,
                intra_deg: 16.0,
                inter_deg: 2.0,
                hub_fraction: 0.0,
                hub_factor: 1.0,
                shuffle: true,
                ..Default::default()
            },
            1,
        );
        let rows = compare_all(&a, Arch::A800, 128, &SimOptions::default()).unwrap();
        assert_eq!(rows.len(), 6);
        let base = rows
            .iter()
            .find(|r| r.kind == KernelKind::CusparseLike)
            .unwrap();
        assert!((base.speedup - 1.0).abs() < 1e-9);
        // Acc-SpMM must be the fastest TC kernel on a clustered matrix.
        let acc = rows.iter().find(|r| r.kind == KernelKind::AccSpmm).unwrap();
        let dtc = rows.iter().find(|r| r.kind == KernelKind::DtcSpmm).unwrap();
        assert!(acc.speedup > 1.0);
        assert!(acc.speedup >= dtc.speedup * 0.95);
    }
}
