//! GNN integration — the paper's §6 goal of wiring the SpMM operator
//! into a graph-learning stack "for practical use in GNNs".
//!
//! Provides the pieces a GCN forward pass needs on top of [`AccSpmm`]:
//! symmetric normalization of the adjacency matrix
//! (`Â = D^{-1/2}(A + I)D^{-1/2}`), a [`GcnLayer`] computing
//! `H' = σ(Â · H · W)` with the aggregation running through the
//! tensor-core SpMM path, and a small multi-layer [`Gcn`] model.

use crate::handle::AccSpmm;
use spmm_common::{Result, SpmmError};
use spmm_dist::DistSpmm;
use spmm_kernels::KernelKind;
use spmm_matrix::{CooMatrix, CsrMatrix, DenseMatrix};
use spmm_sim::Arch;

/// Symmetrically normalize an adjacency matrix:
/// `Â = D^{-1/2} (A + I) D^{-1/2}` with `D` the degree matrix of
/// `A + I` — the standard GCN propagation operator (Kipf & Welling).
pub fn gcn_normalize(a: &CsrMatrix) -> Result<CsrMatrix> {
    if a.nrows() != a.ncols() {
        return Err(SpmmError::Shape {
            context: format!("adjacency must be square, got {}x{}", a.nrows(), a.ncols()),
        });
    }
    let n = a.nrows();
    // A + I.
    let mut coo = a.to_coo();
    for i in 0..n as u32 {
        coo.push(i, i, 1.0);
    }
    coo.dedup_sum(false);
    // Degrees of A + I (row sums of the pattern-weighted matrix).
    let ai = CsrMatrix::from_coo(&coo);
    let mut inv_sqrt_deg = vec![0.0f32; n];
    for (r, d) in inv_sqrt_deg.iter_mut().enumerate() {
        let deg: f32 = ai.row(r).1.iter().map(|v| v.abs()).sum();
        *d = if deg > 0.0 { deg.sqrt().recip() } else { 0.0 };
    }
    // Scale both sides.
    let mut out = CooMatrix::new(n, n);
    for r in 0..n {
        let (cols, vals) = ai.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            out.push(r as u32, c, v * inv_sqrt_deg[r] * inv_sqrt_deg[c as usize]);
        }
    }
    Ok(CsrMatrix::from_coo(&out))
}

/// Activation functions for [`GcnLayer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x).
    Relu,
    /// Identity (output layer).
    None,
}

impl Activation {
    fn apply(&self, h: &mut DenseMatrix) {
        if *self == Activation::Relu {
            for x in h.as_mut_slice() {
                *x = x.max(0.0);
            }
        }
    }
}

/// One GCN layer: `H' = σ(Â · H · W)`, with `Â · H` computed by the
/// Acc-SpMM tensor-core path (preprocessed once) and `· W` by a dense
/// GEMM.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    weight: DenseMatrix,
    activation: Activation,
}

impl GcnLayer {
    /// Create a layer with a deterministic Glorot-style random weight of
    /// shape `in_dim × out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, seed: u64) -> Self {
        let scale = (6.0f32 / (in_dim + out_dim) as f32).sqrt();
        let mut weight = DenseMatrix::random(in_dim, out_dim, seed);
        for x in weight.as_mut_slice() {
            *x *= scale;
        }
        GcnLayer { weight, activation }
    }

    /// Wrap an explicit weight matrix.
    pub fn with_weight(weight: DenseMatrix, activation: Activation) -> Self {
        GcnLayer { weight, activation }
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.ncols()
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.nrows()
    }

    /// Forward: `σ(spmm(Â, H) · W)`.
    pub fn forward(&self, spmm: &AccSpmm, h: &DenseMatrix) -> Result<DenseMatrix> {
        self.check_input(h)?;
        let aggregated = spmm.multiply(h)?;
        self.combine(aggregated)
    }

    fn check_input(&self, h: &DenseMatrix) -> Result<()> {
        if h.ncols() != self.in_dim() {
            return Err(SpmmError::Shape {
                context: format!(
                    "layer expects {} input features, got {}",
                    self.in_dim(),
                    h.ncols()
                ),
            });
        }
        Ok(())
    }

    /// The dense half of the layer: `σ(aggregated · W)`.
    fn combine(&self, aggregated: DenseMatrix) -> Result<DenseMatrix> {
        let mut out = aggregated.matmul(&self.weight)?;
        self.activation.apply(&mut out);
        Ok(out)
    }
}

/// A multi-layer GCN bound to one (normalized) graph.
#[derive(Debug, Clone)]
pub struct Gcn {
    spmm: AccSpmm,
    normalized: CsrMatrix,
    layers: Vec<GcnLayer>,
}

impl Gcn {
    /// Build a GCN over adjacency `a` with the given layer widths, e.g.
    /// `&[128, 64, 16]` = two layers 128→64→16. The adjacency is
    /// GCN-normalized and preprocessed once (reorder + BitTCF + balance).
    pub fn new(a: &CsrMatrix, widths: &[usize], arch: Arch, seed: u64) -> Result<Gcn> {
        if widths.len() < 2 {
            return Err(SpmmError::InvalidConfig(
                "need at least input and output widths".into(),
            ));
        }
        let normalized = gcn_normalize(a)?;
        // Preprocess for the widest feature dimension in play.
        let max_dim = *widths.iter().max().unwrap();
        let spmm = AccSpmm::builder(&normalized)
            .arch(arch)
            .feature_dim(max_dim)
            .build()?;
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == widths.len() {
                    Activation::None
                } else {
                    Activation::Relu
                };
                GcnLayer::new(w[0], w[1], act, seed ^ (i as u64) << 8)
            })
            .collect();
        Ok(Gcn {
            spmm,
            normalized,
            layers,
        })
    }

    /// Full forward pass.
    pub fn forward(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        let _span = spmm_trace::span("gcn.forward");
        spmm_trace::counter_add("gcn.layers_applied", self.layers.len() as u64);
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&self.spmm, &h)?;
        }
        Ok(h)
    }

    /// Forward a whole batch of feature matrices (e.g. mini-batched
    /// graph samples sharing one adjacency): each layer aggregates the
    /// entire batch in one [`AccSpmm::multiply_batch`] call, which
    /// parallelizes across batch members instead of spawning a worker
    /// round per SpMM. Results are bit-identical to mapping
    /// [`Gcn::forward`] over the batch.
    pub fn forward_batch(&self, xs: &[DenseMatrix]) -> Result<Vec<DenseMatrix>> {
        let _span = spmm_trace::span("gcn.forward_batch");
        spmm_trace::counter_add("gcn.layers_applied", (self.layers.len() * xs.len()) as u64);
        let mut hs: Vec<DenseMatrix> = xs.to_vec();
        for layer in &self.layers {
            for h in &hs {
                layer.check_input(h)?;
            }
            let aggregated = self.spmm.multiply_batch(&hs)?;
            hs = aggregated
                .into_iter()
                .map(|agg| layer.combine(agg))
                .collect::<Result<Vec<_>>>()?;
        }
        Ok(hs)
    }

    /// Hand this model's preprocessed adjacency to a serving
    /// [`Engine`](spmm_engine::Engine): the already-built
    /// [`PreparedKernel`](spmm_kernels::PreparedKernel) is installed as
    /// a ready cache entry (no rebuild), and the returned
    /// [`Session`](spmm_engine::Session) routes multiplies through the
    /// engine's shared micro-batching queue — so several models (or
    /// several replicas of this one) coalesce their aggregations.
    pub fn serve(&self, engine: &spmm_engine::Engine) -> spmm_engine::Session {
        engine.install(self.spmm.prepared().clone())
    }

    /// [`Gcn::forward`] with the aggregation routed through a serving
    /// engine session (obtained from [`Gcn::serve`]). Bit-identical to
    /// [`Gcn::forward`].
    pub fn forward_served(
        &self,
        session: &spmm_engine::Session,
        x: &DenseMatrix,
    ) -> Result<DenseMatrix> {
        let _span = spmm_trace::span("gcn.forward_served");
        spmm_trace::counter_add("gcn.layers_applied", self.layers.len() as u64);
        let mut h = x.clone();
        for layer in &self.layers {
            layer.check_input(&h)?;
            let aggregated = session.multiply(&h)?;
            h = layer.combine(aggregated)?;
        }
        Ok(h)
    }

    /// Shard this model's normalized adjacency across `shards` workers
    /// (see [`DistSpmm`]): same kernel kind, architecture, feature
    /// specialization, and ablation config as the single-node handle.
    /// The returned coordinator feeds [`Gcn::forward_sharded`].
    pub fn shard(&self, shards: usize) -> Result<DistSpmm> {
        let plan = self.spmm.prepared().execution_plan();
        DistSpmm::builder(KernelKind::AccSpmm, &self.normalized)
            .shards(shards)
            .arch(plan.arch())
            .feature_dim(plan.feature_dim())
            .config(*plan.config())
            .build()
    }

    /// [`Gcn::forward`] with the aggregation sharded across `dist`'s
    /// workers and **halo exchange** between layers: after each layer,
    /// the per-shard feature blocks stay on their shards and only the
    /// boundary rows other shards reference move — instead of
    /// re-gathering the full dense feature matrix every layer. The
    /// dense `· W` half of each layer is row-local, so it runs
    /// per-shard too. Bit-identical to [`Gcn::forward`].
    pub fn forward_sharded(&self, dist: &DistSpmm, x: &DenseMatrix) -> Result<DenseMatrix> {
        let _span = spmm_trace::span("gcn.forward_sharded");
        spmm_trace::counter_add("gcn.layers_applied", self.layers.len() as u64);
        if dist.nrows() != self.normalized.nrows() || dist.ncols() != self.normalized.ncols() {
            return Err(SpmmError::Shape {
                context: format!(
                    "coordinator is over a {}x{} operand, model graph is {}x{}",
                    dist.nrows(),
                    dist.ncols(),
                    self.normalized.nrows(),
                    self.normalized.ncols()
                ),
            });
        }
        let mut parts = dist.split_rows(x)?;
        for layer in &self.layers {
            for part in &parts {
                if part.nrows() > 0 {
                    layer.check_input(part)?;
                }
            }
            let aggregated = dist.propagate_halo(&parts)?;
            parts = aggregated
                .into_iter()
                .map(|agg| layer.combine(agg))
                .collect::<Result<Vec<_>>>()?;
        }
        dist.concat_rows(&parts)
    }

    /// The underlying SpMM handle (for profiling).
    pub fn spmm(&self) -> &AccSpmm {
        &self.spmm
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen;

    fn graph() -> CsrMatrix {
        gen::uniform_random(256, 6.0, 5)
    }

    #[test]
    fn normalization_rows_are_bounded() {
        let a = graph();
        let n = gcn_normalize(&a).unwrap();
        // Â is symmetric with spectral radius <= 1: every entry in (0, 1]
        // and the diagonal is populated.
        for r in 0..n.nrows() {
            let (cols, vals) = n.row(r);
            assert!(cols.contains(&(r as u32)), "self loop at {r}");
            for &v in vals {
                assert!(v > 0.0 && v <= 1.0 + 1e-6, "entry {v}");
            }
        }
        // Isolated vertices (if any) keep a unit self loop.
        let row_sums: Vec<f32> = (0..n.nrows())
            .map(|r| n.row(r).1.iter().sum::<f32>())
            .collect();
        assert!(row_sums.iter().all(|&s| s <= (n.nrows() as f32).sqrt()));
    }

    #[test]
    fn normalized_spmm_preserves_constant_vector_scale() {
        // For a regular graph, Â · 1 = 1. Our graph isn't regular, but
        // row sums of Â stay in (0, sqrt(max_deg)] — sanity of scaling.
        let a = graph();
        let n = gcn_normalize(&a).unwrap();
        let ones = DenseMatrix::from_fn(n.nrows(), 1, |_, _| 1.0);
        let prod = n.spmm_dense(&ones).unwrap();
        for r in 0..n.nrows() {
            assert!(prod.get(r, 0) > 0.0);
        }
    }

    #[test]
    fn layer_forward_shapes_and_activation() {
        let a = graph();
        let normalized = gcn_normalize(&a).unwrap();
        let spmm = AccSpmm::builder(&normalized)
            .arch(Arch::A800)
            .feature_dim(32)
            .build()
            .unwrap();
        let layer = GcnLayer::new(32, 8, Activation::Relu, 1);
        let x = DenseMatrix::random(a.nrows(), 32, 2);
        let h = layer.forward(&spmm, &x).unwrap();
        assert_eq!(h.nrows(), a.nrows());
        assert_eq!(h.ncols(), 8);
        assert!(h.as_slice().iter().all(|&v| v >= 0.0), "ReLU output");
        // Wrong input width is rejected.
        let bad = DenseMatrix::random(a.nrows(), 16, 3);
        assert!(layer.forward(&spmm, &bad).is_err());
    }

    #[test]
    fn two_layer_model_runs_end_to_end() {
        let a = graph();
        let gcn = Gcn::new(&a, &[32, 16, 4], Arch::H100, 9).unwrap();
        assert_eq!(gcn.num_layers(), 2);
        let x = DenseMatrix::random(a.nrows(), 32, 4);
        let out = gcn.forward(&x).unwrap();
        assert_eq!(out.ncols(), 4);
        assert!(out.frobenius_norm().is_finite());
        // Output layer has no ReLU: negatives must be possible.
        assert!(out.as_slice().iter().any(|&v| v < 0.0));
        // Profiling the underlying handle works.
        assert!(gcn.spmm().profile_default().gflops > 0.0);
    }

    #[test]
    fn sharded_forward_is_bit_identical_to_forward() {
        let a = graph();
        let gcn = Gcn::new(&a, &[16, 8, 4], Arch::A800, 11).unwrap();
        let x = DenseMatrix::random(a.nrows(), 16, 6);
        let expect = gcn.forward(&x).unwrap();
        for shards in [1, 3, 4] {
            let dist = gcn.shard(shards).unwrap();
            let got = gcn.forward_sharded(&dist, &x).unwrap();
            assert_eq!(
                got.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                expect
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "x{shards}"
            );
            // Layer-to-layer halo exchange moved fewer rows than a full
            // re-gather would have.
            let (halo, regather) = dist.halo_traffic_rows();
            if shards > 1 {
                assert!(halo < regather, "halo {halo} vs regather {regather}");
            }
        }
    }

    #[test]
    fn sharded_forward_stays_bit_identical_under_graph_churn() {
        let a = graph();
        let gcn = Gcn::new(&a, &[16, 8, 4], Arch::A800, 11).unwrap();
        let mut dist = gcn.shard(4).unwrap();
        // Churn the normalized operator shard-locally: new cross-shard
        // boundary edges, plus a deleted base edge.
        let normalized = gcn_normalize(&a).unwrap();
        let mut delta = spmm_delta::DeltaCsr::new(normalized.clone());
        delta.upsert(3, 200, 0.25).unwrap();
        delta.upsert(210, 1, 0.125).unwrap();
        let r = 17usize;
        let c = normalized.col_idx()[normalized.row_ptr()[r]];
        assert!(delta.delete(r as u32, c), "normalized rows are non-empty");
        let report = dist.apply_delta(&delta).unwrap();
        assert!(report.shards_repaired >= 1, "churn crossed shard ranges");

        // Expected: the same model over a scratch coordinator built on
        // the compacted operator.
        let compacted = delta.compact();
        let plan = gcn.spmm().prepared().execution_plan();
        let scratch = DistSpmm::builder(KernelKind::AccSpmm, &compacted)
            .shards(4)
            .arch(plan.arch())
            .feature_dim(plan.feature_dim())
            .config(*plan.config())
            .build()
            .unwrap();
        let x = DenseMatrix::random(a.nrows(), 16, 6);
        let got = gcn.forward_sharded(&dist, &x).unwrap();
        let expect = gcn.forward_sharded(&scratch, &x).unwrap();
        assert_eq!(
            got.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            expect
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn forward_matches_reference_pipeline() {
        // spmm-path forward == dense-reference forward within TF32 tol.
        let a = graph();
        let normalized = gcn_normalize(&a).unwrap();
        let spmm = AccSpmm::builder(&normalized)
            .arch(Arch::A800)
            .feature_dim(16)
            .build()
            .unwrap();
        let w = DenseMatrix::random(16, 8, 7);
        let layer = GcnLayer::with_weight(w.clone(), Activation::None);
        let x = DenseMatrix::random(a.nrows(), 16, 8);
        let got = layer.forward(&spmm, &x).unwrap();
        let expect = normalized.spmm_dense(&x).unwrap().matmul(&w).unwrap();
        let tol = spmm_common::scalar::tf32_tolerance(a.nrows()) * 4.0;
        assert!(
            got.approx_eq(&expect, tol, tol),
            "max diff {}",
            got.max_abs_diff(&expect)
        );
    }
}
