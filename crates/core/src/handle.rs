//! The library handle: preprocess once, execute/profile many times.

use spmm_common::Result;
use spmm_kernels::{AccConfig, KernelKind, PreparedKernel, Workspace};
use spmm_matrix::{CsrMatrix, DenseMatrix};
use spmm_sim::{Arch, KernelReport, SimOptions};

/// Statistics gathered during preprocessing — the quantities the paper's
/// detailed evaluation reports (MeanNNZTC, IBD, block counts, format
/// footprint, preprocessing wall time).
///
/// `#[non_exhaustive]`: the struct keeps growing (cache/engine serving
/// stats are natural next fields), so downstream code constructs it via
/// the library and reads fields rather than destructuring exhaustively.
/// Deliberately `Clone` and **not** `Copy` so adding heap-backed fields
/// later is not a breaking change.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PreprocessStats {
    /// Rows of the operand.
    pub nrows: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Average nnz per row (`AvgL`).
    pub avg_l: f64,
    /// TC blocks after reordering and squeezing.
    pub num_tc_blocks: usize,
    /// RowWindows.
    pub num_windows: usize,
    /// Mean nnz per TC block after reordering.
    pub mean_nnz_tc: f64,
    /// IBD imbalance of the blocks-per-window distribution (Eq. 3).
    pub ibd: f64,
    /// Whether the adaptive balancer decided to rebalance.
    pub balanced: bool,
    /// BitTCF index-structure footprint in bytes.
    pub bittcf_bytes: usize,
    /// Preprocessing wall time (reorder + conversion + planning).
    pub preprocess_seconds: f64,
}

/// An Acc-SpMM instance bound to one sparse matrix, one architecture and
/// one feature dimension.
///
/// Mirrors the amortized-preprocessing usage of the paper: GNN training
/// multiplies the same adjacency matrix against thousands of feature
/// matrices, so reordering + conversion happen once.
#[derive(Debug, Clone)]
pub struct AccSpmm {
    prepared: PreparedKernel,
    arch: Arch,
    stats: PreprocessStats,
}

/// Builder for [`AccSpmm`] — the single construction path for the
/// library handle.
///
/// Defaults: [`Arch::A800`], feature dimension 128, [`AccConfig::full`].
///
/// ```
/// use acc_spmm::prelude::*;
/// use acc_spmm::matrix::gen;
///
/// let a = gen::uniform_random(256, 6.0, 1);
/// let h = AccSpmm::builder(&a)
///     .arch(Arch::H100)
///     .feature_dim(64)
///     .build()
///     .unwrap();
/// assert_eq!(h.arch(), Arch::H100);
/// ```
#[derive(Debug, Clone)]
pub struct SpmmBuilder<'a> {
    a: &'a CsrMatrix,
    arch: Arch,
    feature_dim: usize,
    config: AccConfig,
}

impl<'a> SpmmBuilder<'a> {
    /// Target architecture for planning and profiling.
    pub fn arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// Feature dimension (columns of B) the plan is specialized for.
    pub fn feature_dim(mut self, n: usize) -> Self {
        self.feature_dim = n;
        self
    }

    /// Explicit (e.g. ablation) Acc-SpMM configuration.
    pub fn config(mut self, config: AccConfig) -> Self {
        self.config = config;
        self
    }

    /// Run preprocessing (reorder → BitTCF → balance → compile) and
    /// return the reusable handle.
    pub fn build(self) -> Result<AccSpmm> {
        let prepared = PreparedKernel::builder(KernelKind::AccSpmm, self.a)
            .arch(self.arch)
            .feature_dim(self.feature_dim)
            .config(self.config)
            .build()?;

        // Everything below reads artifacts the pipeline already built —
        // no partition or format is recomputed for bookkeeping.
        let csr = prepared.csr();
        let wp = prepared
            .partition()
            .expect("Acc kernel always builds a window partition");
        let plan = prepared.plan().expect("Acc kernel always has a plan");
        let stats = PreprocessStats {
            nrows: csr.nrows(),
            nnz: csr.nnz(),
            avg_l: csr.avg_row_len(),
            num_tc_blocks: wp.num_tc_blocks(),
            num_windows: wp.num_windows(),
            mean_nnz_tc: wp.mean_nnz_tc(),
            ibd: plan.ibd,
            balanced: plan.applied,
            bittcf_bytes: wp.bittcf_index_bytes(),
            preprocess_seconds: prepared.execution_plan().preprocess_seconds(),
        };
        Ok(AccSpmm {
            prepared,
            arch: self.arch,
            stats,
        })
    }
}

impl AccSpmm {
    /// Start building a handle over operand `a`.
    pub fn builder(a: &CsrMatrix) -> SpmmBuilder<'_> {
        SpmmBuilder {
            a,
            arch: Arch::A800,
            feature_dim: 128,
            config: AccConfig::full(),
        }
    }

    /// Functional SpMM: `C = A × B` in original row order, TF32
    /// tensor-core numerics.
    pub fn multiply(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        self.prepared.execute(b)
    }

    /// [`AccSpmm::multiply`] into a caller-provided output using a
    /// reusable [`Workspace`], so steady-state multiplies (solver
    /// iterations, GNN training epochs) allocate nothing.
    pub fn multiply_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        self.prepared.execute_into(b, out, ws)
    }

    /// Multiply many RHS matrices against the shared preprocessed
    /// operand, parallelizing across the batch. Results are
    /// bit-identical to calling [`AccSpmm::multiply`] on each RHS.
    pub fn multiply_batch(&self, bs: &[DenseMatrix]) -> Result<Vec<DenseMatrix>> {
        self.prepared.execute_batch(bs)
    }

    /// A workspace pre-sized for this handle's feature dimension.
    pub fn workspace(&self) -> Workspace {
        Workspace::for_plan(self.prepared.execution_plan())
    }

    /// Simulate the kernel on this handle's architecture.
    pub fn profile(&self, opts: &SimOptions) -> KernelReport {
        self.prepared.profile(self.arch, opts)
    }

    /// [`AccSpmm::profile`] with default simulator options.
    pub fn profile_default(&self) -> KernelReport {
        self.profile(&SimOptions::default())
    }

    /// Preprocessing statistics.
    pub fn stats(&self) -> &PreprocessStats {
        &self.stats
    }

    /// The architecture this handle targets.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// The underlying prepared kernel (for advanced inspection).
    pub fn prepared(&self) -> &PreparedKernel {
        &self.prepared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::scalar::tf32_tolerance;
    use spmm_matrix::gen::{clustered, molecule_union, ClusteredConfig};

    #[test]
    fn multiply_matches_reference() {
        let a = molecule_union(400, 6, 14, true, 1);
        let b = DenseMatrix::random(a.nrows(), 16, 2);
        let h = AccSpmm::builder(&a)
            .arch(Arch::H100)
            .feature_dim(16)
            .build()
            .unwrap();
        let c = h.multiply(&b).unwrap();
        let reference = a.spmm_dense(&b).unwrap();
        let tol = tf32_tolerance(a.nrows());
        assert!(c.approx_eq(&reference, tol, tol));
    }

    #[test]
    fn stats_are_coherent() {
        let a = molecule_union(1024, 6, 16, true, 3);
        let h = AccSpmm::builder(&a)
            .arch(Arch::A800)
            .feature_dim(128)
            .build()
            .unwrap();
        let s = h.stats();
        assert_eq!(s.nnz, a.nnz());
        assert_eq!(s.num_windows, a.nrows().div_ceil(8));
        assert!(s.mean_nnz_tc > 0.0 && s.mean_nnz_tc <= 64.0);
        assert!((s.mean_nnz_tc - s.nnz as f64 / s.num_tc_blocks as f64).abs() < 1e-9);
        assert!(s.preprocess_seconds >= 0.0);
        assert!(s.bittcf_bytes > 0);
    }

    #[test]
    fn balanced_flag_tracks_skew() {
        // Uniform molecules: no balancing. Hubby cluster graph: balanced.
        let a = molecule_union(1024, 6, 14, false, 4);
        let h = AccSpmm::builder(&a)
            .arch(Arch::A800)
            .feature_dim(128)
            .build()
            .unwrap();
        assert!(!h.stats().balanced, "IBD {} should be low", h.stats().ibd);

        let skew = clustered(
            ClusteredConfig {
                n: 1024,
                cluster_size: 128,
                intra_deg: 60.0,
                inter_deg: 20.0,
                hub_fraction: 0.05,
                hub_factor: 10.0,
                shuffle: true,
                ..Default::default()
            },
            5,
        );
        let h = AccSpmm::builder(&skew)
            .arch(Arch::A800)
            .feature_dim(128)
            .build()
            .unwrap();
        assert!(h.stats().ibd > 0.0);
    }

    #[test]
    fn profile_reports_positive_throughput() {
        let a = molecule_union(512, 6, 14, true, 6);
        let h = AccSpmm::builder(&a)
            .arch(Arch::Rtx4090)
            .feature_dim(128)
            .build()
            .unwrap();
        let r = h.profile_default();
        assert!(r.time_s > 0.0);
        assert!(r.gflops > 0.0);
        assert!(r.num_tbs > 0);
    }
}
