//! # Acc-SpMM
//!
//! A reproduction of *"Acc-SpMM: Accelerating General-purpose Sparse
//! Matrix-Matrix Multiplication with GPU Tensor Cores"* (PPoPP 2025) as a
//! pure-Rust library. The GPU is replaced by a calibrated timing/cache
//! simulator (see `spmm-sim`), and the numerics follow the tensor-core
//! TF32 path exactly (TF32 operands, FP32 accumulation).
//!
//! ## Quickstart
//!
//! ```
//! use acc_spmm::prelude::*;
//! use acc_spmm::matrix::gen;
//!
//! // A power-law adjacency matrix and a feature matrix.
//! let a = gen::uniform_random(512, 8.0, 42);
//! let b = DenseMatrix::random(512, 128, 7);
//!
//! // Preprocess once (reorder → BitTCF → balance plan) ...
//! let handle = AccSpmm::builder(&a).arch(Arch::A800).feature_dim(128).build().unwrap();
//! // ... multiply many times,
//! let c = handle.multiply(&b).unwrap();
//! // ... and profile on the simulated A800.
//! let report = handle.profile_default();
//! assert!(report.gflops > 0.0);
//! assert_eq!(c.nrows(), 512);
//! ```
//!
//! ## Concurrent serving
//!
//! For many clients sharing preprocessed operands, the [`Engine`]
//! (from `spmm-engine`, re-exported here) adds a shared plan cache and
//! a micro-batching worker pool:
//!
//! ```
//! use acc_spmm::prelude::*;
//! use acc_spmm::matrix::gen;
//!
//! let engine = Engine::builder().workers(1).build().unwrap();
//! let a = gen::uniform_random(256, 6.0, 3);
//! let session = engine.session(&a).feature_dim(32).open().unwrap();
//! let b = DenseMatrix::random(256, 32, 4);
//! let c = session.multiply(&b).unwrap();
//! assert_eq!(c.nrows(), 256);
//! ```
//!
//! The substrate crates are re-exported under their natural names:
//! [`matrix`], [`graph`], [`reorder`], [`format`](mod@crate::format), [`sim`], [`balance`],
//! [`kernels`], [`engine`], [`dist`].

pub mod comparison;
pub mod gnn;
pub mod handle;
pub mod solvers;

/// The user-facing surface in one import: `use acc_spmm::prelude::*;`.
///
/// Covers the amortized single-handle path ([`AccSpmm`] via
/// [`SpmmBuilder`]), the QoS serving path ([`Engine`], [`Session`],
/// [`Ticket`], [`SubmitOptions`], [`SubmitOutcome`], [`Priority`],
/// [`Tenant`]), and the types every program touches ([`CsrMatrix`],
/// [`DenseMatrix`], [`Arch`], [`KernelKind`], [`AccConfig`],
/// [`Workspace`], [`Result`], [`SpmmError`]).
pub mod prelude {
    pub use crate::handle::{AccSpmm, PreprocessStats, SpmmBuilder};
    pub use spmm_common::{Result, SpmmError};
    pub use spmm_dist::{
        ChannelTransport, DistBuilder, DistReport, DistSpmm, DistStats, ModeledTransport, Transport,
    };
    pub use spmm_engine::{
        Engine, EngineBuilder, EngineStats, Priority, Session, SubmitOptions, SubmitOutcome,
        Tenant, Ticket,
    };
    pub use spmm_kernels::{AccConfig, KernelKind, PreparedKernel, Workspace};
    pub use spmm_matrix::{CsrMatrix, DenseMatrix};
    pub use spmm_sim::Arch;
}

pub use comparison::{compare_all, ComparisonRow};
pub use gnn::{gcn_normalize, Gcn, GcnLayer};
pub use handle::{AccSpmm, PreprocessStats, SpmmBuilder};

pub use spmm_balance as balance;
pub use spmm_delta as delta;
pub use spmm_dist as dist;
pub use spmm_engine as engine;
pub use spmm_format as format;
pub use spmm_graph as graph;
pub use spmm_kernels as kernels;
pub use spmm_matrix as matrix;
pub use spmm_reorder as reorder;
pub use spmm_sim as sim;

pub use spmm_common::{PlanLoadError, Result, SpmmError};
pub use spmm_delta::DeltaCsr;
pub use spmm_dist::{
    ChannelTransport, DistDeltaReport, DistReport, DistSpmm, DistStats, ModeledTransport,
};
pub use spmm_engine::{
    Engine, EngineBuilder, EngineStats, Priority, Session, SubmitOptions, SubmitOutcome, Tenant,
    Ticket,
};
pub use spmm_kernels::{
    build_then_repair, AccConfig, DispatchDecision, DispatchPolicy, ExecutionPlan, KernelKind,
    MatrixFeatures, PlanIr, PlanLoader, PreparedKernel, RepairReport, StageSpec, StageTiming,
    Workspace,
};
pub use spmm_matrix::{CsrMatrix, DenseMatrix};
pub use spmm_sim::{Arch, KernelReport, SimOptions};
