//! SpMM-powered linear-algebra and graph-analysis routines — the
//! scientific-computing applications the paper's introduction motivates
//! (eigensolvers, graph analysis, PageRank-style propagation).
//!
//! All routines drive the repeated `sparse × dense-block` products
//! through a preprocessed [`AccSpmm`] handle, which is exactly the
//! amortized pattern these iterative methods have.

use crate::handle::AccSpmm;
use spmm_common::{Result, SpmmError};
use spmm_matrix::{CooMatrix, CsrMatrix, DenseMatrix};
use spmm_sim::Arch;

/// Result of the block power iteration.
#[derive(Debug, Clone)]
pub struct PowerIterationResult {
    /// Orthonormal basis of the dominant invariant subspace
    /// (`n × block`).
    pub basis: DenseMatrix,
    /// Rayleigh-quotient eigenvalue estimates, one per basis column,
    /// in descending magnitude order.
    pub eigenvalues: Vec<f32>,
    /// Iterations performed.
    pub iterations: usize,
}

/// Block power iteration (orthogonal/subspace iteration): computes the
/// `block` dominant eigenpairs of a symmetric sparse matrix using one
/// SpMM per iteration plus a Gram–Schmidt re-orthonormalization.
pub fn block_power_iteration(
    a: &CsrMatrix,
    block: usize,
    iters: usize,
    arch: Arch,
) -> Result<PowerIterationResult> {
    let _span = spmm_trace::span("solver.power_iteration");
    if a.nrows() != a.ncols() {
        return Err(SpmmError::Shape {
            context: "power iteration requires a square matrix".into(),
        });
    }
    if block == 0 || block > a.nrows() {
        return Err(SpmmError::InvalidConfig(format!(
            "block size {block} invalid for a {}-row matrix",
            a.nrows()
        )));
    }
    let handle = AccSpmm::builder(a).arch(arch).feature_dim(block).build()?;
    // One workspace + one output buffer serve every iteration: the
    // steady-state loop allocates nothing.
    let mut ws = handle.workspace();
    let mut q = DenseMatrix::random(a.nrows(), block, 0x9E37);
    orthonormalize(&mut q);
    let mut aq = DenseMatrix::zeros(a.nrows(), block);
    let mut iterations = 0;
    for _ in 0..iters {
        handle.multiply_into(&q, &mut aq, &mut ws)?;
        std::mem::swap(&mut q, &mut aq);
        orthonormalize(&mut q);
        iterations += 1;
    }
    spmm_trace::counter_add("solver.iterations", iterations as u64);
    // Rayleigh quotients: λ_j ≈ q_jᵀ A q_j.
    handle.multiply_into(&q, &mut aq, &mut ws)?;
    let mut eigenvalues: Vec<f32> = (0..block)
        .map(|j| {
            (0..a.nrows())
                .map(|i| q.get(i, j) * aq.get(i, j))
                .sum::<f32>()
        })
        .collect();
    eigenvalues.sort_by(|x, y| y.abs().partial_cmp(&x.abs()).unwrap());
    Ok(PowerIterationResult {
        basis: q,
        eigenvalues,
        iterations,
    })
}

/// In-place modified Gram–Schmidt on the columns of `q`.
fn orthonormalize(q: &mut DenseMatrix) {
    let (n, k) = (q.nrows(), q.ncols());
    for j in 0..k {
        for prev in 0..j {
            let dot: f32 = (0..n).map(|i| q.get(i, j) * q.get(i, prev)).sum();
            for i in 0..n {
                let v = q.get(i, j) - dot * q.get(i, prev);
                q.set(i, j, v);
            }
        }
        let norm: f32 = (0..n).map(|i| q.get(i, j).powi(2)).sum::<f32>().sqrt();
        if norm > 1e-20 {
            for i in 0..n {
                q.set(i, j, q.get(i, j) / norm);
            }
        }
    }
}

/// Multi-source personalized PageRank: runs `sources.len()` PageRank
/// computations simultaneously as one SpMM stream (the dense operand's
/// columns are the restart distributions).
///
/// Returns the `n × sources` score matrix.
pub fn personalized_pagerank(
    a: &CsrMatrix,
    sources: &[u32],
    alpha: f32,
    iters: usize,
    arch: Arch,
) -> Result<DenseMatrix> {
    let _span = spmm_trace::span("solver.pagerank");
    if a.nrows() != a.ncols() {
        return Err(SpmmError::Shape {
            context: "PageRank requires a square adjacency matrix".into(),
        });
    }
    if !(0.0..1.0).contains(&alpha) {
        return Err(SpmmError::InvalidConfig(format!(
            "alpha {alpha} not in [0,1)"
        )));
    }
    let n = a.nrows();
    if let Some(&s) = sources.iter().find(|&&s| s as usize >= n) {
        return Err(SpmmError::IndexOutOfBounds {
            what: "source vertex",
            index: s as usize,
            bound: n,
        });
    }
    // Column-stochastic transition: P = Aᵀ D⁻¹ (out-degree normalized).
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let (cols, _) = a.row(r);
        if cols.is_empty() {
            continue;
        }
        let w = 1.0 / cols.len() as f32;
        for &c in cols {
            coo.push(c, r as u32, w);
        }
    }
    let p = CsrMatrix::from_coo(&coo);
    let handle = AccSpmm::builder(&p)
        .arch(arch)
        .feature_dim(sources.len())
        .build()?;
    let mut ws = handle.workspace();

    // Restart matrix E: one-hot columns at each source.
    let mut e = DenseMatrix::zeros(n, sources.len());
    for (j, &s) in sources.iter().enumerate() {
        e.set(s as usize, j, 1.0);
    }
    let mut x = e.clone();
    let mut px = DenseMatrix::zeros(n, sources.len());
    spmm_trace::counter_add("solver.iterations", iters as u64);
    for _ in 0..iters {
        handle.multiply_into(&x, &mut px, &mut ws)?;
        // x = alpha * P x + (1 - alpha) * E.
        x.as_mut_slice().fill(0.0);
        x.add_assign_scaled(&px, alpha)?;
        x.add_assign_scaled(&e, 1.0 - alpha)?;
    }
    Ok(x)
}

/// Jacobi smoothing sweeps for `A x = b` with multiple right-hand sides:
/// `x ← x + ω D⁻¹ (B − A X)`. Returns the smoothed iterate and the final
/// residual Frobenius norm. The residual SpMM runs through the handle.
pub fn jacobi_smooth(
    a: &CsrMatrix,
    b: &DenseMatrix,
    sweeps: usize,
    omega: f32,
    arch: Arch,
) -> Result<(DenseMatrix, f32)> {
    let _span = spmm_trace::span("solver.jacobi");
    spmm_trace::counter_add("solver.iterations", sweeps as u64);
    if a.nrows() != a.ncols() || a.nrows() != b.nrows() {
        return Err(SpmmError::Shape {
            context: format!(
                "A is {}x{}, B is {}x{}",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    // Diagonal (must be nonzero everywhere for Jacobi).
    let mut inv_diag = vec![0.0f32; a.nrows()];
    for (r, d) in inv_diag.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        match cols.iter().position(|&c| c as usize == r) {
            Some(k) if vals[k] != 0.0 => *d = 1.0 / vals[k],
            _ => {
                return Err(SpmmError::InvalidConfig(format!(
                    "Jacobi requires a nonzero diagonal (row {r})"
                )))
            }
        }
    }
    let handle = AccSpmm::builder(a)
        .arch(arch)
        .feature_dim(b.ncols())
        .build()?;
    let mut ws = handle.workspace();
    let n = b.ncols();
    let mut x = DenseMatrix::zeros(a.nrows(), n);
    let mut ax = DenseMatrix::zeros(a.nrows(), n);
    let mut r = DenseMatrix::zeros(a.nrows(), n);
    let mut residual_norm = 0.0f32;
    for _ in 0..sweeps {
        handle.multiply_into(&x, &mut ax, &mut ws)?;
        r.as_mut_slice().copy_from_slice(b.as_slice());
        r.add_assign_scaled(&ax, -1.0)?;
        residual_norm = r.frobenius_norm();
        for (i, &d) in inv_diag.iter().enumerate() {
            let scale = omega * d;
            let rrow = r.row(i).to_vec();
            let xrow = x.row_mut(i);
            for j in 0..n {
                xrow[j] += scale * rrow[j];
            }
        }
    }
    Ok((x, residual_norm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen;

    #[test]
    fn power_iteration_finds_dominant_eigenvalue_of_known_matrix() {
        // A star with k leaves has eigenvalues ±sqrt(k) (no gap), so
        // shift by +I: λ = 1 ± sqrt(k), making 1 + sqrt(k) strictly
        // dominant with an exact closed form.
        let k = 48usize;
        let mut coo = CooMatrix::new(k + 1, k + 1);
        for leaf in 1..=k as u32 {
            coo.push(0, leaf, 1.0);
            coo.push(leaf, 0, 1.0);
        }
        for i in 0..=k as u32 {
            coo.push(i, i, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let r = block_power_iteration(&a, 2, 80, Arch::A800).unwrap();
        let expected = 1.0 + (k as f32).sqrt();
        assert!(
            (r.eigenvalues[0] - expected).abs() < 0.05,
            "λ1 {} vs 1 + sqrt({k}) = {expected}",
            r.eigenvalues[0]
        );
        assert_eq!(r.iterations, 80);
    }

    #[test]
    fn power_iteration_basis_is_orthonormal() {
        let a = gen::uniform_random(200, 8.0, 3);
        let r = block_power_iteration(&a, 4, 15, Arch::H100).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f32 = (0..200)
                    .map(|v| r.basis.get(v, i) * r.basis.get(v, j))
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-3, "q{i}·q{j} = {dot}");
            }
        }
    }

    #[test]
    fn pagerank_scores_are_a_distribution_and_favor_hubs() {
        let a = gen::clustered(
            gen::ClusteredConfig {
                n: 512,
                cluster_size: 64,
                intra_deg: 10.0,
                inter_deg: 2.0,
                hub_fraction: 0.02,
                hub_factor: 10.0,
                shuffle: false,
                degree_spread: 0.0,
                size_variance: 0.0,
            },
            4,
        );
        let scores = personalized_pagerank(&a, &[0, 100, 300], 0.85, 40, Arch::A800).unwrap();
        assert_eq!(scores.ncols(), 3);
        for j in 0..3 {
            let sum: f32 = (0..512).map(|i| scores.get(i, j)).sum();
            // TF32 rounding of the 1/deg transition weights leaks a
            // little probability mass per iteration.
            assert!((sum - 1.0).abs() < 8e-3, "column {j} sums to {sum}");
            assert!((0..512).all(|i| scores.get(i, j) >= -1e-6));
        }
        // The source itself holds the largest personalized score.
        for (j, &s) in [0u32, 100, 300].iter().enumerate() {
            let best =
                (0..512).max_by(|&x, &y| scores.get(x, j).partial_cmp(&scores.get(y, j)).unwrap());
            assert_eq!(best, Some(s as usize), "source {s} should rank first");
        }
    }

    #[test]
    fn jacobi_reduces_the_residual_on_a_diagonally_dominant_system() {
        // Laplacian-like SPD system: A = D + adjacency with dominant D.
        let g = gen::banded(256, 3, 1.0, 5);
        let mut coo = g.to_coo();
        for i in 0..256u32 {
            coo.push(i, i, 16.0);
        }
        coo.dedup_sum(false);
        let a = CsrMatrix::from_coo(&coo);
        let b = DenseMatrix::random(256, 8, 6);
        let (_, r5) = jacobi_smooth(&a, &b, 5, 0.8, Arch::A800).unwrap();
        let (_, r25) = jacobi_smooth(&a, &b, 25, 0.8, Arch::A800).unwrap();
        assert!(r25 < r5 * 0.5, "residual must shrink: {r5} -> {r25}");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let a = gen::uniform_random(64, 4.0, 7);
        assert!(block_power_iteration(&a, 0, 5, Arch::A800).is_err());
        assert!(personalized_pagerank(&a, &[999], 0.85, 5, Arch::A800).is_err());
        assert!(personalized_pagerank(&a, &[1], 1.5, 5, Arch::A800).is_err());
        // No diagonal -> Jacobi refuses.
        let b = DenseMatrix::zeros(64, 4);
        assert!(jacobi_smooth(&a, &b, 2, 0.8, Arch::A800).is_err());
    }
}
