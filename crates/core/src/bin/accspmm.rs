//! `accspmm` — command-line front end for the library.
//!
//! ```text
//! accspmm stats    <matrix.mtx>                  structural + TC-block stats
//! accspmm multiply <matrix.mtx> [N] [arch]       run Acc-SpMM, verify, profile
//! accspmm compare  <matrix.mtx> [N] [arch]       all six kernels side by side
//! accspmm trace    <matrix.mtx> <out.json> [N] [arch]  export the simulated
//!                                                schedule as Chrome tracing JSON
//! accspmm generate <kind> <n> <out.mtx> [seed]   synthesize a test matrix
//! ```
//!
//! `kind` ∈ {uniform, rmat, road, molecules, clustered, banded};
//! `arch` ∈ {rtx4090, a800, h100} (default a800); `N` defaults to 128.

use acc_spmm::comparison::compare_all;
use acc_spmm::matrix::{gen, mm, stats};
use acc_spmm::{AccSpmm, Arch, CsrMatrix, DenseMatrix, SimOptions};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  accspmm stats    <matrix.mtx>\n  accspmm multiply <matrix.mtx> [N] [arch]\n  accspmm compare  <matrix.mtx> [N] [arch]\n  accspmm trace    <matrix.mtx> <out.json> [N] [arch]\n  accspmm generate <kind> <n> <out.mtx> [seed]"
    );
    exit(2);
}

fn load(path: &str) -> CsrMatrix {
    match mm::read_csr_file(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            exit(1);
        }
    }
}

fn parse_n_arch(args: &[String]) -> (usize, Arch) {
    let n = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128usize);
    let arch = args
        .get(1)
        .and_then(|s| Arch::parse(s))
        .unwrap_or(Arch::A800);
    (n, arch)
}

fn cmd_stats(path: &str) {
    let m = load(path);
    let s = stats::stats(&m);
    println!("{path}:");
    println!("  shape        {} x {}", s.nrows, s.ncols);
    println!("  nnz          {}", s.nnz);
    println!(
        "  AvgL         {:.2} (max row {}, stddev {:.2})",
        s.avg_row_len, s.max_row_len, s.row_len_stddev
    );
    println!("  density      {:.5}%", s.density * 100.0);
    println!("  empty rows   {:.2}%", s.empty_row_fraction * 100.0);
    println!("  mean |r-c|   {:.1}", s.mean_bandwidth);
    if m.nrows() == m.ncols() {
        use acc_spmm::reorder::{metrics, reorder_apply, Algorithm};
        let before = metrics::mean_nnz_tc(&m, 8);
        let (pm, _) = reorder_apply(&m, Algorithm::Affinity);
        let after = metrics::mean_nnz_tc(&pm, 8);
        println!("  MeanNNZTC    {before:.2} natural -> {after:.2} after Acc reordering");
        let bpw = acc_spmm::reorder::metrics::tc_blocks_per_window(&pm, 8);
        let bpw: Vec<usize> = bpw;
        println!(
            "  IBD          {:.2} ({})",
            acc_spmm::balance::ibd(&bpw),
            if acc_spmm::balance::needs_balancing(&bpw) {
                "imbalanced: adaptive balancing would fire"
            } else {
                "balanced"
            }
        );
    }
}

fn cmd_multiply(path: &str, rest: &[String]) {
    let m = load(path);
    if m.nrows() != m.ncols() {
        eprintln!("Acc-SpMM preprocessing expects a square (adjacency) matrix");
        exit(1);
    }
    let (n, arch) = parse_n_arch(rest);
    let b = DenseMatrix::random(m.ncols(), n, 1);
    let t0 = std::time::Instant::now();
    let handle = match AccSpmm::builder(&m).arch(arch).feature_dim(n).build() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("preprocessing failed: {e}");
            exit(1);
        }
    };
    println!("preprocess: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);
    let s = handle.stats();
    println!(
        "  {} TC blocks, MeanNNZTC {:.2}, IBD {:.2}, balanced {}",
        s.num_tc_blocks, s.mean_nnz_tc, s.ibd, s.balanced
    );
    let t0 = std::time::Instant::now();
    let c = handle.multiply(&b).expect("multiply");
    println!(
        "multiply (CPU functional path): {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    let reference = m.spmm_dense(&b).expect("reference");
    println!(
        "  max deviation vs FP32 reference: {:.3e}",
        c.max_abs_diff(&reference)
    );
    let r = handle.profile(&SimOptions::default());
    println!(
        "simulated {}: {:.3} ms, {:.1} GFLOPS, DRAM {:.1} GB/s, L1 {:.1}%, L2 {:.1}%",
        arch.spec().name,
        r.time_s * 1e3,
        r.gflops,
        r.mem_throughput_gbps,
        r.l1_hit_rate * 100.0,
        r.l2_hit_rate * 100.0
    );
}

fn cmd_compare(path: &str, rest: &[String]) {
    let m = load(path);
    let (n, arch) = parse_n_arch(rest);
    let rows = compare_all(&m, arch, n, &SimOptions::default()).expect("comparison");
    println!(
        "{:<12} {:>10} {:>12} {:>10}",
        "kernel", "speedup", "GFLOPS", "time(ms)"
    );
    for r in rows {
        println!(
            "{:<12} {:>9.2}x {:>12.1} {:>10.3}",
            r.kind.name(),
            r.speedup,
            r.report.gflops,
            r.report.time_s * 1e3
        );
    }
}

fn cmd_trace(path: &str, out: &str, rest: &[String]) {
    use acc_spmm::kernels::{KernelKind, PreparedKernel};
    let m = load(path);
    let (n, arch) = parse_n_arch(rest);
    let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
        .arch(arch)
        .feature_dim(n)
        .build()
        .expect("prepare");
    let desc = {
        let mut d = k.trace();
        d.arch_boost = 1.0;
        d
    };
    let (report, trace) =
        acc_spmm::sim::simulate_traced(&arch.spec(), &desc, &SimOptions::default());
    if let Err(e) = trace.save_chrome_trace(out) {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    }
    println!(
        "wrote {out}: {} TB spans over {} SMs, makespan {:.3} ms ({:.1} GFLOPS)",
        report.num_tbs,
        trace.sms_used(),
        trace.makespan * 1e3,
        report.gflops
    );
    println!("open chrome://tracing or https://ui.perfetto.dev and load the file");
}

fn cmd_generate(kind: &str, n: usize, out: &str, seed: u64) {
    let m = match kind {
        "uniform" => gen::uniform_random(n, 8.0, seed),
        "rmat" => gen::rmat(
            gen::RmatConfig {
                scale: (n as f64).log2().ceil() as u32,
                avg_deg: 16.0,
                ..Default::default()
            },
            seed,
        ),
        "road" => gen::road_network(n, seed),
        "molecules" => gen::molecule_union(n, 6, 16, true, seed),
        "banded" => gen::banded(n, 4, 0.8, seed),
        "clustered" => gen::clustered(
            gen::ClusteredConfig {
                n,
                cluster_size: (n / 16).max(16),
                intra_deg: 24.0,
                inter_deg: 4.0,
                hub_fraction: 0.01,
                hub_factor: 6.0,
                shuffle: true,
                degree_spread: 1.0,
                size_variance: 0.4,
            },
            seed,
        ),
        other => {
            eprintln!("unknown generator kind: {other}");
            exit(2);
        }
    };
    if let Err(e) = mm::write_csr_file(out, &m) {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    }
    println!(
        "wrote {out}: {} x {}, {} nnz (AvgL {:.2})",
        m.nrows(),
        m.ncols(),
        m.nnz(),
        m.avg_row_len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("stats") if args.len() >= 2 => cmd_stats(&args[1]),
        Some("multiply") if args.len() >= 2 => cmd_multiply(&args[1], &args[2..]),
        Some("compare") if args.len() >= 2 => cmd_compare(&args[1], &args[2..]),
        Some("trace") if args.len() >= 3 => cmd_trace(&args[1], &args[2], &args[3..]),
        Some("generate") if args.len() >= 4 => {
            let n = args[2].parse().unwrap_or_else(|_| usage());
            let seed = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(42);
            cmd_generate(&args[1], n, &args[3], seed);
        }
        _ => usage(),
    }
}
