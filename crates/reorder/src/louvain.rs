//! Louvain baseline: full multi-level modularity optimization with graph
//! aggregation, ordered hierarchically (vertices sorted by their community
//! path through the levels). This is the strongest classical community
//! baseline in Figure 10.

use rustc_hash::FxHashMap;
use spmm_graph::GraphView;
use spmm_matrix::CsrMatrix;

/// Maximum coarsening levels; Louvain converges in a handful on real
/// graphs, the cap only guards pathological inputs.
const MAX_LEVELS: usize = 8;
/// Maximum local-move sweeps per level.
const MAX_SWEEPS: usize = 8;

/// Weighted graph used for the aggregation phase.
struct WGraph {
    /// Per-vertex adjacency: (neighbor, weight). No self entries; self
    /// loops tracked separately.
    adj: Vec<Vec<(u32, f64)>>,
    /// Self-loop weight per vertex (internal edges of the collapsed
    /// community, counted twice as Louvain convention).
    self_loop: Vec<f64>,
    /// Weighted degree per vertex (including self loops).
    wdeg: Vec<f64>,
    /// Total edge weight * 2.
    two_m: f64,
}

impl WGraph {
    fn from_view(g: &GraphView) -> Self {
        let n = g.num_vertices();
        let mut adj = Vec::with_capacity(n);
        for v in 0..n as u32 {
            adj.push(g.neighbors(v).iter().map(|&u| (u, 1.0)).collect());
        }
        let wdeg: Vec<f64> = (0..n as u32).map(|v| g.degree(v) as f64).collect();
        let two_m = wdeg.iter().sum();
        WGraph {
            adj,
            self_loop: vec![0.0; n],
            wdeg,
            two_m,
        }
    }

    fn n(&self) -> usize {
        self.adj.len()
    }

    /// One Louvain level: local moves until stable, returns the community
    /// assignment (dense labels) and whether anything moved.
    fn local_moves(&self) -> (Vec<u32>, bool) {
        let n = self.n();
        let mut comm: Vec<u32> = (0..n as u32).collect();
        let mut comm_wdeg: Vec<f64> = self.wdeg.clone();
        let mut moved_any = false;
        let mut neigh_w: FxHashMap<u32, f64> = FxHashMap::default();
        for _ in 0..MAX_SWEEPS {
            let mut moved = false;
            for v in 0..n {
                let cv = comm[v];
                // Gather edge weight towards each neighbouring community.
                neigh_w.clear();
                for &(u, w) in &self.adj[v] {
                    *neigh_w.entry(comm[u as usize]).or_insert(0.0) += w;
                }
                // Remove v from its community.
                comm_wdeg[cv as usize] -= self.wdeg[v];
                let w_to_own = neigh_w.get(&cv).copied().unwrap_or(0.0);
                // Gain of joining community c: w_vc/m − k_v·Σc/(2m²).
                let kv = self.wdeg[v];
                let m = self.two_m / 2.0;
                let mut best_c = cv;
                let mut best_gain =
                    w_to_own / m - kv * comm_wdeg[cv as usize] / (self.two_m * self.two_m) * 2.0;
                for (&c, &w_vc) in &neigh_w {
                    if c == cv {
                        continue;
                    }
                    let gain =
                        w_vc / m - kv * comm_wdeg[c as usize] / (self.two_m * self.two_m) * 2.0;
                    if gain > best_gain + 1e-15 {
                        best_gain = gain;
                        best_c = c;
                    }
                }
                comm_wdeg[best_c as usize] += kv;
                if best_c != cv {
                    comm[v] = best_c;
                    moved = true;
                    moved_any = true;
                }
            }
            if !moved {
                break;
            }
        }
        (comm, moved_any)
    }

    /// Collapse communities into super-vertices. `labels` must be dense
    /// (0..k). Returns the aggregated graph.
    fn aggregate(&self, labels: &[u32], k: usize) -> WGraph {
        let mut self_loop = vec![0.0f64; k];
        let mut maps: Vec<FxHashMap<u32, f64>> = vec![FxHashMap::default(); k];
        for v in 0..self.n() {
            let cv = labels[v] as usize;
            self_loop[cv] += self.self_loop[v];
            for &(u, w) in &self.adj[v] {
                let cu = labels[u as usize] as usize;
                if cu == cv {
                    // Each internal edge visited from both endpoints: adds
                    // 2w total, matching the doubled self-loop convention.
                    self_loop[cv] += w;
                } else {
                    *maps[cv].entry(cu as u32).or_insert(0.0) += w;
                }
            }
        }
        let adj: Vec<Vec<(u32, f64)>> = maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(u32, f64)> = m.into_iter().collect();
                v.sort_unstable_by_key(|&(u, _)| u);
                v
            })
            .collect();
        let wdeg: Vec<f64> = (0..k)
            .map(|c| self_loop[c] + adj[c].iter().map(|&(_, w)| w).sum::<f64>())
            .collect();
        let two_m = self.two_m;
        WGraph {
            adj,
            self_loop,
            wdeg,
            two_m,
        }
    }
}

/// Renumber arbitrary labels to dense `0..k`; returns (dense labels, k).
fn densify(labels: &[u32]) -> (Vec<u32>, usize) {
    let mut map: FxHashMap<u32, u32> = FxHashMap::default();
    let mut out = Vec::with_capacity(labels.len());
    for &l in labels {
        let next = map.len() as u32;
        let d = *map.entry(l).or_insert(next);
        out.push(d);
    }
    (out, map.len())
}

/// Compute the Louvain permutation: run multi-level Louvain, then sort
/// vertices lexicographically by their community label path from coarsest
/// to finest level (hierarchical locality), tie-broken by original id.
pub fn louvain_order(m: &CsrMatrix) -> Vec<u32> {
    let g = GraphView::from_csr(m);
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut wg = WGraph::from_view(&g);
    // membership[v] = current super-vertex of original vertex v.
    let mut membership: Vec<u32> = (0..n as u32).collect();
    // Label paths, coarsest appended last.
    let mut paths: Vec<Vec<u32>> = vec![Vec::new(); n];

    for _ in 0..MAX_LEVELS {
        let (labels, moved) = wg.local_moves();
        let (dense, k) = densify(&labels);
        for v in 0..n {
            let sv = membership[v] as usize;
            paths[v].push(dense[sv]);
            membership[v] = dense[sv];
        }
        if !moved || k == wg.n() {
            break;
        }
        wg = wg.aggregate(&dense, k);
    }

    // Sort by label path from coarsest level down, then id.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (&paths[a as usize], &paths[b as usize]);
        pa.iter().rev().cmp(pb.iter().rev()).then_with(|| a.cmp(&b))
    });
    let mut perm = vec![0u32; n];
    for (new_id, &v) in order.iter().enumerate() {
        perm[v as usize] = new_id as u32;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::util::is_permutation;
    use spmm_graph::modularity::modularity;
    use spmm_matrix::gen::{clustered, ClusteredConfig};
    use spmm_matrix::{CooMatrix, CsrMatrix};

    #[test]
    fn valid_permutation_on_clusters() {
        let m = clustered(
            ClusteredConfig {
                n: 512,
                cluster_size: 32,
                intra_deg: 8.0,
                inter_deg: 1.0,
                hub_fraction: 0.0,
                hub_factor: 1.0,
                shuffle: true,
                ..Default::default()
            },
            1,
        );
        assert!(is_permutation(&louvain_order(&m)));
    }

    #[test]
    fn recovers_planted_communities() {
        // Two dense communities joined by one edge: Louvain must find a
        // high-modularity split.
        let mut coo = CooMatrix::new(16, 16);
        for a in 0..8u32 {
            for b in a + 1..8 {
                coo.push(a, b, 1.0);
                coo.push(a + 8, b + 8, 1.0);
            }
        }
        coo.push(0, 8, 1.0);
        let m = CsrMatrix::from_coo(&coo);
        let g = GraphView::from_csr(&m);
        let wg = WGraph::from_view(&g);
        let (labels, _) = wg.local_moves();
        let (dense, k) = densify(&labels);
        assert!(k <= 4, "should coarsen to few communities, got {k}");
        let q = modularity(&g, &dense);
        assert!(q > 0.3, "modularity {q}");
    }

    #[test]
    fn ordering_groups_planted_clusters() {
        let m = clustered(
            ClusteredConfig {
                n: 256,
                cluster_size: 32,
                intra_deg: 10.0,
                inter_deg: 0.5,
                hub_fraction: 0.0,
                hub_factor: 1.0,
                shuffle: true,
                ..Default::default()
            },
            7,
        );
        let before = crate::metrics::mean_nnz_tc(&m, 8);
        let pm = m.permute_rows(&louvain_order(&m)).unwrap();
        let after = crate::metrics::mean_nnz_tc(&pm, 8);
        assert!(
            after > before,
            "louvain should densify: {before} -> {after}"
        );
    }

    #[test]
    fn handles_edgeless_graph() {
        let m = CsrMatrix::from_coo(&CooMatrix::new(10, 10));
        assert!(is_permutation(&louvain_order(&m)));
    }
}
