//! Row-reordering algorithms for TC-block densification.
//!
//! Implements the paper's **data-affinity-based reordering** (Algorithm 1)
//! and the six baselines of Figure 10: Rabbit Order, Louvain, a METIS-like
//! recursive bisection, SGT (TC-GNN's non-permuting squeeze), LSH64, and
//! DTC-LSH. All algorithms return a row permutation `perm[old] = new`
//! applied with [`spmm_matrix::CsrMatrix::permute_rows`]; per the paper's
//! methodology the dense operand is left untouched.

pub mod affinity;
pub mod louvain;
pub mod lsh;
pub mod metis_like;
pub mod metrics;
pub mod rabbit;

use spmm_matrix::CsrMatrix;

/// The reordering algorithms compared in Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// No reordering (natural order).
    Identity,
    /// TC-GNN's SGT: condenses columns inside row windows without
    /// permuting rows, so as a *row ordering* it is the identity. Listed
    /// separately because Figure 10 reports it as its own series (its
    /// MeanNNZTC differs from raw CSR only through window squeezing,
    /// which every TC format here performs).
    Sgt,
    /// Single-band minhash locality-sensitive hashing (LSH64).
    Lsh64,
    /// DTC-SpMM's multi-band LSH variant.
    DtcLsh,
    /// METIS-style recursive graph bisection.
    MetisLike,
    /// Multi-level Louvain community detection, hierarchical order.
    Louvain,
    /// Rabbit Order: ΔQ merge dendrogram, DFS leaf order.
    Rabbit,
    /// The paper's data-affinity-based reordering (Algorithm 1):
    /// Rabbit-style dendrogram construction plus common-neighbour
    /// ordering generation.
    Affinity,
}

impl Algorithm {
    /// All algorithms in Figure-10 presentation order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Identity,
        Algorithm::Sgt,
        Algorithm::Lsh64,
        Algorithm::DtcLsh,
        Algorithm::MetisLike,
        Algorithm::Louvain,
        Algorithm::Rabbit,
        Algorithm::Affinity,
    ];

    /// Whether the algorithm interprets the matrix as a square adjacency
    /// graph. Graph-based orderings (bisection, community detection,
    /// dendrogram merges) walk edges both ways, so they only apply when
    /// `nrows == ncols`; the hash-based orderings cluster raw row
    /// patterns and work on any shape (e.g. sharded row-blocks).
    pub fn requires_square(&self) -> bool {
        matches!(
            self,
            Algorithm::MetisLike | Algorithm::Louvain | Algorithm::Rabbit | Algorithm::Affinity
        )
    }

    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Identity => "Original",
            Algorithm::Sgt => "SGT",
            Algorithm::Lsh64 => "LSH64",
            Algorithm::DtcLsh => "DTC-LSH",
            Algorithm::MetisLike => "METIS",
            Algorithm::Louvain => "Louvain",
            Algorithm::Rabbit => "RabbitOrder",
            Algorithm::Affinity => "Acc-Reorder",
        }
    }
}

/// Compute the row permutation (`perm[old] = new`) for `m` under the
/// chosen algorithm. The matrix must be square (adjacency semantics).
pub fn reorder(m: &CsrMatrix, alg: Algorithm) -> Vec<u32> {
    match alg {
        Algorithm::Identity | Algorithm::Sgt => (0..m.nrows() as u32).collect(),
        Algorithm::Lsh64 => lsh::lsh_order(m, 1),
        Algorithm::DtcLsh => lsh::lsh_order(m, 4),
        Algorithm::MetisLike => metis_like::bisection_order(m),
        Algorithm::Louvain => louvain::louvain_order(m),
        Algorithm::Rabbit => rabbit::rabbit_order(m),
        Algorithm::Affinity => affinity::affinity_order(m),
    }
}

/// Reorder and apply in one step, returning the permuted matrix and the
/// permutation used.
pub fn reorder_apply(m: &CsrMatrix, alg: Algorithm) -> (CsrMatrix, Vec<u32>) {
    let perm = reorder(m, alg);
    let pm = m
        .permute_rows(&perm)
        .expect("reorder produced an invalid permutation");
    (pm, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen::molecule_union;

    #[test]
    fn every_algorithm_yields_valid_permutation() {
        let m = molecule_union(512, 6, 14, true, 3);
        for alg in Algorithm::ALL {
            let perm = reorder(&m, alg);
            assert_eq!(perm.len(), m.nrows(), "{}", alg.name());
            assert!(
                spmm_common::util::is_permutation(&perm),
                "{} produced a non-permutation",
                alg.name()
            );
        }
    }

    #[test]
    fn identity_is_identity() {
        let m = molecule_union(128, 6, 14, false, 1);
        let perm = reorder(&m, Algorithm::Identity);
        assert!(perm.iter().enumerate().all(|(i, &p)| i as u32 == p));
    }

    #[test]
    fn reorder_apply_preserves_entry_multiset() {
        let m = molecule_union(256, 6, 14, true, 2);
        let (pm, _) = reorder_apply(&m, Algorithm::Affinity);
        assert_eq!(pm.nnz(), m.nnz());
        let mut a: Vec<u64> = m.values().iter().map(|v| v.to_bits() as u64).collect();
        let mut b: Vec<u64> = pm.values().iter().map(|v| v.to_bits() as u64).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "row permutation must preserve all values");
    }
}
