//! Reordering quality metrics.
//!
//! `MeanNNZTC` — the paper's Figure-10 metric — is the average number of
//! non-zeros per TC block after the TC-GNN-style window condensation:
//! rows are grouped into windows of `tile` rows, the distinct columns of
//! each window are squeezed together, and every `tile` consecutive
//! distinct columns form one TC block.

use spmm_matrix::CsrMatrix;

/// Number of TC blocks the matrix produces with `tile × tile` blocks.
pub fn num_tc_blocks(m: &CsrMatrix, tile: usize) -> usize {
    assert!(tile >= 1);
    let mut blocks = 0usize;
    let mut cols: Vec<u32> = Vec::new();
    for w in 0..m.nrows().div_ceil(tile) {
        cols.clear();
        let lo = w * tile;
        let hi = ((w + 1) * tile).min(m.nrows());
        for r in lo..hi {
            cols.extend_from_slice(m.row(r).0);
        }
        cols.sort_unstable();
        cols.dedup();
        blocks += cols.len().div_ceil(tile);
    }
    blocks
}

/// Average non-zeros per TC block (`MeanNNZTC`). Returns 0 for an empty
/// matrix. Upper bound is `tile²` (fully dense blocks).
pub fn mean_nnz_tc(m: &CsrMatrix, tile: usize) -> f64 {
    let blocks = num_tc_blocks(m, tile);
    if blocks == 0 {
        0.0
    } else {
        m.nnz() as f64 / blocks as f64
    }
}

/// Per-window TC-block counts — the inputs of the IBD imbalance metric
/// (Equation 3) and of Figure 14's load-balancing analysis.
pub fn tc_blocks_per_window(m: &CsrMatrix, tile: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(m.nrows().div_ceil(tile));
    let mut cols: Vec<u32> = Vec::new();
    for w in 0..m.nrows().div_ceil(tile) {
        cols.clear();
        let lo = w * tile;
        let hi = ((w + 1) * tile).min(m.nrows());
        for r in lo..hi {
            cols.extend_from_slice(m.row(r).0);
        }
        cols.sort_unstable();
        cols.dedup();
        out.push(cols.len().div_ceil(tile));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::{CooMatrix, CsrMatrix};

    fn from_edges(n: usize, entries: &[(u32, u32)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c) in entries {
            coo.push(r, c, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn single_dense_block() {
        // 8x8 fully dense in the first window.
        let mut entries = Vec::new();
        for r in 0..8u32 {
            for c in 0..8u32 {
                entries.push((r, c));
            }
        }
        let m = from_edges(8, &entries);
        assert_eq!(num_tc_blocks(&m, 8), 1);
        assert_eq!(mean_nnz_tc(&m, 8), 64.0);
    }

    #[test]
    fn distinct_columns_drive_block_count() {
        // One window, rows hit 9 distinct columns -> 2 blocks.
        let entries: Vec<(u32, u32)> = (0..9u32).map(|c| (0, c)).collect();
        let m = from_edges(16, &entries);
        assert_eq!(num_tc_blocks(&m, 8), 2);
        assert!((mean_nnz_tc(&m, 8) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn column_sharing_within_window_is_free() {
        // All 8 rows of the window share the same single column -> 1 block
        // of 8 nnz.
        let entries: Vec<(u32, u32)> = (0..8u32).map(|r| (r, 3)).collect();
        let m = from_edges(8, &entries);
        assert_eq!(num_tc_blocks(&m, 8), 1);
        assert_eq!(mean_nnz_tc(&m, 8), 8.0);
    }

    #[test]
    fn per_window_counts_sum_to_total() {
        let m = spmm_matrix::gen::uniform_random(128, 6.0, 4);
        let per = tc_blocks_per_window(&m, 8);
        assert_eq!(per.len(), 16);
        assert_eq!(per.iter().sum::<usize>(), num_tc_blocks(&m, 8));
    }

    #[test]
    fn empty_matrix_yields_zero() {
        let m = from_edges(8, &[]);
        assert_eq!(mean_nnz_tc(&m, 8), 0.0);
    }
}
