//! Rabbit Order baseline (Arai et al., IPDPS 2016): the same ΔQ-greedy
//! dendrogram as Algorithm 1's step I, but the final ordering is the raw
//! DFS leaf order — no common-neighbour chaining. The gap between this
//! and [`crate::affinity`] isolates the contribution of the paper's
//! ordering-generation step (visible in Figure 10 as the Acc-Reorder vs
//! Rabbit-Order MeanNNZTC gain).

use crate::affinity::build_dendrogram;
use spmm_graph::GraphView;
use spmm_matrix::CsrMatrix;

/// Compute the Rabbit-Order permutation (`perm[old] = new`).
pub fn rabbit_order(m: &CsrMatrix) -> Vec<u32> {
    let g = GraphView::from_csr(m);
    let dendro = build_dendrogram(&g);
    let leaves = dendro.dfs_leaves();
    let mut perm = vec![0u32; leaves.len()];
    for (new_id, &v) in leaves.iter().enumerate() {
        perm[v as usize] = new_id as u32;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_nnz_tc;
    use spmm_common::util::is_permutation;
    use spmm_matrix::gen::molecule_union;

    #[test]
    fn valid_permutation() {
        let m = molecule_union(512, 6, 16, true, 2);
        assert!(is_permutation(&rabbit_order(&m)));
    }

    #[test]
    fn densifies_shuffled_molecules() {
        let m = molecule_union(2048, 8, 20, true, 5);
        let before = mean_nnz_tc(&m, 8);
        let pm = m.permute_rows(&rabbit_order(&m)).unwrap();
        assert!(mean_nnz_tc(&pm, 8) > before, "rabbit should densify");
    }
}
