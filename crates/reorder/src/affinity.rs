//! The paper's data-affinity-based reordering (Algorithm 1).
//!
//! **Step I — dendrogram construction**: visit vertices in ascending
//! degree; for each vertex `v`, find the neighbour `u` maximizing ΔQ
//! (Equation 1) and merge `v` into `u` when ΔQ > 0, recording the merge
//! in a dendrogram.
//!
//! **Step II — ordering generation**: walk the dendrogram leaves in DFS
//! order; from each unvisited leaf, repeatedly jump to the unvisited
//! vertex sharing the most common neighbours (ties broken by DFS
//! position), assigning consecutive new ids along the chain.
//!
//! The paper states O(n log n) complexity; the common-neighbour search is
//! restricted to the 2-hop neighbourhood (the only vertices that *can*
//! share a neighbour) with a deterministic per-hop cap on high-degree
//! vertices, keeping total work near-linear in the number of edges.

use spmm_graph::{CommunityTracker, Dendrogram, GraphView};
use spmm_matrix::CsrMatrix;

/// Per-hop neighbour cap for the common-neighbour candidate search.
/// Power-law matrices (reddit-like) have vertices with hundreds of
/// neighbours; capping bounds step II at `CAP²` work per vertex.
const TWO_HOP_CAP: usize = 64;

/// Number of approximate candidates re-scored with the exact
/// common-neighbour count each chain step.
const RESCORE: usize = 8;

/// Compute the data-affinity permutation (`perm[old] = new`).
pub fn affinity_order(m: &CsrMatrix) -> Vec<u32> {
    let g = GraphView::from_csr(m);
    let dendro = build_dendrogram(&g);
    ordering_generation(&g, &dendro)
}

/// Step I: ΔQ-greedy merging in ascending degree order.
pub(crate) fn build_dendrogram(g: &GraphView) -> Dendrogram {
    let n = g.num_vertices();
    let mut ct = CommunityTracker::new(g);
    let mut dendro = Dendrogram::new(n);
    for v in g.vertices_by_ascending_degree() {
        // Find the neighbour whose community merge maximizes ΔQ.
        let mut best: Option<(f64, u32)> = None;
        for &u in g.neighbors(v) {
            if ct.same(u, v) {
                continue;
            }
            let dq = ct.delta_q(u, v, 1.0);
            if best.is_none_or(|(b, _)| dq > b) {
                best = Some((dq, u));
            }
        }
        if let Some((dq, u)) = best {
            if dq > 0.0 {
                let ru = ct.find(u);
                let rv = ct.find(v);
                dendro.record_merge(ru, rv);
                let surviving = ct.merge(u, v);
                // Keep the dendrogram's root mapping in sync with the
                // union-find's surviving representative.
                let node = dendro.node_of(ru);
                dendro.set_node_of(surviving, node);
            }
        }
    }
    dendro
}

/// Step II: DFS over dendrogram leaves with common-neighbour chaining.
pub(crate) fn ordering_generation(g: &GraphView, dendro: &Dendrogram) -> Vec<u32> {
    let n = g.num_vertices();
    let leaves = dendro.dfs_leaves();
    // DFS position of each vertex, used for tie-breaking ("according to
    // the order of DFS").
    let mut dfs_pos = vec![0u32; n];
    for (pos, &v) in leaves.iter().enumerate() {
        dfs_pos[v as usize] = pos as u32;
    }

    let mut perm = vec![u32::MAX; n];
    let mut visited = vec![false; n];
    let mut next_id = 0u32;

    for &start in &leaves {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        perm[start as usize] = next_id;
        next_id += 1;

        // Chain: hop to the unvisited vertex with the most common
        // neighbours until the chain dries up. Candidates come from the
        // (sampled) 2-hop neighbourhood; the top few by approximate count
        // are re-scored with the exact sorted-merge intersection, and
        // ties prefer the leaf closest in DFS order (staying inside the
        // current dendrogram community).
        let mut v = start;
        let mut top: Vec<(u32, u32)> = Vec::new();
        loop {
            let counts = g.two_hop_common_counts(v, TWO_HOP_CAP);
            top.clear();
            top.extend(
                counts
                    .iter()
                    .filter(|&(&u, _)| !visited[u as usize])
                    .map(|(&u, &c)| (c, u)),
            );
            if top.is_empty() {
                break;
            }
            // Keep the RESCORE best approximate candidates.
            top.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            top.truncate(RESCORE);
            let pos_v = dfs_pos[v as usize];
            let mut best: Option<(usize, u32, u32)> = None; // (exact, dfs distance key)
            for &(_, u) in top.iter() {
                let exact = g.common_neighbors(v, u);
                let dist = dfs_pos[u as usize].abs_diff(pos_v);
                let better = match best {
                    None => true,
                    Some((be, bd, _)) => exact > be || (exact == be && dist < bd),
                };
                if better {
                    best = Some((exact, dist, u));
                }
            }
            let (_, _, u) = best.expect("top is non-empty");
            visited[u as usize] = true;
            perm[u as usize] = next_id;
            next_id += 1;
            v = u;
        }
    }
    debug_assert_eq!(next_id as usize, n);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_nnz_tc;
    use spmm_common::util::is_permutation;
    use spmm_matrix::gen::{molecule_union, uniform_random};
    use spmm_matrix::{CooMatrix, CsrMatrix};

    #[test]
    fn produces_valid_permutation() {
        let m = uniform_random(256, 6.0, 1);
        let perm = affinity_order(&m);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn paper_figure2_example_groups_communities() {
        // The Figure 2 graph: 8 vertices, two natural communities
        // {0,2,4,5,7} (around hub 0) and {1,3,6}.
        let edges = [
            (0u32, 2u32),
            (0, 4),
            (0, 5),
            (0, 7),
            (2, 5),
            (4, 7),
            (1, 3),
            (1, 6),
            (3, 6),
        ];
        let mut coo = CooMatrix::new(8, 8);
        for &(a, b) in &edges {
            coo.push(a, b, 1.0);
        }
        let m = CsrMatrix::from_coo(&coo);
        let perm = affinity_order(&m);
        assert!(is_permutation(&perm));
        // Community {1,3,6} must be contiguous in the new order.
        let mut ids: Vec<u32> = [1usize, 3, 6].iter().map(|&v| perm[v]).collect();
        ids.sort_unstable();
        assert_eq!(
            ids[2] - ids[0],
            2,
            "community {{1,3,6}} stays together: {ids:?}"
        );
        // And so must the other community.
        let mut ids: Vec<u32> = [0usize, 2, 4, 5, 7].iter().map(|&v| perm[v]).collect();
        ids.sort_unstable();
        assert_eq!(
            ids[4] - ids[0],
            4,
            "community around 0 stays together: {ids:?}"
        );
    }

    #[test]
    fn improves_mean_nnz_tc_on_shuffled_molecules() {
        let m = molecule_union(2048, 8, 20, true, 5);
        let before = mean_nnz_tc(&m, 8);
        let perm = affinity_order(&m);
        let pm = m.permute_rows(&perm).unwrap();
        let after = mean_nnz_tc(&pm, 8);
        // Chain molecules with ~2 nnz/row cap out near 8 nnz/block (rows
        // of a chain share almost no columns); 1.2x is a solid gain here.
        assert!(
            after > before * 1.2,
            "reordering should densify TC blocks: {before} -> {after}"
        );
    }

    #[test]
    fn handles_empty_and_diagonal_matrices() {
        let empty = CsrMatrix::from_coo(&CooMatrix::new(16, 16));
        let perm = affinity_order(&empty);
        assert!(is_permutation(&perm));

        let mut coo = CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 1.0);
        }
        let diag = CsrMatrix::from_coo(&coo);
        assert!(is_permutation(&affinity_order(&diag)));
    }
}
