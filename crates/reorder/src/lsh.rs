//! Locality-sensitive-hashing baselines.
//!
//! `LSH64` (Huang et al., PPoPP'21) groups rows by a single 64-bit minhash
//! of their column pattern; `DTC-LSH` (DTC-SpMM) uses a multi-band minhash
//! signature with degree tie-breaking — better grouping at slightly
//! higher cost. Rows with similar column sets hash near each other, so a
//! sort by signature clusters them into the same row windows.

use spmm_common::util::splitmix64;
use spmm_matrix::CsrMatrix;

/// Compute an LSH permutation using `bands` minhash bands (1 = LSH64,
/// 4 = DTC-LSH).
///
/// Per-row signatures are independent, so the scoring pass runs in
/// parallel; the ordered collect keeps the key vector — and therefore
/// the sort and the resulting permutation — byte-identical to the
/// sequential computation.
pub fn lsh_order(m: &CsrMatrix, bands: usize) -> Vec<u32> {
    use rayon::prelude::*;
    assert!(bands >= 1);
    let n = m.nrows();
    let mut keys: Vec<(Vec<u64>, u32)> = (0..n)
        .into_par_iter()
        .map(|r| {
            let (cols, _) = m.row(r);
            let mut sig = Vec::with_capacity(bands);
            for b in 0..bands {
                let salt = 0xB1A5_ED00 + b as u64;
                let mh = cols
                    .iter()
                    .map(|&c| splitmix64((c as u64) ^ (salt << 32)))
                    .min()
                    .unwrap_or(u64::MAX);
                sig.push(mh);
            }
            (sig, r as u32)
        })
        .collect();
    // Sort by signature; within equal signatures DTC-LSH sorts by degree
    // (longer rows first) so window density stays high, LSH64 by id.
    keys.sort_by(|a, b| {
        a.0.cmp(&b.0).then_with(|| {
            if bands > 1 {
                let da = m.row_len(a.1 as usize);
                let db = m.row_len(b.1 as usize);
                db.cmp(&da).then(a.1.cmp(&b.1))
            } else {
                a.1.cmp(&b.1)
            }
        })
    });
    let mut perm = vec![0u32; n];
    for (new_id, (_, v)) in keys.into_iter().enumerate() {
        perm[v as usize] = new_id as u32;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::util::is_permutation;
    use spmm_matrix::{CooMatrix, CsrMatrix};

    #[test]
    fn valid_permutation() {
        let m = spmm_matrix::gen::uniform_random(200, 4.0, 1);
        assert!(is_permutation(&lsh_order(&m, 1)));
        assert!(is_permutation(&lsh_order(&m, 4)));
    }

    #[test]
    fn identical_rows_become_adjacent() {
        // Rows 0, 5, 9 share the exact same column pattern; LSH must
        // place them consecutively.
        let mut coo = CooMatrix::new(10, 10);
        for &r in &[0u32, 5, 9] {
            coo.push(r, 2, 1.0);
            coo.push(r, 7, 1.0);
        }
        // Give every other row column 1 so none can tie the {2,7}
        // signature (a row holding column 2 alone would share min-hash
        // with {2,7} whenever h(2) < h(7)).
        for r in [1u32, 2, 3, 4, 6, 7, 8] {
            coo.push(r, 1, 1.0);
        }
        let m = CsrMatrix::from_coo(&coo);
        for bands in [1usize, 4] {
            let perm = lsh_order(&m, bands);
            let mut ids = [perm[0], perm[5], perm[9]];
            ids.sort_unstable();
            assert_eq!(ids[2] - ids[0], 2, "bands={bands}: {ids:?}");
        }
    }

    #[test]
    fn empty_rows_group_together() {
        let mut coo = CooMatrix::new(6, 6);
        coo.push(1, 1, 1.0);
        coo.push(4, 2, 1.0);
        let m = CsrMatrix::from_coo(&coo);
        let perm = lsh_order(&m, 1);
        // Empty rows 0,2,3,5 hash to u64::MAX and sort last, adjacent.
        let mut empties = [perm[0], perm[2], perm[3], perm[5]];
        empties.sort_unstable();
        assert_eq!(empties[3] - empties[0], 3);
    }
}
