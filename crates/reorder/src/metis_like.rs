//! METIS-like recursive bisection baseline.
//!
//! Recursively splits the vertex set in half by growing a BFS frontier
//! from a pseudo-peripheral vertex (the classic Graph-Growing Partitioning
//! heuristic METIS uses for initial partitions), then concatenates the
//! halves. This produces the nested spatial locality nested-dissection
//! orderings are known for, without the full multilevel machinery.

use spmm_graph::GraphView;
use spmm_matrix::CsrMatrix;
use std::collections::VecDeque;

/// Stop recursing below this part size.
const LEAF_SIZE: usize = 32;

/// Compute the recursive-bisection permutation (`perm[old] = new`).
pub fn bisection_order(m: &CsrMatrix) -> Vec<u32> {
    let g = GraphView::from_csr(m);
    let n = g.num_vertices();
    let mut perm = vec![0u32; n];
    let mut next_id = 0u32;
    let initial: Vec<u32> = (0..n as u32).collect();
    let mut stack = vec![initial];
    while let Some(part) = stack.pop() {
        if part.len() <= LEAF_SIZE {
            for v in part {
                perm[v as usize] = next_id;
                next_id += 1;
            }
            continue;
        }
        let (a, b) = bisect(&g, &part);
        // DFS-style: process `b` after `a` by pushing `b` first.
        stack.push(b);
        stack.push(a);
    }
    debug_assert_eq!(next_id as usize, n);
    perm
}

/// Split `part` into two halves by BFS growth from a pseudo-peripheral
/// vertex; unreachable vertices (other components) spill into the second
/// half.
fn bisect(g: &GraphView, part: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let target = part.len() / 2;
    let mut in_part = vec![false; g.num_vertices()];
    for &v in part {
        in_part[v as usize] = true;
    }

    // Pseudo-peripheral start: BFS from the minimum-degree vertex, take
    // the last vertex reached, BFS again from there.
    let start = *part
        .iter()
        .min_by_key(|&&v| (g.degree(v), v))
        .expect("bisect called with empty part");
    let far = bfs_last(g, start, &in_part);

    let mut half_a = Vec::with_capacity(target);
    let mut taken = vec![false; g.num_vertices()];
    let mut queue = VecDeque::new();
    queue.push_back(far);
    taken[far as usize] = true;
    while half_a.len() < target {
        let v = match queue.pop_front() {
            Some(v) => v,
            None => {
                // Disconnected: seed from any untaken vertex of the part.
                match part.iter().find(|&&v| !taken[v as usize]) {
                    Some(&v) => {
                        taken[v as usize] = true;
                        queue.push_back(v);
                        continue;
                    }
                    None => break,
                }
            }
        };
        half_a.push(v);
        for &u in g.neighbors(v) {
            if in_part[u as usize] && !taken[u as usize] {
                taken[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    let half_b: Vec<u32> = part
        .iter()
        .copied()
        .filter(|&v| !half_a.contains(&v))
        .collect();
    // `contains` is O(|half_a|); acceptable at LEAF_SIZE-bounded depth but
    // quadratic on huge parts — use the taken-or-in-a marker instead.
    let mut in_a = vec![false; g.num_vertices()];
    for &v in &half_a {
        in_a[v as usize] = true;
    }
    let half_b = if half_b.len() + half_a.len() == part.len() {
        half_b
    } else {
        part.iter()
            .copied()
            .filter(|&v| !in_a[v as usize])
            .collect()
    };
    (half_a, half_b)
}

/// BFS from `start` restricted to `in_part`; returns the last vertex
/// dequeued (approximately the farthest).
fn bfs_last(g: &GraphView, start: u32, in_part: &[bool]) -> u32 {
    let mut seen = vec![false; g.num_vertices()];
    let mut queue = VecDeque::new();
    queue.push_back(start);
    seen[start as usize] = true;
    let mut last = start;
    while let Some(v) = queue.pop_front() {
        last = v;
        for &u in g.neighbors(v) {
            if in_part[u as usize] && !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::util::is_permutation;
    use spmm_matrix::gen::{road_network, uniform_random};

    #[test]
    fn valid_permutation() {
        let m = uniform_random(300, 5.0, 2);
        assert!(is_permutation(&bisection_order(&m)));
    }

    #[test]
    fn groups_grid_locality() {
        let m = road_network(1024, 1);
        let before = crate::metrics::mean_nnz_tc(&m, 8);
        let pm = m.permute_rows(&bisection_order(&m)).unwrap();
        let after = crate::metrics::mean_nnz_tc(&pm, 8);
        assert!(
            after > before * 0.9,
            "bisection should not destroy locality: {before} -> {after}"
        );
    }

    #[test]
    fn handles_disconnected_graph() {
        let m = spmm_matrix::gen::molecule_union(400, 6, 12, false, 3);
        assert!(is_permutation(&bisection_order(&m)));
    }
}
