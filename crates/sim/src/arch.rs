//! GPU architecture constants (Table 3 plus public spec sheets).

/// Architecture parameters that drive the timing and cache models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuArch {
    /// Marketing name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// Dense tensor-core TF32 throughput (TFLOPS), Table 3.
    pub tc_tf32_tflops: f64,
    /// CUDA-core FP32 FMA throughput (TFLOPS).
    pub cuda_fp32_tflops: f64,
    /// DRAM bandwidth (GB/s), Table 3.
    pub dram_bw_gbps: f64,
    /// DRAM access latency (ns).
    pub dram_latency_ns: f64,
    /// L2 capacity (bytes), shared by all SMs.
    pub l2_bytes: usize,
    /// Aggregate L2 bandwidth (GB/s).
    pub l2_bw_gbps: f64,
    /// L2 latency (ns).
    pub l2_latency_ns: f64,
    /// L1/shared-memory capacity per SM (bytes).
    pub l1_bytes_per_sm: usize,
    /// Aggregate L1 bandwidth per SM (GB/s).
    pub l1_bw_gbps: f64,
    /// L1 latency (ns).
    pub l1_latency_ns: f64,
    /// Cache line (sector group) size in bytes.
    pub line_bytes: usize,
    /// Shared memory a TC thread block reserves (double buffers).
    pub smem_per_tb: usize,
    /// cuSPARSE-on-this-arch efficiency factor: H100's sparse-friendly
    /// memory subsystem (HBM3 + larger L2 + async features) lifts the
    /// baseline, shrinking relative speedups exactly as in Figure 9.
    pub cusparse_boost: f64,
}

/// The three evaluation architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Ada Lovelace consumer flagship.
    Rtx4090,
    /// Ampere data-center (A100 variant sold in China).
    A800,
    /// Hopper SXM.
    H100,
}

impl Arch {
    /// All evaluation architectures in paper order.
    pub const ALL: [Arch; 3] = [Arch::Rtx4090, Arch::A800, Arch::H100];

    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<Arch> {
        match s.to_ascii_lowercase().as_str() {
            "rtx4090" | "4090" | "ada" => Some(Arch::Rtx4090),
            "a800" | "a100" | "ampere" => Some(Arch::A800),
            "h100" | "hopper" => Some(Arch::H100),
            _ => None,
        }
    }

    /// The parameter set.
    pub fn spec(&self) -> GpuArch {
        match self {
            Arch::Rtx4090 => RTX4090,
            Arch::A800 => A800,
            Arch::H100 => H100,
        }
    }
}

/// RTX 4090 (Ada Lovelace): 128 SMs, 24 GB GDDR6X @ 1008 GB/s, 72 MiB L2.
/// TC TF32 82.6 TFLOPS equals its FP32 rate — on this card the tensor-core
/// win must come from the memory path, which is why the paper's largest
/// speedups (2.52× avg) appear here. `cusparse_boost < 1` reflects that
/// the library's gather-heavy kernels are tuned for data-center HBM
/// parts and lose ground on GDDR6X's longer random-access latency.
pub const RTX4090: GpuArch = GpuArch {
    name: "RTX 4090",
    num_sms: 128,
    tc_tf32_tflops: 82.6,
    cuda_fp32_tflops: 82.6,
    dram_bw_gbps: 1008.0,
    dram_latency_ns: 470.0,
    l2_bytes: 72 * 1024 * 1024,
    l2_bw_gbps: 5000.0,
    l2_latency_ns: 230.0,
    l1_bytes_per_sm: 128 * 1024,
    l1_bw_gbps: 260.0,
    l1_latency_ns: 32.0,
    line_bytes: 128,
    smem_per_tb: 48 * 1024,
    cusparse_boost: 0.88,
};

/// A800 80GB PCIe (Ampere): 108 SMs, HBM2e @ 1935 GB/s, 40 MiB L2.
pub const A800: GpuArch = GpuArch {
    name: "A800",
    num_sms: 108,
    tc_tf32_tflops: 156.0,
    cuda_fp32_tflops: 19.5,
    dram_bw_gbps: 1935.0,
    dram_latency_ns: 404.0,
    l2_bytes: 40 * 1024 * 1024,
    l2_bw_gbps: 7000.0,
    l2_latency_ns: 200.0,
    l1_bytes_per_sm: 192 * 1024,
    l1_bw_gbps: 220.0,
    l1_latency_ns: 34.0,
    line_bytes: 128,
    smem_per_tb: 48 * 1024,
    cusparse_boost: 1.15,
};

/// H100 80GB SXM (Hopper): 132 SMs, HBM3 @ 3350 GB/s, 50 MiB L2.
/// `cusparse_boost` models Hopper's sparsity-aware memory subsystem that
/// visibly lifts the cuSPARSE baseline in Figure 9.
pub const H100: GpuArch = GpuArch {
    name: "H100",
    num_sms: 132,
    tc_tf32_tflops: 494.7,
    cuda_fp32_tflops: 66.9,
    dram_bw_gbps: 3350.0,
    dram_latency_ns: 390.0,
    l2_bytes: 50 * 1024 * 1024,
    l2_bw_gbps: 12000.0,
    l2_latency_ns: 190.0,
    l1_bytes_per_sm: 256 * 1024,
    l1_bw_gbps: 310.0,
    l1_latency_ns: 30.0,
    line_bytes: 128,
    smem_per_tb: 48 * 1024,
    cusparse_boost: 1.42,
};

impl GpuArch {
    /// Tensor-core FLOPS available to one SM.
    pub fn tc_flops_per_sm(&self) -> f64 {
        self.tc_tf32_tflops * 1e12 / self.num_sms as f64
    }

    /// CUDA-core FP32 FLOPS available to one SM.
    pub fn cuda_flops_per_sm(&self) -> f64 {
        self.cuda_fp32_tflops * 1e12 / self.num_sms as f64
    }

    /// DRAM bytes/second available to one SM when `active` SMs contend.
    pub fn dram_bw_per_sm(&self, active: usize) -> f64 {
        self.dram_bw_gbps * 1e9 / active.max(1).min(self.num_sms) as f64
    }

    /// L2 bytes/second available to one SM when `active` SMs contend.
    pub fn l2_bw_per_sm(&self, active: usize) -> f64 {
        self.l2_bw_gbps * 1e9 / active.max(1).min(self.num_sms) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        assert_eq!(RTX4090.tc_tf32_tflops, 82.6);
        assert_eq!(A800.tc_tf32_tflops, 156.0);
        assert_eq!(H100.tc_tf32_tflops, 494.7);
        assert_eq!(RTX4090.dram_bw_gbps, 1008.0);
        assert_eq!(A800.dram_bw_gbps, 1935.0);
        assert_eq!(H100.dram_bw_gbps, 3350.0);
    }

    #[test]
    fn parse_names() {
        assert_eq!(Arch::parse("H100"), Some(Arch::H100));
        assert_eq!(Arch::parse("rtx4090"), Some(Arch::Rtx4090));
        assert_eq!(Arch::parse("a800"), Some(Arch::A800));
        assert_eq!(Arch::parse("tpu"), None);
    }

    #[test]
    fn per_sm_rates_scale() {
        let a = Arch::A800.spec();
        assert!(a.tc_flops_per_sm() > a.cuda_flops_per_sm());
        // Fewer active SMs -> more bandwidth each.
        assert!(a.dram_bw_per_sm(10) > a.dram_bw_per_sm(100));
        // Never more than the single-SM cap at 1 active.
        assert_eq!(a.dram_bw_per_sm(0), a.dram_bw_per_sm(1));
    }

    #[test]
    fn hopper_has_strongest_baseline() {
        const { assert!(H100.cusparse_boost > A800.cusparse_boost) };
        const { assert!(A800.cusparse_boost > RTX4090.cusparse_boost - 1e-9) };
    }
}
