//! Thread-block to SM list scheduling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Greedy list scheduling: thread blocks are dispatched in launch order
/// to the earliest-available SM (how the GPU's TB scheduler behaves to
/// first order). Returns the makespan and per-SM busy times.
pub fn schedule(tb_times: &[f64], num_sms: usize) -> ScheduleResult {
    assert!(num_sms >= 1);
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..num_sms.min(tb_times.len().max(1)))
        .map(|sm| Reverse((0u64, sm)))
        .collect();
    let mut busy = vec![0.0f64; num_sms];
    let mut assignment = Vec::with_capacity(tb_times.len());
    let mut starts = Vec::with_capacity(tb_times.len());
    for &t in tb_times {
        let Reverse((_, sm)) = heap.pop().expect("heap never empty");
        starts.push(busy[sm]);
        busy[sm] += t;
        assignment.push(sm);
        // f64 times ordered through a fixed-point key (ns resolution).
        heap.push(Reverse(((busy[sm] * 1e12) as u64, sm)));
    }
    let makespan = busy.iter().copied().fold(0.0f64, f64::max);
    let total: f64 = busy.iter().sum();
    let utilization = if makespan > 0.0 {
        total / (makespan * num_sms.min(tb_times.len().max(1)) as f64)
    } else {
        1.0
    };
    ScheduleResult {
        makespan,
        busy,
        assignment,
        starts,
        utilization,
    }
}

/// Result of list scheduling.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Kernel duration: the busiest SM's finish time.
    pub makespan: f64,
    /// Busy time per SM.
    pub busy: Vec<f64>,
    /// SM chosen for each TB.
    pub assignment: Vec<usize>,
    /// Start time of each TB on its SM.
    pub starts: Vec<f64>,
    /// Mean busy / makespan over the SMs that received work.
    pub utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sm_sums() {
        let r = schedule(&[1.0, 2.0, 3.0], 1);
        assert!((r.makespan - 6.0).abs() < 1e-9);
        assert!((r.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_work_splits_evenly() {
        let r = schedule(&[1.0; 8], 4);
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.utilization - 1.0).abs() < 1e-6);
    }

    #[test]
    fn straggler_dominates() {
        // One 10s TB among 1s TBs: makespan set by the straggler.
        let mut times = vec![1.0; 7];
        times.insert(0, 10.0);
        let r = schedule(&times, 4);
        assert!((r.makespan - 10.0).abs() < 1e-9);
        assert!(
            r.utilization < 0.5,
            "imbalance must show: {}",
            r.utilization
        );
    }

    #[test]
    fn more_sms_never_hurt() {
        let times: Vec<f64> = (0..32).map(|i| 1.0 + (i % 5) as f64).collect();
        let m4 = schedule(&times, 4).makespan;
        let m8 = schedule(&times, 8).makespan;
        let m64 = schedule(&times, 64).makespan;
        assert!(m8 <= m4 + 1e-9);
        assert!(m64 <= m8 + 1e-9);
        // With more SMs than TBs, makespan = max TB.
        assert!((m64 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_kernel() {
        let r = schedule(&[], 16);
        assert_eq!(r.makespan, 0.0);
        assert!(r.assignment.is_empty());
    }
}
