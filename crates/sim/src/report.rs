//! Simulation output: everything the paper's figures plot.

/// The measured quantities of one simulated kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel wall time (seconds, simulated).
    pub time_s: f64,
    /// Effective GFLOPS: `2 · nnz · N / time` — the paper's headline
    /// metric.
    pub gflops: f64,
    /// GFLOPS counting the dense work actually executed (≥ `gflops` for
    /// TC kernels, which multiply zeros inside blocks).
    pub dense_gflops: f64,
    /// Bytes served by DRAM.
    pub dram_bytes: u64,
    /// Bytes served by the L2 cache.
    pub l2_bytes: u64,
    /// Bytes served by L1 caches.
    pub l1_bytes: u64,
    /// Global-load L1 hit rate (line granularity).
    pub l1_hit_rate: f64,
    /// L2 hit rate among L1 misses.
    pub l2_hit_rate: f64,
    /// Aggregate pipeline bubble time across TBs (seconds).
    pub bubble_s: f64,
    /// Aggregate TB busy time (seconds; `bubble_s / busy_s` is the idle
    /// fraction).
    pub busy_s: f64,
    /// DRAM throughput achieved (GB/s) — Figure 14's memory throughput.
    pub mem_throughput_gbps: f64,
    /// Compute throughput achieved (GFLOPS of executed dense work) —
    /// Figure 14's compute throughput.
    pub compute_throughput_gflops: f64,
    /// Thread blocks launched.
    pub num_tbs: usize,
    /// SM utilization from the scheduler.
    pub sm_utilization: f64,
}

impl KernelReport {
    /// Speedup of `self` over `baseline` (time ratio).
    pub fn speedup_over(&self, baseline: &KernelReport) -> f64 {
        baseline.time_s / self.time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time: f64) -> KernelReport {
        KernelReport {
            time_s: time,
            gflops: 1.0 / time,
            dense_gflops: 0.0,
            dram_bytes: 0,
            l2_bytes: 0,
            l1_bytes: 0,
            l1_hit_rate: 0.0,
            l2_hit_rate: 0.0,
            bubble_s: 0.0,
            busy_s: 0.0,
            mem_throughput_gbps: 0.0,
            compute_throughput_gflops: 0.0,
            num_tbs: 0,
            sm_utilization: 1.0,
        }
    }

    #[test]
    fn speedup_is_time_ratio() {
        let fast = report(1.0);
        let slow = report(4.0);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }
}
