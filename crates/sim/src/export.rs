//! Execution-trace export: turn a simulated kernel schedule into the
//! Chrome tracing JSON format (`chrome://tracing`, Perfetto), the same
//! artifact real profilers emit — invaluable for eyeballing load
//! imbalance and wave structure.

use crate::sched::ScheduleResult;
use spmm_common::Result;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A simulated execution timeline (per-TB spans on SMs).
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    /// Per-TB (start, duration, sm) in seconds.
    pub spans: Vec<(f64, f64, usize)>,
    /// Kernel makespan in seconds.
    pub makespan: f64,
}

impl ExecutionTrace {
    /// Build from a schedule and the per-TB latencies it placed.
    pub fn from_schedule(sched: &ScheduleResult, tb_times: &[f64]) -> Self {
        let spans = sched
            .starts
            .iter()
            .zip(tb_times.iter())
            .zip(sched.assignment.iter())
            .map(|((&s, &t), &sm)| (s, t, sm))
            .collect();
        ExecutionTrace {
            spans,
            makespan: sched.makespan,
        }
    }

    /// Write Chrome tracing JSON ("X" complete events, microsecond
    /// timestamps, one row per SM).
    pub fn write_chrome_trace<W: Write>(&self, w: W) -> Result<()> {
        let mut w = BufWriter::new(w);
        writeln!(w, "[")?;
        for (i, &(start, dur, sm)) in self.spans.iter().enumerate() {
            let comma = if i + 1 == self.spans.len() { "" } else { "," };
            writeln!(
                w,
                "  {{\"name\": \"TB{i}\", \"cat\": \"tb\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": {sm}}}{comma}",
                start * 1e6,
                dur * 1e6
            )?;
        }
        writeln!(w, "]")?;
        w.flush()?;
        Ok(())
    }

    /// Save to a `.json` file openable in `chrome://tracing` / Perfetto.
    pub fn save_chrome_trace(&self, path: impl AsRef<Path>) -> Result<()> {
        self.write_chrome_trace(std::fs::File::create(path)?)
    }

    /// Number of SMs that received work.
    pub fn sms_used(&self) -> usize {
        self.spans
            .iter()
            .map(|&(_, _, sm)| sm + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::schedule;

    #[test]
    fn spans_are_disjoint_per_sm() {
        let times = vec![1.0, 2.0, 3.0, 1.5, 0.5, 2.5];
        let sched = schedule(&times, 2);
        let trace = ExecutionTrace::from_schedule(&sched, &times);
        assert_eq!(trace.spans.len(), 6);
        // On each SM, sorted spans must not overlap.
        for sm in 0..trace.sms_used() {
            let mut spans: Vec<(f64, f64)> = trace
                .spans
                .iter()
                .filter(|&&(_, _, s)| s == sm)
                .map(|&(a, d, _)| (a, d))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0 + 1e-9, "overlap on SM {sm}");
            }
        }
        // Last end equals the makespan.
        let end = trace
            .spans
            .iter()
            .map(|&(s, d, _)| s + d)
            .fold(0.0f64, f64::max);
        assert!((end - trace.makespan).abs() < 1e-9);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let times = vec![1.0, 2.0];
        let sched = schedule(&times, 2);
        let trace = ExecutionTrace::from_schedule(&sched, &times);
        let mut buf = Vec::new();
        trace.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = spmm_common::json::Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        assert_eq!(parsed[0]["ph"], "X");
    }

    #[test]
    fn empty_schedule_exports_empty_array() {
        let sched = schedule(&[], 4);
        let trace = ExecutionTrace::from_schedule(&sched, &[]);
        let mut buf = Vec::new();
        trace.write_chrome_trace(&mut buf).unwrap();
        let parsed = spmm_common::json::Json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        assert!(parsed.as_array().unwrap().is_empty());
        assert_eq!(trace.sms_used(), 0);
    }
}
