//! Kernel work traces — the interface between sparse kernels and the
//! simulator.

use crate::cache::CacheOp;
use crate::pipeline::PipelineKind;

/// One unit of compute work (a TC block for tensor-core kernels, a
/// row/nnz chunk for CUDA-core kernels) with its memory footprint.
#[derive(Debug, Clone, Default)]
pub struct BlockTrace {
    /// Rows of the dense B gathered by this block (original column
    /// indices of the sparse operand). Repetitions allowed — CUDA-core
    /// kernels gather one row per nnz.
    pub b_rows: Vec<u32>,
    /// Sparse-operand bytes streamed for this block (values + format
    /// metadata).
    pub a_bytes: u32,
    /// FLOPs *executed* by this block (dense 2·8·8·N for a TC block,
    /// 2·nnz·N for a scalar chunk).
    pub flops: u64,
    /// Decompression / index-decode operations (popcounts, scatters).
    pub decode_ops: u32,
}

/// The work of one thread block.
#[derive(Debug, Clone, Default)]
pub struct TbTrace {
    /// Compute blocks, in issue order.
    pub blocks: Vec<BlockTrace>,
    /// Dense C rows this TB writes.
    pub c_rows: u32,
    /// Distinct RowWindow segments (with load balancing a TB may span
    /// several windows; each adds a write-back transaction).
    pub segments: u32,
}

/// Cache operators used for the three operand streams (§3.4 / Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Operator for sparse-A (tiles + metadata) loads.
    pub a_op: CacheOp,
    /// Operator for dense-B loads.
    pub b_op: CacheOp,
    /// Operator for C stores.
    pub c_op: CacheOp,
}

impl CachePolicy {
    /// Hardware default: everything `.ca`, stores `.wb` (write-allocate
    /// into L2) — what kernels get without explicit PTX control.
    pub fn hardware_default() -> Self {
        CachePolicy {
            a_op: CacheOp::Ca,
            b_op: CacheOp::Ca,
            c_op: CacheOp::Wb,
        }
    }

    /// The paper's policy: A and B cached at all levels (`.ca`), C
    /// written through L2 without allocation (`.wt`) since it is never
    /// re-read.
    pub fn acc_policy() -> Self {
        CachePolicy {
            a_op: CacheOp::Ca,
            b_op: CacheOp::Ca,
            c_op: CacheOp::Wt,
        }
    }
}

/// A complete kernel execution description.
#[derive(Debug, Clone)]
pub struct KernelDesc {
    /// Thread blocks in launch order.
    pub tbs: Vec<TbTrace>,
    /// Pipeline structure the kernel implements.
    pub pipeline: PipelineKind,
    /// Cache operators.
    pub policy: CachePolicy,
    /// Achieved fraction of peak DRAM bandwidth (measured property of
    /// real implementations: coalescing quality, access granularity).
    pub mem_efficiency: f64,
    /// Tensor cores (true) or CUDA cores (false) execute the FLOPs.
    pub use_tensor_cores: bool,
    /// Columns of the dense operand (feature dimension N).
    pub feature_dim: usize,
    /// *Effective* (sparse) FLOPs: `2 · nnz · N`, the numerator of every
    /// GFLOPS figure in the paper.
    pub effective_flops: u64,
    /// Extra per-kernel throughput multiplier for the baseline library
    /// model (cuSPARSE's architecture-specific tuning; 1.0 otherwise).
    pub arch_boost: f64,
    /// The host ISA tier the plan's CPU compute core was bound to at
    /// compile time ([`spmm_common::IsaTier`]). Advisory metadata for
    /// the simulator (the modeled GPU doesn't consume it); recorded so
    /// plan artifacts and trace dumps name the tier that produced them.
    pub isa_tier: spmm_common::IsaTier,
}

impl KernelDesc {
    /// Bytes of one dense-B (or C) row.
    pub fn row_bytes(&self) -> usize {
        self.feature_dim * 4
    }

    /// Total FLOPs executed (dense work, ≥ effective FLOPs).
    pub fn executed_flops(&self) -> u64 {
        self.tbs
            .iter()
            .flat_map(|tb| tb.blocks.iter())
            .map(|b| b.flops)
            .sum()
    }

    /// Total number of compute blocks.
    pub fn num_blocks(&self) -> usize {
        self.tbs.iter().map(|tb| tb.blocks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_differ_in_c_operator() {
        let hw = CachePolicy::hardware_default();
        let acc = CachePolicy::acc_policy();
        assert_eq!(hw.b_op, acc.b_op);
        assert_ne!(hw.c_op, acc.c_op);
        assert!(!acc.c_op.allocates_l2(), ".wt must not pollute L2");
        assert!(hw.c_op.allocates_l2());
    }

    #[test]
    fn desc_aggregates() {
        let desc = KernelDesc {
            tbs: vec![TbTrace {
                blocks: vec![
                    BlockTrace {
                        b_rows: vec![0, 1],
                        a_bytes: 64,
                        flops: 100,
                        decode_ops: 8,
                    },
                    BlockTrace {
                        flops: 50,
                        ..Default::default()
                    },
                ],
                c_rows: 8,
                segments: 1,
            }],
            pipeline: PipelineKind::AccLeastBubble,
            policy: CachePolicy::acc_policy(),
            mem_efficiency: 0.85,
            use_tensor_cores: true,
            feature_dim: 128,
            effective_flops: 120,
            arch_boost: 1.0,
            isa_tier: spmm_common::IsaTier::Scalar,
        };
        assert_eq!(desc.executed_flops(), 150);
        assert_eq!(desc.num_blocks(), 2);
        assert_eq!(desc.row_bytes(), 512);
    }
}
