//! Warp-level `mma.sync.aligned.m16n8k8.row.col.f32.tf32.tf32.f32` —
//! a faithful software model of the PTX instruction the kernel issues,
//! including the per-lane fragment register layout.
//!
//! The paper's §3.4 trick ("we load the matrix followed by swapping the
//! computation of the left-handed matrix and the right-handed matrix")
//! computes a 8-row × 16-column C chunk as
//! `Cᵀ(16×8) = Bᵀ(16×8) × Aᵀ(8×8)` so the *sparse* operand can be the
//! small 8×8 right-hand tile. [`swapped_spmm_block`] packages exactly
//! that and is validated against the direct product.
//!
//! Fragment layouts follow the PTX ISA (warp of 32 lanes, groups of 4):
//! for lane `l`, `group = l / 4`, `tid = l % 4`:
//!
//! * **A (16×8, row-major)** — 4 registers:
//!   `a0=(group, tid)`, `a1=(group, tid+4)`, `a2=(group+8, tid)`,
//!   `a3=(group+8, tid+4)`;
//! * **B (8×8, col-major operand)** — 2 registers:
//!   `b0=(tid, group)`, `b1=(tid+4, group)`;
//! * **C/D (16×8, row-major)** — 4 registers:
//!   `c0=(group, 2·tid)`, `c1=(group, 2·tid+1)`, `c2=(group+8, 2·tid)`,
//!   `c3=(group+8, 2·tid+1)`.

use spmm_common::scalar::to_tf32;

/// Number of lanes in a warp.
pub const WARP: usize = 32;

/// Per-lane fragment registers for one `m16n8k8` issue.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneFragments {
    /// A-operand registers (4 × tf32).
    pub a: [f32; 4],
    /// B-operand registers (2 × tf32).
    pub b: [f32; 2],
    /// Accumulator registers (4 × f32).
    pub c: [f32; 4],
}

/// A warp's worth of fragments.
pub type WarpFragments = [LaneFragments; WARP];

/// Load a row-major 16×8 matrix into the per-lane A fragments.
pub fn load_a_fragments(a: &[f32; 16 * 8], frags: &mut WarpFragments) {
    for (lane, f) in frags.iter_mut().enumerate() {
        let (group, tid) = (lane / 4, lane % 4);
        f.a[0] = a[group * 8 + tid];
        f.a[1] = a[group * 8 + tid + 4];
        f.a[2] = a[(group + 8) * 8 + tid];
        f.a[3] = a[(group + 8) * 8 + tid + 4];
    }
}

/// Load a row-major 8×8 matrix into the per-lane B fragments (the
/// operand is consumed column-major by the instruction; the loader does
/// the transposition the `ldmatrix`/layout qualifiers imply).
pub fn load_b_fragments(b: &[f32; 8 * 8], frags: &mut WarpFragments) {
    for (lane, f) in frags.iter_mut().enumerate() {
        let (group, tid) = (lane / 4, lane % 4);
        f.b[0] = b[tid * 8 + group];
        f.b[1] = b[(tid + 4) * 8 + group];
    }
}

/// Execute the warp-synchronous MMA: every lane's accumulators are
/// updated from the *warp-wide* operand fragments, exactly as the
/// hardware gathers them. Operands are rounded to TF32; accumulation is
/// FP32.
pub fn mma_sync(frags: &mut WarpFragments) {
    // Reassemble the full operands from the distributed registers (the
    // hardware does this internally through the octet datapaths).
    let mut a = [0.0f32; 16 * 8];
    let mut b = [0.0f32; 8 * 8];
    for (lane, f) in frags.iter().enumerate() {
        let (group, tid) = (lane / 4, lane % 4);
        a[group * 8 + tid] = f.a[0];
        a[group * 8 + tid + 4] = f.a[1];
        a[(group + 8) * 8 + tid] = f.a[2];
        a[(group + 8) * 8 + tid + 4] = f.a[3];
        b[tid * 8 + group] = f.b[0];
        b[(tid + 4) * 8 + group] = f.b[1];
    }
    // d = a × b (+ c), 16x8 × 8x8.
    for (lane, f) in frags.iter_mut().enumerate() {
        let (group, tid) = (lane / 4, lane % 4);
        let positions = [
            (group, 2 * tid),
            (group, 2 * tid + 1),
            (group + 8, 2 * tid),
            (group + 8, 2 * tid + 1),
        ];
        for (r, &(row, col)) in positions.iter().enumerate() {
            let mut acc = f.c[r];
            for k in 0..8 {
                acc += to_tf32(a[row * 8 + k]) * to_tf32(b[k * 8 + col]);
            }
            f.c[r] = acc;
        }
    }
}

/// Store the per-lane accumulators back to a row-major 16×8 matrix.
pub fn store_c_fragments(frags: &WarpFragments, out: &mut [f32; 16 * 8]) {
    for (lane, f) in frags.iter().enumerate() {
        let (group, tid) = (lane / 4, lane % 4);
        out[group * 8 + 2 * tid] = f.c[0];
        out[group * 8 + 2 * tid + 1] = f.c[1];
        out[(group + 8) * 8 + 2 * tid] = f.c[2];
        out[(group + 8) * 8 + 2 * tid + 1] = f.c[3];
    }
}

/// One full warp-level MMA: `D = A(16×8) × B(8×8) + C`, through the
/// fragment machinery.
pub fn warp_mma(a: &[f32; 16 * 8], b: &[f32; 8 * 8], c: &mut [f32; 16 * 8]) {
    let mut frags: WarpFragments = [LaneFragments::default(); WARP];
    load_a_fragments(a, &mut frags);
    load_b_fragments(b, &mut frags);
    // Seed accumulators from C with the store layout inverted.
    for (lane, f) in frags.iter_mut().enumerate() {
        let (group, tid) = (lane / 4, lane % 4);
        f.c[0] = c[group * 8 + 2 * tid];
        f.c[1] = c[group * 8 + 2 * tid + 1];
        f.c[2] = c[(group + 8) * 8 + 2 * tid];
        f.c[3] = c[(group + 8) * 8 + 2 * tid + 1];
    }
    mma_sync(&mut frags);
    store_c_fragments(&frags, c);
}

/// The paper's swapped SpMM block: given an 8×8 sparse tile `a_tile`
/// (row-major) and a 16-column chunk of gathered dense rows
/// `b_chunk` (8 rows × 16 columns, row-major), compute the 8×16 C chunk
/// as `(Bᵀ × Aᵀ)ᵀ` with one `m16n8k8` issue — the left operand is the
/// *dense* 16×8 matrix, the right operand is the *sparse* 8×8 tile.
pub fn swapped_spmm_block(
    a_tile: &[f32; 8 * 8],
    b_chunk: &[f32; 8 * 16],
    c_chunk: &mut [f32; 8 * 16],
) {
    // Left operand: Bᵀ, 16×8 row-major.
    let mut bt = [0.0f32; 16 * 8];
    for r in 0..8 {
        for j in 0..16 {
            bt[j * 8 + r] = b_chunk[r * 16 + j];
        }
    }
    // Right operand: Aᵀ, 8×8 row-major.
    let mut at = [0.0f32; 8 * 8];
    for i in 0..8 {
        for k in 0..8 {
            at[k * 8 + i] = a_tile[i * 8 + k];
        }
    }
    // Accumulator: Cᵀ, 16×8.
    let mut ct = [0.0f32; 16 * 8];
    for i in 0..8 {
        for j in 0..16 {
            ct[j * 8 + i] = c_chunk[i * 16 + j];
        }
    }
    warp_mma(&bt, &at, &mut ct);
    for i in 0..8 {
        for j in 0..16 {
            c_chunk[i * 16 + j] = ct[j * 8 + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::scalar::tf32_mma_8x8;

    fn det(v: u64) -> f32 {
        // Small deterministic values, exactly representable in TF32.
        ((spmm_common::util::splitmix64(v) % 17) as f32 - 8.0) / 4.0
    }

    #[test]
    fn fragment_roundtrip_preserves_operands() {
        let mut a = [0.0f32; 128];
        for (i, x) in a.iter_mut().enumerate() {
            *x = det(i as u64);
        }
        let mut frags: WarpFragments = [LaneFragments::default(); WARP];
        load_a_fragments(&a, &mut frags);
        // Every element of A must appear in exactly one lane register.
        let mut seen = vec![0u32; 128];
        for (lane, f) in frags.iter().enumerate() {
            let (group, tid) = (lane / 4, lane % 4);
            for (r, idx) in [
                group * 8 + tid,
                group * 8 + tid + 4,
                (group + 8) * 8 + tid,
                (group + 8) * 8 + tid + 4,
            ]
            .into_iter()
            .enumerate()
            {
                assert_eq!(f.a[r], a[idx]);
                seen[idx] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "each element in one register");
    }

    #[test]
    fn warp_mma_matches_direct_product() {
        let mut a = [0.0f32; 128];
        let mut b = [0.0f32; 64];
        for (i, x) in a.iter_mut().enumerate() {
            *x = det(100 + i as u64);
        }
        for (i, x) in b.iter_mut().enumerate() {
            *x = det(300 + i as u64);
        }
        let mut c = [0.0f32; 128];
        warp_mma(&a, &b, &mut c);
        // Direct reference with identical rounding.
        for row in 0..16 {
            for col in 0..8 {
                let mut acc = 0.0f32;
                for k in 0..8 {
                    acc +=
                        spmm_common::to_tf32(a[row * 8 + k]) * spmm_common::to_tf32(b[k * 8 + col]);
                }
                assert_eq!(c[row * 8 + col], acc, "({row},{col})");
            }
        }
    }

    #[test]
    fn warp_mma_accumulates_into_c() {
        let a = [1.0f32; 128];
        let b = [1.0f32; 64];
        let mut c = [10.0f32; 128];
        warp_mma(&a, &b, &mut c);
        assert!(c.iter().all(|&x| x == 18.0), "10 + 8·1·1");
    }

    #[test]
    fn swapped_block_equals_unswapped_semantics() {
        // The §3.4 claim: the swap computes the same C as A(8x8)·B(8x16).
        let mut a = [0.0f32; 64];
        let mut b = [0.0f32; 128];
        for (i, x) in a.iter_mut().enumerate() {
            *x = det(500 + i as u64);
        }
        for (i, x) in b.iter_mut().enumerate() {
            *x = det(700 + i as u64);
        }
        let mut c = [0.0f32; 128];
        swapped_spmm_block(&a, &b, &mut c);

        let mut reference = [0.0f32; 128];
        tf32_mma_8x8(&a, &b, &mut reference, 16);
        for i in 0..128 {
            assert!(
                (c[i] - reference[i]).abs() < 1e-5,
                "element {i}: swapped {} vs direct {}",
                c[i],
                reference[i]
            );
        }
    }

    #[test]
    fn swapped_block_accumulates() {
        let a = [0.5f32; 64];
        let b = [2.0f32; 128];
        let mut c = [1.0f32; 128];
        swapped_spmm_block(&a, &b, &mut c);
        assert!(c.iter().all(|&x| (x - 9.0).abs() < 1e-6), "1 + 8·0.5·2");
    }
}
