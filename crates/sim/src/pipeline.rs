//! Per-thread-block pipeline composition (Figure 5).
//!
//! Given the per-block load/compute times produced by the memory model,
//! each pipeline composes them into the TB's latency and its bubble time
//! (cycles the compute unit sat idle waiting on memory):
//!
//! * [`PipelineKind::SerialScalar`] — CUDA-core kernels: high occupancy
//!   gives partial memory/compute overlap but no explicit staging;
//! * [`PipelineKind::TcgnnSync`] — TC-GNN: synchronous load→compute per
//!   block, full bubbles;
//! * [`PipelineKind::DtcDoubleBuffer`] — DTC-SpMM (Fig 5a): A tiles are
//!   double-buffered, but the dense-B `GToReg` sits on the critical path
//!   before every MMA;
//! * [`PipelineKind::AccLeastBubble`] — the paper's pipeline (Fig 5b):
//!   B prefetch + double-buffered A/AToB, steady-state iteration cost
//!   `max(mma, loadB, loadA)`.

/// Pipeline structures implemented by the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineKind {
    /// CUDA-core kernel with occupancy-driven overlap.
    SerialScalar,
    /// Synchronous TC kernel (TC-GNN).
    TcgnnSync,
    /// DTC-SpMM double-buffer pipeline (Fig 5a).
    DtcDoubleBuffer,
    /// Acc-SpMM least-bubble double-buffer pipeline (Fig 5b).
    AccLeastBubble,
}

/// Per-block times (seconds) of one TB, plus its write-back time.
#[derive(Debug, Clone, Default)]
pub struct TbTimes {
    /// Dense-B gather time per block.
    pub load_b: Vec<f64>,
    /// Sparse-A (tile + metadata) load time per block.
    pub load_a: Vec<f64>,
    /// MMA/FMA time per block.
    pub compute: Vec<f64>,
    /// Decode (decompression) time per block.
    pub decode: Vec<f64>,
    /// C write-back time (once per segment, aggregated).
    pub writeback: f64,
    /// Synchronization cost charged per iteration (seconds).
    pub sync: f64,
}

/// Composition result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TbLatency {
    /// Total TB latency in seconds.
    pub total: f64,
    /// Time the compute pipe idled waiting on memory.
    pub bubbles: f64,
}

/// Fraction of the shorter of (memory, compute) hidden by occupancy in
/// scalar kernels.
const SCALAR_OVERLAP: f64 = 0.85;

/// Emit a composed latency into the `sim.pipeline.*` trace counters
/// (nanosecond granularity). Counter handles are resolved once and
/// cached: `compose` runs per thread block, so the enabled path must be
/// two `fetch_add`s, not two registry lookups.
fn emit_latency_counters(lat: &TbLatency) {
    use std::sync::OnceLock;
    if !spmm_trace::is_enabled() {
        return;
    }
    static BUBBLE: OnceLock<spmm_trace::Counter> = OnceLock::new();
    static BUSY: OnceLock<spmm_trace::Counter> = OnceLock::new();
    BUBBLE
        .get_or_init(|| spmm_trace::counter("sim.pipeline.bubble_ns"))
        .add((lat.bubbles * 1e9) as u64);
    BUSY.get_or_init(|| spmm_trace::counter("sim.pipeline.busy_ns"))
        .add((lat.total * 1e9) as u64);
}

/// Compose a TB's latency under the given pipeline.
pub fn compose(kind: PipelineKind, t: &TbTimes) -> TbLatency {
    let lat = compose_inner(kind, t);
    emit_latency_counters(&lat);
    lat
}

fn compose_inner(kind: PipelineKind, t: &TbTimes) -> TbLatency {
    let n = t.compute.len();
    debug_assert_eq!(t.load_b.len(), n);
    debug_assert_eq!(t.load_a.len(), n);
    if n == 0 {
        return TbLatency {
            total: t.writeback,
            bubbles: 0.0,
        };
    }
    let decode_at = |i: usize| t.decode.get(i).copied().unwrap_or(0.0);
    match kind {
        PipelineKind::SerialScalar => {
            let mem: f64 =
                t.load_b.iter().sum::<f64>() + t.load_a.iter().sum::<f64>() + t.writeback;
            let comp: f64 =
                t.compute.iter().sum::<f64>() + t.decode.iter().sum::<f64>() + t.sync * n as f64;
            let overlapped = SCALAR_OVERLAP * mem.min(comp);
            TbLatency {
                total: mem + comp - overlapped,
                bubbles: (mem - overlapped).max(0.0),
            }
        }
        PipelineKind::TcgnnSync => {
            // load A, load B, decode, compute, sync — strictly in order,
            // every block.
            let mut total = 0.0;
            let mut bubbles = 0.0;
            for i in 0..n {
                let stall = t.load_a[i] + t.load_b[i] + decode_at(i) + t.sync;
                total += stall + t.compute[i];
                bubbles += stall;
            }
            TbLatency {
                total: total + t.writeback,
                bubbles,
            }
        }
        PipelineKind::DtcDoubleBuffer => {
            // Warm-up: first A tile staged.
            let mut total = t.load_a[0] + decode_at(0);
            let mut bubbles = total;
            // Iteration i: B load is serial before the MMA (implicit
            // sync, Fig 5a); the *next* A tile load overlaps the MMA.
            for i in 0..n {
                let next_a = if i + 1 < n {
                    t.load_a[i + 1] + decode_at(i + 1)
                } else {
                    0.0
                };
                let iter = t.load_b[i] + t.sync + t.compute[i].max(next_a);
                total += iter;
                bubbles += iter - t.compute[i];
            }
            TbLatency {
                total: total + t.writeback,
                bubbles,
            }
        }
        PipelineKind::AccLeastBubble => {
            // Warm-up: A tile + AToB staged, first B prefetched; loads
            // overlap each other via cp.async.
            let warm = (t.load_a[0] + decode_at(0)).max(t.load_b[0]);
            let mut total = warm;
            let mut bubbles = warm;
            // Steady state: MMA i overlaps B prefetch i+1 and A stage
            // i+1; per-iteration cost is the max of the three.
            for i in 0..n {
                let next_b = if i + 1 < n { t.load_b[i + 1] } else { 0.0 };
                let next_a = if i + 1 < n {
                    t.load_a[i + 1] + decode_at(i + 1)
                } else {
                    0.0
                };
                let iter = t.compute[i].max(next_b).max(next_a) + t.sync;
                total += iter;
                bubbles += iter - t.compute[i];
            }
            TbLatency {
                total: total + t.writeback,
                bubbles,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(load_b: &[f64], load_a: &[f64], compute: &[f64], wb: f64) -> TbTimes {
        TbTimes {
            load_b: load_b.to_vec(),
            load_a: load_a.to_vec(),
            compute: compute.to_vec(),
            decode: vec![0.0; compute.len()],
            writeback: wb,
            sync: 0.0,
        }
    }

    #[test]
    fn acc_is_never_slower_than_dtc() {
        let t = times(
            &[3.0, 3.0, 3.0, 3.0],
            &[1.0, 1.0, 1.0, 1.0],
            &[2.0, 2.0, 2.0, 2.0],
            1.0,
        );
        let acc = compose(PipelineKind::AccLeastBubble, &t);
        let dtc = compose(PipelineKind::DtcDoubleBuffer, &t);
        let tcgnn = compose(PipelineKind::TcgnnSync, &t);
        assert!(acc.total < dtc.total, "acc {} dtc {}", acc.total, dtc.total);
        assert!(dtc.total < tcgnn.total);
        assert!(acc.bubbles < dtc.bubbles);
    }

    #[test]
    fn acc_steady_state_is_max_of_streams() {
        // Long chain: per-iteration cost must approach max(B, A, mma)=3.
        let n = 100;
        let t = times(&vec![3.0; n], &vec![1.0; n], &vec![2.0; n], 0.0);
        let acc = compose(PipelineKind::AccLeastBubble, &t);
        let per_iter = acc.total / n as f64;
        assert!((per_iter - 3.0).abs() < 0.2, "per-iter {per_iter}");
    }

    #[test]
    fn dtc_pays_b_load_every_iteration() {
        let n = 50;
        let t = times(&vec![3.0; n], &vec![1.0; n], &vec![2.0; n], 0.0);
        let dtc = compose(PipelineKind::DtcDoubleBuffer, &t);
        // Per iteration: 3 (B) + 2 (mma) = 5.
        let per_iter = dtc.total / n as f64;
        assert!((per_iter - 5.0).abs() < 0.2, "per-iter {per_iter}");
    }

    #[test]
    fn compute_bound_pipelines_converge() {
        // When mma dominates, Acc total ≈ Σ mma and bubbles ≈ warm-up.
        let n = 20;
        let t = times(&vec![0.1; n], &vec![0.1; n], &vec![5.0; n], 0.0);
        let acc = compose(PipelineKind::AccLeastBubble, &t);
        assert!((acc.total - (n as f64 * 5.0 + 0.1)).abs() < 1e-9);
        assert!(acc.bubbles < 0.2);
    }

    #[test]
    fn scalar_overlap_bounded_by_components() {
        let t = times(&[4.0], &[1.0], &[3.0], 1.0);
        let s = compose(PipelineKind::SerialScalar, &t);
        // mem = 6, comp = 3: total in [max, sum].
        assert!(s.total >= 6.0 - 1e-12);
        assert!(s.total <= 9.0 + 1e-12);
    }

    #[test]
    fn empty_tb_costs_only_writeback() {
        let t = times(&[], &[], &[], 2.0);
        for kind in [
            PipelineKind::SerialScalar,
            PipelineKind::TcgnnSync,
            PipelineKind::DtcDoubleBuffer,
            PipelineKind::AccLeastBubble,
        ] {
            assert_eq!(compose(kind, &t).total, 2.0);
        }
    }
}
