//! The simulation engine: cache pass → per-TB timing → SM scheduling.

use crate::arch::GpuArch;
use crate::cache::{Cache, CacheOp};
use crate::pipeline::{compose, PipelineKind, TbTimes};
use crate::report::KernelReport;
use crate::sched::schedule;
use crate::trace::KernelDesc;

/// Virtual address bases keeping the operand streams disjoint.
const B_BASE: u64 = 1 << 40;
const A_BASE: u64 = 2 << 40;
const C_BASE: u64 = 3 << 40;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Kernel launch overhead (seconds).
    pub launch_overhead_s: f64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Memory-level parallelism: outstanding line requests that amortize
    /// latency (warp-wide loads + software pipelining).
    pub mlp: f64,
    /// Divide cache capacities by this factor. Evaluation matrices are
    /// scaled-down analogs of the paper's (see `spmm-matrix::datasets`);
    /// scaling the caches by the same factor preserves the
    /// working-set-to-cache ratios that drive hit rates.
    pub cache_scale: f64,
    /// Per-iteration synchronization cost (seconds) for sync-heavy
    /// pipelines.
    pub sync_s: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            launch_overhead_s: 3e-6,
            l1_ways: 8,
            l2_ways: 16,
            mlp: 24.0,
            cache_scale: 1.0,
            sync_s: 40e-9,
        }
    }
}

impl SimOptions {
    /// Options for a dataset scaled down by `factor` rows: cache
    /// capacities shrink alongside so hit rates stay representative.
    pub fn scaled(factor: f64) -> Self {
        SimOptions {
            cache_scale: factor.max(1.0),
            ..Default::default()
        }
    }
}

/// Byte counts of one access set split by serving level.
#[derive(Debug, Clone, Copy, Default)]
struct LevelBytes {
    l1: u64,
    l2: u64,
    dram: u64,
}

impl LevelBytes {
    fn add(&mut self, o: LevelBytes) {
        self.l1 += o.l1;
        self.l2 += o.l2;
        self.dram += o.dram;
    }
}

/// Per-byte time costs by level.
#[derive(Debug, Clone, Copy)]
struct ByteCosts {
    l1: f64,
    l2: f64,
    dram: f64,
}

impl ByteCosts {
    fn time(&self, b: LevelBytes) -> f64 {
        b.l1 as f64 * self.l1 + b.l2 as f64 * self.l2 + b.dram as f64 * self.dram
    }
}

struct Hierarchy {
    l1s: Vec<Cache>,
    l2: Cache,
    line: usize,
}

impl Hierarchy {
    fn new(arch: &GpuArch, opts: &SimOptions, sms_used: usize) -> Self {
        // L2 scales with the full dataset scale factor (it caches the
        // whole B working set); L1 reuse distances are short-range and
        // survive the downscaling largely intact, so L1 shrinks only by
        // the square root of the factor.
        let l2_cap = ((arch.l2_bytes as f64 / opts.cache_scale) as usize).max(4 * arch.line_bytes);
        let l1_cap = ((arch.l1_bytes_per_sm as f64 / opts.cache_scale.sqrt()) as usize)
            .max(4 * arch.line_bytes);
        Hierarchy {
            l1s: (0..sms_used)
                .map(|_| Cache::new(l1_cap, opts.l1_ways, arch.line_bytes))
                .collect(),
            l2: Cache::new(l2_cap, opts.l2_ways, arch.line_bytes),
            line: arch.line_bytes,
        }
    }

    /// Run one load through the hierarchy honouring the cache operator;
    /// returns bytes by serving level.
    fn load(&mut self, sm: usize, addr: u64, bytes: usize, op: CacheOp) -> LevelBytes {
        let mut out = LevelBytes::default();
        let first = addr / self.line as u64;
        let last = (addr + bytes.max(1) as u64 - 1) / self.line as u64;
        let probe_l1 = op.allocates_l1();
        let evict_first = op.evict_first();
        for line in first..=last {
            let a = line * self.line as u64;
            let served = bytes.min(self.line) as u64;
            if probe_l1 && self.l1s[sm].access_line(a, true, evict_first) {
                out.l1 += served;
                continue;
            }
            if self.l2.access_line(a, op.allocates_l2(), evict_first) {
                out.l2 += served;
            } else {
                out.dram += served;
            }
        }
        out
    }

    /// Run a store: write-through (`.wt`) goes straight to DRAM without
    /// allocation; write-back (`.wb`) write-allocates in L2 — polluting
    /// it and paying allocate-fetches on the partially-written boundary
    /// sectors (full-line writes skip the fetch), a ~25% traffic tax on
    /// the C stream. Avoiding both is why the paper stores C with `.wt`.
    fn store(&mut self, addr: u64, bytes: usize, op: CacheOp) -> LevelBytes {
        if op.allocates_l2() {
            let first = addr / self.line as u64;
            let last = (addr + bytes.max(1) as u64 - 1) / self.line as u64;
            for line in first..=last {
                self.l2.access_line(line * self.line as u64, true, false);
            }
            return LevelBytes {
                l1: 0,
                l2: 0,
                dram: bytes as u64 + bytes as u64 / 4,
            };
        }
        LevelBytes {
            l1: 0,
            l2: 0,
            dram: bytes as u64,
        }
    }
}

/// Simulate one kernel execution on the architecture.
pub fn simulate(arch: &GpuArch, desc: &KernelDesc, opts: &SimOptions) -> KernelReport {
    simulate_traced(arch, desc, opts).0
}

/// Profile a compiled kernel trace on a named architecture — the entry
/// point the execution-plan pipeline uses once its Compile stage has
/// produced the [`KernelDesc`] (resolving the [`crate::Arch`] spec here
/// keeps plan holders free of `GpuArch` plumbing).
pub fn profile(arch: crate::Arch, desc: &KernelDesc, opts: &SimOptions) -> KernelReport {
    simulate(&arch.spec(), desc, opts)
}

/// [`simulate`] that also returns the execution timeline (per-TB spans
/// on SMs) for Chrome-trace export.
pub fn simulate_traced(
    arch: &GpuArch,
    desc: &KernelDesc,
    opts: &SimOptions,
) -> (KernelReport, crate::export::ExecutionTrace) {
    let _span = spmm_trace::span("sim.simulate");
    let num_tbs = desc.tbs.len();
    let active = num_tbs.clamp(1, arch.num_sms);
    let mut hier = Hierarchy::new(arch, opts, active);
    let row_bytes = desc.row_bytes();

    // Per-byte costs: bandwidth share plus latency amortized over the
    // outstanding-line window.
    let line = arch.line_bytes as f64;
    let costs = ByteCosts {
        l1: 1.0 / (arch.l1_bw_gbps * 1e9) + arch.l1_latency_ns * 1e-9 / (opts.mlp * line),
        l2: 1.0 / arch.l2_bw_per_sm(active) + arch.l2_latency_ns * 1e-9 / (opts.mlp * line),
        dram: 1.0 / (arch.dram_bw_per_sm(active) * desc.mem_efficiency)
            + arch.dram_latency_ns * 1e-9 / (opts.mlp * line),
    };
    let flops_per_sm = if desc.use_tensor_cores {
        arch.tc_flops_per_sm()
    } else {
        arch.cuda_flops_per_sm()
    };
    let decode_ops_per_sm = arch.cuda_flops_per_sm();
    let sync = match desc.pipeline {
        PipelineKind::SerialScalar => 0.0,
        PipelineKind::TcgnnSync => 1.5 * opts.sync_s,
        PipelineKind::DtcDoubleBuffer => opts.sync_s,
        PipelineKind::AccLeastBubble => 0.75 * opts.sync_s,
    };

    let mut a_cursor = A_BASE;
    let mut c_cursor = C_BASE;
    let mut total = LevelBytes::default();
    let mut tb_latencies = Vec::with_capacity(num_tbs);
    let mut busy_s = 0.0f64;
    let mut bubble_s = 0.0f64;
    let mut load_hits = 0u64;
    let mut load_misses = 0u64;
    let mut l2_hits = 0u64;
    let mut l2_misses = 0u64;

    // Cache-pass SM assignment: contiguous spans of the launch order.
    // With multiple TBs resident per SM and launch-order dispatch,
    // neighbouring TBs (= neighbouring RowWindows) execute on the same
    // SM and share its L1 — the locality channel row reordering improves
    // (Figure 11).
    let span = desc.tbs.len().div_ceil(active).max(1);
    for (i, tb) in desc.tbs.iter().enumerate() {
        let sm = (i / span).min(active - 1);
        let n = tb.blocks.len();
        let mut times = TbTimes {
            load_b: Vec::with_capacity(n),
            load_a: Vec::with_capacity(n),
            compute: Vec::with_capacity(n),
            decode: Vec::with_capacity(n),
            writeback: 0.0,
            sync,
        };
        for blk in &tb.blocks {
            // Sparse A stream (values + metadata), consumed once.
            let a = hier.load(sm, a_cursor, blk.a_bytes as usize, desc.policy.a_op);
            a_cursor += blk.a_bytes as u64;
            // Dense B gathers.
            let mut b = LevelBytes::default();
            for &row in &blk.b_rows {
                let lb = hier.load(
                    sm,
                    B_BASE + row as u64 * row_bytes as u64,
                    row_bytes,
                    desc.policy.b_op,
                );
                b.add(lb);
            }
            total.add(a);
            total.add(b);
            times.load_a.push(costs.time(a));
            times.load_b.push(costs.time(b));
            times.compute.push(blk.flops as f64 / flops_per_sm);
            times.decode.push(blk.decode_ops as f64 / decode_ops_per_sm);
        }
        // C write-back: every segment writes its rows once.
        let c_bytes = tb.c_rows as usize * row_bytes;
        let c = hier.store(c_cursor, c_bytes, desc.policy.c_op);
        c_cursor += c_bytes as u64;
        total.add(c);
        times.writeback = c.dram as f64 * costs.dram
            + tb.segments.max(1) as f64 * arch.dram_latency_ns * 1e-9 / opts.mlp;

        let lat = compose(desc.pipeline, &times);
        busy_s += lat.total;
        bubble_s += lat.bubbles;
        tb_latencies.push(lat.total);
    }

    for c in &hier.l1s {
        load_hits += c.hits();
        load_misses += c.misses();
    }
    l2_hits += hier.l2.hits();
    l2_misses += hier.l2.misses();

    let sched = schedule(&tb_latencies, arch.num_sms);
    let trace = crate::export::ExecutionTrace::from_schedule(&sched, &tb_latencies);
    let mut time_s = sched.makespan + opts.launch_overhead_s;
    // Architecture-specific library tuning multiplier (cuSPARSE model).
    if desc.arch_boost > 0.0 {
        time_s /= desc.arch_boost;
    }

    // Bytes-moved / hit-rate / bubble statistics double as trace
    // counters, so a measurement window over any number of simulations
    // accumulates the same quantities the per-run report carries.
    if spmm_trace::is_enabled() {
        spmm_trace::counter_add("sim.dram_bytes", total.dram);
        spmm_trace::counter_add("sim.l2_bytes", total.l2);
        spmm_trace::counter_add("sim.l1_bytes", total.l1);
        spmm_trace::counter_add("sim.tbs", num_tbs as u64);
        spmm_trace::counter_add("sim.bubble_ns", (bubble_s * 1e9) as u64);
        spmm_trace::counter_add("sim.busy_ns", (busy_s * 1e9) as u64);
        for c in &hier.l1s {
            c.emit_trace_counters(crate::cache::MemLevel::L1);
        }
        hier.l2.emit_trace_counters(crate::cache::MemLevel::L2);
    }

    let executed = desc.executed_flops();
    let report = KernelReport {
        time_s,
        gflops: desc.effective_flops as f64 / time_s / 1e9,
        dense_gflops: executed as f64 / time_s / 1e9,
        dram_bytes: total.dram,
        l2_bytes: total.l2,
        l1_bytes: total.l1,
        l1_hit_rate: if load_hits + load_misses == 0 {
            0.0
        } else {
            load_hits as f64 / (load_hits + load_misses) as f64
        },
        l2_hit_rate: if l2_hits + l2_misses == 0 {
            0.0
        } else {
            l2_hits as f64 / (l2_hits + l2_misses) as f64
        },
        bubble_s,
        busy_s,
        mem_throughput_gbps: total.dram as f64 / time_s / 1e9,
        compute_throughput_gflops: executed as f64 / time_s / 1e9,
        num_tbs,
        sm_utilization: sched.utilization,
    };
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{A800, H100, RTX4090};
    use crate::trace::{BlockTrace, CachePolicy, TbTrace};

    fn tc_desc(num_tbs: usize, blocks_per_tb: usize, n: usize, reuse: bool) -> KernelDesc {
        let tbs: Vec<TbTrace> = (0..num_tbs)
            .map(|t| TbTrace {
                blocks: (0..blocks_per_tb)
                    .map(|b| BlockTrace {
                        // `reuse` makes every block gather the same 8 rows;
                        // otherwise rows are all distinct.
                        b_rows: (0..8u32)
                            .map(|k| {
                                if reuse {
                                    k
                                } else {
                                    (t * blocks_per_tb * 8 + b * 8) as u32 + k
                                }
                            })
                            .collect(),
                        a_bytes: 44 + 32,
                        flops: 2 * 8 * 8 * n as u64,
                        decode_ops: 64,
                    })
                    .collect(),
                c_rows: 8,
                segments: 1,
            })
            .collect();
        let eff: u64 = tbs
            .iter()
            .flat_map(|t| t.blocks.iter())
            .map(|b| b.flops / 4)
            .sum();
        KernelDesc {
            tbs,
            pipeline: PipelineKind::AccLeastBubble,
            policy: CachePolicy::acc_policy(),
            mem_efficiency: 0.85,
            use_tensor_cores: true,
            feature_dim: n,
            effective_flops: eff,
            arch_boost: 1.0,
            isa_tier: spmm_common::IsaTier::Scalar,
        }
    }

    #[test]
    fn reuse_raises_hit_rate_and_speed() {
        let opts = SimOptions::default();
        let reuse = simulate(&A800, &tc_desc(32, 16, 128, true), &opts);
        let stream = simulate(&A800, &tc_desc(32, 16, 128, false), &opts);
        assert!(reuse.l1_hit_rate > stream.l1_hit_rate);
        assert!(reuse.time_s < stream.time_s);
        assert!(reuse.dram_bytes < stream.dram_bytes);
    }

    #[test]
    fn more_bandwidth_is_faster() {
        let desc = tc_desc(64, 32, 128, false);
        let opts = SimOptions::default();
        let t4090 = simulate(&RTX4090, &desc, &opts).time_s;
        let th100 = simulate(&H100, &desc, &opts).time_s;
        assert!(th100 < t4090, "H100 {} vs 4090 {}", th100, t4090);
    }

    #[test]
    fn acc_pipeline_beats_dtc_and_tcgnn() {
        let mut desc = tc_desc(64, 32, 128, false);
        let opts = SimOptions::default();
        let acc = simulate(&A800, &desc, &opts).time_s;
        desc.pipeline = PipelineKind::DtcDoubleBuffer;
        let dtc = simulate(&A800, &desc, &opts).time_s;
        desc.pipeline = PipelineKind::TcgnnSync;
        let tcgnn = simulate(&A800, &desc, &opts).time_s;
        assert!(acc < dtc, "acc {acc} dtc {dtc}");
        assert!(dtc < tcgnn, "dtc {dtc} tcgnn {tcgnn}");
    }

    #[test]
    fn imbalance_slows_the_kernel() {
        // Same total blocks, one giant TB vs evenly spread.
        let even = tc_desc(128, 8, 128, false);
        let mut skewed = tc_desc(127, 1, 128, false);
        let big: Vec<BlockTrace> = (0..(128 * 8 - 127))
            .map(|b| BlockTrace {
                b_rows: (0..8u32).map(|k| (b * 8) as u32 + k).collect(),
                a_bytes: 76,
                flops: 2 * 8 * 8 * 128,
                decode_ops: 64,
            })
            .collect();
        skewed.tbs.push(TbTrace {
            blocks: big,
            c_rows: 8,
            segments: 1,
        });
        skewed.effective_flops = even.effective_flops;
        let opts = SimOptions::default();
        let t_even = simulate(&A800, &even, &opts).time_s;
        let t_skew = simulate(&A800, &skewed, &opts).time_s;
        assert!(
            t_skew > 1.5 * t_even,
            "straggler must dominate: even {t_even} skewed {t_skew}"
        );
    }

    #[test]
    fn wt_policy_preserves_l2_for_b() {
        // Many TBs writing C: .wb pollutes L2 and must not beat .wt.
        let mut desc = tc_desc(128, 32, 256, false);
        let opts = SimOptions {
            cache_scale: 16.0,
            ..Default::default()
        };
        desc.policy = CachePolicy::acc_policy();
        let wt = simulate(&A800, &desc, &opts);
        desc.policy = CachePolicy {
            c_op: CacheOp::Wb,
            ..CachePolicy::acc_policy()
        };
        let wb = simulate(&A800, &desc, &opts);
        assert!(wt.l2_hit_rate >= wb.l2_hit_rate - 1e-9);
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let desc = KernelDesc {
            tbs: vec![],
            pipeline: PipelineKind::SerialScalar,
            policy: CachePolicy::hardware_default(),
            mem_efficiency: 0.8,
            use_tensor_cores: false,
            feature_dim: 128,
            effective_flops: 0,
            arch_boost: 1.0,
            isa_tier: spmm_common::IsaTier::Scalar,
        };
        let r = simulate(&A800, &desc, &SimOptions::default());
        assert!((r.time_s - 3e-6).abs() < 1e-12);
    }
}
