//! GPU timing and cache simulator — the substrate standing in for the
//! paper's RTX 4090 / A800 / H100 testbed.
//!
//! The simulator is analytical + trace-driven: kernels compile their work
//! into per-thread-block traces ([`trace::TbTrace`]); a cache pass runs
//! every B-gather and A-stream through set-associative L1s (one per SM)
//! and a shared L2 honouring PTX cache operators ([`cache`]); a timing
//! pass composes per-block load/compute/write times through one of four
//! pipeline models ([`pipeline`]); and a list scheduler maps thread
//! blocks onto SMs to produce the kernel makespan ([`sched`]).
//!
//! Nothing here knows about sparse formats — the kernels crate translates
//! formats into traces — so the simulator stays a reusable GPU model.

pub mod arch;
pub mod cache;
pub mod engine;
pub mod export;
pub mod mma;
pub mod pipeline;
pub mod report;
pub mod sched;
pub mod trace;

pub use arch::{Arch, GpuArch};
pub use cache::{Cache, CacheOp, MemLevel};
pub use engine::{profile, simulate, simulate_traced, SimOptions};
pub use export::ExecutionTrace;
pub use pipeline::PipelineKind;
pub use report::KernelReport;
pub use trace::{BlockTrace, CachePolicy, KernelDesc, TbTrace};
