//! Set-associative cache simulation with PTX cache-operator semantics
//! (Table 1 of the paper).

/// PTX cache operators (Table 1). Load operators control allocation
/// level; store operators control write-allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheOp {
    /// Cache at all levels (default load).
    Ca,
    /// Cache in L2 and below, bypass L1.
    Cg,
    /// Cache streaming: allocate with evict-first priority.
    Cs,
    /// Last use: read and release the line.
    Lu,
    /// Don't cache, fetch again (volatile).
    Cv,
    /// Write-back at all coherent levels (default store).
    Wb,
    /// Write-through L2 without allocation — the paper's choice for the
    /// C result, keeping L2 free for B reuse.
    Wt,
}

impl CacheOp {
    /// Human-readable PTX mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CacheOp::Ca => ".ca",
            CacheOp::Cg => ".cg",
            CacheOp::Cs => ".cs",
            CacheOp::Lu => ".lu",
            CacheOp::Cv => ".cv",
            CacheOp::Wb => ".wb",
            CacheOp::Wt => ".wt",
        }
    }

    /// Table-1 description.
    pub fn meaning(&self) -> &'static str {
        match self {
            CacheOp::Ca => "Cache at all levels, likely to be accessed again",
            CacheOp::Cg => "Cache in L2 and below, not L1",
            CacheOp::Cs => "Cache streaming, likely to be accessed once",
            CacheOp::Lu => "Last use",
            CacheOp::Cv => "Don't cache and fetch again",
            CacheOp::Wb => "Cache write-back all coherent levels",
            CacheOp::Wt => "Cache write-through the L2 Cache",
        }
    }

    /// Does a load with this operator allocate in L1?
    pub fn allocates_l1(&self) -> bool {
        matches!(self, CacheOp::Ca | CacheOp::Cs | CacheOp::Lu | CacheOp::Wb)
    }

    /// Does it allocate in L2?
    pub fn allocates_l2(&self) -> bool {
        !matches!(self, CacheOp::Cv | CacheOp::Wt)
    }

    /// Streaming (evict-first) insertion?
    pub fn evict_first(&self) -> bool {
        matches!(self, CacheOp::Cs | CacheOp::Lu)
    }
}

/// Which memory level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemLevel {
    /// Served from the SM-local L1.
    L1,
    /// Served from the shared L2.
    L2,
    /// Went to DRAM.
    Dram,
}

/// A set-associative LRU cache over line tags.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `sets × ways` tags, MRU first within each set. `u64::MAX` = empty.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines (both powers of two recommended; sets are
    /// rounded up to at least 1).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways >= 1 && line_bytes.is_power_of_two());
        let lines = (capacity_bytes / line_bytes).max(ways);
        let sets = (lines / ways).max(1);
        Cache {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways],
            hits: 0,
            misses: 0,
        }
    }

    /// Access one line-aligned address. Returns whether it hit. On miss,
    /// allocates only if `allocate`; `evict_first` inserts at LRU
    /// position (streaming data that should not displace reused lines).
    pub fn access_line(&mut self, addr: u64, allocate: bool, evict_first: bool) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Move to MRU.
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if allocate {
            if evict_first {
                // Insert at LRU: replaces the current LRU way and stays
                // the first eviction candidate.
                let last = self.ways - 1;
                ways[last] = line;
            } else {
                ways.rotate_right(1);
                ways[0] = line;
            }
        }
        false
    }

    /// Access a byte range, touching every line it spans. Returns the
    /// number of lines that hit and the total lines touched.
    pub fn access_range(
        &mut self,
        addr: u64,
        bytes: usize,
        allocate: bool,
        evict_first: bool,
    ) -> (u32, u32) {
        let line_bytes = 1u64 << self.line_shift;
        let first = addr >> self.line_shift;
        let last = (addr + bytes.max(1) as u64 - 1) >> self.line_shift;
        let mut hits = 0u32;
        for line in first..=last {
            if self.access_line(line << self.line_shift, allocate, evict_first) {
                hits += 1;
            }
        }
        let _ = line_bytes;
        (hits, (last - first + 1) as u32)
    }

    /// Invalidate everything (new kernel launch).
    pub fn clear(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = u64::MAX);
        self.hits = 0;
        self.misses = 0;
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Add this cache's hit/miss totals to the global trace counters
    /// under `sim.l1.*` or `sim.l2.*` (no-op while tracing is disabled).
    /// The engine calls this once per simulated kernel, so the counters
    /// aggregate naturally across a measurement window.
    pub fn emit_trace_counters(&self, level: MemLevel) {
        let (hits, misses) = match level {
            MemLevel::L1 => ("sim.l1.hits", "sim.l1.misses"),
            MemLevel::L2 => ("sim.l2.hits", "sim.l2.misses"),
            MemLevel::Dram => return,
        };
        spmm_trace::counter_add(hits, self.hits);
        spmm_trace::counter_add(misses, self.misses);
    }

    /// Hit rate in `[0, 1]`; 0 when untouched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1usize << self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_allocate() {
        let mut c = Cache::new(1024, 4, 64);
        assert!(!c.access_line(0, true, false));
        assert!(c.access_line(32, true, false), "same line");
        assert!(!c.access_line(64, true, false), "next line");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn no_allocate_never_caches() {
        let mut c = Cache::new(1024, 4, 64);
        assert!(!c.access_line(0, false, false));
        assert!(!c.access_line(0, false, false));
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 4 lines total, 4-way single set.
        let mut c = Cache::new(256, 4, 64);
        for i in 0..4u64 {
            c.access_line(i * 64, true, false);
        }
        // Touch line 0 to make it MRU, then insert a 5th line.
        assert!(c.access_line(0, true, false));
        c.access_line(4 * 64, true, false);
        // Line 1 was LRU and must be gone; line 0 must survive.
        assert!(c.access_line(0, true, false));
        assert!(!c.access_line(64, true, false));
    }

    #[test]
    fn evict_first_insertion_does_not_displace_mru() {
        let mut c = Cache::new(256, 4, 64);
        for i in 0..4u64 {
            c.access_line(i * 64, true, false);
        }
        // Streaming insert replaces only the LRU way (line 0).
        c.access_line(100 * 64, true, true);
        assert!(c.access_line(3 * 64, true, false), "MRU survives");
        assert!(c.access_line(2 * 64, true, false));
        assert!(!c.access_line(0, true, false), "LRU was displaced");
    }

    #[test]
    fn access_range_spans_lines() {
        let mut c = Cache::new(4096, 4, 64);
        let (hits, lines) = c.access_range(0, 200, true, false);
        assert_eq!(lines, 4, "200 bytes from 0 touch 4 64B lines");
        assert_eq!(hits, 0);
        let (hits, lines) = c.access_range(0, 200, true, false);
        assert_eq!((hits, lines), (4, 4));
    }

    #[test]
    fn operator_semantics() {
        assert!(CacheOp::Ca.allocates_l1());
        assert!(!CacheOp::Cg.allocates_l1());
        assert!(CacheOp::Cg.allocates_l2());
        assert!(!CacheOp::Cv.allocates_l2());
        assert!(!CacheOp::Wt.allocates_l2());
        assert!(CacheOp::Wb.allocates_l2());
        assert!(CacheOp::Cs.evict_first());
        assert_eq!(CacheOp::Wt.mnemonic(), ".wt");
        assert!(!CacheOp::Cs.meaning().is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut c = Cache::new(1024, 2, 64);
        c.access_line(0, true, false);
        c.clear();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access_line(0, true, false));
    }
}
