//! Property-based tests for the simulator's load-bearing algebra:
//! cache replacement, list scheduling, and pipeline composition.

use proptest::prelude::*;
use spmm_sim::pipeline::{compose, PipelineKind, TbTimes};
use spmm_sim::sched::schedule;
use spmm_sim::Cache;

prop_compose! {
    fn arb_times()(n in 1usize..12, seed in 0u64..1000) -> TbTimes {
        let mut t = TbTimes::default();
        for i in 0..n {
            let h = |k: u64| {
                (spmm_common::util::splitmix64(seed * 1000 + i as u64 * 10 + k) % 1000) as f64
                    / 100.0
                    + 0.01
            };
            t.load_b.push(h(1));
            t.load_a.push(h(2));
            t.compute.push(h(3));
            t.decode.push(0.0);
        }
        t.writeback = 0.5;
        t
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---------------- cache ----------------

    #[test]
    fn working_set_within_capacity_always_hits_on_reuse(
        lines in proptest::collection::vec(0u64..64, 1..16)
    ) {
        // 16 lines of 64B, fully associative enough (16 ways, 1 set):
        // any <=16-line working set must fully hit on the second pass.
        let mut c = Cache::new(16 * 64, 16, 64);
        let mut distinct: Vec<u64> = lines.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for &l in &distinct {
            c.access_line(l * 64, true, false);
        }
        let before_hits = c.hits();
        for &l in &distinct {
            prop_assert!(c.access_line(l * 64, true, false));
        }
        prop_assert_eq!(c.hits(), before_hits + distinct.len() as u64);
    }

    #[test]
    fn hit_rate_is_a_probability(
        addrs in proptest::collection::vec(0u64..10_000, 1..200)
    ) {
        let mut c = Cache::new(1024, 4, 64);
        for &a in &addrs {
            c.access_line(a * 64, true, false);
        }
        let hr = c.hit_rate();
        prop_assert!((0.0..=1.0).contains(&hr));
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    #[test]
    fn no_allocate_accesses_never_hit_later(
        addrs in proptest::collection::vec(0u64..100, 1..50)
    ) {
        let mut c = Cache::new(4096, 4, 64);
        for &a in &addrs {
            c.access_line(a * 64, false, false);
        }
        prop_assert_eq!(c.hits(), 0, "nothing was ever allocated");
    }

    // ---------------- scheduler ----------------

    #[test]
    fn makespan_respects_classical_bounds(
        times in proptest::collection::vec(0.001f64..10.0, 1..64),
        workers in 1usize..16
    ) {
        let r = schedule(&times, workers);
        let sum: f64 = times.iter().sum();
        let max = times.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(r.makespan >= max - 1e-9, "makespan under max task");
        prop_assert!(r.makespan >= sum / workers as f64 - 1e-9, "under mean bound");
        prop_assert!(r.makespan <= sum + 1e-9, "over serial bound");
        // Greedy list scheduling is 2-competitive.
        prop_assert!(
            r.makespan <= 2.0 * (sum / workers as f64 + max) + 1e-9,
            "beyond the 2-approximation bound"
        );
        prop_assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
        prop_assert_eq!(r.assignment.len(), times.len());
    }

    #[test]
    fn busy_times_partition_total_work(
        times in proptest::collection::vec(0.001f64..5.0, 1..64),
        workers in 1usize..8
    ) {
        let r = schedule(&times, workers);
        let sum: f64 = times.iter().sum();
        let busy: f64 = r.busy.iter().sum();
        prop_assert!((busy - sum).abs() < 1e-9);
    }

    // ---------------- pipelines ----------------

    #[test]
    fn pipeline_hierarchy_holds(t in arb_times()) {
        // With equal per-iteration sync, the paper's pipeline hierarchy
        // must hold for ANY per-block time vector.
        let acc = compose(PipelineKind::AccLeastBubble, &t);
        let dtc = compose(PipelineKind::DtcDoubleBuffer, &t);
        let tcgnn = compose(PipelineKind::TcgnnSync, &t);
        prop_assert!(acc.total <= dtc.total + 1e-9, "acc {} dtc {}", acc.total, dtc.total);
        prop_assert!(dtc.total <= tcgnn.total + 1e-9, "dtc {} tcgnn {}", dtc.total, tcgnn.total);
        prop_assert!(acc.bubbles <= tcgnn.bubbles + 1e-9);
    }

    #[test]
    fn bubbles_never_exceed_total(t in arb_times()) {
        for kind in [
            PipelineKind::SerialScalar,
            PipelineKind::TcgnnSync,
            PipelineKind::DtcDoubleBuffer,
            PipelineKind::AccLeastBubble,
        ] {
            let l = compose(kind, &t);
            prop_assert!(l.bubbles >= -1e-12, "{kind:?}");
            prop_assert!(l.bubbles <= l.total + 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn total_at_least_compute_and_at_least_memory_critical_path(t in arb_times()) {
        let compute_sum: f64 = t.compute.iter().sum();
        for kind in [
            PipelineKind::TcgnnSync,
            PipelineKind::DtcDoubleBuffer,
            PipelineKind::AccLeastBubble,
        ] {
            let l = compose(kind, &t);
            prop_assert!(
                l.total >= compute_sum - 1e-9,
                "{kind:?}: total {} under compute {compute_sum}",
                l.total
            );
            prop_assert!(l.total >= t.writeback - 1e-9);
        }
    }

    #[test]
    fn slower_memory_never_speeds_a_pipeline_up(t in arb_times(), idx in 0usize..12) {
        for kind in [
            PipelineKind::SerialScalar,
            PipelineKind::TcgnnSync,
            PipelineKind::DtcDoubleBuffer,
            PipelineKind::AccLeastBubble,
        ] {
            let base = compose(kind, &t);
            let mut slower = t.clone();
            let i = idx % slower.load_b.len();
            slower.load_b[i] += 1.0;
            let after = compose(kind, &slower);
            prop_assert!(
                after.total >= base.total - 1e-9,
                "{kind:?}: raising load_b[{i}] lowered total {} -> {}",
                base.total,
                after.total
            );
        }
    }
}
