//! The Equation (4) performance model.
//!
//! `T = LoadDenseTime + MMATime + WBTime` for one thread block processing
//! `TcBlockPerTB` TC blocks, with the write-back term — the novelty over
//! DTC-SpMM's model — charged at the same bandwidth cost as the dense
//! loads. After the operand swap the MMA shape constants are `M = 8`,
//! `K = 8`, `N = 16`.

/// Architecture numbers the model needs.
#[derive(Debug, Clone, Copy)]
pub struct ModelParams {
    /// Dense-B feature dimension.
    pub feature_dim: usize,
    /// Theoretical memory bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Theoretical TF32 tensor-core FLOPS.
    pub flops: f64,
    /// SMs available (for makespan estimation).
    pub num_sms: usize,
}

/// MMA shape after the left/right swap (§3.4): 8×8 sparse tile times
/// 8×16 dense tile.
pub const M: usize = 8;
/// Reduction dimension of the swapped MMA.
pub const K: usize = 8;
/// Free dimension of the swapped MMA.
pub const N: usize = 16;

/// Evaluator for Equation (4).
#[derive(Debug, Clone, Copy)]
pub struct PerfModel {
    params: ModelParams,
}

impl PerfModel {
    /// Build a model for the given architecture parameters.
    pub fn new(params: ModelParams) -> Self {
        assert!(params.bandwidth > 0.0 && params.flops > 0.0);
        PerfModel { params }
    }

    /// Dense-load term: `K × FeatureDim × TcBlockPerTB / Bandwidth`
    /// (bytes: ×4 for f32).
    pub fn load_dense_time(&self, tc_blocks_per_tb: usize) -> f64 {
        (K * self.params.feature_dim * tc_blocks_per_tb * 4) as f64 / self.params.bandwidth
    }

    /// MMA term per TB: `M × (2K−1) × FeatureDim / FLOPS` per TC block.
    pub fn mma_time(&self, tc_blocks_per_tb: usize) -> f64 {
        (M * (2 * K - 1) * self.params.feature_dim * tc_blocks_per_tb) as f64 / self.params.flops
    }

    /// Write-back term (the model's addition over DTC-SpMM): one window
    /// span of C written per segment, charged like a dense load.
    pub fn wb_time(&self, segments: usize) -> f64 {
        (K * self.params.feature_dim * segments * 4) as f64 / self.params.bandwidth
    }

    /// Total Equation-(4) time for a TB with `tc_blocks_per_tb` blocks
    /// spanning `segments` RowWindows.
    pub fn tb_time(&self, tc_blocks_per_tb: usize, segments: usize) -> f64 {
        self.load_dense_time(tc_blocks_per_tb)
            + self.mma_time(tc_blocks_per_tb)
            + self.wb_time(segments)
    }

    /// Estimated kernel makespan if `total_blocks` are split into chunks
    /// of `chunk` blocks (each chunk ≈ `1 + (chunk-1)/avg_window` extra
    /// segments; the caller provides the mean blocks per window to price
    /// cross-window write-backs).
    pub fn makespan_for_chunk(
        &self,
        total_blocks: usize,
        chunk: usize,
        mean_blocks_per_window: f64,
    ) -> f64 {
        if total_blocks == 0 {
            return 0.0;
        }
        let chunk = chunk.max(1);
        let num_tbs = total_blocks.div_ceil(chunk);
        // A chunk of `chunk` blocks crosses ~chunk/mean windows.
        let segs = (1.0 + chunk as f64 / mean_blocks_per_window.max(1.0)).ceil() as usize;
        let tb_time = self.tb_time(chunk, segs);
        let waves = num_tbs.div_ceil(self.params.num_sms);
        waves as f64 * tb_time
    }

    /// Equation-(4) price of running a *row region* on the tensor-core
    /// side: `tc_blocks` TC blocks spread over `windows` RowWindows,
    /// summed as total bytes and FLOPs pushed through the shared
    /// bandwidth/compute — a throughput price, deliberately ignoring
    /// SM waves so it compares apples-to-apples with
    /// [`scalar_region_time`](Self::scalar_region_time). Sparse tails
    /// pay here through block padding: one lane per block still loads
    /// K full dense rows.
    pub fn tc_region_time(&self, tc_blocks: usize, windows: usize) -> f64 {
        if tc_blocks == 0 {
            return 0.0;
        }
        self.tb_time(tc_blocks, windows.max(1))
    }

    /// Price of running a row region on the scalar (CUDA-core) side:
    /// a bandwidth term over the CSR lanes, the gathered dense rows
    /// (discounted by cache reuse), and the written output, plus an
    /// FMA term at the CUDA cores' fraction of peak. No TC format, no
    /// window padding — which is exactly why scalar wins sparse tails.
    pub fn scalar_region_time(&self, nnz: usize, rows: usize) -> f64 {
        if nnz == 0 && rows == 0 {
            return 0.0;
        }
        // Gathered B rows hit L2 roughly half the time on power-law
        // graphs; CUDA cores sustain about 1/8 of the TC TF32 peak.
        const B_REUSE: f64 = 0.5;
        const CUDA_CORE_FRACTION: f64 = 1.0 / 8.0;
        let d = self.params.feature_dim;
        let bytes = (nnz * 8) as f64 + (nnz * d * 4) as f64 * B_REUSE + (rows * d * 4) as f64;
        let flops = (2 * nnz * d) as f64;
        bytes / self.params.bandwidth + flops / (self.params.flops * CUDA_CORE_FRACTION)
    }

    /// Architecture parameters.
    pub fn params(&self) -> ModelParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a800_model(n: usize) -> PerfModel {
        PerfModel::new(ModelParams {
            feature_dim: n,
            bandwidth: 1935.0e9,
            flops: 156.0e12,
            num_sms: 108,
        })
    }

    #[test]
    fn terms_scale_linearly_with_blocks() {
        let m = a800_model(128);
        assert!((m.load_dense_time(10) - 10.0 * m.load_dense_time(1)).abs() < 1e-18);
        assert!((m.mma_time(10) - 10.0 * m.mma_time(1)).abs() < 1e-18);
    }

    #[test]
    fn memory_terms_dominate_mma() {
        // SpMM is memory-bound: per block, load time >> mma time.
        let m = a800_model(128);
        assert!(m.load_dense_time(1) > m.mma_time(1));
    }

    #[test]
    fn wb_term_penalizes_extra_segments() {
        let m = a800_model(128);
        assert!(m.tb_time(8, 3) > m.tb_time(8, 1));
    }

    #[test]
    fn makespan_prefers_moderate_chunks() {
        // 10k blocks on 108 SMs: chunk 1 wastes waves on wb overhead,
        // chunk 10k serializes; an intermediate chunk must win.
        let m = a800_model(128);
        let t1 = m.makespan_for_chunk(10_000, 1, 20.0);
        let t32 = m.makespan_for_chunk(10_000, 32, 20.0);
        let tall = m.makespan_for_chunk(10_000, 10_000, 20.0);
        assert!(t32 < t1, "chunk 32 {t32} vs chunk 1 {t1}");
        assert!(t32 < tall, "chunk 32 {t32} vs serial {tall}");
    }

    #[test]
    fn empty_work_is_free() {
        assert_eq!(a800_model(128).makespan_for_chunk(0, 4, 2.0), 0.0);
    }

    #[test]
    fn region_queries_price_density_correctly() {
        let m = a800_model(128);
        // Dense region: 1000 nnz packed into few windows -> few, full
        // TC blocks; the TC side should beat scalar.
        let dense_tc = m.tc_region_time(16, 16);
        let dense_scalar = m.scalar_region_time(1000, 128);
        assert!(
            dense_tc < dense_scalar,
            "tc {dense_tc} vs scalar {dense_scalar}"
        );
        // Sparse tail: the same nnz smeared over many windows pays TC
        // block padding; scalar should win.
        let sparse_tc = m.tc_region_time(1000, 1000);
        let sparse_scalar = m.scalar_region_time(1000, 8000);
        assert!(
            sparse_scalar < sparse_tc,
            "scalar {sparse_scalar} vs tc {sparse_tc}"
        );
    }

    #[test]
    fn empty_regions_are_free() {
        let m = a800_model(64);
        assert_eq!(m.tc_region_time(0, 0), 0.0);
        assert_eq!(m.scalar_region_time(0, 0), 0.0);
    }
}
