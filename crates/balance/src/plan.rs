//! TC-block → thread-block assignment planning (Figure 6).

use crate::model::PerfModel;
use crate::{ibd, IBD_THRESHOLD, MAX_BLOCKS_PER_TB};

/// A contiguous span of TC blocks from one RowWindow assigned to a TB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// RowWindow index.
    pub window: u32,
    /// First global TC-block id of the span.
    pub block_start: u32,
    /// One past the last global TC-block id.
    pub block_end: u32,
}

impl Segment {
    /// Blocks in this segment.
    pub fn len(&self) -> usize {
        (self.block_end - self.block_start) as usize
    }

    /// True when the segment is empty (never produced by planning).
    pub fn is_empty(&self) -> bool {
        self.block_end == self.block_start
    }
}

/// The work of one thread block: one or more window segments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TbAssignment {
    /// Window segments in processing order.
    pub segments: Vec<Segment>,
}

impl TbAssignment {
    /// Total TC blocks assigned.
    pub fn num_blocks(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }
}

/// Balancing strategies compared in Figure 14 / the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BalanceStrategy {
    /// One TB per RowWindow (no balancing).
    None,
    /// DTC-SpMM style: split oversized windows into fixed-size chunks,
    /// never merge windows (small windows still waste TBs; Figure 6a).
    DtcStyle,
    /// The paper's adaptive method: IBD gate, Equation-4-driven uniform
    /// chunking of the global block list, 32-block cap (Figure 6b).
    AccAdaptive,
}

/// A finished plan.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancePlan {
    /// Per-TB assignments, launch order.
    pub tbs: Vec<TbAssignment>,
    /// The measured IBD of the input distribution.
    pub ibd: f64,
    /// Whether rebalancing was actually applied (the adaptive strategy
    /// declines balanced inputs).
    pub applied: bool,
    /// The chunk size chosen (blocks per TB), when applied.
    pub chunk: usize,
}

/// Plan the TC-block → TB assignment.
///
/// `blocks_per_window[w]` is the number of TC blocks of RowWindow `w`;
/// global block ids are assigned window-major (the layout every format in
/// `spmm-format` uses).
pub fn plan(
    blocks_per_window: &[usize],
    strategy: BalanceStrategy,
    model: &PerfModel,
) -> BalancePlan {
    plan_with_params(
        blocks_per_window,
        strategy,
        model,
        IBD_THRESHOLD,
        MAX_BLOCKS_PER_TB,
    )
}

/// [`plan`] with explicit IBD threshold and per-TB block cap — used by
/// the design-choice ablation to justify the paper's constants (8 and
/// 32).
pub fn plan_with_params(
    blocks_per_window: &[usize],
    strategy: BalanceStrategy,
    model: &PerfModel,
    ibd_threshold: f64,
    max_blocks_per_tb: usize,
) -> BalancePlan {
    let measured_ibd = ibd(blocks_per_window);
    // Window-major global block offsets.
    let mut offsets = Vec::with_capacity(blocks_per_window.len() + 1);
    offsets.push(0u32);
    for &b in blocks_per_window {
        offsets.push(offsets.last().unwrap() + b as u32);
    }
    let total_blocks = *offsets.last().unwrap() as usize;

    match strategy {
        BalanceStrategy::None => BalancePlan {
            tbs: one_tb_per_window(blocks_per_window, &offsets),
            ibd: measured_ibd,
            applied: false,
            chunk: 0,
        },
        BalanceStrategy::DtcStyle => {
            let mut tbs = Vec::new();
            for (w, &b) in blocks_per_window.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                let start = offsets[w];
                let mut s = 0usize;
                while s < b {
                    let e = (s + max_blocks_per_tb).min(b);
                    tbs.push(TbAssignment {
                        segments: vec![Segment {
                            window: w as u32,
                            block_start: start + s as u32,
                            block_end: start + e as u32,
                        }],
                    });
                    s = e;
                }
            }
            BalancePlan {
                tbs,
                ibd: measured_ibd,
                applied: true,
                chunk: max_blocks_per_tb,
            }
        }
        BalanceStrategy::AccAdaptive => {
            if measured_ibd <= ibd_threshold || total_blocks == 0 {
                return BalancePlan {
                    tbs: one_tb_per_window(blocks_per_window, &offsets),
                    ibd: measured_ibd,
                    applied: false,
                    chunk: 0,
                };
            }
            // Pick the chunk minimizing the Equation-4 makespan estimate.
            let nonzero = blocks_per_window.iter().filter(|&&b| b > 0).count().max(1);
            let mean_bpw = total_blocks as f64 / nonzero as f64;
            let mut best = (f64::INFINITY, 1usize);
            for chunk in 1..=max_blocks_per_tb {
                let t = model.makespan_for_chunk(total_blocks, chunk, mean_bpw);
                if t < best.0 {
                    best = (t, chunk);
                }
            }
            let chunk = best.1;
            // Chunk the global block list; record window segments.
            let mut tbs = Vec::with_capacity(total_blocks.div_ceil(chunk));
            let mut w = 0usize;
            let mut cursor = 0u32;
            while (cursor as usize) < total_blocks {
                let end = ((cursor as usize + chunk).min(total_blocks)) as u32;
                let mut segments = Vec::new();
                let mut pos = cursor;
                while pos < end {
                    while offsets[w + 1] <= pos {
                        w += 1;
                    }
                    let seg_end = end.min(offsets[w + 1]);
                    segments.push(Segment {
                        window: w as u32,
                        block_start: pos,
                        block_end: seg_end,
                    });
                    pos = seg_end;
                }
                tbs.push(TbAssignment { segments });
                cursor = end;
            }
            BalancePlan {
                tbs,
                ibd: measured_ibd,
                applied: true,
                chunk,
            }
        }
    }
}

fn one_tb_per_window(blocks_per_window: &[usize], offsets: &[u32]) -> Vec<TbAssignment> {
    blocks_per_window
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b > 0)
        .map(|(w, _)| TbAssignment {
            segments: vec![Segment {
                window: w as u32,
                block_start: offsets[w],
                block_end: offsets[w + 1],
            }],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelParams;

    fn model() -> PerfModel {
        PerfModel::new(ModelParams {
            feature_dim: 128,
            bandwidth: 1935.0e9,
            flops: 156.0e12,
            num_sms: 108,
        })
    }

    /// Every plan must cover each TC block exactly once, in order.
    fn assert_covers(plan: &BalancePlan, total: u32) {
        let mut next = 0u32;
        for tb in &plan.tbs {
            for s in &tb.segments {
                assert_eq!(s.block_start, next, "gap or overlap at block {next}");
                assert!(!s.is_empty());
                next = s.block_end;
            }
        }
        assert_eq!(next, total);
    }

    #[test]
    fn none_gives_one_tb_per_nonempty_window() {
        let bpw = vec![2usize, 0, 5, 1];
        let p = plan(&bpw, BalanceStrategy::None, &model());
        assert_eq!(p.tbs.len(), 3);
        assert!(!p.applied);
        assert_covers(&p, 8);
        assert_eq!(p.tbs[1].segments[0].window, 2);
    }

    #[test]
    fn adaptive_declines_balanced_input() {
        let bpw = vec![3usize; 100];
        let p = plan(&bpw, BalanceStrategy::AccAdaptive, &model());
        assert!(!p.applied, "IBD 0 must not trigger balancing");
        assert_eq!(p.tbs.len(), 100);
    }

    #[test]
    fn adaptive_balances_skew_and_respects_cap() {
        let mut bpw = vec![1usize; 50];
        bpw.push(500); // hub window
        let p = plan(&bpw, BalanceStrategy::AccAdaptive, &model());
        assert!(p.applied);
        assert!(p.chunk >= 1 && p.chunk <= MAX_BLOCKS_PER_TB);
        assert_covers(&p, 550);
        for tb in &p.tbs {
            assert!(tb.num_blocks() <= MAX_BLOCKS_PER_TB);
        }
        // The hub window must now be split across multiple TBs.
        let hub_tbs = p
            .tbs
            .iter()
            .filter(|tb| tb.segments.iter().any(|s| s.window == 50))
            .count();
        assert!(hub_tbs > 1, "hub split across {hub_tbs} TBs");
        // And some TB should span multiple windows (Fig 6b concatenation).
        assert!(p.tbs.iter().any(|tb| tb.segments.len() > 1));
    }

    #[test]
    fn dtc_style_splits_but_never_merges() {
        let bpw = vec![1usize, 100, 2];
        let p = plan(&bpw, BalanceStrategy::DtcStyle, &model());
        assert_covers(&p, 103);
        for tb in &p.tbs {
            assert_eq!(tb.segments.len(), 1, "DTC never concatenates windows");
        }
        // 1 + ceil(100/32) + 1 TBs.
        assert_eq!(p.tbs.len(), 1 + 4 + 1);
    }

    #[test]
    fn empty_input() {
        let p = plan(&[], BalanceStrategy::AccAdaptive, &model());
        assert!(p.tbs.is_empty());
        let p = plan(&[0, 0], BalanceStrategy::None, &model());
        assert!(p.tbs.is_empty());
    }
}
