//! Adaptive sparsity-aware load balancing (§3.5).
//!
//! Without balancing, one thread block processes all TC blocks of one
//! RowWindow — power-law matrices then leave most TBs nearly idle while a
//! few grind through hundreds of blocks. The paper's method:
//!
//! 1. measure imbalance with the **IBD** metric (Equation 3) and only
//!    rebalance when `IBD > 8` (balancing has real costs: cross-window
//!    write-backs and extra B/C traffic);
//! 2. when rebalancing, chunk the *global* TC-block list into uniform
//!    spans (Figure 6b: a TB may take blocks from several RowWindows, and
//!    a big RowWindow is split across TBs), choosing the chunk size with
//!    the **Equation (4)** performance model — which includes the
//!    write-back cost the DTC-SpMM model ignores — capped at 32 blocks
//!    per TB.

pub mod model;
pub mod plan;

pub use model::{ModelParams, PerfModel};
pub use plan::{plan, plan_with_params, BalancePlan, BalanceStrategy, Segment, TbAssignment};

use spmm_common::stats::mean_abs_deviation;

/// IBD threshold above which the paper applies load balancing.
pub const IBD_THRESHOLD: f64 = 8.0;

/// Maximum TC blocks per thread block after redistribution.
pub const MAX_BLOCKS_PER_TB: usize = 32;

/// The IBD imbalance metric (Equation 3): mean absolute deviation of
/// TC-blocks-per-RowWindow around its mean.
pub fn ibd(blocks_per_window: &[usize]) -> f64 {
    let v: Vec<f64> = blocks_per_window.iter().map(|&b| b as f64).collect();
    mean_abs_deviation(&v)
}

/// Should balancing be applied to this distribution?
pub fn needs_balancing(blocks_per_window: &[usize]) -> bool {
    ibd(blocks_per_window) > IBD_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_windows_have_zero_ibd() {
        assert_eq!(ibd(&[4, 4, 4, 4]), 0.0);
        assert!(!needs_balancing(&[4, 4, 4, 4]));
    }

    #[test]
    fn ibd_matches_hand_computation() {
        // Mean of [1, 9] is 5; |1-5| + |9-5| = 8; / 2 windows = 4.
        assert_eq!(ibd(&[1, 9]), 4.0);
    }

    #[test]
    fn skewed_distribution_triggers_balancing() {
        // One hub window with 100 blocks among tiny windows.
        let mut v = vec![1usize; 10];
        v.push(100);
        assert!(needs_balancing(&v), "ibd = {}", ibd(&v));
    }

    #[test]
    fn type1_matrices_do_not_trigger() {
        // Road/molecule-like: 1-2 blocks per window everywhere.
        let v: Vec<usize> = (0..1000).map(|i| 1 + (i % 2)).collect();
        assert!(!needs_balancing(&v));
    }
}
