//! # spmm-delta — dynamic-graph overlay for evolving sparse operands
//!
//! Streaming GNN serving sees edge inserts and deletes between
//! forwards; rebuilding a full Reorder → FormatBuild → Balance →
//! Compile plan per update throws away almost all of the preprocessing
//! the paper amortizes. [`DeltaCsr`] keeps the operand as an immutable
//! base [`CsrMatrix`] plus a sorted per-row edge-delta overlay:
//!
//! * **O(log d) lookup** ([`DeltaCsr::get`]) through the overlay, then
//!   the base row;
//! * **merged iteration** ([`DeltaCsr::row`]) yielding each row's live
//!   edges in ascending column order, exactly as the compacted CSR
//!   would store them;
//! * **periodic compaction** ([`DeltaCsr::compact`] /
//!   [`DeltaCsr::compact_in_place`]) back to a plain CSR;
//! * **row-block dirty tracking** ([`DeltaCsr::dirty_blocks`],
//!   [`DeltaCsr::block_fingerprint`]) so plan invalidation and format
//!   rebuilds become *partial* — only the TILE-aligned row blocks whose
//!   structure changed are touched by `ExecutionPlan::repair`.
//!
//! The overlay never changes the matrix shape: deltas are edge-level,
//! so `nrows`/`ncols` are fixed at construction and every consumer can
//! rely on window boundaries staying put.

use spmm_common::{Result, SpmmError};
use spmm_matrix::CsrMatrix;
use std::collections::BTreeMap;

/// One pending edit to an edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOp {
    /// Insert the edge, or overwrite its value if it already exists.
    Upsert(f32),
    /// Remove the edge (recorded only for edges present in the base).
    Delete,
}

/// A base CSR matrix plus a sorted per-row edge-delta overlay.
///
/// ```
/// use spmm_delta::DeltaCsr;
/// use spmm_matrix::gen;
///
/// let base = gen::uniform_random(64, 4.0, 1);
/// let mut d = DeltaCsr::new(base.clone());
/// d.upsert(3, 7, 1.5).unwrap();
/// assert_eq!(d.get(3, 7), Some(1.5));
/// let compacted = d.compact();
/// assert_eq!(compacted.nnz(), d.nnz());
/// ```
#[derive(Debug, Clone)]
pub struct DeltaCsr {
    base: CsrMatrix,
    /// Pending per-row edits, sorted by column within each row. A row
    /// is present iff it has at least one pending op; an op on an edge
    /// that nets out to the base state is dropped eagerly (so
    /// [`DeltaCsr::is_clean`] means "compacts to exactly the base").
    rows: BTreeMap<u32, Vec<(u32, DeltaOp)>>,
    /// Live edge count of the merged view, maintained incrementally.
    nnz: usize,
    /// Total accepted edits since construction (observability).
    edits: u64,
}

impl DeltaCsr {
    /// Wrap `base` with an empty overlay.
    pub fn new(base: CsrMatrix) -> Self {
        let nnz = base.nnz();
        DeltaCsr {
            base,
            rows: BTreeMap::new(),
            nnz,
            edits: 0,
        }
    }

    /// The immutable base matrix the overlay is relative to.
    pub fn base(&self) -> &CsrMatrix {
        &self.base
    }

    /// Rows of the merged view (fixed at construction).
    pub fn nrows(&self) -> usize {
        self.base.nrows()
    }

    /// Columns of the merged view (fixed at construction).
    pub fn ncols(&self) -> usize {
        self.base.ncols()
    }

    /// Live edges in the merged view.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// `true` when the overlay holds no pending ops — the merged view
    /// is exactly the base, and a repair is a no-op.
    pub fn is_clean(&self) -> bool {
        self.rows.is_empty()
    }

    /// Pending ops currently in the overlay.
    pub fn num_pending(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }

    /// Total edits accepted since construction (including ones that
    /// later netted out).
    pub fn num_edits(&self) -> u64 {
        self.edits
    }

    /// Rows with at least one pending op, ascending.
    pub fn touched_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.rows.keys().map(|&r| r as usize)
    }

    /// Number of rows with pending ops.
    pub fn num_touched_rows(&self) -> usize {
        self.rows.len()
    }

    fn check_edge(&self, r: u32, c: u32) -> Result<()> {
        if r as usize >= self.nrows() {
            return Err(SpmmError::IndexOutOfBounds {
                what: "row",
                index: r as usize,
                bound: self.nrows(),
            });
        }
        if c as usize >= self.ncols() {
            return Err(SpmmError::IndexOutOfBounds {
                what: "column",
                index: c as usize,
                bound: self.ncols(),
            });
        }
        Ok(())
    }

    fn base_value(&self, r: u32, c: u32) -> Option<f32> {
        let (cols, vals) = self.base.row(r as usize);
        cols.binary_search(&c).ok().map(|k| vals[k])
    }

    /// Insert edge `(r, c)` with value `v`, or overwrite its value if
    /// it is already live. Returns `true` when a new edge was created,
    /// `false` when an existing value was overwritten. Values are
    /// spliced bit-exactly — NaN/Inf/subnormal payloads survive the
    /// round-trip through [`DeltaCsr::compact`].
    pub fn upsert(&mut self, r: u32, c: u32, v: f32) -> Result<bool> {
        self.check_edge(r, c)?;
        self.edits += 1;
        let base_v = self.base_value(r, c);
        let row = self.rows.entry(r).or_default();
        let inserted = match row.binary_search_by_key(&c, |&(col, _)| col) {
            Ok(k) => {
                let was_delete = matches!(row[k].1, DeltaOp::Delete);
                // Upserting the base's exact bit pattern nets out: drop
                // the pending op instead of keeping a vacuous one.
                if base_v.is_some_and(|b| b.to_bits() == v.to_bits()) {
                    row.remove(k);
                } else {
                    row[k].1 = DeltaOp::Upsert(v);
                }
                was_delete
            }
            Err(k) => {
                if base_v.is_some_and(|b| b.to_bits() == v.to_bits()) {
                    false // identical to base: nothing pending
                } else {
                    row.insert(k, (c, DeltaOp::Upsert(v)));
                    base_v.is_none()
                }
            }
        };
        if row.is_empty() {
            self.rows.remove(&r);
        }
        if inserted {
            self.nnz += 1;
        }
        Ok(inserted)
    }

    /// Delete edge `(r, c)` from the merged view. Returns `true` when
    /// the edge was live and is now gone, `false` (and no state change)
    /// when it did not exist. Out-of-bounds coordinates return `false`.
    pub fn delete(&mut self, r: u32, c: u32) -> bool {
        if self.check_edge(r, c).is_err() {
            return false;
        }
        let in_base = self.base_value(r, c).is_some();
        let row = self.rows.entry(r).or_default();
        let removed = match row.binary_search_by_key(&c, |&(col, _)| col) {
            Ok(k) => match row[k].1 {
                DeltaOp::Delete => false, // already deleted
                DeltaOp::Upsert(_) => {
                    if in_base {
                        row[k].1 = DeltaOp::Delete;
                    } else {
                        // Insert-then-delete nets out to nothing.
                        row.remove(k);
                    }
                    true
                }
            },
            Err(k) => {
                if in_base {
                    row.insert(k, (c, DeltaOp::Delete));
                    true
                } else {
                    false
                }
            }
        };
        if row.is_empty() {
            self.rows.remove(&r);
        }
        if removed {
            self.edits += 1;
            self.nnz -= 1;
        }
        removed
    }

    /// Value of edge `(r, c)` in the merged view — O(log d) over the
    /// row's pending ops, then O(log L) over the base row.
    pub fn get(&self, r: usize, c: u32) -> Option<f32> {
        if r >= self.nrows() {
            return None;
        }
        if let Some(row) = self.rows.get(&(r as u32)) {
            if let Ok(k) = row.binary_search_by_key(&c, |&(col, _)| col) {
                return match row[k].1 {
                    DeltaOp::Upsert(v) => Some(v),
                    DeltaOp::Delete => None,
                };
            }
        }
        self.base_value(r as u32, c)
    }

    /// Live edges of row `r` in ascending column order — the merged
    /// view a compacted CSR would store for the row.
    pub fn row(&self, r: usize) -> MergedRow<'_> {
        let (cols, vals) = self.base.row(r);
        MergedRow {
            base_cols: cols,
            base_vals: vals,
            deltas: self.rows.get(&(r as u32)).map(Vec::as_slice).unwrap_or(&[]),
            bi: 0,
            di: 0,
        }
    }

    /// Live edge count of row `r` in the merged view.
    pub fn row_len(&self, r: usize) -> usize {
        let base_len = self.base.row_len(r);
        match self.rows.get(&(r as u32)) {
            None => base_len,
            Some(ops) => {
                let (cols, _) = self.base.row(r);
                let mut len = base_len;
                for &(c, op) in ops {
                    match op {
                        DeltaOp::Upsert(_) => {
                            if cols.binary_search(&c).is_err() {
                                len += 1;
                            }
                        }
                        DeltaOp::Delete => len -= 1,
                    }
                }
                len
            }
        }
    }

    /// Materialize the merged view as a plain CSR (the overlay is left
    /// untouched). Values keep their exact bit patterns.
    pub fn compact(&self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.nrows() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz);
        let mut values = Vec::with_capacity(self.nnz);
        for r in 0..self.nrows() {
            for (c, v) in self.row(r) {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::new(self.nrows(), self.ncols(), row_ptr, col_idx, values)
            .expect("merged view of a valid base is valid")
    }

    /// [`DeltaCsr::compact`], then make the result the new base and
    /// clear the overlay — the periodic re-baseline that keeps per-row
    /// op lists short under sustained churn.
    pub fn compact_in_place(&mut self) {
        if self.is_clean() {
            return;
        }
        self.base = self.compact();
        self.rows.clear();
        debug_assert_eq!(self.nnz, self.base.nnz());
    }

    /// Restrict the overlay to rows `[lo, hi)`: the result's base is
    /// the corresponding row block of this base (same column space),
    /// with the pending ops of those rows shifted down by `lo`. This is
    /// how shard-local and region-local repairs receive their slice of
    /// a global delta stream.
    pub fn sub_range(&self, lo: usize, hi: usize) -> DeltaCsr {
        assert!(lo <= hi && hi <= self.nrows(), "sub_range out of bounds");
        let base = row_block(&self.base, lo, hi);
        let mut sub = DeltaCsr::new(base);
        for (&r, ops) in self.rows.range(lo as u32..hi as u32) {
            sub.rows.insert(r - lo as u32, ops.clone());
        }
        // Recompute the live count for the slice.
        sub.nnz = (0..sub.nrows()).map(|r| sub.row_len(r)).sum();
        sub
    }

    /// Fingerprint of the merged rows `[lo, hi)` — identical to
    /// `row_block(compact(), lo, hi).content_fingerprint()`, the value
    /// partial invalidation compares against, without materializing the
    /// whole compacted matrix.
    pub fn block_fingerprint(&self, lo: usize, hi: usize) -> u64 {
        assert!(lo <= hi && hi <= self.nrows(), "block out of bounds");
        row_block_of_delta(self, lo, hi).content_fingerprint()
    }

    /// Per-block fingerprints for blocks of `block_rows` rows (the last
    /// block may be short). See [`DeltaCsr::block_fingerprint`].
    pub fn block_fingerprints(&self, block_rows: usize) -> Vec<u64> {
        assert!(block_rows > 0, "block_rows must be positive");
        (0..self.nrows().div_ceil(block_rows))
            .map(|b| {
                let lo = b * block_rows;
                let hi = ((b + 1) * block_rows).min(self.nrows());
                self.block_fingerprint(lo, hi)
            })
            .collect()
    }

    /// Indices of the `block_rows`-row blocks containing at least one
    /// touched row, ascending and deduplicated — the blocks a repair
    /// must rebuild; every other block's artifacts are reusable as-is.
    pub fn dirty_blocks(&self, block_rows: usize) -> Vec<usize> {
        assert!(block_rows > 0, "block_rows must be positive");
        let mut blocks: Vec<usize> = self.rows.keys().map(|&r| r as usize / block_rows).collect();
        blocks.dedup();
        blocks
    }
}

/// Merged-row iterator: two-pointer merge of the base row and the
/// pending ops, both ascending in column.
pub struct MergedRow<'a> {
    base_cols: &'a [u32],
    base_vals: &'a [f32],
    deltas: &'a [(u32, DeltaOp)],
    bi: usize,
    di: usize,
}

impl Iterator for MergedRow<'_> {
    type Item = (u32, f32);

    fn next(&mut self) -> Option<(u32, f32)> {
        loop {
            let base_c = self.base_cols.get(self.bi).copied();
            let delta = self.deltas.get(self.di).copied();
            match (base_c, delta) {
                (None, None) => return None,
                (Some(c), None) => {
                    self.bi += 1;
                    return Some((c, self.base_vals[self.bi - 1]));
                }
                (None, Some((c, op))) => {
                    self.di += 1;
                    match op {
                        DeltaOp::Upsert(v) => return Some((c, v)),
                        DeltaOp::Delete => continue,
                    }
                }
                (Some(bc), Some((dc, op))) => {
                    if bc < dc {
                        self.bi += 1;
                        return Some((bc, self.base_vals[self.bi - 1]));
                    }
                    // An op on a base column consumes the base entry.
                    if bc == dc {
                        self.bi += 1;
                    }
                    self.di += 1;
                    match op {
                        DeltaOp::Upsert(v) => return Some((dc, v)),
                        DeltaOp::Delete => continue,
                    }
                }
            }
        }
    }
}

/// Extract rows `[lo, hi)` of `m` as a standalone CSR (same column
/// space) — the shard/region cutter, local to avoid dependency cycles.
fn row_block(m: &CsrMatrix, lo: usize, hi: usize) -> CsrMatrix {
    let row_ptr = m.row_ptr();
    let base = row_ptr[lo];
    let rebased: Vec<usize> = row_ptr[lo..=hi].iter().map(|&p| p - base).collect();
    CsrMatrix::new(
        hi - lo,
        m.ncols(),
        rebased,
        m.col_idx()[base..row_ptr[hi]].to_vec(),
        m.values()[base..row_ptr[hi]].to_vec(),
    )
    .expect("row block of a valid CSR is valid")
}

/// Materialize merged rows `[lo, hi)` of the delta as a standalone CSR.
fn row_block_of_delta(d: &DeltaCsr, lo: usize, hi: usize) -> CsrMatrix {
    let mut row_ptr = Vec::with_capacity(hi - lo + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for r in lo..hi {
        for (c, v) in d.row(r) {
            col_idx.push(c);
            values.push(v);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::new(hi - lo, d.ncols(), row_ptr, col_idx, values)
        .expect("merged row block of a valid base is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen;

    fn base() -> CsrMatrix {
        gen::uniform_random(64, 4.0, 7)
    }

    #[test]
    fn upsert_and_get_merge_over_the_base() {
        let m = base();
        let mut d = DeltaCsr::new(m.clone());
        assert!(d.is_clean());
        let created = d.upsert(5, 60, 2.5).unwrap();
        // Column 60 of a degree-4 row is almost surely absent; handle
        // both outcomes so the test is seed-robust.
        assert_eq!(created, m.row(5).0.binary_search(&60).is_err());
        assert_eq!(d.get(5, 60), Some(2.5));
        assert_eq!(d.nnz(), m.nnz() + usize::from(created));
        // Untouched edges read through to the base.
        let (cols, vals) = m.row(9);
        if !cols.is_empty() {
            assert_eq!(d.get(9, cols[0]), Some(vals[0]));
        }
    }

    #[test]
    fn delete_of_nonexistent_edge_is_a_refused_no_op() {
        let m = base();
        let mut d = DeltaCsr::new(m.clone());
        // A column outside every row's support.
        let c = (m.ncols() - 1) as u32;
        let absent = m.row(3).0.binary_search(&c).is_err();
        if absent {
            assert!(!d.delete(3, c));
            assert!(d.is_clean(), "refused delete leaves no pending op");
            assert_eq!(d.nnz(), m.nnz());
            assert_eq!(d.compact(), m);
        }
        // Out-of-bounds coordinates are refused, not panicking.
        assert!(!d.delete(u32::MAX, 0));
        assert!(!d.delete(0, u32::MAX));
        // Double delete of a real edge: second refusal.
        let (cols, _) = m.row(0);
        if !cols.is_empty() {
            assert!(d.delete(0, cols[0]));
            assert!(!d.delete(0, cols[0]));
            assert_eq!(d.nnz(), m.nnz() - 1);
        }
    }

    #[test]
    fn insert_then_delete_round_trips_to_identical_csr() {
        let m = base();
        let mut d = DeltaCsr::new(m.clone());
        let c = (m.ncols() - 2) as u32;
        let fresh: Vec<u32> = (0..8u32)
            .filter(|&r| m.row(r as usize).0.binary_search(&c).is_err())
            .collect();
        for &r in &fresh {
            assert!(d.upsert(r, c, -1.25).unwrap());
        }
        for &r in &fresh {
            assert!(d.delete(r, c));
        }
        assert!(d.is_clean(), "insert-then-delete nets out of the overlay");
        assert_eq!(d.nnz(), m.nnz());
        assert_eq!(d.compact(), m);
        // And the same for overwrite-then-restore of a base value.
        let (cols, vals) = m.row(2);
        if !cols.is_empty() {
            let (c0, v0) = (cols[0], vals[0]);
            d.upsert(2, c0, v0 + 1.0).unwrap();
            assert!(!d.is_clean());
            d.upsert(2, c0, v0).unwrap();
            assert!(d.is_clean(), "restoring the base bit pattern nets out");
        }
    }

    #[test]
    fn compact_matches_per_edge_reads_and_row_lens() {
        let m = base();
        let mut d = DeltaCsr::new(m.clone());
        for i in 0..40u32 {
            let r = (i * 7) % 64;
            let c = (i * 13) % 64;
            if i % 3 == 0 {
                d.delete(r, c);
            } else {
                d.upsert(r, c, i as f32 * 0.5 - 3.0).unwrap();
            }
        }
        let compacted = d.compact();
        assert_eq!(compacted.nnz(), d.nnz(), "incremental nnz is exact");
        for r in 0..64usize {
            assert_eq!(compacted.row_len(r), d.row_len(r), "row {r} len");
            let (cols, vals) = compacted.row(r);
            let merged: Vec<(u32, f32)> = d.row(r).collect();
            assert_eq!(merged.len(), cols.len());
            for (k, &(c, v)) in merged.iter().enumerate() {
                assert_eq!(c, cols[k]);
                assert_eq!(v.to_bits(), vals[k].to_bits());
                assert_eq!(d.get(r, c), Some(v));
            }
        }
        // compact_in_place re-baselines without changing the view.
        let mut d2 = d.clone();
        d2.compact_in_place();
        assert!(d2.is_clean());
        assert_eq!(d2.base(), &compacted);
        assert_eq!(d2.nnz(), compacted.nnz());
    }

    #[test]
    fn non_finite_and_subnormal_values_splice_bit_exactly() {
        let m = base();
        let mut d = DeltaCsr::new(m);
        let specials = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE / 2.0, // subnormal
            -0.0,
        ];
        for (i, &v) in specials.iter().enumerate() {
            d.upsert(i as u32, 62, v).unwrap();
        }
        let c = d.compact();
        for (i, &v) in specials.iter().enumerate() {
            let got = d.get(i, 62).unwrap();
            assert_eq!(got.to_bits(), v.to_bits(), "get splices bit-exactly");
            let (cols, vals) = c.row(i);
            let k = cols.binary_search(&62).unwrap();
            assert_eq!(vals[k].to_bits(), v.to_bits(), "compact preserves bits");
        }
    }

    #[test]
    fn dirty_blocks_and_fingerprints_localize_the_churn() {
        let m = base();
        let mut d = DeltaCsr::new(m.clone());
        let before = d.block_fingerprints(8);
        assert_eq!(before.len(), 8);
        // Clean overlay: block fingerprints equal the base's blocks.
        for (b, &fp) in before.iter().enumerate() {
            assert_eq!(fp, row_block(&m, b * 8, (b + 1) * 8).content_fingerprint());
        }
        d.upsert(17, 3, 9.0).unwrap(); // block 2
        d.upsert(18, 5, 1.0).unwrap(); // block 2
        d.upsert(40, 1, 2.0).unwrap(); // block 5
        assert_eq!(d.dirty_blocks(8), vec![2, 5]);
        let after = d.block_fingerprints(8);
        let compacted = d.compact();
        for b in 0..8 {
            let expect = row_block(&compacted, b * 8, (b + 1) * 8).content_fingerprint();
            assert_eq!(after[b], expect, "block {b} fingerprint matches compact");
            if b == 2 || b == 5 {
                assert_ne!(after[b], before[b], "dirty block {b} changed");
            } else {
                assert_eq!(after[b], before[b], "clean block {b} unchanged");
            }
        }
    }

    #[test]
    fn sub_range_slices_base_and_ops() {
        let m = base();
        let mut d = DeltaCsr::new(m.clone());
        d.upsert(10, 2, 4.0).unwrap();
        d.upsert(30, 2, 5.0).unwrap();
        let (cols, _) = m.row(12);
        if !cols.is_empty() {
            d.delete(12, cols[0]);
        }
        let sub = d.sub_range(8, 24);
        assert_eq!(sub.nrows(), 16);
        assert_eq!(sub.ncols(), m.ncols());
        assert_eq!(sub.get(2, 2), Some(4.0), "row 10 shifted to 2");
        // The slice's compact equals the global compact's row block.
        let global = d.compact();
        assert_eq!(sub.compact(), row_block(&global, 8, 24));
        assert_eq!(sub.nnz(), sub.compact().nnz());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use spmm_matrix::gen;

    /// Edit scripts over a 48-row base: upserts (with occasional
    /// NaN/Inf/subnormal payloads) and deletes, applied both through
    /// the overlay and to a mirror BTreeMap oracle.
    fn check_against_oracle(seed: u64, script: Vec<(u8, u8, u8, u32)>) {
        let m = gen::uniform_random(48, 3.0, seed);
        let mut d = DeltaCsr::new(m.clone());
        let mut oracle: std::collections::BTreeMap<(u32, u32), f32> = (0..48)
            .flat_map(|r| {
                let (cols, vals) = m.row(r);
                cols.iter()
                    .zip(vals.iter())
                    .map(move |(&c, &v)| ((r as u32, c), v))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (op, r, c, vbits) in script {
            let (r, c) = ((r % 48) as u32, (c % 48) as u32);
            let v = match vbits % 5 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::MIN_POSITIVE / 4.0,
                _ => f32::from_bits(vbits),
            };
            if op % 3 == 0 {
                let existed = oracle.remove(&(r, c)).is_some();
                assert_eq!(d.delete(r, c), existed);
            } else {
                let created = oracle.insert((r, c), v).is_none();
                assert_eq!(d.upsert(r, c, v).unwrap(), created);
            }
        }
        assert_eq!(d.nnz(), oracle.len(), "incremental nnz tracks the oracle");
        let compacted = d.compact();
        assert_eq!(compacted.nnz(), oracle.len());
        for r in 0..48usize {
            let (cols, vals) = compacted.row(r);
            let expect: Vec<(u32, f32)> = oracle
                .range((r as u32, 0)..=(r as u32, u32::MAX))
                .map(|(&(_, c), &v)| (c, v))
                .collect();
            assert_eq!(cols.len(), expect.len(), "row {r} length");
            for (k, &(c, v)) in expect.iter().enumerate() {
                assert_eq!(cols[k], c, "row {r} col {k}");
                assert_eq!(
                    vals[k].to_bits(),
                    v.to_bits(),
                    "row {r} col {c} value bits (NaN-position-exact)"
                );
            }
        }
        // Compacting in place and replaying nothing stays identical —
        // compared by content fingerprint (bit-level) because float
        // equality would reject NaN == NaN.
        let mut d2 = d.clone();
        d2.compact_in_place();
        assert_eq!(
            d2.base().content_fingerprint(),
            compacted.content_fingerprint()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn churn_matches_oracle(
            seed in 0u64..32,
            script in proptest::collection::vec(
                (any::<u8>(), any::<u8>(), any::<u8>(), any::<u32>()),
                0..120,
            ),
        ) {
            check_against_oracle(seed, script);
        }
    }
}
