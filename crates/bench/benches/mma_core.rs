//! Micro-benchmark for the TF32 MMA compute core: the legacy
//! round-at-every-use kernel ([`spmm_common::scalar::tf32_mma_8x8`])
//! against the pre-rounded variant
//! ([`spmm_common::scalar::tf32_mma_8x8_prerounded`]) whose inner loop
//! is a pure mul-add over operands rounded once up front.
//!
//! Swept over feature dimensions {16, 64, 128} — the same N range the
//! perfsuite uses — so the vectorization win is visible across the
//! regimes where the inner loop is short (gather-bound) and long
//! (compute-bound).
//!
//! A third axis benches the explicit-SIMD dispatch
//! ([`spmm_common::simd::mma_8x8_prerounded_tier`]) on every ISA tier
//! the host offers, so the per-tier win over the auto-vectorized scalar
//! core is measured directly (`tier-scalar` vs `tier-avx2` etc.).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmm_common::scalar::{tf32_mma_8x8, tf32_mma_8x8_prerounded, to_tf32_slice};
use spmm_common::simd::mma_8x8_prerounded_tier;
use spmm_common::util::splitmix64;
use spmm_common::IsaTier;
use std::hint::black_box;
use std::time::Duration;

const TILE: usize = 8;

/// Deterministic pseudo-random floats in roughly [-1, 1).
fn fill(buf: &mut [f32], seed: u64) {
    for (i, v) in buf.iter_mut().enumerate() {
        let bits = splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        *v = ((bits >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0;
    }
}

fn mma_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("mma_core");
    g.sample_size(50);
    g.measurement_time(Duration::from_secs(2));
    for n in [16usize, 64, 128] {
        let mut a = [0f32; TILE * TILE];
        fill(&mut a, 0xA11CE);
        let mut b = vec![0f32; TILE * n];
        fill(&mut b, 0xB0B + n as u64);
        let mut c_tile = vec![0f32; TILE * n];

        // Pre-rounded copies, rounded once outside the timed region —
        // exactly what the plan-compile/staging path amortizes.
        let mut a_r = a;
        to_tf32_slice(&mut a_r);
        let mut b_r = b.clone();
        to_tf32_slice(&mut b_r);

        g.bench_with_input(BenchmarkId::new("rounding", n), &n, |bench, &n| {
            bench.iter(|| {
                c_tile.fill(0.0);
                tf32_mma_8x8(black_box(&a), black_box(&b), &mut c_tile, n);
                black_box(c_tile[0])
            })
        });
        g.bench_with_input(BenchmarkId::new("prerounded", n), &n, |bench, &n| {
            bench.iter(|| {
                c_tile.fill(0.0);
                tf32_mma_8x8_prerounded(black_box(&a_r), black_box(&b_r), &mut c_tile, n);
                black_box(c_tile[0])
            })
        });
        for tier in IsaTier::ALL.into_iter().filter(|t| t.is_available()) {
            g.bench_with_input(
                BenchmarkId::new(&format!("tier-{tier}"), n),
                &n,
                |bench, &n| {
                    bench.iter(|| {
                        c_tile.fill(0.0);
                        mma_8x8_prerounded_tier(
                            black_box(&a_r),
                            black_box(&b_r),
                            &mut c_tile,
                            n,
                            tier,
                        );
                        black_box(c_tile[0])
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, mma_core);
criterion_main!(benches);
