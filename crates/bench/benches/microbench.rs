//! Criterion micro-benchmarks for the hot paths of the library:
//! format conversion (the §4.3.2 overhead claim), block decompression
//! (BitTCF popcount vs ME-TCF scatter), reordering algorithms, the
//! functional TC SpMM, balance planning, and the simulation engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmm_balance::{plan, BalanceStrategy, ModelParams, PerfModel};
use spmm_format::{BitTcf, MeTcf, Tcf, WindowPartition};
use spmm_matrix::{gen, CsrMatrix, DenseMatrix};
use spmm_reorder::Algorithm;
use std::hint::black_box;
use std::time::Duration;

fn bench_matrix() -> CsrMatrix {
    gen::clustered(
        gen::ClusteredConfig {
            n: 4096,
            cluster_size: 128,
            intra_deg: 24.0,
            inter_deg: 4.0,
            hub_fraction: 0.01,
            hub_factor: 6.0,
            shuffle: true,
            degree_spread: 1.0,
            size_variance: 0.4,
        },
        7,
    )
}

fn conversion(c: &mut Criterion) {
    let m = bench_matrix();
    let wp = WindowPartition::build(&m);
    let mut g = c.benchmark_group("format_conversion");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("window_partition", |b| {
        b.iter(|| black_box(WindowPartition::build(&m)))
    });
    g.bench_function("csr_to_bittcf", |b| {
        b.iter(|| black_box(BitTcf::from_partition(&m, &wp)))
    });
    g.bench_function("csr_to_metcf", |b| {
        b.iter(|| black_box(MeTcf::from_partition(&m, &wp)))
    });
    g.bench_function("csr_to_tcf", |b| {
        b.iter(|| black_box(Tcf::from_partition(&m, &wp)))
    });
    g.finish();
}

fn decompression(c: &mut Criterion) {
    let m = bench_matrix();
    let bit = BitTcf::from_csr(&m);
    let me = MeTcf::from_csr(&m);
    let nblocks = bit.num_tc_blocks();
    let mut g = c.benchmark_group("block_decompression");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("bittcf_popcount", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            for blk in 0..nblocks {
                acc += black_box(bit.decompress_block(blk))[0];
            }
            acc
        })
    });
    g.bench_function("metcf_scatter", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            for blk in 0..nblocks {
                acc += black_box(me.decompress_block(blk))[0];
            }
            acc
        })
    });
    g.finish();
}

fn reordering(c: &mut Criterion) {
    let m = bench_matrix();
    let mut g = c.benchmark_group("reorder");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    for alg in [
        Algorithm::Lsh64,
        Algorithm::DtcLsh,
        Algorithm::MetisLike,
        Algorithm::Louvain,
        Algorithm::Rabbit,
        Algorithm::Affinity,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
            b.iter(|| black_box(spmm_reorder::reorder(&m, alg)))
        });
    }
    g.finish();
}

fn functional_spmm(c: &mut Criterion) {
    let m = bench_matrix();
    let bit = BitTcf::from_csr(&m);
    let bmat = DenseMatrix::random(m.ncols(), 128, 3);
    let mut g = c.benchmark_group("functional_spmm_n128");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("csr_fp32_reference", |b| {
        b.iter(|| black_box(m.spmm_dense(&bmat).unwrap()))
    });
    g.bench_function("bittcf_tf32_tc_path", |b| {
        b.iter(|| black_box(bit.spmm(&bmat).unwrap()))
    });
    g.finish();
}

fn balancing(c: &mut Criterion) {
    let m = bench_matrix();
    let bit = BitTcf::from_csr(&m);
    let bpw: Vec<usize> = bit
        .row_window_offset
        .windows(2)
        .map(|w| (w[1] - w[0]) as usize)
        .collect();
    let model = PerfModel::new(ModelParams {
        feature_dim: 128,
        bandwidth: 1935e9,
        flops: 156e12,
        num_sms: 108,
    });
    let mut g = c.benchmark_group("balance_planning");
    g.sample_size(30);
    g.measurement_time(Duration::from_secs(2));
    for strat in [
        BalanceStrategy::None,
        BalanceStrategy::DtcStyle,
        BalanceStrategy::AccAdaptive,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{strat:?}")),
            &strat,
            |b, &strat| b.iter(|| black_box(plan(&bpw, strat, &model))),
        );
    }
    g.finish();
}

fn simulation_engine(c: &mut Criterion) {
    use acc_spmm::sim::{Arch, SimOptions};
    use acc_spmm::KernelKind;
    use spmm_kernels::PreparedKernel;
    let m = bench_matrix();
    let prepared = PreparedKernel::builder(KernelKind::AccSpmm, &m)
        .arch(Arch::A800)
        .feature_dim(128)
        .build()
        .unwrap();
    let opts = SimOptions::scaled(8.0);
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("trace_build", |b| b.iter(|| black_box(prepared.trace())));
    g.bench_function("full_simulation", |b| {
        b.iter(|| black_box(prepared.profile(Arch::A800, &opts)))
    });
    g.finish();
}

criterion_group!(
    benches,
    conversion,
    decompression,
    reordering,
    functional_spmm,
    balancing,
    simulation_engine
);
criterion_main!(benches);
