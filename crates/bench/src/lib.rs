//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index) by printing the same rows or
//! series the paper plots, and writes a machine-readable copy under
//! `results/` for EXPERIMENTS.md.

use acc_spmm::matrix::{CsrMatrix, Dataset, TABLE2};
use acc_spmm::sim::SimOptions;
use spmm_common::json::ToJson;
use std::io::Write;
use std::path::PathBuf;

/// Feature dimensions of the overall evaluation (§4.1).
pub const FEATURE_DIMS: [usize; 3] = [128, 256, 512];

/// The detailed-evaluation feature dimension (§4.3).
pub const DETAIL_DIM: usize = 128;

/// Build one Table-2 dataset analog (prints progress to stderr since the
/// big type-2 analogs take a few seconds on one core).
pub fn build_dataset(d: &Dataset) -> CsrMatrix {
    eprintln!("  building {} ({} rows)...", d.abbr, d.scaled_rows);
    d.build()
}

/// Build all ten Table-2 analogs.
pub fn build_all_datasets() -> Vec<(&'static Dataset, CsrMatrix)> {
    TABLE2.iter().map(|d| (d, build_dataset(d))).collect()
}

/// Simulator options matched to a dataset's scale factor (cache
/// capacities shrink with the matrix so working-set ratios match the
/// paper's; see DESIGN.md §1).
pub fn sim_options_for(d: &Dataset) -> SimOptions {
    SimOptions::scaled(d.scale_factor())
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Write a JSON record under `results/` (best effort — the printed table
/// is the primary artifact).
pub fn save_json<T: ToJson>(name: &str, value: &T) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let json = value.to_json().to_string_pretty();
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.json"))) {
        let _ = f.write_all(json.as_bytes());
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_dims_match_paper() {
        assert_eq!(FEATURE_DIMS, [128, 256, 512]);
        assert_eq!(DETAIL_DIM, 128);
    }

    #[test]
    fn sim_options_scale_with_dataset() {
        let d = &TABLE2[0];
        let o = sim_options_for(d);
        assert!(o.cache_scale > 1.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f1(1.26), "1.3");
    }
}
