//! Extension — batched-RHS throughput of the shared execution plan.
//!
//! The preprocess-once-multiply-many pattern often arrives as a *batch*:
//! many feature matrices against one adjacency (mini-batched GNN
//! training, multi-source PageRank sweeps). `multiply_batch` runs the
//! batch through one parallel region with per-worker workspaces instead
//! of spawning a worker round (and reallocating staging buffers) per
//! RHS. This binary measures both paths on the same handle, checks the
//! results are bit-identical, and reports the speedup.

use acc_spmm::{AccSpmm, Arch, DenseMatrix};
use spmm_bench::{f2, print_table, save_json};
use spmm_matrix::gen;
use std::time::Instant;

struct Record {
    matrix: String,
    batch: usize,
    feature_dim: usize,
    looped_ms: f64,
    batched_ms: f64,
    speedup: f64,
    bit_identical: bool,
}

spmm_common::impl_to_json!(Record {
    matrix,
    batch,
    feature_dim,
    looped_ms,
    batched_ms,
    speedup,
    bit_identical
});

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best * 1e3, out.unwrap())
}

fn main() {
    let matrices = [
        ("molecules-16k", gen::molecule_union(16_384, 6, 16, true, 3)),
        (
            "clustered-8k",
            gen::clustered(
                gen::ClusteredConfig {
                    n: 8192,
                    cluster_size: 128,
                    intra_deg: 20.0,
                    inter_deg: 4.0,
                    hub_fraction: 0.01,
                    hub_factor: 8.0,
                    shuffle: true,
                    ..Default::default()
                },
                7,
            ),
        ),
    ];
    let batch = 12usize; // ≥ 8 per the acceptance bar
    let dim = 64usize;
    let reps = 5usize;

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, a) in &matrices {
        let handle = AccSpmm::builder(a)
            .arch(Arch::A800)
            .feature_dim(dim)
            .build()
            .expect("preprocess");
        let bs: Vec<DenseMatrix> = (0..batch)
            .map(|i| DenseMatrix::random(a.nrows(), dim, 40 + i as u64))
            .collect();

        let (looped_ms, looped) = best_of(reps, || {
            bs.iter()
                .map(|b| handle.multiply(b).expect("multiply"))
                .collect::<Vec<_>>()
        });
        let (batched_ms, batched) =
            best_of(reps, || handle.multiply_batch(&bs).expect("multiply_batch"));

        let bit_identical = looped == batched;
        assert!(bit_identical, "{name}: batched result diverged");
        let speedup = looped_ms / batched_ms;
        rows.push(vec![
            name.to_string(),
            batch.to_string(),
            dim.to_string(),
            f2(looped_ms),
            f2(batched_ms),
            f2(speedup),
        ]);
        records.push(Record {
            matrix: name.to_string(),
            batch,
            feature_dim: dim,
            looped_ms,
            batched_ms,
            speedup,
            bit_identical,
        });
    }

    print_table(
        "Batched-RHS throughput (best of 5)",
        &["matrix", "batch", "n", "looped ms", "batched ms", "speedup"],
        &rows,
    );
    save_json("ext_batch_throughput", &records);
    let min = records
        .iter()
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    println!("\nmin speedup over looped multiply: {:.2}x", min);
}
