//! Internal calibration scratchpad (not part of the figure index).

use acc_spmm::matrix::Dataset;
use acc_spmm::reorder::{metrics::mean_nnz_tc, reorder_apply, Algorithm};
use acc_spmm::sim::Arch;
use acc_spmm::{AccConfig, KernelKind};
use spmm_bench::sim_options_for;
use spmm_kernels::PreparedKernel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let abbr = args.first().map(|s| s.as_str()).unwrap_or("reddit");
    let d = Dataset::by_abbr(abbr).expect("dataset");
    let m = d.build();
    println!(
        "{}: rows {} nnz {} avgL {:.2}",
        d.abbr,
        m.nrows(),
        m.nnz(),
        m.avg_row_len()
    );
    for alg in [
        Algorithm::Identity,
        Algorithm::DtcLsh,
        Algorithm::Rabbit,
        Algorithm::Affinity,
    ] {
        let t0 = std::time::Instant::now();
        let (pm, _) = reorder_apply(&m, alg);
        println!(
            "  {:<12} MeanNNZTC {:.2}  ({:.2}s)",
            alg.name(),
            mean_nnz_tc(&pm, 8),
            t0.elapsed().as_secs_f64()
        );
    }
    let opts = sim_options_for(d);
    for kind in [KernelKind::DtcSpmm, KernelKind::AccSpmm] {
        let k = PreparedKernel::builder(kind, &m)
            .arch(Arch::A800)
            .feature_dim(128)
            .build()
            .unwrap();
        let plan = k.plan().unwrap();
        let r = k.profile(Arch::A800, &opts);
        println!(
            "  {:<10} tbs {:>6} ibd {:>8.2} applied {} chunk {:>3} | t {:.3e}s gflops {:>8.1} dram {:>10} l1 {:.3} l2 {:.3} bubbles {:.2e} busy {:.2e} util {:.2}",
            kind.name(),
            plan.tbs.len(),
            plan.ibd,
            plan.applied,
            plan.chunk,
            r.time_s,
            r.gflops,
            r.dram_bytes,
            r.l1_hit_rate,
            r.l2_hit_rate,
            r.bubble_s,
            r.busy_s,
            r.sm_utilization,
        );
    }
    // Acc with balancing off, for isolation.
    let mut cfg = AccConfig::full();
    cfg.balance = spmm_balance::BalanceStrategy::None;
    let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
        .arch(Arch::A800)
        .feature_dim(128)
        .config(cfg)
        .build()
        .unwrap();
    let r = k.profile(Arch::A800, &opts);
    println!(
        "  Acc(noLB)  tbs {:>6} | t {:.3e}s gflops {:>8.1} util {:.2}",
        k.plan().unwrap().tbs.len(),
        r.time_s,
        r.gflops,
        r.sm_utilization
    );
}
