//! Figure 15 — cumulative ablation on H100 with N = 128:
//! Base (DTC-SpMM w/o LB) → +BTCF → +RO → +CP → +PP → +LB.

use acc_spmm::matrix::TABLE2;
use acc_spmm::sim::Arch;
use acc_spmm::{AccConfig, KernelKind};
use spmm_bench::{build_dataset, f2, print_table, save_json, sim_options_for, DETAIL_DIM};
use spmm_kernels::PreparedKernel;

struct Record {
    dataset: String,
    stage: String,
    speedup_over_base: f64,
    gflops: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    stage,
    speedup_over_base,
    gflops
});

fn main() {
    let arch = Arch::H100;
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut stage_means = vec![Vec::new(); 6];
    for d in &TABLE2 {
        let m = build_dataset(d);
        let opts = sim_options_for(d);
        let mut row = vec![d.abbr.to_string()];
        let mut base_time = 0.0f64;
        for (stage, means) in stage_means.iter_mut().enumerate() {
            let cfg = AccConfig::ablation_stage(stage);
            let r = PreparedKernel::builder(KernelKind::AccSpmm, &m)
                .arch(arch)
                .feature_dim(DETAIL_DIM)
                .config(cfg)
                .build()
                .expect("prepare")
                .profile(arch, &opts);
            if stage == 0 {
                base_time = r.time_s;
            }
            let speedup = base_time / r.time_s;
            row.push(f2(speedup));
            means.push(speedup);
            records.push(Record {
                dataset: d.abbr.into(),
                stage: AccConfig::STAGE_NAMES[stage].into(),
                speedup_over_base: speedup,
                gflops: r.gflops,
            });
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("dataset")
        .chain(AccConfig::STAGE_NAMES.iter().copied())
        .collect();
    print_table(
        "Figure 15: ablation on H100 (N=128), speedup over Base (DTC-SpMM w/o LB)",
        &headers,
        &rows,
    );
    print!("\nmean over datasets:");
    for (i, name) in AccConfig::STAGE_NAMES.iter().enumerate() {
        print!("  {name} {:.2}x", spmm_common::stats::mean(&stage_means[i]));
    }
    println!();
    save_json("fig15_ablation", &records);
}
