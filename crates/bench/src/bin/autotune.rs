//! Offline dispatch-policy autotuner — the tool that learns
//! `results/dispatch_policy.json`, the table behind [`KernelKind::Auto`].
//!
//! For every (Table-2 dataset, feature dimension) sample the tuner
//! builds and profiles all six concrete kernels on the simulator, then
//! sweeps hybrid split thresholds with the Equation-(4) region prices
//! ([`PerfModel::tc_region_time`] / [`PerfModel::scalar_region_time`])
//! and profiles the most promising hybrid plan for real. The winning
//! decision per sample is binned over (AvgL, row-length CV, feature
//! dim) and the bins become a first-match rule table. Everything is
//! deterministic — seeded generators, a deterministic simulator, and
//! sorted-key JSON — so CI can regenerate the artifact and fail on any
//! byte of drift:
//!
//! ```text
//! autotune [--out PATH]       # regenerate and write the policy
//! autotune --check [--out PATH]  # rewrite only if drifted (CI gate)
//! ```
//!
//! The tuner never consults the embedded policy itself (decisions come
//! from the simulator, hybrid builds are pinned), so there is no
//! feedback loop between the committed table and the next regeneration.
//!
//! [`PerfModel::tc_region_time`]: acc_spmm::balance::PerfModel::tc_region_time
//! [`PerfModel::scalar_region_time`]: acc_spmm::balance::PerfModel::scalar_region_time

use acc_spmm::balance::{ModelParams, PerfModel};
use acc_spmm::format::{WindowPartition, TILE};
use acc_spmm::kernels::ir::kind_slug;
use acc_spmm::kernels::{PolicyRule, RuleBounds};
use acc_spmm::matrix::{CsrMatrix, TABLE2};
use acc_spmm::{
    AccConfig, Arch, DispatchDecision, DispatchPolicy, ExecutionPlan, KernelKind, MatrixFeatures,
    PreparedKernel, SimOptions,
};
use spmm_bench::{build_dataset, f2, print_table, sim_options_for};
use spmm_common::json::Json;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;

/// Feature dimensions the sweep samples — must cover both perfsuite
/// configurations (quick runs N = 32, full runs N = 128) so the learned
/// bins match what the gate measures.
const SWEEP_DIMS: [usize; 2] = [32, 128];

/// Hybrid window-density cuts the Equation-(4) sweep considers.
const THRESHOLDS: [f64; 8] = [2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0];

/// Bin edges over [`MatrixFeatures::avg_l`] (half-open, last is open).
const AVGL_EDGES: [f64; 7] = [0.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Bin edges over [`MatrixFeatures::row_cv`].
const CV_EDGES: [f64; 3] = [0.0, 0.5, 1.0];

/// Bin edges over the feature dimension.
const DIM_EDGES: [f64; 2] = [1.0, 64.0];

/// One (dataset, feature-dim) measurement: every candidate's simulated
/// time plus the winner.
struct Sample {
    dataset: String,
    features: MatrixFeatures,
    /// Simulated seconds per concrete kernel, in `KernelKind::ALL` order.
    single_s: [f64; KernelKind::ALL.len()],
    /// The profiled hybrid candidate, if the model sweep promoted one.
    hybrid: Option<(DispatchDecision, f64)>,
    /// The sample's best decision and its simulated seconds.
    best: (DispatchDecision, f64),
}

impl Sample {
    /// Simulated seconds of the fastest single kernel.
    fn best_single_s(&self) -> f64 {
        self.single_s.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Simulated seconds the sample would see under `decision`;
    /// `None` when the decision was never profiled here (a hybrid with
    /// a threshold the sweep did not promote for this sample).
    fn time_of(&self, decision: &DispatchDecision) -> Option<f64> {
        if let DispatchDecision::Single(k) = decision {
            let i = KernelKind::ALL.iter().position(|c| c == k)?;
            return Some(self.single_s[i]);
        }
        match &self.hybrid {
            Some((d, s)) if d == decision => Some(*s),
            _ => None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/dispatch_policy.json".into());
    let arch = Arch::A800;

    eprintln!(
        "autotune: sweeping {} datasets x dims {:?} on {:?}",
        TABLE2.len(),
        SWEEP_DIMS,
        arch
    );
    let samples = collect_samples(arch);
    let policy = learn_policy(&samples);
    let text = render(&policy, &samples, arch);
    report(&samples, &policy);

    let previous = std::fs::read_to_string(&out).ok();
    if check && previous.as_deref() == Some(text.as_str()) {
        eprintln!("autotune: {out} is up to date ({} bytes)", text.len());
        return ExitCode::SUCCESS;
    }
    match std::fs::File::create(&out).and_then(|mut f| f.write_all(text.as_bytes())) {
        Ok(()) => {
            if check {
                eprintln!("autotune: {out} DRIFTED and was rewritten (git diff shows the change)");
            } else {
                eprintln!("autotune: wrote {out} ({} bytes)", text.len());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("autotune: failed to write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Profile every candidate for every (dataset, dim) pair: the ten
/// Table-2 analogs plus the synthetic skew family.
fn collect_samples(arch: Arch) -> Vec<Sample> {
    let mut samples = Vec::new();
    for d in &TABLE2 {
        let m = build_dataset(d);
        let opts = sim_options_for(d);
        for dim in SWEEP_DIMS {
            samples.push(measure_sample(d.abbr, &m, arch, dim, &opts));
        }
    }
    for (name, m) in coverage_matrices() {
        let opts = SimOptions::default();
        for dim in SWEEP_DIMS {
            samples.push(measure_sample(&name, &m, arch, dim, &opts));
        }
    }
    samples
}

/// Synthetic high-skew matrices: a dense head (every row `head_deg`
/// wide) over a degree-1 tail. The Table-2 analogs are all fairly
/// uniform (row CV < 0.5), so without these the learned table would
/// leave the entire high-variance half of feature space to the
/// fallback — exactly the matrices hybrid splits exist for.
fn coverage_matrices() -> Vec<(String, CsrMatrix)> {
    let mut out = Vec::new();
    for n in [512usize, 2048] {
        for head_deg in [16usize, 32, 64] {
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            for r in 0..n {
                let mut cols: Vec<u32> = if r < n / 8 {
                    (0..head_deg).map(|j| ((r + j * 7) % n) as u32).collect()
                } else {
                    vec![r as u32]
                };
                cols.sort_unstable();
                cols.dedup();
                for c in cols {
                    col_idx.push(c);
                    values.push(1.0 + (r as f32) * 0.001 + (c as f32) * 0.0001);
                }
                row_ptr.push(col_idx.len());
            }
            let m = CsrMatrix::new(n, n, row_ptr, col_idx, values).expect("valid skew matrix");
            out.push((format!("skew-{n}-{head_deg}"), m));
        }
    }
    out
}

fn measure_sample(name: &str, m: &CsrMatrix, arch: Arch, dim: usize, opts: &SimOptions) -> Sample {
    let features = MatrixFeatures::of(m, dim);
    let profile = |plan: ExecutionPlan| PreparedKernel::from_plan(plan).profile(arch, opts).time_s;

    let mut single_s = [f64::INFINITY; KernelKind::ALL.len()];
    for (i, kind) in KernelKind::ALL.into_iter().enumerate() {
        let plan = ExecutionPlan::build(kind, m, arch, dim, AccConfig::full())
            .unwrap_or_else(|e| panic!("{name}: build {kind:?} failed: {e}"));
        single_s[i] = profile(plan);
    }
    let best_i = (0..single_s.len())
        .min_by(|&a, &b| single_s[a].total_cmp(&single_s[b]))
        .expect("non-empty kernel set");
    let mut best = (
        DispatchDecision::Single(KernelKind::ALL[best_i]),
        single_s[best_i],
    );

    // Candidate splits: the Equation-(4) model ranks the threshold
    // grid, thresholds producing the same window partition collapse to
    // one candidate, and the simulator profiles each genuinely distinct
    // split. The model screens and orders; the profile decides.
    let mut hybrid: Option<(DispatchDecision, f64)> = None;
    for threshold in candidate_thresholds(m, arch, dim) {
        let decision = DispatchDecision::Hybrid {
            dense: KernelKind::AccSpmm,
            sparse: KernelKind::CusparseLike,
            threshold,
        };
        let plan = ExecutionPlan::build_auto_pinned(m, arch, dim, AccConfig::full(), decision)
            .unwrap_or_else(|e| panic!("{name}: hybrid build failed: {e}"));
        let s = profile(plan);
        eprintln!(
            "    {name} N={dim}: split@{threshold} -> {s:.3e} (best single {:.3e})",
            best.1
        );
        if hybrid.as_ref().is_none_or(|(_, prev)| s < *prev) {
            hybrid = Some((decision, s));
        }
    }
    if let Some((decision, s)) = hybrid {
        if s < best.1 {
            best = (decision, s);
        }
    }

    eprintln!(
        "  {name:>12} N={dim:<3} avgl {:>6.1} cv {:>4.2} -> {}",
        features.avg_l,
        features.row_cv,
        describe(&best.0)
    );
    Sample {
        dataset: name.to_string(),
        features,
        single_s,
        hybrid,
        best,
    }
}

/// The split thresholds worth a real plan build + profile: sweep the
/// [`THRESHOLDS`] grid, keep only genuine splits (>= 2 regions), and
/// collapse thresholds that classify every window identically into one
/// candidate. The surviving candidates are ordered by their
/// Equation-(4) region price ([`PerfModel::tc_region_time`] on the
/// dense windows plus [`PerfModel::scalar_region_time`] on the rest)
/// and capped at `MAX_HYBRID_PROFILES`, so a pathological matrix
/// cannot make the sweep build eight hybrid plans.
fn candidate_thresholds(m: &CsrMatrix, arch: Arch, dim: usize) -> Vec<f64> {
    const MAX_HYBRID_PROFILES: usize = 3;
    let spec = arch.spec();
    let model = PerfModel::new(ModelParams {
        feature_dim: dim,
        bandwidth: spec.dram_bw_gbps * 1e9,
        flops: spec.tc_tf32_tflops * 1e12,
        num_sms: spec.num_sms,
    });
    let wp = WindowPartition::build(m);
    let blocks = wp.blocks_per_window();
    let row_ptr = m.row_ptr();
    // (dense-window bitmap key, model price) per threshold.
    let classify = |threshold: f64| {
        let (mut key, mut tc_blocks, mut tc_windows, mut sc_nnz, mut sc_rows) =
            (Vec::new(), 0usize, 0usize, 0usize, 0usize);
        for w in 0..m.nrows().div_ceil(TILE) {
            let lo = w * TILE;
            let hi = ((w + 1) * TILE).min(m.nrows());
            let nnz_w = row_ptr[hi] - row_ptr[lo];
            let dense = nnz_w as f64 / (hi - lo) as f64 >= threshold;
            key.push(dense);
            if dense {
                tc_blocks += blocks.get(w).copied().unwrap_or(0);
                tc_windows += 1;
            } else {
                sc_nnz += nnz_w;
                sc_rows += hi - lo;
            }
        }
        let split = key.iter().any(|&d| d) && key.iter().any(|&d| !d);
        let price =
            model.tc_region_time(tc_blocks, tc_windows) + model.scalar_region_time(sc_nnz, sc_rows);
        (key, split, price)
    };
    let mut seen: Vec<Vec<bool>> = Vec::new();
    let mut candidates: Vec<(f64, f64)> = Vec::new(); // (threshold, price)
    for t in THRESHOLDS {
        let (key, split, price) = classify(t);
        if split && !seen.contains(&key) {
            seen.push(key);
            candidates.push((t, price));
        }
    }
    candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
    candidates.truncate(MAX_HYBRID_PROFILES);
    candidates.into_iter().map(|(t, _)| t).collect()
}

/// Bin the samples over (dim, AvgL, CV) and emit one first-match rule
/// per populated bin; the fallback is the single kernel with the best
/// across-the-board geomean.
fn learn_policy(samples: &[Sample]) -> DispatchPolicy {
    let lower = |edges: &[f64], v: f64| edges.iter().rev().find(|&&e| v >= e).copied();
    let upper = |edges: &[f64], v: f64| edges.iter().find(|&&e| v < e).copied();

    let mut bins: BTreeMap<(u64, u64, u64), Vec<&Sample>> = BTreeMap::new();
    for s in samples {
        let key = (
            lower(&DIM_EDGES, s.features.feature_dim as f64)
                .unwrap_or(0.0)
                .to_bits(),
            lower(&AVGL_EDGES, s.features.avg_l)
                .unwrap_or(0.0)
                .to_bits(),
            lower(&CV_EDGES, s.features.row_cv).unwrap_or(0.0).to_bits(),
        );
        bins.entry(key).or_default().push(s);
    }

    let mut rules = Vec::new();
    for ((dim_lo, avgl_lo, cv_lo), members) in &bins {
        let decision = bin_decision(members);
        let (dim_lo, avgl_lo, cv_lo) = (
            f64::from_bits(*dim_lo),
            f64::from_bits(*avgl_lo),
            f64::from_bits(*cv_lo),
        );
        rules.push(PolicyRule {
            when: RuleBounds {
                avgl_min: (avgl_lo > 0.0).then_some(avgl_lo),
                avgl_max: upper(&AVGL_EDGES, avgl_lo),
                cv_min: (cv_lo > 0.0).then_some(cv_lo),
                cv_max: upper(&CV_EDGES, cv_lo),
                dim_min: (dim_lo > DIM_EDGES[0]).then_some(dim_lo),
                dim_max: upper(&DIM_EDGES, dim_lo),
            },
            decision,
        });
    }

    DispatchPolicy {
        rules,
        fallback: global_best_single(samples),
    }
}

/// A bin's decision: the members' shared hybrid when every member
/// independently promoted the same split, otherwise the single kernel
/// with the lowest within-bin geomean time. Hybrids demand unanimity
/// because a rule's threshold applies to every matrix the bin will
/// ever see — a split that only sometimes wins is not worth the risk
/// of regressing the rest of the bin.
fn bin_decision(members: &[&Sample]) -> DispatchDecision {
    if let DispatchDecision::Hybrid { .. } = members[0].best.0 {
        let d = members[0].best.0;
        if members.iter().all(|s| s.best.0 == d) {
            return d;
        }
    }
    global_best_single(members.iter().copied())
}

/// The single kernel minimizing geomean simulated time over `samples`.
fn global_best_single<'a>(
    samples: impl IntoIterator<Item = &'a Sample> + Clone,
) -> DispatchDecision {
    let geomean_log = |i: usize| {
        samples
            .clone()
            .into_iter()
            .map(|s| s.single_s[i].ln())
            .sum::<f64>()
    };
    let best = (0..KernelKind::ALL.len())
        .min_by(|&a, &b| geomean_log(a).total_cmp(&geomean_log(b)))
        .expect("non-empty kernel set");
    DispatchDecision::Single(KernelKind::ALL[best])
}

/// Serialize the policy with its provenance block. Sorted keys and a
/// trailing newline keep regeneration byte-identical.
fn render(policy: &DispatchPolicy, samples: &[Sample], arch: Arch) -> String {
    let mut extra = BTreeMap::new();
    extra.insert("tool".into(), Json::Str("autotune".into()));
    extra.insert("arch".into(), Json::Str(format!("{arch:?}")));
    extra.insert(
        "feature_dims".into(),
        Json::Arr(SWEEP_DIMS.iter().map(|&d| Json::Num(d as f64)).collect()),
    );
    extra.insert(
        "samples".into(),
        Json::Arr(
            samples
                .iter()
                .map(|s| {
                    let mut o = BTreeMap::new();
                    o.insert("dataset".into(), Json::Str(s.dataset.clone()));
                    o.insert(
                        "feature_dim".into(),
                        Json::Num(s.features.feature_dim as f64),
                    );
                    o.insert("avg_l".into(), Json::Num(s.features.avg_l));
                    o.insert("row_cv".into(), Json::Num(s.features.row_cv));
                    o.insert("best".into(), s.best.0.to_json());
                    o.insert(
                        "speedup_vs_best_single".into(),
                        Json::Num(s.best_single_s() / s.best.1),
                    );
                    Json::Obj(o)
                })
                .collect(),
        ),
    );
    let mut text = policy.to_json(extra).to_string_pretty();
    text.push('\n');
    text
}

/// Print the sweep table and the learned policy's in-sample quality —
/// the geomean of (best single kernel time / policy-decided time),
/// the same ratio the perfsuite `auto-table2` gate enforces at >= 1.
fn report(samples: &[Sample], policy: &DispatchPolicy) {
    let mut rows = Vec::new();
    let mut log_sum = 0.0;
    for s in samples {
        let decided = policy.decide(&s.features);
        // A decided hybrid we never profiled would score as its
        // conservative bound: no better than the sample's best single.
        let decided_s = s.time_of(&decided).unwrap_or_else(|| s.best_single_s());
        let ratio = s.best_single_s() / decided_s;
        log_sum += ratio.ln();
        rows.push(vec![
            s.dataset.clone(),
            format!("{}", s.features.feature_dim),
            f2(s.features.avg_l),
            f2(s.features.row_cv),
            describe(&decided),
            f2(ratio),
        ]);
    }
    print_table(
        "autotune: learned policy, in-sample",
        &["dataset", "N", "AvgL", "CV", "decision", "vs best single"],
        &rows,
    );
    let geomean = (log_sum / samples.len() as f64).exp();
    eprintln!(
        "autotune: in-sample geomean vs best single kernel: {geomean:.4} ({} rules)",
        policy.rules.len()
    );
}

fn describe(d: &DispatchDecision) -> String {
    match d {
        DispatchDecision::Single(k) => kind_slug(*k).to_string(),
        DispatchDecision::Hybrid {
            dense,
            sparse,
            threshold,
        } => format!(
            "hybrid({}|{}@{threshold})",
            kind_slug(*dense),
            kind_slug(*sparse)
        ),
    }
}
