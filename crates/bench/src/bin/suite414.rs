//! §4.2 — geomean speedup over the 414-matrix collection on all three
//! architectures (the SuiteSparse sweep methodology).
//!
//! Usage: `cargo run --release -p spmm-bench --bin suite414 -- [arch] [stride]`
//! With a stride (e.g. 4), only every 4th matrix is evaluated — useful
//! for a quick look; the full run covers all 414.

use acc_spmm::comparison::compare_all;
use acc_spmm::matrix::collection::specs;
use acc_spmm::sim::{Arch, SimOptions};
use acc_spmm::KernelKind;
use spmm_bench::{f2, print_table, save_json, DETAIL_DIM};

struct Record {
    arch: String,
    kernel: String,
    geomean_speedup: f64,
    matrices: usize,
}

spmm_common::impl_to_json!(Record {
    arch,
    kernel,
    geomean_speedup,
    matrices
});

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let archs: Vec<Arch> = args
        .first()
        .and_then(|s| Arch::parse(s))
        .map(|a| vec![a])
        .unwrap_or_else(|| Arch::ALL.to_vec());
    let stride: usize = args
        .iter()
        .find_map(|s| s.parse().ok())
        .filter(|&s: &usize| s >= 1)
        .unwrap_or(1);

    let all = specs();
    let selected: Vec<_> = all.iter().step_by(stride).collect();
    eprintln!(
        "evaluating {} of {} collection matrices on {} arch(s)",
        selected.len(),
        all.len(),
        archs.len()
    );
    // Collection matrices are small and realistic at full cache sizes.
    let opts = SimOptions::default();
    let mut records = Vec::new();
    let mut rows = Vec::new();
    let mut family_rows = Vec::new();
    for arch in &archs {
        let mut per_kernel: Vec<Vec<f64>> = vec![Vec::new(); KernelKind::ALL.len()];
        // Acc speedups bucketed by generator family.
        let mut by_family: std::collections::BTreeMap<String, Vec<f64>> =
            std::collections::BTreeMap::new();
        for (i, spec) in selected.iter().enumerate() {
            if i % 50 == 0 {
                eprintln!("  {} {}/{}", arch.spec().name, i, selected.len());
            }
            let m = spec.build();
            if m.nnz() == 0 {
                continue;
            }
            let cmp = compare_all(&m, *arch, DETAIL_DIM, &opts).expect("comparison");
            for (k, row) in cmp.iter().enumerate() {
                per_kernel[k].push(row.speedup);
            }
            let acc = cmp.last().expect("acc row").speedup;
            by_family
                .entry(format!("{:?}", spec.family))
                .or_default()
                .push(acc);
        }
        let mut row = vec![arch.spec().name.to_string()];
        for (k, kind) in KernelKind::ALL.iter().enumerate() {
            let g = spmm_common::stats::geomean(&per_kernel[k]);
            row.push(f2(g));
            records.push(Record {
                arch: format!("{arch:?}"),
                kernel: kind.name().into(),
                geomean_speedup: g,
                matrices: per_kernel[k].len(),
            });
        }
        rows.push(row);
        let mut frow = vec![arch.spec().name.to_string()];
        for (_fam, v) in by_family.iter() {
            frow.push(f2(spmm_common::stats::geomean(v)));
        }
        if family_rows.is_empty() {
            // Header order is the BTreeMap's (stable).
            family_rows.push(
                std::iter::once("arch".to_string())
                    .chain(by_family.keys().cloned())
                    .collect::<Vec<_>>(),
            );
        }
        family_rows.push(frow);
    }
    let headers: Vec<&str> = std::iter::once("arch")
        .chain(KernelKind::ALL.iter().map(|k| k.name()))
        .collect();
    print_table(
        &format!(
            "§4.2: geomean speedup over the {}-matrix collection (N=128)",
            selected.len()
        ),
        &headers,
        &rows,
    );
    if family_rows.len() > 1 {
        let headers: Vec<&str> = family_rows[0].iter().map(|s| s.as_str()).collect();
        print_table(
            "Acc-SpMM geomean speedup by pattern family",
            &headers,
            &family_rows[1..],
        );
    }
    save_json("suite414", &records);
}
