//! Extension experiment: justifying the balancing constants.
//!
//! §3.5 fixes two magic numbers: the IBD gate (8) and the per-TB block
//! cap (32). This sweep varies both on the type-2 datasets and reports
//! the simulated kernel time, showing each constant sits on the flat
//! bottom of its curve.

use acc_spmm::balance::{plan_with_params, BalanceStrategy, ModelParams, PerfModel};
use acc_spmm::matrix::{Dataset, TABLE2};
use acc_spmm::sim::Arch;
use acc_spmm::{AccConfig, KernelKind};
use spmm_bench::{f2, print_table, save_json, sim_options_for, DETAIL_DIM};
use spmm_format::BitTcf;
use spmm_kernels::PreparedKernel;

struct Record {
    dataset: String,
    parameter: String,
    value: f64,
    time_ms: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    parameter,
    value,
    time_ms
});

/// Simulate Acc-SpMM on `d` with an explicit balance plan built from the
/// given gate/cap.
fn run_with(d: &Dataset, ibd_gate: f64, cap: usize) -> f64 {
    let arch = Arch::A800;
    let m = d.build();
    let opts = sim_options_for(d);
    // Prepare normally to get the reordered matrix, then re-plan with
    // the swept parameters and splice the plan into a fresh trace.
    let cfg = AccConfig::full();
    let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
        .arch(arch)
        .feature_dim(DETAIL_DIM)
        .config(cfg)
        .build()
        .expect("prepare");
    let f = BitTcf::from_csr(k.csr());
    let bpw: Vec<usize> = f
        .row_window_offset
        .windows(2)
        .map(|w| (w[1] - w[0]) as usize)
        .collect();
    let spec = arch.spec();
    let model = PerfModel::new(ModelParams {
        feature_dim: DETAIL_DIM,
        bandwidth: spec.dram_bw_gbps * 1e9,
        flops: spec.tc_tf32_tflops * 1e12,
        num_sms: spec.num_sms,
    });
    let plan = plan_with_params(&bpw, BalanceStrategy::AccAdaptive, &model, ibd_gate, cap);
    let desc = spmm_kernels::tc::acc_trace(
        &spmm_kernels::TcFormat::BitTcf(f),
        &plan,
        DETAIL_DIM,
        &AccConfig::full(),
    );
    spmm_sim::simulate(&spec, &desc, &opts).time_s
}

fn main() {
    let datasets: Vec<&Dataset> = TABLE2.iter().filter(|d| d.matrix_type == 2).collect();
    let gates = [0.0f64, 2.0, 8.0, 32.0, 128.0];
    let caps = [4usize, 8, 16, 32, 64];
    let mut records = Vec::new();

    // Sweep 1: IBD gate at cap 32.
    let mut rows = Vec::new();
    for d in &datasets {
        let mut row = vec![d.abbr.to_string()];
        for &g in &gates {
            let t = run_with(d, g, 32);
            row.push(f2(t * 1e3));
            records.push(Record {
                dataset: d.abbr.into(),
                parameter: "ibd_gate".into(),
                value: g,
                time_ms: t * 1e3,
            });
        }
        rows.push(row);
    }
    print_table(
        "Extension: IBD-gate sweep (kernel ms on A800, cap=32; paper gate = 8)",
        &[
            "dataset", "gate 0", "gate 2", "gate 8", "gate 32", "gate 128",
        ],
        &rows,
    );

    // Sweep 2: per-TB cap at gate 8.
    let mut rows = Vec::new();
    for d in &datasets {
        let mut row = vec![d.abbr.to_string()];
        for &c in &caps {
            let t = run_with(d, 8.0, c);
            row.push(f2(t * 1e3));
            records.push(Record {
                dataset: d.abbr.into(),
                parameter: "cap".into(),
                value: c as f64,
                time_ms: t * 1e3,
            });
        }
        rows.push(row);
    }
    print_table(
        "Extension: per-TB block-cap sweep (kernel ms on A800, gate=8; paper cap = 32)",
        &["dataset", "cap 4", "cap 8", "cap 16", "cap 32", "cap 64"],
        &rows,
    );
    save_json("ext_balance_sweep", &records);
}
