//! Figure 12 — compression ratios of CSR, ME-TCF and BitTCF normalized
//! to TCF, plus the §4.3.2 conversion-cost comparison
//! (`-- --conversion` appends the timing table).

use acc_spmm::format::compression::{conversion_cost, CompressionReport};
use acc_spmm::matrix::TABLE2;
use acc_spmm::reorder::{reorder_apply, Algorithm};
use spmm_bench::{build_dataset, f2, print_table, save_json};

struct Record {
    dataset: String,
    csr_ratio: f64,
    metcf_ratio: f64,
    bittcf_ratio: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    csr_ratio,
    metcf_ratio,
    bittcf_ratio
});

fn main() {
    let with_conversion = std::env::args().any(|a| a == "--conversion");
    let mut rows = Vec::new();
    let mut conv_rows = Vec::new();
    let mut records = Vec::new();
    let mut csr_gain = Vec::new();
    let mut metcf_gain = Vec::new();
    let mut conv_savings = Vec::new();
    for d in &TABLE2 {
        let m = build_dataset(d);
        // Formats are built on the reordered matrix, as in the paper
        // ("building on the reordered matrix, BitTCF ...").
        let (pm, _) = reorder_apply(&m, Algorithm::Affinity);
        let r = CompressionReport::measure(&pm);
        rows.push(vec![
            d.abbr.to_string(),
            f2(r.csr_ratio()),
            f2(r.metcf_ratio()),
            f2(r.bittcf_ratio()),
        ]);
        csr_gain.push(r.bittcf_ratio() / r.csr_ratio() - 1.0);
        metcf_gain.push(r.bittcf_ratio() / r.metcf_ratio() - 1.0);
        records.push(Record {
            dataset: d.abbr.into(),
            csr_ratio: r.csr_ratio(),
            metcf_ratio: r.metcf_ratio(),
            bittcf_ratio: r.bittcf_ratio(),
        });
        if with_conversion {
            let c = conversion_cost(&pm, 3);
            let me = c.partition + c.metcf;
            let bit = c.partition + c.bittcf;
            conv_savings.push(1.0 - bit.as_secs_f64() / me.as_secs_f64().max(1e-12));
            conv_rows.push(vec![
                d.abbr.to_string(),
                format!("{:.1}ms", me.as_secs_f64() * 1e3),
                format!("{:.1}ms", bit.as_secs_f64() * 1e3),
                format!(
                    "{:.0}%",
                    (1.0 - bit.as_secs_f64() / me.as_secs_f64().max(1e-12)) * 100.0
                ),
            ]);
        }
    }
    print_table(
        "Figure 12: compression ratio vs TCF (higher = smaller index structure)",
        &["dataset", "CSR", "ME-TCF", "BitTCF"],
        &rows,
    );
    println!(
        "\nBitTCF vs CSR: avg {:.2}% higher compression | vs ME-TCF: avg {:.2}% (paper: 16.12% / 4.21%)",
        spmm_common::stats::mean(&csr_gain) * 100.0,
        spmm_common::stats::mean(&metcf_gain) * 100.0
    );
    if with_conversion {
        print_table(
            "§4.3.2: CSR->format conversion cost",
            &["dataset", "ME-TCF", "BitTCF", "saving"],
            &conv_rows,
        );
        println!(
            "BitTCF conversion saving vs ME-TCF: avg {:.0}% (paper: ~15%)",
            spmm_common::stats::mean(&conv_savings) * 100.0
        );
    }
    save_json("fig12_compress", &records);
}
