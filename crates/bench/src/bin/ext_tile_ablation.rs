//! Extension experiment: why 8×8 TC blocks?
//!
//! The paper chooses 8×8 tiles so a block's occupancy fits exactly one
//! `u64` ("which also conveniently allows the use of uint64 to encode
//! the positions of nnzs") and pairs with the swapped `m16n8k8` MMA.
//! This ablation sweeps the tile size over {4, 8, 16} and reports, per
//! dataset: MeanNNZTC (density), the number of TC blocks, the BitTCF
//! index bytes under the generalized formula (bitmap of `t²/8` bytes per
//! block), and the dense-FLOP inflation (executed / effective) — the
//! quantities that make 8 the sweet spot.

use acc_spmm::matrix::TABLE2;
use acc_spmm::reorder::{metrics, reorder_apply, Algorithm};
use spmm_bench::{build_dataset, print_table, save_json};

/// Generalized BitTCF index bytes for a `t × t` tile: RowWindowOffset +
/// TCOffset + SparseAToB (t u32 per block) + bitmap (`t²/8` bytes,
/// rounded up to whole bytes per block).
fn bittcf_bytes(nrows: usize, blocks: usize, t: usize) -> usize {
    (nrows.div_ceil(t) + 1 + blocks + 1 + blocks * t) * 4 + blocks * (t * t).div_ceil(8)
}

struct Record {
    dataset: String,
    tile: usize,
    mean_nnz_tc: f64,
    blocks: usize,
    index_bytes: usize,
    flop_inflation: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    tile,
    mean_nnz_tc,
    blocks,
    index_bytes,
    flop_inflation
});

fn main() {
    let tiles = [4usize, 8, 16];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut per_tile_inflation = vec![Vec::new(); tiles.len()];
    let mut per_tile_bytes_per_nnz = vec![Vec::new(); tiles.len()];
    for d in &TABLE2 {
        let m = build_dataset(d);
        let (pm, _) = reorder_apply(&m, Algorithm::Affinity);
        let mut row = vec![d.abbr.to_string()];
        for (i, &t) in tiles.iter().enumerate() {
            let blocks = metrics::num_tc_blocks(&pm, t);
            let density = metrics::mean_nnz_tc(&pm, t);
            let bytes = bittcf_bytes(pm.nrows(), blocks, t);
            // Dense FLOPs executed per effective FLOP: t² / MeanNNZTC.
            let inflation = if density > 0.0 {
                (t * t) as f64 / density
            } else {
                0.0
            };
            per_tile_inflation[i].push(inflation);
            per_tile_bytes_per_nnz[i].push(bytes as f64 / pm.nnz().max(1) as f64);
            row.push(format!("{:.1}/{:.1}x", density, inflation));
            records.push(Record {
                dataset: d.abbr.into(),
                tile: t,
                mean_nnz_tc: density,
                blocks,
                index_bytes: bytes,
                flop_inflation: inflation,
            });
        }
        rows.push(row);
    }
    print_table(
        "Extension: tile-size ablation — MeanNNZTC / dense-FLOP inflation per tile",
        &["dataset", "4x4", "8x8", "16x16"],
        &rows,
    );
    println!("\nmeans over the ten datasets:");
    for (i, &t) in tiles.iter().enumerate() {
        println!(
            "  {t:>2}x{t:<2}  flop inflation {:>5.1}x   BitTCF index bytes/nnz {:>5.2}   bitmap word: {}",
            spmm_common::stats::mean(&per_tile_inflation[i]),
            spmm_common::stats::mean(&per_tile_bytes_per_nnz[i]),
            match t {
                4 => "u16 (wastes the u64 path)",
                8 => "u64 (exactly one word — the paper's choice)",
                _ => "4 x u64 (multi-word popcount chains)",
            }
        );
    }
    println!(
        "\n8x8 balances density against dense-FLOP waste: 4x4 tiles are denser but \
         quadruple per-block metadata; 16x16 tiles quadruple the zero-padding FLOPs."
    );
    save_json("ext_tile_ablation", &records);
}
