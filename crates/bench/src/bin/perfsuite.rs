//! The machine-readable performance suite — the artifact CI and future
//! PRs track for regressions.
//!
//! Runs the kernel matrix (all six [`KernelKind`]s) over the generated
//! Table-2 dataset collection with warmup + timed repeats, under an open
//! `spmm-trace` measurement window, and writes `BENCH_perfsuite.json`:
//! per-(dataset, kernel) median/min wall time and GFLOP/s plus the full
//! counter snapshot, schema-versioned via `common::json`.
//!
//! ```text
//! perfsuite [--quick] [--arch a800] [--dim N] [--warmup N] [--repeats N] [--out PATH]
//! perfsuite --gate <baseline.json> <candidate.json> [--threshold 0.25]
//! ```
//!
//! `--quick` restricts to the three smallest datasets with a small
//! feature dimension — the CI smoke configuration. `--gate` compares two
//! suite artifacts and exits non-zero when any kernel's median wall time
//! regressed by more than the threshold (see `scripts/bench_gate.sh`).

use acc_spmm::matrix::{gen, CsrMatrix, Dataset, DenseMatrix, TABLE2};
use acc_spmm::sim::Arch;
use acc_spmm::{
    AccSpmm, DistSpmm, Engine, KernelKind, ModeledTransport, PreparedKernel, Priority,
    SubmitOptions, SubmitOutcome, Workspace,
};
use spmm_bench::{f2, print_table};
use spmm_common::json::{Json, ToJson};
use spmm_common::stats::median;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bump on any incompatible change to the artifact layout.
/// v2: added the hybrid-dispatch `auto_scenario` (gated on its modeled
/// geomean vs the best single kernel and on stitched bit-identity).
/// v3: added the QoS `storm_scenario` (mixed tenants/priorities under
/// heavy-tailed arrivals; gated on interactive p99 latency, zero
/// deadline-miss executions, the page budget holding, and
/// bit-identity).
/// v4: added the dynamic-graph `streaming_scenario` (a GCN operator
/// under per-step edge churn; incremental plan repair vs full rebuild,
/// gated on bit-identity — single-node and sharded — and on a repair
/// speedup floor).
const SCHEMA_VERSION: u64 = 4;

/// One (dataset, kernel) measurement.
struct Entry {
    dataset: String,
    kernel: String,
    rows: f64,
    nnz: f64,
    feature_dim: f64,
    prep_s: f64,
    median_s: f64,
    min_s: f64,
    gflops: f64,
}

spmm_common::impl_to_json!(Entry {
    dataset,
    kernel,
    rows,
    nnz,
    feature_dim,
    prep_s,
    median_s,
    min_s,
    gflops
});

struct Config {
    quick: bool,
    arch: Arch,
    dim: usize,
    warmup: usize,
    repeats: usize,
    out: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--gate") {
        let threshold = flag_value(&args, "--threshold")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.25);
        let (Some(baseline), Some(candidate)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("usage: perfsuite --gate <baseline.json> <candidate.json> [--threshold X]");
            return ExitCode::FAILURE;
        };
        return gate(baseline, candidate, threshold);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let cfg = Config {
        quick,
        arch: flag_value(&args, "--arch")
            .and_then(|s| Arch::parse(&s))
            .unwrap_or(Arch::A800),
        dim: flag_value(&args, "--dim")
            .and_then(|s| s.parse().ok())
            .unwrap_or(if quick { 32 } else { 128 }),
        warmup: flag_value(&args, "--warmup")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1),
        repeats: flag_value(&args, "--repeats")
            .and_then(|s| s.parse().ok())
            .unwrap_or(if quick { 3 } else { 5 }),
        out: flag_value(&args, "--out").unwrap_or_else(|| "BENCH_perfsuite.json".into()),
    };
    run_suite(&cfg)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The datasets the suite sweeps: all ten Table-2 analogs, or the three
/// smallest for the CI smoke run.
fn suite_datasets(quick: bool) -> Vec<&'static Dataset> {
    let mut ds: Vec<&'static Dataset> = TABLE2.iter().collect();
    if quick {
        ds.sort_by_key(|d| d.scaled_rows);
        ds.truncate(3);
    }
    ds
}

fn run_suite(cfg: &Config) -> ExitCode {
    let mode = if cfg.quick { "quick" } else { "full" };
    eprintln!(
        "perfsuite: mode {mode}, arch {:?}, dim {}, warmup {}, repeats {}",
        cfg.arch, cfg.dim, cfg.warmup, cfg.repeats
    );
    spmm_trace::reset();
    spmm_trace::enable();

    let mut entries = Vec::new();
    let mut rows = Vec::new();
    for d in suite_datasets(cfg.quick) {
        let m = {
            let _s = spmm_trace::span("perfsuite.build_dataset");
            spmm_bench::build_dataset(d)
        };
        for kind in KernelKind::ALL {
            let e = measure(d.abbr, kind, &m, cfg);
            rows.push(vec![
                e.dataset.clone(),
                e.kernel.clone(),
                format!("{:.3}", e.median_s * 1e3),
                format!("{:.3}", e.min_s * 1e3),
                f2(e.gflops),
            ]);
            entries.push(e);
        }
    }

    // Compute-core microbenchmark: the raw 8x8 MMA with per-use
    // rounding vs the pre-rounded mul-add core the TC kernels now run.
    for e in mma_core_entries(cfg) {
        rows.push(vec![
            e.dataset.clone(),
            e.kernel.clone(),
            format!("{:.3}", e.median_s * 1e3),
            format!("{:.3}", e.min_s * 1e3),
            f2(e.gflops),
        ]);
        entries.push(e);
    }

    // Multi-client serving scenario: the same workload through the
    // engine's micro-batcher vs independent multiply loops.
    let (scenario_entries, scenario) = engine_scenario(cfg);
    for e in &scenario_entries {
        rows.push(vec![
            e.dataset.clone(),
            e.kernel.clone(),
            format!("{:.3}", e.median_s * 1e3),
            format!("{:.3}", e.min_s * 1e3),
            f2(e.gflops),
        ]);
    }
    entries.extend(scenario_entries);

    // Warm-start scenario: first-session latency of a fresh process
    // with and without a persisted-plan store (spmm_kernels::ir).
    let (warm_entries, warm) = warmstart_scenario(cfg);
    for e in &warm_entries {
        rows.push(vec![
            e.dataset.clone(),
            e.kernel.clone(),
            format!("{:.3}", e.median_s * 1e3),
            format!("{:.3}", e.min_s * 1e3),
            f2(e.gflops),
        ]);
    }
    entries.extend(warm_entries);

    // Sharded multi-node scenario: the Table-2 collection cut into
    // 1/2/4/8 row-block shards (spmm-dist), bit-identity verified.
    let (dist_entries, dist) = dist_scenario(cfg);
    for e in &dist_entries {
        rows.push(vec![
            e.dataset.clone(),
            e.kernel.clone(),
            format!("{:.3}", e.median_s * 1e3),
            format!("{:.3}", e.min_s * 1e3),
            f2(e.gflops),
        ]);
    }
    entries.extend(dist_entries);

    // QoS storm scenario: interactive tenants trickling requests while
    // batch tenants flood, under tenant quotas, deadlines, and a hard
    // page budget — the serving tier's latency and admission story.
    let (storm_entries, storm) = storm_scenario(cfg);
    for e in &storm_entries {
        rows.push(vec![
            e.dataset.clone(),
            e.kernel.clone(),
            format!("{:.3}", e.median_s * 1e3),
            format!("{:.3}", e.min_s * 1e3),
            f2(e.gflops),
        ]);
    }
    entries.extend(storm_entries);

    // Hybrid-dispatch scenario ("auto-table2"): KernelKind::Auto over
    // the suite collection vs the best single kernel, on the modeled
    // (simulator) clock, with region stitching verified bit-exact.
    let (auto_entries, auto) = auto_scenario(cfg);
    for e in &auto_entries {
        rows.push(vec![
            e.dataset.clone(),
            e.kernel.clone(),
            format!("{:.3}", e.median_s * 1e3),
            format!("{:.3}", e.min_s * 1e3),
            f2(e.gflops),
        ]);
    }
    entries.extend(auto_entries);

    // Dynamic-graph scenario: a GCN aggregation operator under edge
    // churn — incremental plan repair vs full rebuild per step, with
    // single-node and sharded bit-identity verified.
    let (streaming_entries, streaming) = streaming_scenario(cfg);
    for e in &streaming_entries {
        rows.push(vec![
            e.dataset.clone(),
            e.kernel.clone(),
            format!("{:.3}", e.median_s * 1e3),
            format!("{:.3}", e.min_s * 1e3),
            f2(e.gflops),
        ]);
    }
    entries.extend(streaming_entries);

    spmm_trace::disable();
    let counters = spmm_trace::snapshot().counters;

    print_table(
        &format!("perfsuite ({mode}, {:?}, N = {})", cfg.arch, cfg.dim),
        &["dataset", "kernel", "median ms", "min ms", "GFLOP/s"],
        &rows,
    );
    if let Some(speedup) = scenario["speedup"].as_f64() {
        let bit = matches!(scenario["bit_identical"], Json::Bool(true));
        eprintln!(
            "engine scenario: {speedup:.2}x aggregate throughput vs direct loops \
             (bit-identical: {bit})"
        );
    }
    if let Some(speedup) = warm["speedup"].as_f64() {
        let bit = matches!(warm["bit_identical"], Json::Bool(true));
        eprintln!(
            "warmstart scenario: {speedup:.2}x faster first session from the plan \
             store (bit-identical: {bit})"
        );
    }
    if let Some(speedup) = dist["speedup_4x"].as_f64() {
        let bit = matches!(dist["bit_identical"], Json::Bool(true));
        eprintln!(
            "dist scenario: {speedup:.2}x critical-path speedup at 4 shards \
             (bit-identical: {bit})"
        );
    }
    if let Some(p99) = storm["interactive_p99_ms"].as_f64() {
        let late = storm["late_executions"].as_f64().unwrap_or(f64::NAN);
        let peak = storm["pages_peak"].as_f64().unwrap_or(f64::NAN);
        let budget = storm["page_budget"].as_f64().unwrap_or(f64::NAN);
        eprintln!(
            "storm scenario: interactive p99 {p99:.2} ms, late executions {late}, \
             pages peak {peak}/{budget}"
        );
    }
    if let Some(geomean) = auto["geomean_vs_best_single"].as_f64() {
        let bit = matches!(auto["bit_identical"], Json::Bool(true));
        eprintln!(
            "auto scenario: {geomean:.4}x modeled geomean vs the best single \
             kernel (bit-identical: {bit})"
        );
    }
    if let Some(speedup) = streaming["repair_speedup"].as_f64() {
        let bit = matches!(streaming["bit_identical"], Json::Bool(true));
        let dist_bit = matches!(streaming["dist_bit_identical"], Json::Bool(true));
        eprintln!(
            "streaming scenario: {speedup:.2}x plan repair vs full rebuild \
             per churn step (bit-identical: {bit}, sharded: {dist_bit})"
        );
    }

    let doc = suite_json(
        cfg, mode, &entries, &scenario, &warm, &dist, &storm, &auto, &streaming, &counters,
    );
    let text = doc.to_string_pretty();
    match std::fs::File::create(&cfg.out).and_then(|mut f| f.write_all(text.as_bytes())) {
        Ok(()) => {
            eprintln!("wrote {} ({} entries)", cfg.out, entries.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", cfg.out);
            ExitCode::FAILURE
        }
    }
}

/// Prepare once, then warmup + timed repeats of the zero-alloc multiply.
fn measure(dataset: &str, kind: KernelKind, m: &CsrMatrix, cfg: &Config) -> Entry {
    let t0 = Instant::now();
    let k = PreparedKernel::builder(kind, m)
        .arch(cfg.arch)
        .feature_dim(cfg.dim)
        .build()
        .expect("prepare");
    let prep_s = t0.elapsed().as_secs_f64();

    let b = DenseMatrix::random(m.ncols(), cfg.dim, 0xBEEF);
    let mut out = DenseMatrix::zeros(m.nrows(), cfg.dim);
    let mut ws = Workspace::for_plan(k.execution_plan());
    for _ in 0..cfg.warmup {
        k.execute_into(&b, &mut out, &mut ws).expect("warmup");
    }
    let times: Vec<f64> = (0..cfg.repeats.max(1))
        .map(|_| {
            let _s = spmm_trace::span("perfsuite.repeat");
            let t = Instant::now();
            k.execute_into(&b, &mut out, &mut ws).expect("execute");
            t.elapsed().as_secs_f64()
        })
        .collect();
    let med = median(&times);
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    Entry {
        dataset: dataset.into(),
        kernel: kind.name().into(),
        rows: m.nrows() as f64,
        nnz: m.nnz() as f64,
        feature_dim: cfg.dim as f64,
        prep_s,
        median_s: med,
        min_s: min,
        gflops: 2.0 * m.nnz() as f64 * cfg.dim as f64 / med / 1e9,
    }
}

/// The compute-core entries: many back-to-back 8x8xN MMA tiles through
/// the legacy round-at-every-use kernel and through the pre-rounded
/// mul-add core, at the suite's feature dimension. Feeds the gate the
/// kernel the TC paths actually spend their FLOPs in, independent of
/// gather/decompress overheads. One extra `mma-core-<tier>` entry per
/// ISA tier the host offers benches the explicit-SIMD dispatch, so the
/// gate tracks every tier's compute core — not just whichever one the
/// probe would pick.
fn mma_core_entries(cfg: &Config) -> Vec<Entry> {
    use spmm_common::scalar::{tf32_mma_8x8, tf32_mma_8x8_prerounded, to_tf32_slice};
    use spmm_common::simd::mma_8x8_prerounded_tier;
    use spmm_common::util::splitmix64;
    use spmm_common::IsaTier;
    const TILE: usize = 8;
    let _s = spmm_trace::span("perfsuite.mma_core");
    let n = cfg.dim;
    let tiles = if cfg.quick { 2_000 } else { 8_000 };

    let mut a = [0f32; TILE * TILE];
    let mut b = vec![0f32; TILE * n];
    for (i, v) in a.iter_mut().enumerate() {
        *v = (splitmix64(0xA11CE ^ i as u64) >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
    }
    for (i, v) in b.iter_mut().enumerate() {
        *v = (splitmix64(0xB0B ^ i as u64) >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
    }
    let mut a_r = a;
    to_tf32_slice(&mut a_r);
    let mut b_r = b.clone();
    to_tf32_slice(&mut b_r);
    let mut c = vec![0f32; TILE * n];

    let flops = 2.0 * (TILE * TILE * n) as f64 * tiles as f64;
    let mut run = |kernel: &str, f: &mut dyn FnMut(&mut [f32])| {
        for _ in 0..cfg.warmup.max(1) {
            f(&mut c);
        }
        let times: Vec<f64> = (0..cfg.repeats.max(1))
            .map(|_| {
                let t = Instant::now();
                f(&mut c);
                t.elapsed().as_secs_f64()
            })
            .collect();
        let med = median(&times);
        Entry {
            dataset: "mma-core".into(),
            kernel: kernel.into(),
            rows: TILE as f64,
            nnz: (TILE * TILE) as f64,
            feature_dim: n as f64,
            prep_s: 0.0,
            median_s: med,
            min_s: times.iter().copied().fold(f64::INFINITY, f64::min),
            gflops: flops / med / 1e9,
        }
    };
    let e_old = run("mma-rounding", &mut |c| {
        for _ in 0..tiles {
            c.fill(0.0);
            tf32_mma_8x8(std::hint::black_box(&a), std::hint::black_box(&b), c, n);
        }
        std::hint::black_box(c[0]);
    });
    let e_new = run("mma-prerounded", &mut |c| {
        for _ in 0..tiles {
            c.fill(0.0);
            tf32_mma_8x8_prerounded(std::hint::black_box(&a_r), std::hint::black_box(&b_r), c, n);
        }
        std::hint::black_box(c[0]);
    });
    let mut entries = vec![e_old, e_new];
    for tier in IsaTier::ALL.into_iter().filter(|t| t.is_available()) {
        entries.push(run(&format!("mma-core-{tier}"), &mut |c| {
            for _ in 0..tiles {
                c.fill(0.0);
                mma_8x8_prerounded_tier(
                    std::hint::black_box(&a_r),
                    std::hint::black_box(&b_r),
                    c,
                    n,
                    tier,
                );
            }
            std::hint::black_box(c[0]);
        }));
    }
    entries
}

/// The multi-client serving scenario: `SCENARIO_CLIENTS` threads share
/// one preprocessed matrix; the same request stream runs (a) as
/// independent [`AccSpmm::multiply`] loops and (b) through the
/// [`Engine`]'s plan cache + micro-batching worker pool. Reports
/// aggregate throughput for both and verifies the engine's outputs are
/// bit-identical to the direct path.
fn engine_scenario(cfg: &Config) -> (Vec<Entry>, Json) {
    const CLIENTS: usize = 8;
    let _s = spmm_trace::span("perfsuite.engine_scenario");
    let dim = 16; // decode-bound regime where batching pays
    let rounds = if cfg.quick { 12 } else { 24 };
    let runs = cfg.repeats.clamp(1, 3);
    let m = gen::rmat(
        gen::RmatConfig {
            scale: 12,
            avg_deg: 12.0,
            ..Default::default()
        },
        0xACC,
    );

    let t0 = Instant::now();
    let handle = Arc::new(
        AccSpmm::builder(&m)
            .arch(cfg.arch)
            .feature_dim(dim)
            .build()
            .expect("prepare scenario handle"),
    );
    let prep_s = t0.elapsed().as_secs_f64();

    // Per-client request streams and (untimed) reference outputs.
    let bs: Vec<Vec<DenseMatrix>> = (0..CLIENTS)
        .map(|c| {
            (0..rounds)
                .map(|r| DenseMatrix::random(m.ncols(), dim, (c * 1000 + r) as u64 + 1))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<DenseMatrix>> = bs
        .iter()
        .map(|cb| cb.iter().map(|b| handle.multiply(b).unwrap()).collect())
        .collect();

    // (a) Direct: every client runs its own multiply loop on the shared
    // handle — the pre-engine serving story.
    let mut direct_times = Vec::new();
    for _ in 0..runs {
        let t = Instant::now();
        std::thread::scope(|s| {
            for cb in &bs {
                let handle = Arc::clone(&handle);
                s.spawn(move || {
                    for b in cb {
                        std::hint::black_box(handle.multiply(b).expect("direct multiply"));
                    }
                });
            }
        });
        direct_times.push(t.elapsed().as_secs_f64());
    }

    // (b) Engine: clients pipeline their stream through one shared
    // session; the worker coalesces same-key requests into batches.
    let engine = Engine::builder()
        .workers(1)
        .max_batch(CLIENTS)
        .batch_window(Duration::from_micros(200))
        .queue_capacity(CLIENTS * rounds + CLIENTS)
        .build()
        .expect("engine");
    let session = engine.install(handle.prepared().clone());

    let mut engine_times = Vec::new();
    let mut bit_identical = true;
    for run in 0..runs {
        let t = Instant::now();
        let outputs: Vec<Vec<DenseMatrix>> = std::thread::scope(|s| {
            let handles: Vec<_> = bs
                .iter()
                .map(|cb| {
                    let session = session.clone();
                    s.spawn(move || {
                        let tickets: Vec<_> = cb
                            .iter()
                            .map(|b| {
                                session
                                    .submit(b.clone(), SubmitOptions::new())
                                    .into_result()
                                    .expect("submit")
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| t.wait().expect("engine multiply"))
                            .collect::<Vec<DenseMatrix>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        engine_times.push(t.elapsed().as_secs_f64());
        if run + 1 == runs {
            bit_identical = outputs.iter().zip(&expected).all(|(got, want)| {
                got.iter()
                    .zip(want)
                    .all(|(g, w)| g.as_slice() == w.as_slice())
            });
        }
    }
    let stats = engine.stats();

    let total = (CLIENTS * rounds) as f64;
    let flops = 2.0 * m.nnz() as f64 * dim as f64 * total;
    let direct_s = median(&direct_times);
    let engine_s = median(&engine_times);
    let entry = |kernel: &str, secs: f64, mins: f64| Entry {
        dataset: "rmat12-serve".into(),
        kernel: kernel.into(),
        rows: m.nrows() as f64,
        nnz: m.nnz() as f64,
        feature_dim: dim as f64,
        prep_s,
        median_s: secs / total,
        min_s: mins / total,
        gflops: flops / secs / 1e9,
    };
    let entries = vec![
        entry(
            "direct-8-clients",
            direct_s,
            direct_times.iter().copied().fold(f64::INFINITY, f64::min),
        ),
        entry(
            "engine-8-clients",
            engine_s,
            engine_times.iter().copied().fold(f64::INFINITY, f64::min),
        ),
    ];

    let mut sj = BTreeMap::new();
    sj.insert("clients".into(), Json::Num(CLIENTS as f64));
    sj.insert("rounds_per_client".into(), Json::Num(rounds as f64));
    sj.insert("feature_dim".into(), Json::Num(dim as f64));
    sj.insert("direct_s".into(), Json::Num(direct_s));
    sj.insert("engine_s".into(), Json::Num(engine_s));
    sj.insert("speedup".into(), Json::Num(direct_s / engine_s));
    sj.insert("bit_identical".into(), Json::Bool(bit_identical));
    sj.insert("batches".into(), Json::Num(stats.batches as f64));
    sj.insert(
        "batch_occupancy".into(),
        Json::Num(stats.batched_requests as f64 / stats.batches.max(1) as f64),
    );
    sj.insert("plan_builds".into(), Json::Num(stats.plan_builds as f64));
    (entries, Json::Obj(sj))
}

/// The QoS storm scenario ("rmat12-storm"): two interactive tenants
/// trickle latency-sensitive requests while six batch tenants flood the
/// queue with pipelined bulk work, all through one engine configured
/// with per-tenant quotas and a hard page budget. Rejected submissions
/// (quota or page-budget admission) back off by the engine's
/// `retry_after` hint and resubmit, so every request eventually
/// completes and can be verified bit-identical against the direct path.
/// A handful of deliberately past-due requests prove deadline drops
/// happen *before* execution (`late_executions` must stay 0).
///
/// Reports interactive-class p99 completion latency (the number the
/// gate floors), overall p50/p99, admission-control counts, and the
/// page pool's peak-vs-budget watermark read back through the
/// `engine.pages.peak` trace counter.
fn storm_scenario(cfg: &Config) -> (Vec<Entry>, Json) {
    const CLIENTS: usize = 8;
    const INTERACTIVE_CLIENTS: usize = 2;
    /// Outstanding-request window each batch tenant keeps in flight.
    const BATCH_WINDOW: usize = 4;
    const PAGE_BUDGET: usize = 64;
    const TENANT_QUOTA: usize = 2;
    let _s = spmm_trace::span("perfsuite.storm_scenario");
    let dim = 16;
    let interactive_rounds = if cfg.quick { 8 } else { 16 };
    let batch_rounds = if cfg.quick { 16 } else { 32 };
    let m = gen::rmat(
        gen::RmatConfig {
            scale: 12,
            avg_deg: 12.0,
            ..Default::default()
        },
        0x570,
    );

    let handle = Arc::new(
        AccSpmm::builder(&m)
            .arch(cfg.arch)
            .feature_dim(dim)
            .build()
            .expect("prepare storm handle"),
    );

    // Per-client request streams and (untimed) reference outputs.
    let rounds_for = |client: usize| {
        if client < INTERACTIVE_CLIENTS {
            interactive_rounds
        } else {
            batch_rounds
        }
    };
    let bs: Vec<Vec<DenseMatrix>> = (0..CLIENTS)
        .map(|c| {
            (0..rounds_for(c))
                .map(|r| DenseMatrix::random(m.ncols(), dim, (c * 1000 + r) as u64 + 0x570))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<DenseMatrix>> = bs
        .iter()
        .map(|cb| cb.iter().map(|b| handle.multiply(b).unwrap()).collect())
        .collect();

    let engine = Engine::builder()
        .workers(1)
        .max_batch(CLIENTS)
        .batch_window(Duration::from_micros(200))
        .queue_capacity(256)
        .tenant_quota(TENANT_QUOTA)
        .page_budget(PAGE_BUDGET)
        .build()
        .expect("storm engine");
    let session = engine.install(handle.prepared().clone());
    let peak_counter_before = spmm_trace::snapshot().counter("engine.pages.peak");

    // Submit-with-backoff: resubmit on quota/page rejection after the
    // hinted interval (clamped so a storm cannot stall the suite).
    let submit_retrying = |b: &DenseMatrix, opts: &SubmitOptions| loop {
        match session.submit(b.clone(), opts.clone()) {
            SubmitOutcome::Accepted(t) => return t,
            SubmitOutcome::Rejected { retry_after, .. } => {
                let wait = retry_after
                    .unwrap_or(Duration::from_micros(200))
                    .min(Duration::from_millis(2));
                std::thread::sleep(wait);
            }
            _ => unreachable!("non-exhaustive outcome"),
        }
    };

    // Doomed requests: already past due at submission; they must be
    // dropped before ever reaching the kernel.
    const DOOMED: usize = 4;
    let doomed_tickets: Vec<_> = (0..DOOMED)
        .map(|i| {
            let b = DenseMatrix::random(m.ncols(), dim, 0xD00 + i as u64);
            submit_retrying(&b, &SubmitOptions::new().deadline(Duration::ZERO))
        })
        .collect();

    let t0 = Instant::now();
    // (per-request completion latencies, outputs) per client.
    let per_client: Vec<(Vec<f64>, Vec<DenseMatrix>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let cb = &bs[c];
                let session = session.clone();
                s.spawn(move || {
                    let interactive = c < INTERACTIVE_CLIENTS;
                    let opts = SubmitOptions::new()
                        .tenant(format!("storm-{c}"))
                        .priority(if interactive {
                            Priority::Interactive
                        } else {
                            Priority::Batch
                        })
                        .deadline(Duration::from_secs(30));
                    let mut latencies = Vec::with_capacity(cb.len());
                    let mut outputs = Vec::with_capacity(cb.len());
                    if interactive {
                        // Closed loop: one outstanding request, the
                        // latency-sensitive access pattern.
                        for b in cb {
                            let t = Instant::now();
                            let ticket = loop {
                                match session.submit(b.clone(), opts.clone()) {
                                    SubmitOutcome::Accepted(t) => break t,
                                    SubmitOutcome::Rejected { retry_after, .. } => {
                                        let wait = retry_after
                                            .unwrap_or(Duration::from_micros(200))
                                            .min(Duration::from_millis(2));
                                        std::thread::sleep(wait);
                                    }
                                    _ => unreachable!("non-exhaustive outcome"),
                                }
                            };
                            let out = ticket.wait().expect("interactive multiply");
                            latencies.push(t.elapsed().as_secs_f64());
                            outputs.push(out);
                        }
                    } else {
                        // Pipelined: keep a window in flight to flood
                        // the queue and the page budget. Completed
                        // tickets hold their output pages until waited,
                        // so a rejected client must drain its own
                        // oldest ticket before backing off — otherwise
                        // the whole budget can end up parked in
                        // finished-but-unretrieved results.
                        let mut inflight: Vec<(Instant, spmm_engine::Ticket)> = Vec::new();
                        let drain_oldest =
                            |inflight: &mut Vec<(Instant, spmm_engine::Ticket)>,
                             outputs: &mut Vec<DenseMatrix>,
                             latencies: &mut Vec<f64>| {
                                let (t, ticket) = inflight.remove(0);
                                outputs.push(ticket.wait().expect("batch multiply"));
                                latencies.push(t.elapsed().as_secs_f64());
                            };
                        for b in cb {
                            if inflight.len() == BATCH_WINDOW {
                                drain_oldest(&mut inflight, &mut outputs, &mut latencies);
                            }
                            let t = Instant::now();
                            let ticket = loop {
                                match session.submit(b.clone(), opts.clone()) {
                                    SubmitOutcome::Accepted(t) => break t,
                                    SubmitOutcome::Rejected { retry_after, .. } => {
                                        if inflight.is_empty() {
                                            let wait = retry_after
                                                .unwrap_or(Duration::from_micros(200))
                                                .min(Duration::from_millis(2));
                                            std::thread::sleep(wait);
                                        } else {
                                            drain_oldest(
                                                &mut inflight,
                                                &mut outputs,
                                                &mut latencies,
                                            );
                                        }
                                    }
                                    _ => unreachable!("non-exhaustive outcome"),
                                }
                            };
                            inflight.push((t, ticket));
                        }
                        for (t, ticket) in inflight {
                            outputs.push(ticket.wait().expect("batch multiply"));
                            latencies.push(t.elapsed().as_secs_f64());
                        }
                    }
                    (latencies, outputs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let storm_s = t0.elapsed().as_secs_f64();

    let mut doomed_dropped = 0usize;
    for t in doomed_tickets {
        if matches!(
            t.wait(),
            Err(spmm_common::SpmmError::DeadlineExpired { .. })
        ) {
            doomed_dropped += 1;
        }
    }

    let bit_identical = per_client.iter().zip(&expected).all(|((_, got), want)| {
        got.iter()
            .zip(want)
            .all(|(g, w)| g.as_slice() == w.as_slice())
    });

    let quantile = |sorted: &[f64], q: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };
    let mut interactive_lat: Vec<f64> = per_client[..INTERACTIVE_CLIENTS]
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let mut all_lat: Vec<f64> = per_client
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    interactive_lat.sort_by(f64::total_cmp);
    all_lat.sort_by(f64::total_cmp);
    let interactive_p99 = quantile(&interactive_lat, 0.99);
    let p50 = quantile(&all_lat, 0.5);
    let p99 = quantile(&all_lat, 0.99);

    let stats = engine.stats();
    let pages_peak = spmm_trace::snapshot().counter("engine.pages.peak") - peak_counter_before;
    let total = all_lat.len() as f64;
    let entries = vec![Entry {
        dataset: "rmat12-storm".into(),
        kernel: "engine-storm".into(),
        rows: m.nrows() as f64,
        nnz: m.nnz() as f64,
        feature_dim: dim as f64,
        prep_s: 0.0,
        median_s: p50,
        min_s: interactive_p99,
        gflops: 2.0 * m.nnz() as f64 * dim as f64 * total / storm_s / 1e9,
    }];

    let mut sj = BTreeMap::new();
    sj.insert("clients".into(), Json::Num(CLIENTS as f64));
    sj.insert(
        "interactive_clients".into(),
        Json::Num(INTERACTIVE_CLIENTS as f64),
    );
    sj.insert("requests".into(), Json::Num(total));
    sj.insert("tenant_quota".into(), Json::Num(TENANT_QUOTA as f64));
    sj.insert("page_budget".into(), Json::Num(PAGE_BUDGET as f64));
    sj.insert("wall_s".into(), Json::Num(storm_s));
    sj.insert(
        "interactive_p99_ms".into(),
        Json::Num(interactive_p99 * 1e3),
    );
    sj.insert("p50_ms".into(), Json::Num(p50 * 1e3));
    sj.insert("p99_ms".into(), Json::Num(p99 * 1e3));
    sj.insert("bit_identical".into(), Json::Bool(bit_identical));
    sj.insert("rejected".into(), Json::Num(stats.rejected as f64));
    sj.insert(
        "quota_rejected".into(),
        Json::Num(stats.quota_rejected as f64),
    );
    sj.insert("page_denials".into(), Json::Num(stats.page_denials as f64));
    sj.insert("deadline_expired".into(), Json::Num(stats.timed_out as f64));
    sj.insert("doomed_submitted".into(), Json::Num(DOOMED as f64));
    sj.insert("doomed_dropped".into(), Json::Num(doomed_dropped as f64));
    sj.insert(
        "late_executions".into(),
        Json::Num(stats.late_executions as f64),
    );
    sj.insert("pages_peak".into(), Json::Num(pages_peak as f64));
    sj.insert(
        "served_by_class".into(),
        Json::Arr(stats.served.iter().map(|&n| Json::Num(n as f64)).collect()),
    );
    (entries, Json::Obj(sj))
}

/// The warm-start scenario: first-session latency of a freshly started
/// serving process. Cold, `Session::open` pays the full preprocessing
/// pipeline (reorder, format build, balance, compile). Warm, the same
/// open runs against a [`PlanStore`] directory a prior process — or
/// `planc` — populated: the plan is rehydrated from its persisted IR
/// and cross-validated instead of rebuilt. Every engine is constructed
/// fresh so the in-memory plan cache never short-circuits the
/// measurement, and the warm path's outputs are verified bit-identical
/// to the cold path's.
///
/// [`PlanStore`]: acc_spmm::engine::PlanStore
fn warmstart_scenario(cfg: &Config) -> (Vec<Entry>, Json) {
    let _s = spmm_trace::span("perfsuite.warmstart_scenario");
    let dim = 32;
    let runs = cfg.repeats.clamp(1, 5);
    let m = gen::rmat(
        gen::RmatConfig {
            scale: 13,
            avg_deg: 16.0,
            ..Default::default()
        },
        0x5EED,
    );
    let b = DenseMatrix::random(m.ncols(), dim, 0x11);
    let dir = std::env::temp_dir().join(format!("spmm-perfsuite-warmstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Seed the store the way a prior process would: one engine builds
    // the plan and writes through. Untimed.
    {
        let engine = Engine::builder()
            .workers(1)
            .plan_store(&dir)
            .build()
            .expect("seed engine");
        engine
            .session(&m)
            .arch(cfg.arch)
            .feature_dim(dim)
            .open()
            .expect("seed session");
    }

    let open_session = |store: bool| {
        let mut builder = Engine::builder().workers(1);
        if store {
            builder = builder.plan_store(&dir);
        }
        let engine = builder.build().expect("engine");
        let t = Instant::now();
        let session = engine
            .session(&m)
            .arch(cfg.arch)
            .feature_dim(dim)
            .open()
            .expect("open session");
        let open_s = t.elapsed().as_secs_f64();
        let out = session.multiply(&b).expect("first multiply");
        (open_s, out, engine.stats())
    };

    let mut cold_times = Vec::new();
    let mut warm_times = Vec::new();
    let mut cold_out = None;
    let mut warm_out = None;
    let mut warm_stats = None;
    for _ in 0..runs {
        let (s, out, _) = open_session(false);
        cold_times.push(s);
        cold_out = Some(out);
        let (s, out, stats) = open_session(true);
        warm_times.push(s);
        warm_out = Some(out);
        warm_stats = Some(stats);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let bit_identical = match (&cold_out, &warm_out) {
        (Some(c), Some(w)) => c
            .as_slice()
            .iter()
            .zip(w.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        _ => false,
    };
    let stats = warm_stats.expect("warm stats");
    let cold_s = median(&cold_times);
    let warm_s = median(&warm_times);
    let entry = |kernel: &str, times: &[f64]| Entry {
        dataset: "rmat13-warmstart".into(),
        kernel: kernel.into(),
        rows: m.nrows() as f64,
        nnz: m.nnz() as f64,
        feature_dim: dim as f64,
        prep_s: 0.0,
        median_s: median(times),
        min_s: times.iter().copied().fold(f64::INFINITY, f64::min),
        gflops: 0.0,
    };
    let entries = vec![
        entry("engine-coldstart", &cold_times),
        entry("engine-warmstart", &warm_times),
    ];

    let mut sj = BTreeMap::new();
    sj.insert("rows".into(), Json::Num(m.nrows() as f64));
    sj.insert("nnz".into(), Json::Num(m.nnz() as f64));
    sj.insert("feature_dim".into(), Json::Num(dim as f64));
    sj.insert("cold_open_s".into(), Json::Num(cold_s));
    sj.insert("warm_open_s".into(), Json::Num(warm_s));
    sj.insert("speedup".into(), Json::Num(cold_s / warm_s));
    sj.insert("bit_identical".into(), Json::Bool(bit_identical));
    sj.insert("store_hits".into(), Json::Num(stats.store_hits as f64));
    sj.insert(
        "warm_plan_builds".into(),
        Json::Num(stats.plan_builds as f64),
    );
    (entries, Json::Obj(sj))
}

/// The sharded multi-node scenario: every suite dataset cut into
/// 1/2/4/8 nnz-balanced row-block shards and executed by `spmm-dist`
/// over the in-process channel transport.
///
/// Timing methodology: per-shard busy seconds are measured with
/// **sequential dispatch** (`multiply_profiled`), so each shard runs
/// uncontended, and completion is modeled as the **critical path**
/// `scatter + max(shard busy) + gather` — what a deployment with one
/// core per worker would see. (On this CI host every worker shares one
/// core, so concurrent wall-clock would only measure time-slicing; the
/// artifact records both.) Bit-identity against the single-node kernel
/// is verified on every dataset and shard count.
///
/// A second sweep prices the same shard plans over
/// [`ModeledTransport::for_arch`] links for each simulated
/// architecture — the scaling curves EXPERIMENTS.md reports.
fn dist_scenario(cfg: &Config) -> (Vec<Entry>, Json) {
    const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
    let _s = spmm_trace::span("perfsuite.dist_scenario");
    let datasets = suite_datasets(cfg.quick);
    let runs = cfg.repeats.clamp(1, 3);

    let mut bit_identical = true;
    // Per shard count: (sum of critical-path seconds, sum of wall
    // seconds) across the collection.
    let mut cp_total = [0.0f64; SHARD_COUNTS.len()];
    let mut wall_total = [0.0f64; SHARD_COUNTS.len()];
    let mut rows_total = 0f64;
    let mut nnz_total = 0f64;
    let mut largest: Option<CsrMatrix> = None;

    for d in &datasets {
        let m = spmm_bench::build_dataset(d);
        let b = DenseMatrix::random(m.ncols(), cfg.dim, 0xD157);
        let reference = {
            let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
                .arch(cfg.arch)
                .feature_dim(cfg.dim)
                .build()
                .expect("single-node reference");
            k.execute(&b).expect("reference multiply")
        };
        rows_total += m.nrows() as f64;
        nnz_total += m.nnz() as f64;

        for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
            let dist = DistSpmm::builder(KernelKind::AccSpmm, &m)
                .shards(shards)
                .arch(cfg.arch)
                .feature_dim(cfg.dim)
                .build()
                .expect("shard build");
            for _ in 0..cfg.warmup.max(1) {
                dist.multiply_profiled(&b).expect("warmup");
            }
            let mut cps = Vec::with_capacity(runs);
            let mut walls = Vec::with_capacity(runs);
            let mut last = None;
            for _ in 0..runs {
                let (out, report) = dist.multiply_profiled(&b).expect("profiled multiply");
                cps.push(report.critical_path_seconds);
                walls.push(report.wall_seconds);
                last = Some(out);
            }
            bit_identical &= last.is_some_and(|out| {
                out.as_slice()
                    .iter()
                    .zip(reference.as_slice())
                    .all(|(g, w)| g.to_bits() == w.to_bits())
            });
            cp_total[i] += median(&cps);
            wall_total[i] += median(&walls);
        }
        if largest.as_ref().is_none_or(|best| m.nnz() > best.nnz()) {
            largest = Some(m);
        }
    }

    let flops = 2.0 * nnz_total * cfg.dim as f64;
    let entries: Vec<Entry> = SHARD_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &shards)| Entry {
            dataset: "dist-table2".into(),
            kernel: format!("dist-{shards}-shard"),
            rows: rows_total,
            nnz: nnz_total,
            feature_dim: cfg.dim as f64,
            prep_s: 0.0,
            median_s: cp_total[i],
            min_s: wall_total[i],
            gflops: flops / cp_total[i] / 1e9,
        })
        .collect();

    // Modeled-transport scaling curves on the largest dataset of the
    // selection, one curve per simulated architecture.
    let mut curves = BTreeMap::new();
    if let Some(m) = &largest {
        let b = DenseMatrix::random(m.ncols(), cfg.dim, 0xD157);
        for arch in [Arch::Rtx4090, Arch::A800, Arch::H100] {
            let mut points = Vec::new();
            let mut cp1 = 0.0;
            for &shards in &SHARD_COUNTS {
                let dist = DistSpmm::builder(KernelKind::AccSpmm, m)
                    .shards(shards)
                    .arch(arch)
                    .feature_dim(cfg.dim)
                    .transport(Arc::new(ModeledTransport::for_arch(arch)))
                    .build()
                    .expect("modeled shard build");
                dist.multiply_profiled(&b).expect("modeled warmup");
                let (_, report) = dist.multiply_profiled(&b).expect("modeled multiply");
                let cp = report.critical_path_seconds;
                if shards == 1 {
                    cp1 = cp;
                }
                let mut p = BTreeMap::new();
                p.insert("shards".into(), Json::Num(shards as f64));
                p.insert("critical_path_s".into(), Json::Num(cp));
                p.insert(
                    "comm_s".into(),
                    Json::Num(report.scatter_seconds + report.gather_seconds),
                );
                p.insert(
                    "speedup_vs_1".into(),
                    Json::Num(if cp > 0.0 { cp1 / cp } else { 0.0 }),
                );
                points.push(Json::Obj(p));
            }
            curves.insert(format!("{arch:?}"), Json::Arr(points));
        }
    }

    let mut sj = BTreeMap::new();
    sj.insert("transport".into(), Json::Str("channel".into()));
    sj.insert("datasets".into(), Json::Num(datasets.len() as f64));
    sj.insert("feature_dim".into(), Json::Num(cfg.dim as f64));
    sj.insert(
        "shard_counts".into(),
        Json::Arr(SHARD_COUNTS.iter().map(|&s| Json::Num(s as f64)).collect()),
    );
    sj.insert(
        "critical_path_s".into(),
        Json::Arr(cp_total.iter().map(|&s| Json::Num(s)).collect()),
    );
    sj.insert(
        "wall_s".into(),
        Json::Arr(wall_total.iter().map(|&s| Json::Num(s)).collect()),
    );
    sj.insert(
        "aggregate_gflops".into(),
        Json::Arr(
            cp_total
                .iter()
                .map(|&s| Json::Num(flops / s / 1e9))
                .collect(),
        ),
    );
    // SHARD_COUNTS[0] == 1 and [2] == 4: the gate's headline ratio.
    sj.insert("speedup_4x".into(), Json::Num(cp_total[0] / cp_total[2]));
    sj.insert("bit_identical".into(), Json::Bool(bit_identical));
    sj.insert("modeled_curves".into(), Json::Obj(curves));
    (entries, Json::Obj(sj))
}

/// The hybrid-dispatch scenario ("auto-table2"): for every suite
/// dataset, build a [`KernelKind::Auto`] plan next to all six concrete
/// kernels and price each on the deterministic simulator — the same
/// clock the `autotune` policy learner used, so the gate measures the
/// policy's actual objective. Reports the geomean of
/// `best single kernel time / Auto time` (>= 1 means the learned
/// dispatch never loses to the best fixed choice) and verifies the
/// stitched Auto output is bit-identical, region by region, to a
/// whole-matrix run of each region's kernel — the row-partition
/// invariance the hybrid executor is built on.
fn auto_scenario(cfg: &Config) -> (Vec<Entry>, Json) {
    use acc_spmm::{AccConfig, ExecutionPlan, SimOptions};
    let _s = spmm_trace::span("perfsuite.auto_scenario");
    let datasets = suite_datasets(cfg.quick);

    let mut entries = Vec::new();
    let mut decisions = BTreeMap::new();
    let mut log_ratio_sum = 0.0f64;
    let mut bit_identical = true;
    for d in &datasets {
        let m = spmm_bench::build_dataset(d);
        let opts: SimOptions = spmm_bench::sim_options_for(d);

        let t0 = Instant::now();
        let auto = PreparedKernel::builder(KernelKind::Auto, &m)
            .arch(cfg.arch)
            .feature_dim(cfg.dim)
            .build()
            .expect("Auto prepare");
        let prep_s = t0.elapsed().as_secs_f64();
        let auto_s = auto.profile(cfg.arch, &opts).time_s;

        let mut best_single_s = f64::INFINITY;
        for kind in KernelKind::ALL {
            let k = PreparedKernel::builder(kind, &m)
                .arch(cfg.arch)
                .feature_dim(cfg.dim)
                .build()
                .expect("single prepare");
            best_single_s = best_single_s.min(k.profile(cfg.arch, &opts).time_s);
        }
        log_ratio_sum += (best_single_s / auto_s).ln();

        // Stitch check: each region of the Auto output must equal the
        // same rows of a whole-matrix run of that region's kernel.
        let b = DenseMatrix::random(m.ncols(), cfg.dim, 0xA070);
        let got = auto.execute(&b).expect("Auto multiply");
        let regions = auto
            .execution_plan()
            .regions()
            .expect("Auto plan has regions");
        let mut kinds: Vec<KernelKind> = Vec::new();
        for r in regions {
            if !kinds.contains(&r.kind) {
                kinds.push(r.kind);
            }
        }
        for kind in kinds {
            let reference = {
                let plan = ExecutionPlan::build(kind, &m, cfg.arch, cfg.dim, AccConfig::full())
                    .expect("reference plan");
                PreparedKernel::from_plan(plan)
                    .execute(&b)
                    .expect("reference multiply")
            };
            for r in regions.iter().filter(|r| r.kind == kind) {
                for row in r.row_lo..r.row_hi {
                    bit_identical &= got
                        .row(row)
                        .iter()
                        .zip(reference.row(row))
                        .all(|(g, w)| g.to_bits() == w.to_bits());
                }
            }
        }

        let decision = auto
            .execution_plan()
            .decision()
            .map(|d| d.to_json())
            .unwrap_or(Json::Null);
        decisions.insert(d.abbr.to_string(), decision);
        entries.push(Entry {
            dataset: d.abbr.into(),
            kernel: "Auto".into(),
            rows: m.nrows() as f64,
            nnz: m.nnz() as f64,
            feature_dim: cfg.dim as f64,
            prep_s,
            median_s: auto_s,
            min_s: best_single_s,
            gflops: 2.0 * m.nnz() as f64 * cfg.dim as f64 / auto_s / 1e9,
        });
    }
    let geomean = (log_ratio_sum / datasets.len() as f64).exp();

    let mut sj = BTreeMap::new();
    sj.insert("datasets".into(), Json::Num(datasets.len() as f64));
    sj.insert("feature_dim".into(), Json::Num(cfg.dim as f64));
    sj.insert("geomean_vs_best_single".into(), Json::Num(geomean));
    sj.insert("bit_identical".into(), Json::Bool(bit_identical));
    sj.insert("decisions".into(), Json::Obj(decisions));
    (entries, Json::Obj(sj))
}

/// The dynamic-graph scenario ("streaming-gcn"): a normalized GCN
/// aggregation operator (`gcn_normalize` over an RMAT graph) evolves by
/// ~1% edge churn per step — upserted boundary edges, value updates,
/// and deletions, batched in a [`DeltaCsr`] overlay. Each step the live
/// plan is advanced two ways: a **full rebuild** (`ExecutionPlan::build`
/// on the compacted operand — reorder, format, balance, compile from
/// scratch) and an **incremental repair** (`ExecutionPlan::repair` —
/// old permutation kept, only touched format windows re-squeezed). Both
/// products must multiply bit-identically; a 4-shard coordinator
/// follows the same delta stream via [`DistSpmm::apply_delta`] and its
/// halo-exchanged output is checked against the repaired single-node
/// kernel every step. The gate floors the per-step repair speedup and
/// requires both bit-identity flags.
///
/// [`DeltaCsr`]: acc_spmm::DeltaCsr
fn streaming_scenario(cfg: &Config) -> (Vec<Entry>, Json) {
    use acc_spmm::{gcn_normalize, AccConfig, DeltaCsr, ExecutionPlan};
    use spmm_common::util::splitmix64;
    let _s = spmm_trace::span("perfsuite.streaming_scenario");
    let dim = 16;
    let steps = if cfg.quick { 4 } else { 8 };
    let churn_frac = 0.01;
    let a = gen::rmat(
        gen::RmatConfig {
            scale: 12,
            avg_deg: 8.0,
            ..Default::default()
        },
        0xD17A,
    );
    let m0 = gcn_normalize(&a).expect("normalize streaming operator");
    let nnz0 = m0.nnz();
    let n = m0.nrows();
    let b = DenseMatrix::random(n, dim, 0x6C9);

    let mut kernel = PreparedKernel::builder(KernelKind::AccSpmm, &m0)
        .arch(cfg.arch)
        .feature_dim(dim)
        .build()
        .expect("streaming base plan");
    let mut dist = DistSpmm::builder(KernelKind::AccSpmm, &m0)
        .shards(4)
        .arch(cfg.arch)
        .feature_dim(dim)
        .build()
        .expect("streaming coordinator");

    let mut current = m0;
    let mut rebuild_times = Vec::with_capacity(steps);
    let mut repair_times = Vec::with_capacity(steps);
    let mut bit_identical = true;
    let mut dist_bit_identical = true;
    let mut edges_total = 0usize;
    let mut windows_total = 0usize;
    let mut windows_rebuilt = 0usize;
    let per_step = ((nnz0 as f64 * churn_frac).ceil() as usize).max(8);
    for step in 0..steps {
        // ~1% churn: 3/4 upserts (new edges + value updates), 1/4
        // deletions of existing edges, all deterministic.
        let mut delta = DeltaCsr::new(current.clone());
        for i in 0..per_step {
            let h = splitmix64((step * per_step + i) as u64 ^ 0x5EED_CAFE);
            let r = (h >> 32) as usize % n;
            if i % 4 == 3 {
                let (cols, _) = current.row(r);
                if let Some(&c) = cols.get(h as usize % cols.len().max(1)) {
                    delta.delete(r as u32, c);
                }
            } else {
                let c = (h as u32) % n as u32;
                let v = 0.05 + (h >> 40) as f32 / (1u64 << 25) as f32;
                delta.upsert(r as u32, c, v).expect("upsert");
            }
        }
        edges_total += delta.num_pending();

        let t = Instant::now();
        let compacted = delta.compact();
        let scratch = ExecutionPlan::build(
            KernelKind::AccSpmm,
            &compacted,
            cfg.arch,
            dim,
            AccConfig::full(),
        )
        .expect("full rebuild");
        rebuild_times.push(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let (repaired, report) = kernel.execution_plan().repair(&delta).expect("plan repair");
        repair_times.push(t.elapsed().as_secs_f64());
        windows_total += report.windows_total;
        windows_rebuilt += report.windows_rebuilt;

        let repaired_kernel = PreparedKernel::from_plan(repaired);
        let got = repaired_kernel.execute(&b).expect("repaired multiply");
        let want = PreparedKernel::from_plan(scratch)
            .execute(&b)
            .expect("scratch multiply");
        bit_identical &= got
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .all(|(g, w)| g.to_bits() == w.to_bits());

        dist.apply_delta(&delta).expect("sharded delta");
        let sharded = dist.multiply(&b).expect("sharded multiply");
        dist_bit_identical &= sharded
            .as_slice()
            .iter()
            .zip(got.as_slice())
            .all(|(g, w)| g.to_bits() == w.to_bits());

        kernel = repaired_kernel;
        current = compacted;
    }

    let rebuild_s = median(&rebuild_times);
    let repair_s = median(&repair_times);
    let entry = |kernel: &str, times: &[f64]| Entry {
        dataset: "streaming-gcn".into(),
        kernel: kernel.into(),
        rows: n as f64,
        nnz: nnz0 as f64,
        feature_dim: dim as f64,
        prep_s: 0.0,
        median_s: median(times),
        min_s: times.iter().copied().fold(f64::INFINITY, f64::min),
        gflops: 0.0,
    };
    let entries = vec![
        entry("full-rebuild", &rebuild_times),
        entry("plan-repair", &repair_times),
    ];

    let mut sj = BTreeMap::new();
    sj.insert("rows".into(), Json::Num(n as f64));
    sj.insert("nnz".into(), Json::Num(nnz0 as f64));
    sj.insert("feature_dim".into(), Json::Num(dim as f64));
    sj.insert("steps".into(), Json::Num(steps as f64));
    sj.insert("churn_frac".into(), Json::Num(churn_frac));
    sj.insert(
        "edges_per_step".into(),
        Json::Num(edges_total as f64 / steps as f64),
    );
    sj.insert("rebuild_s".into(), Json::Num(rebuild_s));
    sj.insert("repair_s".into(), Json::Num(repair_s));
    sj.insert("repair_speedup".into(), Json::Num(rebuild_s / repair_s));
    sj.insert(
        "windows_rebuilt_frac".into(),
        Json::Num(windows_rebuilt as f64 / windows_total.max(1) as f64),
    );
    sj.insert("bit_identical".into(), Json::Bool(bit_identical));
    sj.insert("dist_bit_identical".into(), Json::Bool(dist_bit_identical));
    (entries, Json::Obj(sj))
}

#[allow(clippy::too_many_arguments)]
fn suite_json(
    cfg: &Config,
    mode: &str,
    entries: &[Entry],
    scenario: &Json,
    warm: &Json,
    dist: &Json,
    storm: &Json,
    auto: &Json,
    streaming: &Json,
    counters: &BTreeMap<String, u64>,
) -> Json {
    let mut doc = BTreeMap::new();
    doc.insert("schema_version".into(), Json::Num(SCHEMA_VERSION as f64));
    doc.insert("suite".into(), Json::Str("perfsuite".into()));
    doc.insert("mode".into(), Json::Str(mode.into()));
    doc.insert("arch".into(), Json::Str(format!("{:?}", cfg.arch)));
    doc.insert("feature_dim".into(), Json::Num(cfg.dim as f64));
    doc.insert("warmup".into(), Json::Num(cfg.warmup as f64));
    doc.insert("repeats".into(), Json::Num(cfg.repeats as f64));
    doc.insert("entries".into(), entries.to_json());
    doc.insert("engine_scenario".into(), scenario.clone());
    doc.insert("warmstart_scenario".into(), warm.clone());
    doc.insert("dist_scenario".into(), dist.clone());
    doc.insert("storm_scenario".into(), storm.clone());
    doc.insert("auto_scenario".into(), auto.clone());
    doc.insert("streaming_scenario".into(), streaming.clone());
    doc.insert(
        "counters".into(),
        Json::Obj(
            counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                .collect(),
        ),
    );
    Json::Obj(doc)
}

/// Load a suite artifact, validating its schema version.
fn load_suite(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc["schema_version"].as_f64().map(|v| v as u64) {
        Some(SCHEMA_VERSION) => Ok(doc),
        Some(v) => Err(format!(
            "{path}: schema_version {v}, expected {SCHEMA_VERSION}"
        )),
        None => Err(format!("{path}: missing schema_version")),
    }
}

/// Per-kernel median wall times of one artifact, keyed by kernel name.
fn per_kernel_medians(doc: &Json) -> BTreeMap<String, Vec<f64>> {
    let mut map: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    if let Some(entries) = doc["entries"].as_array() {
        for e in entries {
            if let (Some(kernel), Some(med)) = (e["kernel"].as_str(), e["median_s"].as_f64()) {
                map.entry(kernel.to_string()).or_default().push(med);
            }
        }
    }
    map
}

/// Compare candidate vs baseline per kernel; fail on regressions beyond
/// `threshold` (e.g. 0.25 = 25% slower median).
fn gate(baseline: &str, candidate: &str, threshold: f64) -> ExitCode {
    let (base, cand) = match (load_suite(baseline), load_suite(candidate)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench gate: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };
    let base_by_kernel = per_kernel_medians(&base);
    let cand_by_kernel = per_kernel_medians(&cand);

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (kernel, base_meds) in &base_by_kernel {
        let Some(cand_meds) = cand_by_kernel.get(kernel) else {
            failures.push(format!("{kernel}: missing from candidate"));
            continue;
        };
        let b = median(base_meds);
        let c = median(cand_meds);
        let ratio = if b > 0.0 { c / b } else { 1.0 };
        let verdict = if ratio > 1.0 + threshold {
            failures.push(format!(
                "{kernel}: median {:.3} ms -> {:.3} ms ({:+.1}%)",
                b * 1e3,
                c * 1e3,
                (ratio - 1.0) * 100.0
            ));
            "FAIL"
        } else {
            "ok"
        };
        rows.push(vec![
            kernel.clone(),
            format!("{:.3}", b * 1e3),
            format!("{:.3}", c * 1e3),
            format!("{:+.1}%", (ratio - 1.0) * 100.0),
            verdict.into(),
        ]);
    }
    // The serving scenario must stay present, correct, and faster than
    // the direct loops. The floor is conservative (the committed
    // artifact shows the full margin) to tolerate machine variance.
    if base["engine_scenario"].as_object().is_some() {
        match cand["engine_scenario"]["speedup"].as_f64() {
            None => failures.push("engine_scenario: missing from candidate".into()),
            Some(s) if s < 1.2 => {
                failures.push(format!("engine_scenario: speedup {s:.2}x below 1.2x floor"))
            }
            Some(_) => {}
        }
        if cand["engine_scenario"].as_object().is_some()
            && !matches!(cand["engine_scenario"]["bit_identical"], Json::Bool(true))
        {
            failures.push("engine_scenario: results not bit-identical".into());
        }
    }
    // The warm-start scenario must stay present, bit-identical across
    // the cold and warm paths, and show the persistent store's payoff:
    // a restarted process must open its first session at least 3x
    // faster from persisted plans than from a cold build. The committed
    // artifact shows the full margin.
    if base["warmstart_scenario"].as_object().is_some() {
        match cand["warmstart_scenario"]["speedup"].as_f64() {
            None => failures.push("warmstart_scenario: missing from candidate".into()),
            Some(s) if s < 3.0 => failures.push(format!(
                "warmstart_scenario: speedup {s:.2}x below 3.0x floor"
            )),
            Some(_) => {}
        }
        if cand["warmstart_scenario"].as_object().is_some()
            && !matches!(
                cand["warmstart_scenario"]["bit_identical"],
                Json::Bool(true)
            )
        {
            failures.push("warmstart_scenario: cold and warm results differ".into());
        }
    }
    // The sharded scenario must stay present, bit-identical, and show a
    // real critical-path win at 4 shards. The 1.5x floor is the
    // acceptance bar; the committed artifact shows the full margin.
    if base["dist_scenario"].as_object().is_some() {
        match cand["dist_scenario"]["speedup_4x"].as_f64() {
            None => failures.push("dist_scenario: missing from candidate".into()),
            Some(s) if s < 1.5 => failures.push(format!(
                "dist_scenario: 4-shard speedup {s:.2}x below 1.5x floor"
            )),
            Some(_) => {}
        }
        if cand["dist_scenario"].as_object().is_some()
            && !matches!(cand["dist_scenario"]["bit_identical"], Json::Bool(true))
        {
            failures.push("dist_scenario: results not bit-identical".into());
        }
    }
    // The QoS storm scenario must stay present and hold the serving
    // tier's contracts: interactive p99 completion latency under a
    // conservative absolute ceiling, zero deadline-miss executions
    // (expired work is dropped *before* the kernel, never after), the
    // page pool's peak never above its configured budget, and outputs
    // bit-identical to the direct path.
    if base["storm_scenario"].as_object().is_some() {
        const P99_CEILING_MS: f64 = 250.0;
        match cand["storm_scenario"]["interactive_p99_ms"].as_f64() {
            None => failures.push("storm_scenario: missing from candidate".into()),
            Some(p99) if p99 > P99_CEILING_MS => failures.push(format!(
                "storm_scenario: interactive p99 {p99:.1} ms above the {P99_CEILING_MS} ms ceiling"
            )),
            Some(_) => {}
        }
        if cand["storm_scenario"].as_object().is_some() {
            if cand["storm_scenario"]["late_executions"].as_f64() != Some(0.0) {
                failures.push("storm_scenario: expired work reached the kernel".into());
            }
            match (
                cand["storm_scenario"]["pages_peak"].as_f64(),
                cand["storm_scenario"]["page_budget"].as_f64(),
            ) {
                (Some(peak), Some(budget)) if peak <= budget => {}
                other => failures.push(format!(
                    "storm_scenario: page budget violated or unreported ({other:?})"
                )),
            }
            if !matches!(cand["storm_scenario"]["bit_identical"], Json::Bool(true)) {
                failures.push("storm_scenario: results not bit-identical".into());
            }
        }
    }
    // The hybrid-dispatch scenario must stay present, its stitched
    // output bit-identical to the per-region single-kernel references,
    // and `KernelKind::Auto` must never lose to the best single kernel
    // on the modeled clock (geomean floor 1.0 — the acceptance bar the
    // learned policy is tuned against).
    if base["auto_scenario"].as_object().is_some() {
        match cand["auto_scenario"]["geomean_vs_best_single"].as_f64() {
            None => failures.push("auto_scenario: missing from candidate".into()),
            Some(g) if g < 1.0 => failures.push(format!(
                "auto_scenario: geomean {g:.4} vs best single kernel below the 1.0 floor"
            )),
            Some(_) => {}
        }
        if cand["auto_scenario"].as_object().is_some()
            && !matches!(cand["auto_scenario"]["bit_identical"], Json::Bool(true))
        {
            failures.push("auto_scenario: stitched results not bit-identical".into());
        }
    }
    // The dynamic-graph scenario must stay present, its repaired plans
    // bit-identical to full rebuilds on the compacted operand (and the
    // sharded coordinator bit-identical under the same churn), and
    // incremental repair must actually pay: at ~1% churn per step the
    // 1.5x floor is deeply conservative (repair skips reordering and
    // rebuilds only touched windows; the committed artifact shows the
    // full margin).
    if base["streaming_scenario"].as_object().is_some() {
        match cand["streaming_scenario"]["repair_speedup"].as_f64() {
            None => failures.push("streaming_scenario: missing from candidate".into()),
            Some(s) if s < 1.5 => failures.push(format!(
                "streaming_scenario: repair speedup {s:.2}x below 1.5x floor"
            )),
            Some(_) => {}
        }
        if cand["streaming_scenario"].as_object().is_some() {
            if !matches!(
                cand["streaming_scenario"]["bit_identical"],
                Json::Bool(true)
            ) {
                failures.push("streaming_scenario: repair diverged from full rebuild".into());
            }
            if !matches!(
                cand["streaming_scenario"]["dist_bit_identical"],
                Json::Bool(true)
            ) {
                failures.push("streaming_scenario: sharded churn results not bit-identical".into());
            }
        }
    }

    print_table(
        &format!("bench gate (threshold {:.0}%)", threshold * 100.0),
        &["kernel", "baseline ms", "candidate ms", "delta", "verdict"],
        &rows,
    );
    if failures.is_empty() {
        println!("\nbench gate: no kernel regressed beyond {threshold:.2}");
        ExitCode::SUCCESS
    } else {
        println!("\nbench gate FAILED:");
        for f in &failures {
            println!("  {f}");
        }
        ExitCode::FAILURE
    }
}
