//! Figure 14 — compute and memory throughput with and without the
//! adaptive load balancing, on A800 (a) and H100 (b), for the imbalanced
//! (type-2) matrices.

use acc_spmm::balance::BalanceStrategy;
use acc_spmm::matrix::TABLE2;
use acc_spmm::sim::Arch;
use acc_spmm::{AccConfig, KernelKind};
use spmm_bench::{build_dataset, f1, print_table, save_json, sim_options_for, DETAIL_DIM};
use spmm_kernels::PreparedKernel;

struct Record {
    arch: String,
    dataset: String,
    compute_no_lb: f64,
    compute_lb: f64,
    memory_no_lb: f64,
    memory_lb: f64,
}

spmm_common::impl_to_json!(Record {
    arch,
    dataset,
    compute_no_lb,
    compute_lb,
    memory_no_lb,
    memory_lb
});

fn main() {
    let mut records = Vec::new();
    for arch in [Arch::A800, Arch::H100] {
        let mut rows = Vec::new();
        // "We focus our load balancing experiments mainly on type-2
        // matrices" — plus WB, the most imbalanced type-1 set.
        for d in TABLE2
            .iter()
            .filter(|d| d.matrix_type == 2 || d.abbr == "WB")
        {
            let m = build_dataset(d);
            let opts = sim_options_for(d);
            let run = |balance: BalanceStrategy| {
                let mut cfg = AccConfig::full();
                cfg.balance = balance;
                PreparedKernel::builder(KernelKind::AccSpmm, &m)
                    .arch(arch)
                    .feature_dim(DETAIL_DIM)
                    .config(cfg)
                    .build()
                    .expect("prepare")
                    .profile(arch, &opts)
            };
            let none = run(BalanceStrategy::None);
            let lb = run(BalanceStrategy::AccAdaptive);
            let ibd = {
                let mut cfg = AccConfig::full();
                cfg.balance = BalanceStrategy::AccAdaptive;
                let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
                    .arch(arch)
                    .feature_dim(DETAIL_DIM)
                    .config(cfg)
                    .build()
                    .expect("prepare");
                let plan = k.plan().unwrap().clone();
                (plan.ibd, plan.applied)
            };
            rows.push(vec![
                d.abbr.to_string(),
                format!("{:.1}{}", ibd.0, if ibd.1 { "*" } else { "" }),
                f1(none.compute_throughput_gflops),
                f1(lb.compute_throughput_gflops),
                f1(none.mem_throughput_gbps),
                f1(lb.mem_throughput_gbps),
                format!("{:.2}x", none.time_s / lb.time_s),
            ]);
            records.push(Record {
                arch: format!("{arch:?}"),
                dataset: d.abbr.into(),
                compute_no_lb: none.compute_throughput_gflops,
                compute_lb: lb.compute_throughput_gflops,
                memory_no_lb: none.mem_throughput_gbps,
                memory_lb: lb.mem_throughput_gbps,
            });
        }
        print_table(
            &format!(
                "Figure 14: throughput without/with load balancing on {} (N=128)",
                arch.spec().name
            ),
            &[
                "dataset",
                "IBD",
                "compute GF (no LB)",
                "compute GF (LB)",
                "mem GB/s (no LB)",
                "mem GB/s (LB)",
                "speedup",
            ],
            &rows,
        );
        println!("(* = IBD > 8: the adaptive balancer rebalanced; unmarked matrices were already balanced and left alone, as §3.5 prescribes)");
    }
    save_json("fig14_balance", &records);
}
