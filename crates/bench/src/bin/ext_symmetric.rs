//! Extension experiment (paper §6 future work): symmetric reordering.
//!
//! "In the future, we plan to reorder the columns of the sparse matrix
//! while simultaneously reordering the rows of the dense matrix, further
//! improving cache hit rates." — this binary implements and measures
//! exactly that: Acc-SpMM in the shipped rows-only mode versus the
//! symmetric mode (`(P A Pᵀ)(P B) = P (A B)`), on A800 with N = 128.

use acc_spmm::matrix::TABLE2;
use acc_spmm::sim::Arch;
use acc_spmm::{AccConfig, KernelKind};
use spmm_bench::{f2, print_table, save_json, sim_options_for};
use spmm_kernels::PreparedKernel;

struct Record {
    dataset: String,
    feature_dim: usize,
    rows_only_l1: f64,
    symmetric_l1: f64,
    speedup: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    feature_dim,
    rows_only_l1,
    symmetric_l1,
    speedup
});

fn main() {
    let arch = Arch::A800;
    let mut records = Vec::new();
    // The mechanism: relabeled columns make the B gather stream
    // *contiguous*. At row granularity that is cache-isomorphic, so the
    // win appears where adjacent B rows share cache lines — small
    // feature dims (N=16 -> 64-byte rows, two per 128B line). At N=128
    // each row spans whole lines and the two modes converge.
    for &n in &[16usize, 128] {
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        for d in &TABLE2 {
            let m = spmm_bench::build_dataset(d);
            let opts = sim_options_for(d);
            let run = |symmetric: bool| {
                let mut cfg = AccConfig::full();
                cfg.symmetric_reorder = symmetric;
                PreparedKernel::builder(KernelKind::AccSpmm, &m)
                    .arch(arch)
                    .feature_dim(n)
                    .config(cfg)
                    .build()
                    .expect("prepare")
                    .profile(arch, &opts)
            };
            let ro = run(false);
            let sym = run(true);
            let speedup = ro.time_s / sym.time_s;
            speedups.push(speedup);
            rows.push(vec![
                d.abbr.to_string(),
                format!("{:.1}%", ro.l1_hit_rate * 100.0),
                format!("{:.1}%", sym.l1_hit_rate * 100.0),
                format!("{:.1}%", ro.l2_hit_rate * 100.0),
                format!("{:.1}%", sym.l2_hit_rate * 100.0),
                f2(speedup),
            ]);
            records.push(Record {
                dataset: d.abbr.into(),
                feature_dim: n,
                rows_only_l1: ro.l1_hit_rate,
                symmetric_l1: sym.l1_hit_rate,
                speedup,
            });
        }
        print_table(
            &format!(
                "Extension (§6 future work): rows-only vs symmetric reordering on A800 (N={n})"
            ),
            &[
                "dataset",
                "L1 rows-only",
                "L1 symmetric",
                "L2 rows-only",
                "L2 symmetric",
                "speedup",
            ],
            &rows,
        );
        println!(
            "mean speedup at N={n}: {:.2}x",
            spmm_common::stats::mean(&speedups)
        );
    }
    save_json("ext_symmetric", &records);
}
