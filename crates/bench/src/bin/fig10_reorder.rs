//! Figure 10 — MeanNNZTC of the seven reordering algorithms on the ten
//! evaluation datasets.

use acc_spmm::matrix::TABLE2;
use acc_spmm::reorder::{metrics::mean_nnz_tc, reorder_apply, Algorithm};
use spmm_bench::{build_dataset, f2, print_table, save_json};

struct Record {
    dataset: String,
    algorithm: String,
    mean_nnz_tc: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    algorithm,
    mean_nnz_tc
});

fn main() {
    let algs = [
        Algorithm::Identity,
        Algorithm::Sgt,
        Algorithm::Lsh64,
        Algorithm::DtcLsh,
        Algorithm::MetisLike,
        Algorithm::Louvain,
        Algorithm::Rabbit,
        Algorithm::Affinity,
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut gains_vs_dtc = Vec::new();
    let mut gains_vs_rabbit = Vec::new();
    for d in &TABLE2 {
        let m = build_dataset(d);
        let mut row = vec![d.abbr.to_string()];
        let mut by_alg = Vec::new();
        for alg in algs {
            let (pm, _) = reorder_apply(&m, alg);
            let v = mean_nnz_tc(&pm, 8);
            row.push(f2(v));
            by_alg.push(v);
            records.push(Record {
                dataset: d.abbr.into(),
                algorithm: alg.name().into(),
                mean_nnz_tc: v,
            });
        }
        let acc = by_alg[7];
        gains_vs_dtc.push(acc / by_alg[3]);
        gains_vs_rabbit.push(acc / by_alg[6]);
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("dataset")
        .chain(algs.iter().map(|a| a.name()))
        .collect();
    print_table(
        "Figure 10: MeanNNZTC by reordering algorithm",
        &headers,
        &rows,
    );
    println!(
        "\nAcc-Reorder vs DTC-LSH: avg gain {:.2}x | vs Rabbit Order: avg gain {:.2}x (paper: 1.28x / 1.10x)",
        spmm_common::stats::mean(&gains_vs_dtc),
        spmm_common::stats::mean(&gains_vs_rabbit)
    );
    save_json("fig10_reorder", &records);
}
