//! Tables 1, 2 and 3 — cache operators, evaluation datasets, GPU
//! architectures.
//!
//! Usage: `cargo run -p spmm-bench --bin tables -- [table1|table2|table3]`
//! (default: all three).

use acc_spmm::matrix::TABLE2;
use acc_spmm::sim::{Arch, CacheOp};
use spmm_bench::{build_dataset, f2, print_table};

fn table1() {
    let ops = [
        CacheOp::Ca,
        CacheOp::Cg,
        CacheOp::Cs,
        CacheOp::Lu,
        CacheOp::Cv,
        CacheOp::Wb,
        CacheOp::Wt,
    ];
    let rows: Vec<Vec<String>> = ops
        .iter()
        .map(|op| vec![op.mnemonic().to_string(), op.meaning().to_string()])
        .collect();
    print_table(
        "Table 1: cache operators for memory instructions",
        &["operator", "meaning"],
        &rows,
    );
}

fn table2() {
    let rows: Vec<Vec<String>> = TABLE2
        .iter()
        .map(|d| {
            let m = build_dataset(d);
            vec![
                d.matrix_type.to_string(),
                d.name.to_string(),
                d.abbr.to_string(),
                format!("{}", d.paper_rows),
                format!("{}", d.paper_nnz),
                f2(d.paper_avgl),
                format!("{}", m.nrows()),
                format!("{}", m.nnz()),
                f2(m.avg_row_len()),
                format!("{:.0}x", d.scale_factor()),
            ]
        })
        .collect();
    print_table(
        "Table 2: datasets (paper stats | scaled synthetic analog)",
        &[
            "type", "dataset", "abbr", "rows", "nnz", "AvgL", "rows*", "nnz*", "AvgL*", "scale",
        ],
        &rows,
    );
    println!("* = scaled synthetic analog used by this reproduction");
}

fn table3() {
    let rows: Vec<Vec<String>> = Arch::ALL
        .iter()
        .map(|a| {
            let s = a.spec();
            vec![
                s.name.to_string(),
                format!("{}", s.num_sms),
                format!("{}", s.tc_tf32_tflops),
                format!("{} GB/s", s.dram_bw_gbps),
                format!("{} MiB", s.l2_bytes / 1024 / 1024),
                format!("{} KiB", s.l1_bytes_per_sm / 1024),
            ]
        })
        .collect();
    print_table(
        "Table 3: GPU architectures",
        &["GPU", "SMs", "TF32 TFLOPS", "MEM BW", "L2", "L1/SM"],
        &rows,
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    match arg.as_str() {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        _ => {
            table1();
            table2();
            table3();
        }
    }
}
