//! Figures 7, 8, 9 — overall evaluation: normalized speedup over
//! cuSPARSE and detailed GFLOPS for all six kernels on the ten Table-2
//! datasets.
//!
//! Usage: `cargo run --release -p spmm-bench --bin overall -- <arch> [dims...]`
//! where `<arch>` is `rtx4090` (Fig 7), `a800` (Fig 8) or `h100` (Fig 9).
//! Dims default to the paper's 128 256 512 average.

use acc_spmm::comparison::compare_all;
use acc_spmm::matrix::TABLE2;
use acc_spmm::sim::Arch;
use acc_spmm::KernelKind;
use spmm_bench::{build_dataset, f2, print_table, save_json, sim_options_for, FEATURE_DIMS};

struct Record {
    arch: String,
    dataset: String,
    kernel: String,
    speedup: f64,
    gflops: f64,
}

spmm_common::impl_to_json!(Record {
    arch,
    dataset,
    kernel,
    speedup,
    gflops
});

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arch = args
        .first()
        .and_then(|s| Arch::parse(s))
        .unwrap_or(Arch::A800);
    let dims: Vec<usize> = if args.len() > 1 {
        args[1..].iter().filter_map(|s| s.parse().ok()).collect()
    } else {
        FEATURE_DIMS.to_vec()
    };
    let fig = match arch {
        Arch::Rtx4090 => "Figure 7 (RTX 4090)",
        Arch::A800 => "Figure 8 (A800)",
        Arch::H100 => "Figure 9 (H100)",
    };
    eprintln!("regenerating {fig}, dims {dims:?}");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut per_kernel_speedups: Vec<Vec<f64>> = vec![Vec::new(); KernelKind::ALL.len()];
    let mut acc_type2_max: f64 = 0.0;

    for d in &TABLE2 {
        let m = build_dataset(d);
        let opts = sim_options_for(d);
        // Average speedup and GFLOPS across the requested dims, as §4.1
        // specifies ("average performance with ... 128, 256 and 512").
        let mut speed = vec![0.0f64; KernelKind::ALL.len()];
        let mut gflops = vec![0.0f64; KernelKind::ALL.len()];
        for &n in &dims {
            let cmp = compare_all(&m, arch, n, &opts).expect("comparison");
            for (i, row) in cmp.iter().enumerate() {
                speed[i] += row.speedup / dims.len() as f64;
                gflops[i] += row.report.gflops / dims.len() as f64;
            }
        }
        let mut row = vec![d.abbr.to_string()];
        for (i, kind) in KernelKind::ALL.iter().enumerate() {
            row.push(f2(speed[i]));
            per_kernel_speedups[i].push(speed[i]);
            records.push(Record {
                arch: format!("{arch:?}"),
                dataset: d.abbr.into(),
                kernel: kind.name().into(),
                speedup: speed[i],
                gflops: gflops[i],
            });
            if *kind == KernelKind::AccSpmm && d.matrix_type == 2 {
                acc_type2_max = acc_type2_max.max(speed[i]);
            }
        }
        row.push(f2(gflops[KernelKind::ALL.len() - 1])); // Acc GFLOPS
        rows.push(row);
    }

    let headers: Vec<&str> = std::iter::once("dataset")
        .chain(KernelKind::ALL.iter().map(|k| k.name()))
        .chain(std::iter::once("Acc GFLOPS"))
        .collect();
    print_table(
        &format!("{fig}: speedup over cuSPARSE (avg over N = {dims:?})"),
        &headers,
        &rows,
    );

    // Summary line matching the abstract's claims.
    let geo = |v: &[f64]| spmm_common::stats::geomean(v);
    let avg = |v: &[f64]| spmm_common::stats::mean(v);
    let acc = &per_kernel_speedups[KernelKind::ALL.len() - 1];
    println!(
        "\nAcc-SpMM vs cuSPARSE on {}: mean {:.2}x, geomean {:.2}x, max {:.2}x (type-2 max {:.2}x)",
        arch.spec().name,
        avg(acc),
        geo(acc),
        acc.iter().copied().fold(0.0f64, f64::max),
        acc_type2_max,
    );
    for (i, kind) in KernelKind::ALL.iter().enumerate() {
        println!(
            "  {:<10} mean speedup {:.2}x",
            kind.name(),
            avg(&per_kernel_speedups[i])
        );
    }
    save_json(&format!("overall_{arch:?}"), &records);
}
