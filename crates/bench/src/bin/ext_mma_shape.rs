//! Extension experiment: the m16n8k8 vs m16n8k4 choice.
//!
//! §3.4: "Only the m16n8k8 and m16n8k4 shapes of the mma api support
//! tf32 ... We choose m16n8k8 due to its lower synchronization cost."
//! With k4, every 8-deep reduction needs two MMA issues and twice the
//! inter-issue synchronization. This sweep reruns the Acc kernel with
//! the per-iteration sync cost doubled (the k4 model) and reports the
//! slowdown per dataset — quantifying the claim.

use acc_spmm::matrix::TABLE2;
use acc_spmm::sim::Arch;
use acc_spmm::{AccConfig, KernelKind};
use spmm_bench::{f2, print_table, save_json, sim_options_for, DETAIL_DIM};
use spmm_kernels::PreparedKernel;

struct Record {
    dataset: String,
    k8_us: f64,
    k4_us: f64,
    k8_over_k4: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    k8_us,
    k4_us,
    k8_over_k4
});

fn main() {
    let arch = Arch::A800;
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut gains = Vec::new();
    for d in &TABLE2 {
        let m = spmm_bench::build_dataset(d);
        let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(arch)
            .feature_dim(DETAIL_DIM)
            .config(AccConfig::full())
            .build()
            .expect("prepare");
        let desc = k.trace();
        let spec = arch.spec();
        let k8_opts = sim_options_for(d);
        // k4 model: two issues per 8-deep reduction -> double the
        // per-iteration synchronization cost.
        let mut k4_opts = k8_opts;
        k4_opts.sync_s *= 2.0;
        let k8 = spmm_sim::simulate(&spec, &desc, &k8_opts).time_s;
        let k4 = spmm_sim::simulate(&spec, &desc, &k4_opts).time_s;
        let gain = k4 / k8;
        gains.push(gain);
        rows.push(vec![
            d.abbr.to_string(),
            format!("{:.1}", k8 * 1e6),
            format!("{:.1}", k4 * 1e6),
            f2(gain),
        ]);
        records.push(Record {
            dataset: d.abbr.into(),
            k8_us: k8 * 1e6,
            k4_us: k4 * 1e6,
            k8_over_k4: gain,
        });
    }
    print_table(
        "Extension: m16n8k8 vs m16n8k4 (modeled kernel us on A800, N=128)",
        &["dataset", "k8 (us)", "k4 (us)", "k4/k8"],
        &rows,
    );
    println!(
        "\nmean k4 slowdown: {:.2}x — the §3.4 'lower synchronization cost' rationale",
        spmm_common::stats::mean(&gains)
    );
    save_json("ext_mma_shape", &records);
}
