//! Figure 13 — DTC-pipeline vs Acc-pipeline GFLOPS and speedup on A800,
//! isolating the least-bubble double-buffer pipeline (everything else in
//! the Acc configuration held fixed).

use acc_spmm::matrix::TABLE2;
use acc_spmm::sim::Arch;
use acc_spmm::{AccConfig, KernelKind};
use spmm_bench::{build_dataset, f1, f2, print_table, save_json, sim_options_for, DETAIL_DIM};
use spmm_kernels::PreparedKernel;

struct Record {
    dataset: String,
    dtc_pipeline_gflops: f64,
    acc_pipeline_gflops: f64,
    speedup: f64,
    bubble_reduction: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    dtc_pipeline_gflops,
    acc_pipeline_gflops,
    speedup,
    bubble_reduction
});

fn main() {
    let arch = Arch::A800;
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut type1 = Vec::new();
    let mut type2 = Vec::new();
    for d in &TABLE2 {
        let m = build_dataset(d);
        let opts = sim_options_for(d);
        let run = |acc_pipeline: bool| {
            let mut cfg = AccConfig::full();
            cfg.acc_pipeline = acc_pipeline;
            PreparedKernel::builder(KernelKind::AccSpmm, &m)
                .arch(arch)
                .feature_dim(DETAIL_DIM)
                .config(cfg)
                .build()
                .expect("prepare")
                .profile(arch, &opts)
        };
        let dtc = run(false);
        let acc = run(true);
        let speedup = dtc.time_s / acc.time_s;
        if d.matrix_type == 1 {
            type1.push(speedup);
        } else {
            type2.push(speedup);
        }
        let bubble_red = 1.0 - (acc.bubble_s / acc.busy_s) / (dtc.bubble_s / dtc.busy_s).max(1e-12);
        rows.push(vec![
            d.abbr.to_string(),
            f1(dtc.gflops),
            f1(acc.gflops),
            f2(speedup),
            format!("{:.0}%", bubble_red * 100.0),
        ]);
        records.push(Record {
            dataset: d.abbr.into(),
            dtc_pipeline_gflops: dtc.gflops,
            acc_pipeline_gflops: acc.gflops,
            speedup,
            bubble_reduction: bubble_red,
        });
    }
    print_table(
        "Figure 13: DTC-pipeline vs Acc-pipeline on A800 (N=128)",
        &["dataset", "DTC GFLOPS", "Acc GFLOPS", "speedup", "bubble Δ"],
        &rows,
    );
    println!(
        "\navg pipeline speedup: type-1 {:.2}x, type-2 {:.2}x (paper: 1.06x / 1.16x)",
        spmm_common::stats::mean(&type1),
        spmm_common::stats::mean(&type2)
    );
    save_json("fig13_pipeline", &records);
}
