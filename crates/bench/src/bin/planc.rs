//! planc — the offline plan compiler.
//!
//! Precompiles persistent execution plans (see `spmm_kernels::ir`) so
//! serving processes warm-start instead of paying the preprocessing
//! pipeline at first request:
//!
//! ```text
//! cargo run -p spmm-bench --bin planc --release               # Table-2 sweep
//! cargo run -p spmm-bench --bin planc -- --out DIR            # custom store dir
//! cargo run -p spmm-bench --bin planc -- --arch h100 --dim 256
//! cargo run -p spmm-bench --bin planc -- --dataset YH,OH      # subset
//! cargo run -p spmm-bench --bin planc -- --smoke DIR          # CI smoke step
//! ```
//!
//! Every compiled plan is written into a `PlanStore` layout (the same
//! directory format `Engine::builder().plan_store(dir)` consumes) and
//! verified by reloading it through a fully-bound `PlanLoader` and
//! executing one multiply against the freshly built plan —
//! bit-identity is asserted, not assumed. A JSON manifest of the
//! compiled artifacts is printed to stdout and saved next to them.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

use acc_spmm::engine::{PlanKey, PlanStore};
use acc_spmm::kernels::ir;
use acc_spmm::matrix::{gen, CsrMatrix, Dataset, DenseMatrix, TABLE2};
use acc_spmm::{AccConfig, Arch, KernelKind, PlanLoader, PreparedKernel};
use spmm_common::json::Json;

struct Options {
    out: std::path::PathBuf,
    arch: Arch,
    dim: usize,
    kind: KernelKind,
    datasets: Option<Vec<String>>,
    smoke: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: std::path::PathBuf::from("results/plans"),
        arch: Arch::A800,
        dim: 128,
        kind: KernelKind::AccSpmm,
        datasets: None,
        smoke: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?.into(),
            "--arch" => {
                let v = value("--arch")?;
                opts.arch = Arch::parse(&v).ok_or_else(|| format!("unknown arch '{v}'"))?;
            }
            "--dim" => {
                opts.dim = value("--dim")?
                    .parse()
                    .map_err(|_| "--dim requires an integer".to_string())?;
            }
            "--kernel" => {
                let v = value("--kernel")?;
                opts.kind = KernelKind::ALL
                    .into_iter()
                    .find(|&k| ir::kind_slug(k).eq_ignore_ascii_case(&v))
                    .ok_or_else(|| format!("unknown kernel '{v}'"))?;
            }
            "--dataset" => {
                opts.datasets = Some(value("--dataset")?.split(',').map(str::to_string).collect());
            }
            "--smoke" => opts.smoke = Some(value("--smoke")?.into()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

/// Compile one plan into the store, then prove the persisted artifact
/// by reloading it with every binding pinned and executing one
/// multiply bit-identically against the fresh build.
fn compile_and_verify(
    store: &PlanStore,
    m: &CsrMatrix,
    kind: KernelKind,
    arch: Arch,
    dim: usize,
) -> Result<(u64, f64, f64), String> {
    let key = PlanKey {
        fingerprint: m.content_fingerprint(),
        kind,
        arch,
        feature_dim: dim,
        config: AccConfig::full(),
    };
    let t0 = Instant::now();
    let kernel = PreparedKernel::builder(kind, m)
        .arch(arch)
        .feature_dim(dim)
        .config(AccConfig::full())
        .build()
        .map_err(|e| format!("build failed: {e}"))?;
    let build_seconds = t0.elapsed().as_secs_f64();

    let bytes = store
        .save(&key, kernel.execution_plan())
        .map_err(|e| format!("save failed: {e}"))?;

    // Reload through a fresh, fully-bound loader — the same path a
    // restarted engine takes.
    let t1 = Instant::now();
    let reloaded = PlanLoader::new()
        .expect_fingerprint(key.fingerprint)
        .expect_kind(kind)
        .expect_arch(arch)
        .expect_feature_dim(dim)
        .expect_config(AccConfig::full())
        .load(store.path_for(&key))
        .map_err(|e| format!("reload failed: {e}"))?;
    let load_seconds = t1.elapsed().as_secs_f64();

    let b = DenseMatrix::random(m.ncols(), dim, 7);
    let fresh = kernel.execute(&b).map_err(|e| format!("execute: {e}"))?;
    let replay = PreparedKernel::from_plan(reloaded)
        .execute(&b)
        .map_err(|e| format!("replay execute: {e}"))?;
    if fresh
        .as_slice()
        .iter()
        .zip(replay.as_slice())
        .any(|(x, y)| x.to_bits() != y.to_bits())
    {
        return Err("reloaded plan is not bit-identical to the fresh build".into());
    }
    Ok((bytes, build_seconds, load_seconds))
}

fn smoke(dir: &std::path::Path) -> Result<(), String> {
    let store = PlanStore::open(dir).map_err(|e| format!("open store: {e}"))?;
    let m = gen::uniform_random(256, 5.0, 42);
    let (bytes, build_s, load_s) =
        compile_and_verify(&store, &m, KernelKind::AccSpmm, Arch::A800, 32)?;
    println!(
        "planc smoke: compiled+reloaded+executed 1 plan ({bytes} bytes, \
         build {build_s:.3}s, reload {load_s:.3}s) in {}",
        dir.display()
    );
    Ok(())
}

fn sweep(opts: &Options) -> Result<(), String> {
    let store = PlanStore::open(&opts.out).map_err(|e| format!("open store: {e}"))?;
    let selected: Vec<&'static Dataset> = match &opts.datasets {
        None => TABLE2.iter().collect(),
        Some(names) => names
            .iter()
            .map(|n| Dataset::by_abbr(n).ok_or_else(|| format!("unknown dataset '{n}'")))
            .collect::<Result<_, _>>()?,
    };

    let mut plans = Vec::new();
    for d in selected {
        let m = spmm_bench::build_dataset(d);
        let (bytes, build_s, load_s) =
            compile_and_verify(&store, &m, opts.kind, opts.arch, opts.dim)?;
        let key = PlanKey {
            fingerprint: m.content_fingerprint(),
            kind: opts.kind,
            arch: opts.arch,
            feature_dim: opts.dim,
            config: AccConfig::full(),
        };
        let file = store
            .path_for(&key)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        eprintln!(
            "  {} -> {file} ({bytes} bytes, build {build_s:.2}s, reload {load_s:.3}s)",
            d.abbr
        );
        let mut o = BTreeMap::new();
        o.insert("dataset".into(), Json::Str(d.abbr.into()));
        o.insert("file".into(), Json::Str(file));
        o.insert(
            "fingerprint".into(),
            Json::Str(format!("{:016x}", key.fingerprint)),
        );
        o.insert("bytes".into(), Json::Num(bytes as f64));
        o.insert("build_seconds".into(), Json::Num(build_s));
        o.insert("reload_seconds".into(), Json::Num(load_s));
        o.insert("verified".into(), Json::Bool(true));
        plans.push(Json::Obj(o));
    }

    let mut manifest = BTreeMap::new();
    manifest.insert(
        "schema_version".into(),
        Json::Num(ir::PLAN_IR_VERSION as f64),
    );
    manifest.insert("arch".into(), Json::Str(ir::arch_slug(opts.arch).into()));
    manifest.insert("kernel".into(), Json::Str(ir::kind_slug(opts.kind).into()));
    manifest.insert("feature_dim".into(), Json::Num(opts.dim as f64));
    manifest.insert("store".into(), Json::Str(opts.out.display().to_string()));
    manifest.insert("plans".into(), Json::Arr(plans));
    let manifest = Json::Obj(manifest).to_string_pretty();
    let _ = std::fs::write(opts.out.join("manifest.json"), &manifest);
    println!("{manifest}");
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("planc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &opts.smoke {
        Some(dir) => smoke(dir),
        None => sweep(&opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("planc: {e}");
            ExitCode::FAILURE
        }
    }
}
