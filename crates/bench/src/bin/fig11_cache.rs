//! Figure 11 — L1 and L2 cache hit rates on A800, original order vs
//! data-affinity reordering, N = 128.

use acc_spmm::matrix::TABLE2;
use acc_spmm::reorder::Algorithm;
use acc_spmm::sim::Arch;
use acc_spmm::{AccConfig, KernelKind};
use spmm_bench::{build_dataset, print_table, save_json, sim_options_for, DETAIL_DIM};
use spmm_kernels::PreparedKernel;

struct Record {
    dataset: String,
    l1_original: f64,
    l1_reordered: f64,
    l2_original: f64,
    l2_reordered: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    l1_original,
    l1_reordered,
    l2_original,
    l2_reordered
});

fn main() {
    let arch = Arch::A800;
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for d in &TABLE2 {
        let m = build_dataset(d);
        let opts = sim_options_for(d);
        let run = |reorder: Algorithm| {
            let mut cfg = AccConfig::full();
            cfg.reorder = reorder;
            let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
                .arch(arch)
                .feature_dim(DETAIL_DIM)
                .config(cfg)
                .build()
                .expect("prepare");
            k.profile(arch, &opts)
        };
        let orig = run(Algorithm::Identity);
        let reord = run(Algorithm::Affinity);
        rows.push(vec![
            d.abbr.to_string(),
            format!("{:.2}%", orig.l1_hit_rate * 100.0),
            format!("{:.2}%", reord.l1_hit_rate * 100.0),
            format!("{:+.2}%", (reord.l1_hit_rate - orig.l1_hit_rate) * 100.0),
            format!("{:.2}%", orig.l2_hit_rate * 100.0),
            format!("{:.2}%", reord.l2_hit_rate * 100.0),
            format!("{:+.2}%", (reord.l2_hit_rate - orig.l2_hit_rate) * 100.0),
        ]);
        records.push(Record {
            dataset: d.abbr.into(),
            l1_original: orig.l1_hit_rate,
            l1_reordered: reord.l1_hit_rate,
            l2_original: orig.l2_hit_rate,
            l2_reordered: reord.l2_hit_rate,
        });
    }
    print_table(
        "Figure 11: A800 cache hit rates, original vs data-affinity reordering (N=128)",
        &[
            "dataset", "L1 orig", "L1 reord", "L1 Δ", "L2 orig", "L2 reord", "L2 Δ",
        ],
        &rows,
    );
    save_json("fig11_cache", &records);
}
