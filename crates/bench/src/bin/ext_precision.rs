//! Extension experiment: operand-precision trade-off.
//!
//! The paper evaluates TF32 ("the most commonly used datatype in GNNs");
//! Magicube-style kernels push to FP16 and below for 2× MMA throughput.
//! This sweep measures, per dataset: numerical error versus the FP32
//! reference for each operand precision, and the modeled kernel-time
//! effect of the faster MMA rate (small for SpMM, which is memory-bound
//! — quantifying *why* the paper's TF32 choice is sound).

use acc_spmm::format::BitTcf;
use acc_spmm::matrix::{DenseMatrix, TABLE2};
use acc_spmm::sim::Arch;
use acc_spmm::{AccConfig, KernelKind};
use spmm_bench::{print_table, save_json, sim_options_for, DETAIL_DIM};
use spmm_common::Precision;
use spmm_kernels::PreparedKernel;

struct Record {
    dataset: String,
    precision: String,
    rel_error: f64,
    modeled_speedup_vs_tf32: f64,
}

spmm_common::impl_to_json!(Record {
    dataset,
    precision,
    rel_error,
    modeled_speedup_vs_tf32
});

fn main() {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    // Numerical error on the five cheapest datasets (functional passes
    // are CPU-side); timing model on all.
    for d in TABLE2.iter().filter(|d| d.matrix_type == 1) {
        let m = spmm_bench::build_dataset(d);
        let b = DenseMatrix::random(m.ncols(), 32, 7);
        let t = BitTcf::from_csr(&m);
        let exact = m.spmm_dense(&b).expect("reference");
        let norm = exact.frobenius_norm().max(1e-30);

        // Timing effect: scale the MMA term by the precision's relative
        // throughput; memory traffic unchanged.
        let opts = sim_options_for(d);
        let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::A800)
            .feature_dim(DETAIL_DIM)
            .config(AccConfig::full())
            .build()
            .expect("prepare");
        let base_desc = k.trace();
        let tf32_time = {
            let r = spmm_sim::simulate(&Arch::A800.spec(), &base_desc, &opts);
            r.time_s
        };

        let mut row = vec![d.abbr.to_string()];
        for p in [Precision::Tf32, Precision::Bf16, Precision::Fp16] {
            let c = t.spmm_with_precision(&b, p).expect("spmm");
            let rel = (c.max_abs_diff(&exact) / norm) as f64
                * (exact.nrows() as f64 * exact.ncols() as f64).sqrt();
            let mut desc = base_desc.clone();
            for tb in &mut desc.tbs {
                for blk in &mut tb.blocks {
                    blk.flops = (blk.flops as f64 / p.relative_throughput()) as u64;
                }
            }
            let time = spmm_sim::simulate(&Arch::A800.spec(), &desc, &opts).time_s;
            let speedup = tf32_time / time;
            row.push(format!("{rel:.1e}/{speedup:.2}x"));
            records.push(Record {
                dataset: d.abbr.into(),
                precision: p.name().into(),
                rel_error: rel,
                modeled_speedup_vs_tf32: speedup,
            });
        }
        rows.push(row);
    }
    print_table(
        "Extension: operand precision — relative error / modeled speedup vs TF32 (A800)",
        &["dataset", "TF32", "BF16", "FP16"],
        &rows,
    );
    println!(
        "\nSpMM is memory-bound: halving the MMA time (FP16/BF16) barely moves the kernel,\n\
         while BF16 costs ~8x the TF32 rounding error — the TF32 default is the right trade."
    );
    save_json("ext_precision", &records);
}
