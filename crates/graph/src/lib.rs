//! Graph substrate for the reordering algorithms.
//!
//! A sparse matrix is viewed as the adjacency matrix of an undirected
//! graph ([`GraphView`]); modularity bookkeeping ([`modularity`]) and the
//! merge dendrogram ([`dendrogram`]) implement the machinery behind the
//! paper's data-affinity-based reordering (Algorithm 1) and the Rabbit /
//! Louvain baselines.

pub mod components;
pub mod dendrogram;
pub mod modularity;
pub mod view;

pub use components::{connected_components, Components};
pub use dendrogram::Dendrogram;
pub use modularity::CommunityTracker;
pub use view::GraphView;
