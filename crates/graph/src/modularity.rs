//! Modularity bookkeeping for community-merge reorderings.
//!
//! Implements the ΔQ of Equation (1): merging communities `a` and `b`
//! changes Newman modularity by `ΔQ = e_ab/m − (Σa·Σb)/(2m²)`, where
//! `e_ab` is the edge weight between the communities, `Σ` the total degree
//! of each community and `m` the number of edges. Communities are tracked
//! with a union-find whose roots carry the aggregate degree.

use crate::view::GraphView;

/// Union-find over vertices with per-community total degree, supporting
/// the single-pass vertex-merge pattern of Algorithm 1 (and Rabbit Order).
#[derive(Debug, Clone)]
pub struct CommunityTracker {
    parent: Vec<u32>,
    /// Total degree (Σ) of each community, valid at roots.
    sigma: Vec<u64>,
    /// 2m, cached.
    two_m: f64,
}

impl CommunityTracker {
    /// Every vertex starts as its own community.
    pub fn new(g: &GraphView) -> Self {
        let n = g.num_vertices();
        CommunityTracker {
            parent: (0..n as u32).collect(),
            sigma: (0..n as u32).map(|v| g.degree(v) as u64).collect(),
            two_m: 2.0 * g.num_edges() as f64,
        }
    }

    /// Find with path halving.
    pub fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            let gp = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = gp;
            v = gp;
        }
        v
    }

    /// Total degree of the community containing `v`.
    pub fn sigma_of(&mut self, v: u32) -> u64 {
        let r = self.find(v);
        self.sigma[r as usize]
    }

    /// ΔQ of merging the communities of `u` and `v`, where `edge_weight`
    /// is the (unweighted: 1.0 per edge) weight connecting them that the
    /// caller is considering. Returns 0.0 when already merged.
    pub fn delta_q(&mut self, u: u32, v: u32, edge_weight: f64) -> f64 {
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return 0.0;
        }
        let m = self.two_m / 2.0;
        if m == 0.0 {
            return 0.0;
        }
        let sa = self.sigma[ru as usize] as f64;
        let sb = self.sigma[rv as usize] as f64;
        edge_weight / m - (sa * sb) / (self.two_m * self.two_m) * 2.0
    }

    /// Merge `v`'s community into `u`'s community. Returns the surviving
    /// root. No-op (returns the shared root) if already merged.
    pub fn merge(&mut self, u: u32, v: u32) -> u32 {
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return ru;
        }
        self.parent[rv as usize] = ru;
        self.sigma[ru as usize] += self.sigma[rv as usize];
        ru
    }

    /// Are `u` and `v` currently in the same community?
    pub fn same(&mut self, u: u32, v: u32) -> bool {
        self.find(u) == self.find(v)
    }

    /// Number of vertices tracked.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when no vertices are tracked.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Full Newman modularity of a given assignment (used by tests and by the
/// Louvain baseline's convergence check). `community[v]` is any labelling.
pub fn modularity(g: &GraphView, community: &[u32]) -> f64 {
    let m = g.num_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let ncomm = community.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut internal = vec![0.0f64; ncomm]; // edges inside, counted once
    let mut sigma = vec![0.0f64; ncomm];
    for v in 0..g.num_vertices() as u32 {
        let cv = community[v as usize] as usize;
        sigma[cv] += g.degree(v) as f64;
        for &u in g.neighbors(v) {
            if u > v && community[u as usize] as usize == cv {
                internal[cv] += 1.0;
            }
        }
    }
    let mut q = 0.0;
    for c in 0..ncomm {
        q += internal[c] / m - (sigma[c] / (2.0 * m)).powi(2);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::{CooMatrix, CsrMatrix};

    fn two_triangles() -> GraphView {
        // Two triangles {0,1,2} and {3,4,5} joined by edge 2-3.
        let edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
        let mut coo = CooMatrix::new(6, 6);
        for &(a, b) in &edges {
            coo.push(a, b, 1.0);
        }
        GraphView::from_csr(&CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn merging_connected_vertices_gains_modularity() {
        let g = two_triangles();
        let mut ct = CommunityTracker::new(&g);
        assert!(ct.delta_q(0, 1, 1.0) > 0.0);
        // Unconnected far vertices: ΔQ is negative (pure degree penalty).
        assert!(ct.delta_q(0, 5, 0.0) < 0.0);
    }

    #[test]
    fn merge_updates_sigma_and_find() {
        let g = two_triangles();
        let mut ct = CommunityTracker::new(&g);
        let s0 = ct.sigma_of(0);
        let s1 = ct.sigma_of(1);
        ct.merge(0, 1);
        assert!(ct.same(0, 1));
        assert_eq!(ct.sigma_of(0), s0 + s1);
        assert_eq!(ct.delta_q(0, 1, 1.0), 0.0, "same community");
    }

    #[test]
    fn delta_q_matches_full_modularity_difference() {
        let g = two_triangles();
        let mut ct = CommunityTracker::new(&g);
        // Before: all singletons.
        let before: Vec<u32> = (0..6).collect();
        let q_before = modularity(&g, &before);
        // Merge 0 and 1 (connected by one edge).
        let dq = ct.delta_q(0, 1, 1.0);
        let after = vec![0, 0, 2, 3, 4, 5];
        let q_after = modularity(&g, &after);
        assert!(
            (dq - (q_after - q_before)).abs() < 1e-12,
            "dq={dq} diff={}",
            q_after - q_before
        );
    }

    #[test]
    fn community_split_scores_high_modularity() {
        let g = two_triangles();
        let natural = vec![0, 0, 0, 1, 1, 1];
        let bad = vec![0, 1, 0, 1, 0, 1];
        assert!(modularity(&g, &natural) > modularity(&g, &bad));
        assert!(modularity(&g, &natural) > 0.3);
    }

    #[test]
    fn path_compression_terminates() {
        let g = two_triangles();
        let mut ct = CommunityTracker::new(&g);
        ct.merge(0, 1);
        ct.merge(1, 2);
        ct.merge(2, 3);
        assert_eq!(ct.find(3), ct.find(0));
        assert!(!ct.is_empty());
        assert_eq!(ct.len(), 6);
    }
}
