//! Merge dendrogram: records the community-merge history of Algorithm 1's
//! step I and yields the DFS leaf order consumed by step II.

/// A forest of binary merge trees. Leaves are vertices `0..n`; each merge
/// of community roots creates an internal node whose children are the two
/// prior subtree roots. After construction, [`Dendrogram::dfs_leaves`]
/// returns all leaves in DFS order, visiting top-level trees in the order
/// their earliest leaf appears.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n_leaves: usize,
    /// children[i] for internal node `n_leaves + i`.
    children: Vec<[u32; 2]>,
    /// Current subtree root (dendrogram node id) of each community root.
    /// Maintained during construction via `node_of`.
    node_of: Vec<u32>,
    /// Whether each dendrogram node currently has a parent.
    has_parent: Vec<bool>,
}

impl Dendrogram {
    /// A forest of `n` isolated leaves.
    pub fn new(n: usize) -> Self {
        Dendrogram {
            n_leaves: n,
            children: Vec::new(),
            node_of: (0..n as u32).collect(),
            has_parent: vec![false; n],
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Record that vertex-community `v` was merged into `u` (both given as
    /// *vertices*; the caller passes representatives whose current subtree
    /// is looked up internally). `u`'s subtree becomes the first child, as
    /// the paper's ordering keeps the absorbing community first.
    pub fn record_merge(&mut self, u_repr: u32, v_repr: u32) {
        let nu = self.node_of[u_repr as usize];
        let nv = self.node_of[v_repr as usize];
        debug_assert_ne!(nu, nv, "cannot merge a community with itself");
        let new_id = (self.n_leaves + self.children.len()) as u32;
        self.children.push([nu, nv]);
        self.has_parent[nu as usize] = true;
        self.has_parent[nv as usize] = true;
        self.has_parent.push(false);
        // Both representatives now map to the merged subtree; the caller's
        // union-find will route future lookups through either one.
        self.node_of[u_repr as usize] = new_id;
        self.node_of[v_repr as usize] = new_id;
    }

    /// Update the subtree mapping for a representative (used after
    /// union-find path compression changes which vertex represents a
    /// community).
    pub fn set_node_of(&mut self, repr: u32, node: u32) {
        self.node_of[repr as usize] = node;
    }

    /// Current subtree root node of a representative vertex.
    pub fn node_of(&self, repr: u32) -> u32 {
        self.node_of[repr as usize]
    }

    /// All leaves in DFS order. Roots are visited in ascending order of
    /// their minimum leaf id, making the traversal deterministic and
    /// keeping untouched singleton vertices in natural order.
    pub fn dfs_leaves(&self) -> Vec<u32> {
        let total = self.n_leaves + self.children.len();
        // Compute the minimum leaf of each node bottom-up (children always
        // precede parents in the id order because merges only reference
        // existing nodes).
        let mut min_leaf = vec![u32::MAX; total];
        for (v, m) in min_leaf.iter_mut().enumerate().take(self.n_leaves) {
            *m = v as u32;
        }
        for (i, ch) in self.children.iter().enumerate() {
            let id = self.n_leaves + i;
            min_leaf[id] = min_leaf[ch[0] as usize].min(min_leaf[ch[1] as usize]);
        }
        let mut roots: Vec<u32> = (0..total as u32)
            .filter(|&x| !self.has_parent[x as usize])
            .collect();
        roots.sort_by_key(|&r| min_leaf[r as usize]);

        let mut order = Vec::with_capacity(self.n_leaves);
        let mut stack: Vec<u32> = Vec::new();
        for &root in &roots {
            stack.push(root);
            while let Some(node) = stack.pop() {
                if (node as usize) < self.n_leaves {
                    order.push(node);
                } else {
                    let ch = self.children[node as usize - self.n_leaves];
                    // Push second child first so the first child is
                    // visited first.
                    stack.push(ch[1]);
                    stack.push(ch[0]);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::util::is_permutation;

    #[test]
    fn no_merges_yields_identity() {
        let d = Dendrogram::new(4);
        assert_eq!(d.dfs_leaves(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_merge_groups_leaves() {
        let mut d = Dendrogram::new(4);
        // Merge 3 into 1: the tree {1,3} roots at min leaf 1.
        d.record_merge(1, 3);
        assert_eq!(d.dfs_leaves(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn nested_merges_preserve_absorber_first() {
        let mut d = Dendrogram::new(5);
        d.record_merge(0, 2); // {0,2}
        d.record_merge(0, 4); // {{0,2},4}
        d.record_merge(1, 3); // {1,3}
        let order = d.dfs_leaves();
        assert_eq!(order, vec![0, 2, 4, 1, 3]);
    }

    #[test]
    fn leaves_always_form_a_permutation() {
        let mut d = Dendrogram::new(8);
        d.record_merge(7, 0);
        d.record_merge(3, 5);
        d.record_merge(7, 3); // merge the two trees
        d.record_merge(2, 6);
        let order = d.dfs_leaves();
        assert_eq!(order.len(), 8);
        assert!(is_permutation(&order));
    }

    #[test]
    fn roots_ordered_by_min_leaf() {
        let mut d = Dendrogram::new(6);
        d.record_merge(4, 5); // tree with min leaf 4
        d.record_merge(1, 2); // tree with min leaf 1
        let order = d.dfs_leaves();
        // Trees appear at the position of their min leaf relative to the
        // singleton leaves: 0, then tree{1,2}, then 3, then tree{4,5}.
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }
}
