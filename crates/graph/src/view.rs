//! Undirected graph view over a sparse matrix.

use rustc_hash::FxHashMap;
use spmm_matrix::CsrMatrix;

/// An undirected, unweighted graph built from the symmetrized pattern of a
/// sparse matrix (self-loops dropped), as the paper constructs it: "the
/// graph is constructed by using a sparse matrix as the adjacency matrix
/// ... if there is a nnz in the matrix, the weight between the
/// corresponding nodes is typically set to 1".
#[derive(Debug, Clone)]
pub struct GraphView {
    adj_ptr: Vec<usize>,
    adj: Vec<u32>,
    edges: u64,
}

impl GraphView {
    /// Build from a square sparse matrix: pattern of `A ∪ Aᵀ` minus the
    /// diagonal, neighbour lists sorted ascending.
    pub fn from_csr(m: &CsrMatrix) -> Self {
        assert_eq!(m.nrows(), m.ncols(), "graph view requires a square matrix");
        let n = m.nrows();
        let t = m.transpose();
        let mut adj_ptr = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(m.nnz());
        adj_ptr.push(0usize);
        for v in 0..n {
            let (a, _) = m.row(v);
            let (b, _) = t.row(v);
            // Sorted-merge union of the row and column patterns.
            let (mut i, mut j) = (0usize, 0usize);
            let start = adj.len();
            while i < a.len() || j < b.len() {
                let next = match (a.get(i), b.get(j)) {
                    (Some(&x), Some(&y)) => {
                        if x <= y {
                            if x == y {
                                j += 1;
                            }
                            i += 1;
                            x
                        } else {
                            j += 1;
                            y
                        }
                    }
                    (Some(&x), None) => {
                        i += 1;
                        x
                    }
                    (None, Some(&y)) => {
                        j += 1;
                        y
                    }
                    (None, None) => unreachable!(),
                };
                if next as usize != v {
                    adj.push(next);
                }
            }
            debug_assert!(adj[start..].windows(2).all(|w| w[0] < w[1]));
            adj_ptr.push(adj.len());
        }
        let edges = adj.len() as u64 / 2;
        GraphView {
            adj_ptr,
            adj,
            edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj_ptr.len() - 1
    }

    /// Number of undirected edges (`m` in the modularity formula).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.edges
    }

    /// Sorted neighbour list of `v` (self excluded).
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.adj_ptr[v as usize]..self.adj_ptr[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adj_ptr[v as usize + 1] - self.adj_ptr[v as usize]
    }

    /// Vertices sorted by ascending degree (ties by id) — the visit order
    /// of Algorithm 1's dendrogram construction.
    pub fn vertices_by_ascending_degree(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = (0..self.num_vertices() as u32).collect();
        vs.sort_by_key(|&v| (self.degree(v), v));
        vs
    }

    /// Exact common-neighbour count via sorted-merge intersection.
    pub fn common_neighbors(&self, u: u32, v: u32) -> usize {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Count common neighbours between `v` and every 2-hop neighbour,
    /// bounding work on high-degree vertices by sampling at most `cap`
    /// neighbours at each hop. Sampling is deterministic and evenly
    /// strided across the sorted neighbour list, so high-degree vertices
    /// see an unbiased slice of their neighbourhood rather than only the
    /// lowest column ids. Returns `(candidate, approx count)` pairs,
    /// unordered.
    ///
    /// This is the candidate-generation step of the ordering-generation
    /// phase: only 2-hop neighbours can share a neighbour with `v`, so
    /// restricting the search there turns the paper's "search all leaves"
    /// into near-linear work.
    pub fn two_hop_common_counts(&self, v: u32, cap: usize) -> FxHashMap<u32, u32> {
        let mut counts = FxHashMap::default();
        let nv = self.neighbors(v);
        for w in strided(nv, cap) {
            let nw = self.neighbors(w);
            for u in strided(nw, cap) {
                if u != v {
                    *counts.entry(u).or_insert(0u32) += 1;
                }
            }
        }
        counts
    }
}

/// Evenly-strided deterministic sample of up to `cap` elements.
fn strided(xs: &[u32], cap: usize) -> impl Iterator<Item = u32> + '_ {
    let step = xs.len().div_ceil(cap.max(1)).max(1);
    xs.iter().step_by(step).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::CooMatrix;

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> GraphView {
        let mut coo = CooMatrix::new(n, n);
        for &(a, b) in edges {
            coo.push(a, b, 1.0);
        }
        GraphView::from_csr(&CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn symmetrizes_and_drops_self_loops() {
        // Directed edges 0->1, 1->2, self loop 2->2.
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 2)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1], "self loop dropped");
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn already_symmetric_not_doubled() {
        let g = graph_from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn degree_ordering() {
        // Star: 0 is the hub.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let order = g.vertices_by_ascending_degree();
        assert_eq!(*order.last().unwrap(), 0);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn common_neighbors_exact() {
        // Square 0-1-2-3-0 plus diagonal 0-2.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert_eq!(g.common_neighbors(1, 3), 2, "both adjacent to 0 and 2");
        assert_eq!(g.common_neighbors(0, 2), 2, "1 and 3");
        assert_eq!(g.common_neighbors(0, 1), 1, "only 2");
    }

    #[test]
    fn two_hop_counts_match_exact() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]);
        let counts = g.two_hop_common_counts(1, 64);
        for (&u, &c) in &counts {
            assert_eq!(c as usize, g.common_neighbors(1, u), "u={u}");
        }
        // Vertex 3 shares neighbour 2 with vertex 1.
        assert_eq!(counts.get(&3), Some(&1));
    }

    #[test]
    fn two_hop_cap_bounds_work() {
        let g = graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let capped = g.two_hop_common_counts(1, 1);
        // cap=1 explores only neighbour 0 and its first neighbour.
        assert!(capped.len() <= 1);
    }
}
