//! Connected components — substrate utility used to reason about
//! workload structure (the molecule unions are, by construction, forests
//! of small components; community graphs are near-connected).

use crate::view::GraphView;

/// Connected-component labelling of an undirected graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per vertex (dense, `0..count`).
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of each component.
    pub sizes: Vec<usize>,
}

/// Label connected components with an iterative BFS (stack-safe on
/// million-vertex graphs).
pub fn connected_components(g: &GraphView) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    let mut next = 0u32;
    for start in 0..n as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        let mut size = 0usize;
        label[start as usize] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = next;
                    queue.push_back(u);
                }
            }
        }
        sizes.push(size);
        next += 1;
    }
    Components {
        label,
        count: next as usize,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::{CooMatrix, CsrMatrix};

    fn graph(n: usize, edges: &[(u32, u32)]) -> GraphView {
        let mut coo = CooMatrix::new(n, n);
        for &(a, b) in edges {
            coo.push(a, b, 1.0);
        }
        GraphView::from_csr(&CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn two_triangles_and_an_isolate() {
        let g = graph(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[3], c.label[5]);
        assert_ne!(c.label[0], c.label[3]);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
    }

    #[test]
    fn sizes_partition_the_vertex_set() {
        let m = spmm_matrix::gen::molecule_union(1024, 6, 14, true, 9);
        let g = GraphView::from_csr(&m);
        let c = connected_components(&g);
        assert_eq!(c.sizes.iter().sum::<usize>(), g.num_vertices());
        // Molecule unions are many small components.
        assert!(c.count > 30, "got {} components", c.count);
        assert!(c.sizes.iter().all(|&s| s <= 20), "molecules stay small");
        // Labels are dense 0..count.
        assert!(c.label.iter().all(|&l| (l as usize) < c.count));
    }

    #[test]
    fn connected_graph_has_one_component() {
        let m = spmm_matrix::gen::banded(64, 1, 1.0, 1);
        let c = connected_components(&GraphView::from_csr(&m));
        assert_eq!(c.count, 1);
        assert_eq!(c.sizes, vec![64]);
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let g = graph(5, &[]);
        let c = connected_components(&g);
        assert_eq!(c.count, 5);
        assert!(c.sizes.iter().all(|&s| s == 1));
    }
}
