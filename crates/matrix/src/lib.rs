//! Sparse and dense matrix substrate for the Acc-SpMM reproduction.
//!
//! Provides the storage formats every other crate consumes (COO, CSR,
//! dense), Matrix Market I/O, deterministic synthetic workload generators
//! that stand in for the paper's SuiteSparse/SNAP/DGL/OGB datasets, the
//! Table-2 dataset registry, and the 414-matrix evaluation collection.

pub mod collection;
pub mod coo;
pub mod csr;
pub mod datasets;
pub mod dense;
pub mod gen;
pub mod mm;
pub mod ops;
pub mod stats;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use datasets::{Dataset, DatasetKind, TABLE2};
pub use dense::DenseMatrix;
