//! Compressed Sparse Row format — the canonical input format of the
//! library, matching what cuSPARSE and all compared kernels consume.

use crate::coo::CooMatrix;
use crate::dense::DenseMatrix;
use rayon::prelude::*;
use spmm_common::{Result, SpmmError};
use std::sync::OnceLock;

/// A CSR sparse matrix with `f32` values and `u32` column indices.
///
/// Invariants (checked by [`CsrMatrix::validate`], maintained by all
/// constructors):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, monotone
///   non-decreasing, `row_ptr[nrows] == col_idx.len() == values.len()`;
/// * within each row, column indices are strictly increasing and
///   `< ncols`.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
    /// Lazily computed [`CsrMatrix::content_fingerprint`]. Cloning
    /// carries the cached value (the clone's content is identical);
    /// in-place mutation paths must call
    /// [`CsrMatrix::invalidate_fingerprint`].
    fingerprint: OnceLock<u64>,
}

/// Equality is over matrix content only — the fingerprint cache is
/// derived state and deliberately excluded.
impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// Construct from raw arrays, validating every invariant.
    pub fn new(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        let m = CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            fingerprint: OnceLock::new(),
        };
        m.validate()?;
        Ok(m)
    }

    /// Check the structural invariants; used by constructors and tests.
    pub fn validate(&self) -> Result<()> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(SpmmError::MalformedFormat {
                detail: format!(
                    "row_ptr has {} entries for {} rows",
                    self.row_ptr.len(),
                    self.nrows
                ),
            });
        }
        if self.row_ptr[0] != 0 {
            return Err(SpmmError::MalformedFormat {
                detail: "row_ptr[0] != 0".into(),
            });
        }
        if self.col_idx.len() != self.values.len() {
            return Err(SpmmError::MalformedFormat {
                detail: "col_idx and values lengths differ".into(),
            });
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len() {
            return Err(SpmmError::MalformedFormat {
                detail: "row_ptr does not terminate at nnz".into(),
            });
        }
        for r in 0..self.nrows {
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if e < s {
                return Err(SpmmError::MalformedFormat {
                    detail: format!("row_ptr decreases at row {r}"),
                });
            }
            let mut prev: Option<u32> = None;
            for &c in &self.col_idx[s..e] {
                if c as usize >= self.ncols {
                    return Err(SpmmError::IndexOutOfBounds {
                        what: "column",
                        index: c as usize,
                        bound: self.ncols,
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SpmmError::MalformedFormat {
                            detail: format!("row {r} columns not strictly increasing"),
                        });
                    }
                }
                prev = Some(c);
            }
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint of the matrix *content* (shape,
    /// sparsity pattern, and value bit patterns), suitable as a cache
    /// key for preprocessing artifacts shared across callers: two
    /// matrices fingerprint equal iff they are bit-identical CSR
    /// structures. FNV-1a over the raw arrays — deterministic across
    /// runs and platforms (unlike `DefaultHasher`, whose seed varies).
    ///
    /// Computed once and cached: plan-cache and plan-store lookups may
    /// fingerprint the same operand many times per session, and repair
    /// paths fingerprint row blocks repeatedly. In-place mutators must
    /// call [`CsrMatrix::invalidate_fingerprint`] (the provided ones
    /// do).
    pub fn content_fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| self.compute_content_fingerprint())
    }

    fn compute_content_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.nrows as u64);
        eat(self.ncols as u64);
        for &p in &self.row_ptr {
            eat(p as u64);
        }
        for (&c, &v) in self.col_idx.iter().zip(self.values.iter()) {
            eat(((v.to_bits() as u64) << 32) | c as u64);
        }
        h
    }

    /// Drop the cached [`CsrMatrix::content_fingerprint`]. Every
    /// mutation of the matrix content must route through this (the
    /// in-place mutators below already do); constructors start with an
    /// empty cache.
    pub fn invalidate_fingerprint(&mut self) {
        self.fingerprint = OnceLock::new();
    }

    /// Mutable access to the stored values (row-major, parallel to
    /// [`CsrMatrix::col_idx`]) — the supported in-place mutation path
    /// for value-only edits (e.g. reweighting a graph without changing
    /// its structure). Invalidates the cached fingerprint.
    pub fn values_mut(&mut self) -> &mut [f32] {
        self.invalidate_fingerprint();
        &mut self.values
    }

    /// Convert from COO (duplicates are summed, entries sorted).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut coo = coo.clone();
        coo.dedup_sum(false);
        let (rows, cols, vals) = coo.triplets();
        let mut row_counts = vec![0usize; coo.nrows()];
        for &r in rows {
            row_counts[r as usize] += 1;
        }
        let row_ptr = spmm_common::prefix::counts_to_offsets(&row_counts);
        // dedup_sum sorted by (row, col) so we can copy straight through.
        CsrMatrix {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            row_ptr,
            col_idx: cols.to_vec(),
            values: vals.to_vec(),
            fingerprint: OnceLock::new(),
        }
    }

    /// Convert to COO triplets (sorted by row then column).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                coo.push(r as u32, self.col_idx[k], self.values[k]);
            }
        }
        coo
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All column indices, row-major.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// All values, row-major.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Number of non-zeros in row `r`.
    #[inline]
    pub fn row_len(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Average non-zeros per row — the paper's `AvgL` dataset statistic.
    pub fn avg_row_len(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Transpose (also converts CSR→CSC interpretation).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        let row_ptr = spmm_common::prefix::counts_to_offsets(&counts);
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let dst = next[c];
                next[c] += 1;
                col_idx[dst] = r as u32;
                values[dst] = self.values[k];
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
            fingerprint: OnceLock::new(),
        }
    }

    /// Apply a row permutation: row `old` of `self` becomes row
    /// `perm[old]` of the result. This is how reorderings are applied to
    /// the sparse operand (the paper leaves the dense operand unpermuted,
    /// which row-only permutation preserves exactly: only the order of
    /// output rows changes, and kernels scatter results back through the
    /// permutation).
    pub fn permute_rows(&self, perm: &[u32]) -> Result<CsrMatrix> {
        if perm.len() != self.nrows {
            return Err(SpmmError::Shape {
                context: format!(
                    "permutation of length {} applied to {} rows",
                    perm.len(),
                    self.nrows
                ),
            });
        }
        if !spmm_common::util::is_permutation(perm) {
            return Err(SpmmError::InvalidConfig(
                "row permutation is not a bijection".into(),
            ));
        }
        let inv = spmm_common::util::invert_permutation(perm);
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for &old_r in &inv {
            let (cols, vals) = self.row(old_r as usize);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
            fingerprint: OnceLock::new(),
        })
    }

    /// Reference SpMM: `C = self × B` in full FP32, parallelized over rows
    /// with rayon. Every kernel's functional output is validated against
    /// this implementation.
    pub fn spmm_dense(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        let mut c = DenseMatrix::zeros(self.nrows, b.ncols());
        self.spmm_dense_into(b, &mut c)?;
        Ok(c)
    }

    /// [`CsrMatrix::spmm_dense`] writing into a caller-provided output
    /// (overwritten, not accumulated) — the allocation-free hot path.
    pub fn spmm_dense_into(&self, b: &DenseMatrix, c: &mut DenseMatrix) -> Result<()> {
        if self.ncols != b.nrows() || c.nrows() != self.nrows || c.ncols() != b.ncols() {
            return Err(SpmmError::Shape {
                context: format!(
                    "A is {}x{}, B is {}x{}, C is {}x{}",
                    self.nrows,
                    self.ncols,
                    b.nrows(),
                    b.ncols(),
                    c.nrows(),
                    c.ncols()
                ),
            });
        }
        let n = b.ncols();
        // Split the output into row chunks; each row only reads A and B.
        c.as_mut_slice()
            .par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(r, crow)| {
                Self::spmm_row(self.row(r), b, crow);
            });
        Ok(())
    }

    /// Sequential [`CsrMatrix::spmm_dense_into`] — bit-identical to the
    /// parallel path (rows are independent and per-row accumulation
    /// order is the same), for callers that parallelize at a coarser
    /// granularity (e.g. over a batch of dense operands).
    pub fn spmm_dense_into_seq(&self, b: &DenseMatrix, c: &mut DenseMatrix) -> Result<()> {
        if self.ncols != b.nrows() || c.nrows() != self.nrows || c.ncols() != b.ncols() {
            return Err(SpmmError::Shape {
                context: format!(
                    "A is {}x{}, B is {}x{}, C is {}x{}",
                    self.nrows,
                    self.ncols,
                    b.nrows(),
                    b.ncols(),
                    c.nrows(),
                    c.ncols()
                ),
            });
        }
        for r in 0..self.nrows {
            Self::spmm_row(self.row(r), b, c.row_mut(r));
        }
        Ok(())
    }

    /// One output row: `crow = A[r,:] · B` (overwrites).
    fn spmm_row((cols, vals): (&[u32], &[f32]), b: &DenseMatrix, crow: &mut [f32]) {
        crow.iter_mut().for_each(|x| *x = 0.0);
        for (&col, &v) in cols.iter().zip(vals.iter()) {
            let brow = b.row(col as usize);
            for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += v * bj;
            }
        }
    }

    /// Densify (small matrices only; used in tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                d.set(r, c as usize, v);
            }
        }
        d
    }

    /// Histogram of row lengths as `f64` (input to IBD-style statistics).
    pub fn row_lens_f64(&self) -> Vec<f64> {
        (0..self.nrows).map(|r| self.row_len(r) as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::new(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn validate_catches_malformed() {
        assert!(CsrMatrix::new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::new(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::new(2, 2, vec![0, 2, 2], vec![1, 0], vec![1.0, 1.0]).is_err());
        assert!(CsrMatrix::new(2, 2, vec![0, 1, 1], vec![5], vec![1.0]).is_err());
        assert!(CsrMatrix::new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn coo_roundtrip() {
        let m = small();
        let rt = CsrMatrix::from_coo(&m.to_coo());
        assert_eq!(m, rt);
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.values(), &[3.5]);
    }

    #[test]
    fn transpose_involution() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get_dense(0, 2), 3.0);
        assert_eq!(m, t.transpose());
    }

    impl CsrMatrix {
        fn get_dense(&self, r: usize, c: usize) -> f32 {
            self.to_dense().get(r, c)
        }
    }

    #[test]
    fn permute_rows_moves_rows() {
        let m = small();
        // old row 0 -> new 2, 1 -> 0, 2 -> 1.
        let p = m.permute_rows(&[2, 0, 1]).unwrap();
        assert_eq!(p.row(2).0, m.row(0).0);
        assert_eq!(p.row(2).1, m.row(0).1);
        assert_eq!(p.row_len(0), 0);
        assert_eq!(p.row(1).1, m.row(2).1);
    }

    #[test]
    fn permute_rows_rejects_invalid() {
        let m = small();
        assert!(m.permute_rows(&[0, 0, 1]).is_err());
        assert!(m.permute_rows(&[0, 1]).is_err());
    }

    #[test]
    fn spmm_matches_dense_reference() {
        let m = small();
        let b = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f32);
        let c = m.spmm_dense(&b).unwrap();
        // Manual: row0 = 1*B[0] + 2*B[2] = [0+4, 1+6] = [4, 7]
        assert_eq!(c.row(0), &[4.0, 7.0]);
        assert_eq!(c.row(1), &[0.0, 0.0]);
        // row2 = 3*B[0] + 4*B[1] = [0+4, 3+8] = [4, 11]
        assert_eq!(c.row(2), &[4.0, 11.0]);
    }

    #[test]
    fn spmm_rejects_mismatched_shapes() {
        let m = small();
        let b = DenseMatrix::zeros(4, 2);
        assert!(m.spmm_dense(&b).is_err());
    }

    #[test]
    fn avg_row_len_matches() {
        let m = small();
        assert!((m.avg_row_len() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn content_fingerprint_is_stable_and_content_sensitive() {
        let m = small();
        // Deterministic across calls and across equal reconstructions.
        assert_eq!(m.content_fingerprint(), m.content_fingerprint());
        let rebuilt = CsrMatrix::new(
            m.nrows(),
            m.ncols(),
            m.row_ptr().to_vec(),
            m.col_idx().to_vec(),
            m.values().to_vec(),
        )
        .unwrap();
        assert_eq!(m.content_fingerprint(), rebuilt.content_fingerprint());
        // Any content perturbation changes the fingerprint: a value ...
        let mut vals = m.values().to_vec();
        vals[0] += 1.0;
        let v2 = CsrMatrix::new(
            m.nrows(),
            m.ncols(),
            m.row_ptr().to_vec(),
            m.col_idx().to_vec(),
            vals,
        )
        .unwrap();
        assert_ne!(m.content_fingerprint(), v2.content_fingerprint());
        // ... the pattern ...
        let moved = CsrMatrix::new(
            m.nrows(),
            m.ncols(),
            m.row_ptr().to_vec(),
            vec![1, 2, 0, 2],
            m.values().to_vec(),
        )
        .unwrap();
        assert_ne!(m.content_fingerprint(), moved.content_fingerprint());
        // ... or the shape alone (extra padding column).
        let wider = CsrMatrix::new(
            m.nrows(),
            m.ncols() + 1,
            m.row_ptr().to_vec(),
            m.col_idx().to_vec(),
            m.values().to_vec(),
        )
        .unwrap();
        assert_ne!(m.content_fingerprint(), wider.content_fingerprint());
    }

    #[test]
    fn content_fingerprint_matches_committed_goldens() {
        // Golden values computed once from the FNV-1a definition and
        // committed: the fingerprint is part of the persistent plan-IR
        // schema (file names, header validation), so it must never
        // drift across runs, platforms, or releases. If this test
        // fails, the plan-IR schema version must be bumped.
        let golden = CsrMatrix::new(
            4,
            4,
            vec![0, 2, 3, 3, 5],
            vec![0, 2, 1, 0, 3],
            vec![1.0, -2.5, 0.75, 3.0, 0.125],
        )
        .unwrap();
        assert_eq!(golden.content_fingerprint(), 0x72c73de9f4f02cf4);

        // Perturbing one value bit-pattern changes it ...
        let value_perturbed = CsrMatrix::new(
            4,
            4,
            vec![0, 2, 3, 3, 5],
            vec![0, 2, 1, 0, 3],
            vec![1.0, -2.5, 0.75, 3.0, 0.250],
        )
        .unwrap();
        assert_eq!(value_perturbed.content_fingerprint(), 0x71143de9f37e9874);

        // ... and so does moving one nnz to another row (same columns,
        // same value multiset, different structure).
        let structure_perturbed = CsrMatrix::new(
            4,
            4,
            vec![0, 2, 3, 4, 5],
            vec![0, 2, 1, 0, 3],
            vec![1.0, -2.5, 0.75, 3.0, 0.125],
        )
        .unwrap();
        assert_eq!(
            structure_perturbed.content_fingerprint(),
            0xdecb8419d7e4957f
        );
    }

    #[test]
    fn content_fingerprint_is_cached_once_and_invalidated_on_mutation() {
        let mut m = small();
        assert!(m.fingerprint.get().is_none(), "constructors start cold");
        let fp = m.content_fingerprint();
        assert_eq!(m.fingerprint.get(), Some(&fp), "first call populates");
        // A clone carries the cached value (same content, same print).
        let c = m.clone();
        assert_eq!(c.fingerprint.get(), Some(&fp));
        assert_eq!(c.content_fingerprint(), fp);
        // Mutating a value through the supported path recomputes.
        m.values_mut()[0] += 1.0;
        assert!(m.fingerprint.get().is_none(), "values_mut invalidates");
        let fp2 = m.content_fingerprint();
        assert_ne!(fp, fp2);
        // Undo and the original fingerprint is recovered — the cache is
        // derived state, never part of equality.
        m.values_mut()[0] -= 1.0;
        assert_eq!(m.content_fingerprint(), fp);
        assert_eq!(m, c);
    }

    #[test]
    fn permuted_spmm_equals_scattered_reference() {
        // C_perm[perm[r]] == C[r] : row permutation only reorders output.
        let m = small();
        let perm = [2u32, 0, 1];
        let pm = m.permute_rows(&perm).unwrap();
        let b = DenseMatrix::random(3, 4, 1);
        let c = m.spmm_dense(&b).unwrap();
        let cp = pm.spmm_dense(&b).unwrap();
        for (r, &p) in perm.iter().enumerate() {
            assert_eq!(cp.row(p as usize), c.row(r));
        }
    }
}
