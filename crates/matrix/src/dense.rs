//! Row-major dense matrices (the B and C operands of SpMM).

use spmm_common::{Result, SpmmError};

/// A row-major dense `f32` matrix.
///
/// This is the representation of the dense operand `B` and the result `C`
/// in `C = A × B`. Row-major layout matches how the kernels stream
/// feature rows of `B` selected by sparse column indices.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// All-zeros matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        DenseMatrix { nrows, ncols, data }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(SpmmError::Shape {
                context: format!(
                    "buffer of {} elements cannot back a {nrows}x{ncols} matrix",
                    data.len()
                ),
            });
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Deterministic pseudo-random matrix with entries in `[-1, 1)`,
    /// seeded so tests and benches are reproducible.
    pub fn random(nrows: usize, ncols: usize, seed: u64) -> Self {
        Self::from_fn(nrows, ncols, |i, j| {
            let h = spmm_common::util::splitmix64(
                seed ^ ((i as u64) << 32) ^ (j as u64).wrapping_mul(0x9E37_79B9),
            );
            // Map the top 24 bits to [-1, 1).
            ((h >> 40) as f32) / (1u64 << 23) as f32 - 1.0
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrow the full row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the full row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.ncols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.ncols + j] = v;
    }

    /// Largest absolute element difference against `other`.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Relative comparison suitable for TF32-vs-FP32 checks: true when every
    /// element satisfies `|a-b| <= atol + rtol * max(|a|, |b|)`.
    pub fn approx_eq(&self, other: &DenseMatrix, rtol: f32, atol: f32) -> bool {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return false;
        }
        self.data.iter().zip(other.data.iter()).all(|(a, b)| {
            let tol = atol + rtol * a.abs().max(b.abs());
            (a - b).abs() <= tol
        })
    }

    /// Frobenius norm, used for relative-error reporting in the examples.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = DenseMatrix::zeros(3, 5);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 5);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_and_indexing() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = DenseMatrix::random(16, 16, 7);
        let b = DenseMatrix::random(16, 16, 7);
        let c = DenseMatrix::random(16, 16, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        // Should not be degenerate (all equal).
        assert!(a.as_slice().iter().any(|&x| x != a.get(0, 0)));
    }

    #[test]
    fn approx_eq_respects_tolerances() {
        let a = DenseMatrix::from_fn(2, 2, |_, _| 1000.0);
        let mut b = a.clone();
        b.set(0, 0, 1000.5);
        assert!(a.approx_eq(&b, 1e-3, 0.0));
        assert!(!a.approx_eq(&b, 1e-6, 0.0));
        assert!(a.approx_eq(&b, 0.0, 0.6));
    }

    #[test]
    fn max_abs_diff_basic() {
        let a = DenseMatrix::zeros(2, 2);
        let mut b = DenseMatrix::zeros(2, 2);
        b.set(1, 1, -3.0);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(0)[1] = 5.0;
        assert_eq!(m.get(0, 1), 5.0);
    }
}
