//! The 414-matrix synthetic evaluation collection.
//!
//! The paper sweeps 414 SuiteSparse matrices (the DTC-SpMM selection) to
//! report geomean speedups. We reproduce the methodology with a
//! deterministic parameter sweep over the six structural generator
//! families: every combination of size, density, and pattern class gets an
//! id, and `spec.build()` regenerates exactly the same matrix each run.

use crate::csr::CsrMatrix;
use crate::gen::{
    banded, clustered, molecule_union, rmat, road_network, uniform_random, ClusteredConfig,
    RmatConfig,
};

/// Pattern families in the collection sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Uniform random (no structure).
    Uniform,
    /// Banded / stencil.
    Banded,
    /// R-MAT power law.
    Rmat,
    /// Road-style planar grid.
    Road,
    /// Molecule unions.
    Molecules,
    /// Clustered communities.
    Clustered,
}

/// One matrix of the collection.
#[derive(Debug, Clone, Copy)]
pub struct CollectionSpec {
    /// Index in `0..COLLECTION_SIZE`.
    pub id: usize,
    /// Generator family.
    pub family: Family,
    /// Number of rows (= columns).
    pub n: usize,
    /// Target average row length.
    pub avg_l: f64,
}

/// Number of matrices in the collection, matching the paper's 414.
pub const COLLECTION_SIZE: usize = 414;

const SIZES: [usize; 4] = [1_024, 2_048, 4_096, 8_192];
const DENSITIES: [f64; 6] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
const FAMILIES: [Family; 6] = [
    Family::Uniform,
    Family::Banded,
    Family::Rmat,
    Family::Road,
    Family::Molecules,
    Family::Clustered,
];

/// Enumerate the full 414-matrix sweep.
///
/// The base grid is 6 families × 4 sizes × 6 densities = 144 specs; three
/// seed replicas of the grid give 432, and the sweep is truncated to 414
/// to match the paper's count.
pub fn specs() -> Vec<CollectionSpec> {
    let mut out = Vec::with_capacity(COLLECTION_SIZE);
    'outer: for replica in 0..3 {
        for &family in &FAMILIES {
            for &n in &SIZES {
                for &avg_l in &DENSITIES {
                    if out.len() == COLLECTION_SIZE {
                        break 'outer;
                    }
                    let _ = replica;
                    out.push(CollectionSpec {
                        id: out.len(),
                        family,
                        n,
                        avg_l,
                    });
                }
            }
        }
    }
    out
}

impl CollectionSpec {
    /// Deterministic seed derived from the spec id.
    fn seed(&self) -> u64 {
        0x414_0000 + self.id as u64
    }

    /// Short display name, e.g. `rmat-4096-d16-#211`.
    pub fn name(&self) -> String {
        let fam = match self.family {
            Family::Uniform => "unif",
            Family::Banded => "band",
            Family::Rmat => "rmat",
            Family::Road => "road",
            Family::Molecules => "mole",
            Family::Clustered => "clus",
        };
        format!("{fam}-{}-d{}-#{}", self.n, self.avg_l as usize, self.id)
    }

    /// Generate the matrix.
    pub fn build(&self) -> CsrMatrix {
        let seed = self.seed();
        match self.family {
            Family::Uniform => uniform_random(self.n, self.avg_l, seed),
            Family::Banded => {
                // Bandwidth sized so the full band matches avg_l; fill 0.8.
                let bw = ((self.avg_l / 2.0 / 0.8).ceil() as usize).max(1);
                banded(self.n, bw, 0.8, seed)
            }
            Family::Rmat => {
                let scale = (self.n as f64).log2().round() as u32;
                rmat(
                    RmatConfig {
                        scale,
                        avg_deg: self.avg_l,
                        ..Default::default()
                    },
                    seed,
                )
            }
            Family::Road => road_network(self.n, seed),
            Family::Molecules => {
                // Molecule size grows with requested density.
                let lo = 4 + self.avg_l as usize;
                molecule_union(self.n, lo, lo * 3, true, seed)
            }
            Family::Clustered => {
                let cluster = (self.avg_l as usize * 4).clamp(16, self.n / 2);
                clustered(
                    ClusteredConfig {
                        n: self.n,
                        cluster_size: cluster,
                        intra_deg: self.avg_l * 0.8,
                        inter_deg: self.avg_l * 0.2,
                        hub_fraction: 0.005,
                        hub_factor: 4.0,
                        shuffle: true,
                        ..Default::default()
                    },
                    seed,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_has_414_unique_specs() {
        let s = specs();
        assert_eq!(s.len(), 414);
        for (i, spec) in s.iter().enumerate() {
            assert_eq!(spec.id, i);
        }
        let names: std::collections::HashSet<String> = s.iter().map(|x| x.name()).collect();
        assert_eq!(names.len(), 414, "names must be unique");
    }

    #[test]
    fn every_family_appears() {
        let s = specs();
        for fam in FAMILIES {
            assert!(s.iter().any(|x| x.family == fam));
        }
    }

    #[test]
    fn sample_specs_build() {
        let s = specs();
        for spec in s.iter().step_by(97) {
            let m = spec.build();
            assert!(m.nnz() > 0, "{} is empty", spec.name());
            assert_eq!(m.nrows(), m.ncols());
            // Same spec must regenerate the same matrix.
            assert_eq!(m, spec.build());
        }
    }
}
