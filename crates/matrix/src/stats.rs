//! Structural statistics of sparse matrices — the quantities used to
//! characterize datasets (Table 2) and to reason about reordering
//! quality beyond MeanNNZTC.

use crate::csr::CsrMatrix;

/// Summary statistics of a sparse matrix's structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixStats {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Mean non-zeros per row (`AvgL`).
    pub avg_row_len: f64,
    /// Maximum row length.
    pub max_row_len: usize,
    /// Fraction of empty rows.
    pub empty_row_fraction: f64,
    /// Population standard deviation of row lengths (load-imbalance
    /// indicator at row granularity).
    pub row_len_stddev: f64,
    /// Mean |row − col| over all entries — the average bandwidth, a
    /// crude data-locality indicator that reordering reduces.
    pub mean_bandwidth: f64,
    /// Density `nnz / (nrows · ncols)`.
    pub density: f64,
}

/// Compute [`MatrixStats`] in one pass.
pub fn stats(m: &CsrMatrix) -> MatrixStats {
    let nrows = m.nrows();
    let nnz = m.nnz();
    let mut max_row_len = 0usize;
    let mut empty = 0usize;
    let mut sum_sq = 0.0f64;
    let mut bw_sum = 0.0f64;
    for r in 0..nrows {
        let len = m.row_len(r);
        max_row_len = max_row_len.max(len);
        if len == 0 {
            empty += 1;
        }
        sum_sq += (len * len) as f64;
        for &c in m.row(r).0 {
            bw_sum += (r as f64 - c as f64).abs();
        }
    }
    let avg = if nrows == 0 {
        0.0
    } else {
        nnz as f64 / nrows as f64
    };
    let var = if nrows == 0 {
        0.0
    } else {
        sum_sq / nrows as f64 - avg * avg
    };
    MatrixStats {
        nrows,
        ncols: m.ncols(),
        nnz,
        avg_row_len: avg,
        max_row_len,
        empty_row_fraction: if nrows == 0 {
            0.0
        } else {
            empty as f64 / nrows as f64
        },
        row_len_stddev: var.max(0.0).sqrt(),
        mean_bandwidth: if nnz == 0 { 0.0 } else { bw_sum / nnz as f64 },
        density: if nrows == 0 || m.ncols() == 0 {
            0.0
        } else {
            nnz as f64 / (nrows as f64 * m.ncols() as f64)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        // [1 0 0 0]
        // [0 0 0 0]
        // [1 1 1 0]
        // [0 0 0 1]
        let mut coo = CooMatrix::new(4, 4);
        for &(r, c) in &[(0u32, 0u32), (2, 0), (2, 1), (2, 2), (3, 3)] {
            coo.push(r, c, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn counts_and_means() {
        let s = stats(&sample());
        assert_eq!(s.nnz, 5);
        assert_eq!(s.max_row_len, 3);
        assert!((s.avg_row_len - 1.25).abs() < 1e-12);
        assert!((s.empty_row_fraction - 0.25).abs() < 1e-12);
        assert!((s.density - 5.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_reflects_diagonal_distance() {
        // Entries at |r-c|: 0, 2, 1, 0, 0 -> mean 0.6.
        let s = stats(&sample());
        assert!((s.mean_bandwidth - 0.6).abs() < 1e-12);
    }

    #[test]
    fn stddev_zero_for_uniform_rows() {
        let mut coo = CooMatrix::new(3, 3);
        for r in 0..3u32 {
            coo.push(r, r, 1.0);
        }
        let s = stats(&CsrMatrix::from_coo(&coo));
        assert_eq!(s.row_len_stddev, 0.0);
    }

    #[test]
    fn empty_matrix() {
        let s = stats(&CsrMatrix::from_coo(&CooMatrix::new(0, 0)));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.avg_row_len, 0.0);
        assert_eq!(s.density, 0.0);
    }
}
