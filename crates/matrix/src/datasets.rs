//! The Table-2 evaluation dataset registry.
//!
//! Each entry records the *paper's* dataset statistics (rows, nnz, AvgL)
//! and a scaled synthetic recipe reproducing its structural class. Row
//! counts are scaled down (the paper's largest matrices exceed 100M nnz,
//! far beyond what a software cache/timing simulation should chew per
//! experiment) while **AvgL and locality structure — the properties that
//! drive every figure — are preserved**. The exact scale factor per
//! dataset is visible here and recorded in EXPERIMENTS.md.

use crate::csr::CsrMatrix;
use crate::gen::{clustered, molecule_union, road_network, ClusteredConfig};

/// Which structural generator reproduces a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetKind {
    /// Disjoint union of small molecular graphs (TC-GNN datasets).
    Molecules {
        /// Minimum atoms per molecule.
        mol_min: usize,
        /// Maximum atoms per molecule.
        mol_max: usize,
    },
    /// Near-planar road network (SNAP roadNet-*).
    Road,
    /// Community/cluster structure with optional hubs (web graphs,
    /// relational graphs, protein neighbourhoods, reddit communities).
    Clustered {
        /// Vertices per community.
        cluster_size: usize,
        /// Mean within-community degree.
        intra_deg: f64,
        /// Mean cross-community degree.
        inter_deg: f64,
        /// Fraction of hub vertices.
        hub_fraction: f64,
        /// Hub degree multiplier.
        hub_factor: f64,
        /// Per-vertex degree heterogeneity (keeps IBD realistic).
        degree_spread: f64,
        /// Cluster-size heterogeneity.
        size_variance: f64,
    },
}

/// One evaluation dataset: paper statistics + scaled synthetic recipe.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    /// Full dataset name as in Table 2.
    pub name: &'static str,
    /// Paper abbreviation.
    pub abbr: &'static str,
    /// Rows (=columns) of the original matrix.
    pub paper_rows: usize,
    /// Non-zeros of the original matrix.
    pub paper_nnz: usize,
    /// Original AvgL (nnz / rows).
    pub paper_avgl: f64,
    /// Paper type: 1 = small AvgL, 2 = large AvgL.
    pub matrix_type: u8,
    /// Scaled row count used by this reproduction.
    pub scaled_rows: usize,
    /// Generator recipe.
    pub kind: DatasetKind,
    /// Generator seed (fixed per dataset for reproducibility).
    pub seed: u64,
}

impl Dataset {
    /// Build the scaled synthetic analog.
    pub fn build(&self) -> CsrMatrix {
        match self.kind {
            DatasetKind::Molecules { mol_min, mol_max } => {
                molecule_union(self.scaled_rows, mol_min, mol_max, true, self.seed)
            }
            DatasetKind::Road => road_network(self.scaled_rows, self.seed),
            DatasetKind::Clustered {
                cluster_size,
                intra_deg,
                inter_deg,
                hub_fraction,
                hub_factor,
                degree_spread,
                size_variance,
            } => clustered(
                ClusteredConfig {
                    n: self.scaled_rows,
                    cluster_size,
                    intra_deg,
                    inter_deg,
                    hub_fraction,
                    hub_factor,
                    shuffle: true,
                    degree_spread,
                    size_variance,
                },
                self.seed,
            ),
        }
    }

    /// Scale factor rows_paper / rows_scaled (approximate for road grids).
    pub fn scale_factor(&self) -> f64 {
        self.paper_rows as f64 / self.scaled_rows as f64
    }

    /// Look up a dataset by abbreviation (case-insensitive).
    pub fn by_abbr(abbr: &str) -> Option<&'static Dataset> {
        TABLE2.iter().find(|d| d.abbr.eq_ignore_ascii_case(abbr))
    }
}

/// The ten Table-2 datasets, in paper order (type-1 first).
pub static TABLE2: [Dataset; 10] = [
    Dataset {
        name: "YeastH",
        abbr: "YH",
        paper_rows: 3_138_114,
        paper_nnz: 6_487_230,
        paper_avgl: 2.07,
        matrix_type: 1,
        scaled_rows: 49_152,
        kind: DatasetKind::Molecules {
            mol_min: 6,
            mol_max: 14,
        },
        seed: 0xACC0_0001,
    },
    Dataset {
        name: "OVCAR-8H",
        abbr: "OH",
        paper_rows: 1_889_542,
        paper_nnz: 3_946_402,
        paper_avgl: 2.09,
        matrix_type: 1,
        scaled_rows: 30_720,
        kind: DatasetKind::Molecules {
            mol_min: 6,
            mol_max: 15,
        },
        seed: 0xACC0_0002,
    },
    Dataset {
        name: "Yeast",
        abbr: "Yt",
        paper_rows: 1_710_902,
        paper_nnz: 3_636_546,
        paper_avgl: 2.13,
        matrix_type: 1,
        scaled_rows: 26_624,
        kind: DatasetKind::Molecules {
            mol_min: 5,
            mol_max: 14,
        },
        seed: 0xACC0_0003,
    },
    Dataset {
        name: "roadNet-CA",
        abbr: "rCA",
        paper_rows: 1_971_281,
        paper_nnz: 5_533_214,
        paper_avgl: 2.81,
        matrix_type: 1,
        scaled_rows: 30_976, // 176^2 grid
        kind: DatasetKind::Road,
        seed: 0xACC0_0004,
    },
    Dataset {
        name: "roadNet-PA",
        abbr: "rPA",
        paper_rows: 1_090_920,
        paper_nnz: 3_083_796,
        paper_avgl: 2.83,
        matrix_type: 1,
        scaled_rows: 17_161, // 131^2 grid
        kind: DatasetKind::Road,
        seed: 0xACC0_0005,
    },
    Dataset {
        name: "DD",
        abbr: "DD",
        paper_rows: 334_926,
        paper_nnz: 1_686_092,
        paper_avgl: 5.03,
        matrix_type: 1,
        scaled_rows: 10_240,
        kind: DatasetKind::Clustered {
            cluster_size: 24,
            intra_deg: 4.6,
            inter_deg: 0.6,
            hub_fraction: 0.0,
            hub_factor: 1.0,
            degree_spread: 0.4,
            size_variance: 0.3,
        },
        seed: 0xACC0_0006,
    },
    Dataset {
        name: "web-BerkStan",
        abbr: "WB",
        paper_rows: 685_230,
        paper_nnz: 7_600_595,
        paper_avgl: 11.09,
        matrix_type: 1,
        scaled_rows: 21_504,
        kind: DatasetKind::Clustered {
            cluster_size: 48,
            intra_deg: 9.0,
            inter_deg: 2.2,
            hub_fraction: 0.015,
            hub_factor: 10.0,
            degree_spread: 1.5,
            size_variance: 0.7,
        },
        seed: 0xACC0_0007,
    },
    Dataset {
        name: "FraudYelp-RSR",
        abbr: "FY-RSR",
        paper_rows: 45_954,
        paper_nnz: 6_805_486,
        paper_avgl: 148.09,
        matrix_type: 2,
        scaled_rows: 5_760,
        kind: DatasetKind::Clustered {
            cluster_size: 192,
            intra_deg: 160.0,
            inter_deg: 10.0,
            hub_fraction: 0.02,
            hub_factor: 6.0,
            degree_spread: 1.6,
            size_variance: 0.7,
        },
        seed: 0xACC0_0008,
    },
    Dataset {
        name: "reddit",
        abbr: "reddit",
        paper_rows: 232_965,
        paper_nnz: 114_848_857,
        paper_avgl: 492.99,
        matrix_type: 2,
        scaled_rows: 6_144,
        kind: DatasetKind::Clustered {
            // reddit is the least community-compressible of the type-2
            // sets (power-law subreddit overlap): near half the edges are
            // cross-community, which keeps MeanNNZTC modest and lets
            // Sputnik's streaming stay competitive here, as in Figure 8.
            cluster_size: 1024,
            intra_deg: 220.0,
            inter_deg: 300.0,
            hub_fraction: 0.025,
            hub_factor: 4.0,
            degree_spread: 1.8,
            size_variance: 0.7,
        },
        seed: 0xACC0_0009,
    },
    Dataset {
        name: "protein",
        abbr: "protein",
        paper_rows: 132_534,
        paper_nnz: 79_255_038,
        paper_avgl: 598.00,
        matrix_type: 2,
        scaled_rows: 4_096,
        kind: DatasetKind::Clustered {
            cluster_size: 448,
            intra_deg: 480.0,
            inter_deg: 56.0,
            hub_fraction: 0.008,
            hub_factor: 4.0,
            degree_spread: 0.9,
            size_variance: 0.5,
        },
        seed: 0xACC0_000A,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_entries_in_paper_order() {
        assert_eq!(TABLE2.len(), 10);
        assert_eq!(TABLE2[0].abbr, "YH");
        assert_eq!(TABLE2[9].abbr, "protein");
        // Type-1 matrices come first, then type-2.
        let first_t2 = TABLE2.iter().position(|d| d.matrix_type == 2).unwrap();
        assert!(TABLE2[first_t2..].iter().all(|d| d.matrix_type == 2));
    }

    #[test]
    fn lookup_by_abbr() {
        assert_eq!(Dataset::by_abbr("rca").unwrap().name, "roadNet-CA");
        assert!(Dataset::by_abbr("nope").is_none());
    }

    #[test]
    fn paper_avgl_consistent_with_counts() {
        for d in &TABLE2 {
            let avgl = d.paper_nnz as f64 / d.paper_rows as f64;
            assert!(
                (avgl - d.paper_avgl).abs() / d.paper_avgl < 0.01,
                "{}: table says {} computed {avgl}",
                d.abbr,
                d.paper_avgl
            );
        }
    }

    #[test]
    fn small_analogs_hit_target_avgl() {
        // Build only the cheap type-1 sets in unit tests; the expensive
        // type-2 sets are covered by integration tests.
        for d in TABLE2.iter().filter(|d| d.matrix_type == 1) {
            let m = d.build();
            let avg = m.avg_row_len();
            assert!(
                (avg - d.paper_avgl).abs() / d.paper_avgl < 0.40,
                "{}: target AvgL {}, generated {avg}",
                d.abbr,
                d.paper_avgl
            );
            assert_eq!(m.nrows(), m.ncols());
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let d = &TABLE2[0];
        assert_eq!(d.build(), d.build());
    }
}
