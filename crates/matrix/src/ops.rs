//! Additional linear-algebra operations on the matrix types: symmetric
//! permutation (the paper's future-work column+dense-row reorder needs
//! it), sparse arithmetic, submatrix extraction, and a dense GEMM used by
//! the GNN layers.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use spmm_common::{Result, SpmmError};

impl CsrMatrix {
    /// Apply the same permutation to rows **and** columns:
    /// `B[perm[i], perm[j]] = A[i, j]`. This is the graph-relabeling
    /// permutation of the paper's future-work variant, where the dense
    /// operand's rows are permuted alongside (see
    /// [`DenseMatrix::permute_rows`]).
    pub fn permute_symmetric(&self, perm: &[u32]) -> Result<CsrMatrix> {
        if self.nrows() != self.ncols() {
            return Err(SpmmError::Shape {
                context: format!(
                    "symmetric permutation requires a square matrix, got {}x{}",
                    self.nrows(),
                    self.ncols()
                ),
            });
        }
        if perm.len() != self.nrows() || !spmm_common::util::is_permutation(perm) {
            return Err(SpmmError::InvalidConfig(
                "symmetric permutation is not a bijection over the rows".into(),
            ));
        }
        let mut coo = CooMatrix::new(self.nrows(), self.ncols());
        for r in 0..self.nrows() {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                coo.push(perm[r], perm[c as usize], v);
            }
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Multiply every stored value by `s`.
    pub fn scale(&self, s: f32) -> CsrMatrix {
        let mut coo = self.to_coo();
        let scaled = {
            let (rows, cols, vals) = coo.triplets();
            CooMatrix::from_triplets(
                self.nrows(),
                self.ncols(),
                rows.to_vec(),
                cols.to_vec(),
                vals.iter().map(|&v| v * s).collect(),
            )
            .expect("scaling preserves structure")
        };
        coo = scaled;
        CsrMatrix::from_coo(&coo)
    }

    /// Sparse addition `self + other` (patterns merged, values summed).
    pub fn add(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.nrows() != other.nrows() || self.ncols() != other.ncols() {
            return Err(SpmmError::Shape {
                context: format!(
                    "add: {}x{} vs {}x{}",
                    self.nrows(),
                    self.ncols(),
                    other.nrows(),
                    other.ncols()
                ),
            });
        }
        let mut coo = self.to_coo();
        for r in 0..other.nrows() {
            let (cols, vals) = other.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                coo.push(r as u32, c, v);
            }
        }
        coo.dedup_sum(true);
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Extract the submatrix of rows `rows` and columns `cols`
    /// (half-open ranges).
    pub fn submatrix(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> Result<CsrMatrix> {
        if rows.end > self.nrows() || cols.end > self.ncols() {
            return Err(SpmmError::IndexOutOfBounds {
                what: "submatrix bound",
                index: rows.end.max(cols.end),
                bound: self.nrows().max(self.ncols()),
            });
        }
        let mut coo = CooMatrix::new(rows.len(), cols.len());
        for r in rows.clone() {
            let (cidx, vals) = self.row(r);
            for (&c, &v) in cidx.iter().zip(vals.iter()) {
                if cols.contains(&(c as usize)) {
                    coo.push((r - rows.start) as u32, c - cols.start as u32, v);
                }
            }
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Symmetrize: `(A + Aᵀ)` with duplicate coordinates keeping the
    /// first value (adjacency semantics, matching the graph view).
    pub fn symmetrized(&self) -> CsrMatrix {
        let mut coo = self.to_coo();
        coo.symmetrize();
        CsrMatrix::from_coo(&coo)
    }
}

impl DenseMatrix {
    /// Dense GEMM: `self × other` in FP32. A simple cache-blocked
    /// implementation — the dense weight multiply of the GNN layers, not
    /// a performance kernel.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols() != other.nrows() {
            return Err(SpmmError::Shape {
                context: format!(
                    "matmul: {}x{} times {}x{}",
                    self.nrows(),
                    self.ncols(),
                    other.nrows(),
                    other.ncols()
                ),
            });
        }
        let (m, k, n) = (self.nrows(), self.ncols(), other.ncols());
        let mut c = DenseMatrix::zeros(m, n);
        const BK: usize = 64;
        for k0 in (0..k).step_by(BK) {
            let k1 = (k0 + BK).min(k);
            for i in 0..m {
                let arow = self.row(i);
                let crow = c.row_mut(i);
                for (kk, &a) in arow.iter().enumerate().take(k1).skip(k0) {
                    if a == 0.0 {
                        continue;
                    }
                    let brow = other.row(kk);
                    for j in 0..n {
                        crow[j] += a * brow[j];
                    }
                }
            }
        }
        Ok(c)
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.ncols(), self.nrows(), |i, j| self.get(j, i))
    }

    /// Apply a row permutation: row `old` becomes row `perm[old]` — the
    /// dense-side half of the paper's future-work symmetric reordering.
    pub fn permute_rows(&self, perm: &[u32]) -> Result<DenseMatrix> {
        if perm.len() != self.nrows() || !spmm_common::util::is_permutation(perm) {
            return Err(SpmmError::InvalidConfig(
                "dense row permutation is not a bijection".into(),
            ));
        }
        let mut out = DenseMatrix::zeros(self.nrows(), self.ncols());
        self.permute_rows_into(perm, &mut out)?;
        Ok(out)
    }

    /// [`DenseMatrix::permute_rows`] writing into a caller-provided,
    /// same-shape output (every row is overwritten).
    pub fn permute_rows_into(&self, perm: &[u32], out: &mut DenseMatrix) -> Result<()> {
        if perm.len() != self.nrows() || !spmm_common::util::is_permutation(perm) {
            return Err(SpmmError::InvalidConfig(
                "dense row permutation is not a bijection".into(),
            ));
        }
        if out.nrows() != self.nrows() || out.ncols() != self.ncols() {
            return Err(SpmmError::Shape {
                context: format!(
                    "permute target is {}x{}, source is {}x{}",
                    out.nrows(),
                    out.ncols(),
                    self.nrows(),
                    self.ncols()
                ),
            });
        }
        for (old, &p) in perm.iter().enumerate() {
            out.row_mut(p as usize).copy_from_slice(self.row(old));
        }
        Ok(())
    }

    /// `self += alpha · other`, elementwise.
    pub fn add_assign_scaled(&mut self, other: &DenseMatrix, alpha: f32) -> Result<()> {
        if self.nrows() != other.nrows() || self.ncols() != other.ncols() {
            return Err(SpmmError::Shape {
                context: "add_assign_scaled shape mismatch".into(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform_random;

    #[test]
    fn symmetric_permute_relabels_both_sides() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 5.0);
        coo.push(2, 0, 7.0);
        let m = CsrMatrix::from_coo(&coo);
        // 0->2, 1->0, 2->1.
        let p = m.permute_symmetric(&[2, 0, 1]).unwrap();
        let d = p.to_dense();
        assert_eq!(d.get(2, 0), 5.0, "A[0,1] -> B[2,0]");
        assert_eq!(d.get(1, 2), 7.0, "A[2,0] -> B[1,2]");
        assert_eq!(p.nnz(), 2);
    }

    #[test]
    fn symmetric_permute_preserves_spmm_with_permuted_dense() {
        // The future-work identity: (P A Pᵀ)(P B) = P (A B).
        let a = uniform_random(64, 6.0, 3);
        let b = DenseMatrix::random(64, 8, 4);
        let perm: Vec<u32> = (0..64u32).map(|i| (i * 13 + 5) % 64).collect();
        assert!(spmm_common::util::is_permutation(&perm));
        let pa = a.permute_symmetric(&perm).unwrap();
        let pb = b.permute_rows(&perm).unwrap();
        let lhs = pa.spmm_dense(&pb).unwrap();
        let rhs = a.spmm_dense(&b).unwrap().permute_rows(&perm).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-6, 1e-6));
    }

    #[test]
    fn scale_and_add() {
        let a = uniform_random(32, 4.0, 1);
        let doubled = a.scale(2.0);
        let summed = a.add(&a).unwrap();
        assert_eq!(doubled, summed);
        // A + (-1)*A == empty after zero-dropping.
        let zero = a.add(&a.scale(-1.0)).unwrap();
        assert_eq!(zero.nnz(), 0);
    }

    #[test]
    fn submatrix_extracts_block() {
        let mut coo = CooMatrix::new(6, 6);
        coo.push(2, 3, 1.0);
        coo.push(4, 4, 2.0);
        coo.push(0, 0, 3.0);
        let m = CsrMatrix::from_coo(&coo);
        let s = m.submatrix(2..5, 3..6).unwrap();
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense().get(0, 0), 1.0);
        assert_eq!(s.to_dense().get(2, 1), 2.0);
        assert!(m.submatrix(0..7, 0..2).is_err());
    }

    #[test]
    fn dense_matmul_matches_manual() {
        let a = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        let b = DenseMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        let c = a.matmul(&b).unwrap();
        // [[0,1,2],[3,4,5]] x [[0,1],[2,3],[4,5]] = [[10,13],[28,40]]
        assert_eq!(c.row(0), &[10.0, 13.0]);
        assert_eq!(c.row(1), &[28.0, 40.0]);
        assert!(a.matmul(&a).is_err(), "2x3 times 2x3 must fail");
    }

    #[test]
    fn dense_matmul_associates_with_spmm() {
        // (A × B) × W == A × (B × W): both are exact in FP32 only up to
        // rounding, so compare loosely.
        let a = uniform_random(48, 5.0, 9);
        let b = DenseMatrix::random(48, 16, 2);
        let w = DenseMatrix::random(16, 8, 3);
        let lhs = a.spmm_dense(&b).unwrap().matmul(&w).unwrap();
        let rhs = a.spmm_dense(&b.matmul(&w).unwrap()).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-4, 1e-4));
    }

    #[test]
    fn dense_transpose_involutive() {
        let a = DenseMatrix::random(5, 7, 1);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_assign_scaled_axpy() {
        let mut a = DenseMatrix::from_fn(2, 2, |_, _| 1.0);
        let b = DenseMatrix::from_fn(2, 2, |_, _| 2.0);
        a.add_assign_scaled(&b, 0.5).unwrap();
        assert!(a.as_slice().iter().all(|&x| x == 2.0));
        assert!(a.add_assign_scaled(&DenseMatrix::zeros(3, 2), 1.0).is_err());
    }
}
