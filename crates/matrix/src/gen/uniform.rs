//! Uniform random sparse matrices — the "no structure" control workload.

use crate::csr::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

/// Generate an `n × n` symmetric random matrix with ~`avg_deg` non-zeros
/// per row and no locality structure at all (worst case for reordering).
pub fn uniform_random(n: usize, avg_deg: f64, seed: u64) -> CsrMatrix {
    assert!(n > 0, "uniform_random requires n > 0");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Each undirected edge contributes 2 to total degree.
    let target_edges = ((n as f64 * avg_deg) / 2.0).round() as usize;
    let mut set = FxHashSet::default();
    let mut edges = Vec::with_capacity(target_edges);
    let mut attempts = 0usize;
    while edges.len() < target_edges && attempts < target_edges * 20 {
        attempts += 1;
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = if a < b {
            ((a as u64) << 32) | b as u64
        } else {
            ((b as u64) << 32) | a as u64
        };
        if set.insert(key) {
            edges.push((a, b));
        }
    }
    super::edges_to_symmetric_csr(n, &edges, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_target_density() {
        let m = uniform_random(512, 8.0, 3);
        let avg = m.avg_row_len();
        assert!((avg - 8.0).abs() < 1.0, "requested avgL 8, generated {avg}");
        assert_eq!(m.nrows(), 512);
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(uniform_random(128, 4.0, 9), uniform_random(128, 4.0, 9));
        assert_ne!(uniform_random(128, 4.0, 9), uniform_random(128, 4.0, 10));
    }

    #[test]
    fn symmetric_pattern() {
        let m = uniform_random(64, 4.0, 5);
        let t = m.transpose();
        assert_eq!(m, t);
    }
}
