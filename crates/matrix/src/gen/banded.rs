//! Banded matrices — the classic scientific-computing stencil pattern,
//! used in the 414-matrix collection's "mesh/stencil" bucket.

use crate::csr::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate an `n × n` symmetric banded matrix: every row has non-zeros at
/// offsets drawn from `[-bandwidth, bandwidth]`, with `fill` controlling
/// which in-band positions are kept (1.0 = full band).
pub fn banded(n: usize, bandwidth: usize, fill: f64, seed: u64) -> CsrMatrix {
    assert!(n > 0 && bandwidth >= 1);
    assert!((0.0..=1.0).contains(&fill));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i as u32, i as u32)); // diagonal always present
        for off in 1..=bandwidth {
            if i + off < n && rng.gen_bool(fill) {
                edges.push((i as u32, (i + off) as u32));
            }
        }
    }
    super::edges_to_symmetric_csr(n, &edges, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_stay_in_band() {
        let bw = 3;
        let m = banded(100, bw, 0.8, 1);
        for r in 0..m.nrows() {
            for &c in m.row(r).0 {
                assert!((r as i64 - c as i64).unsigned_abs() as usize <= bw);
            }
        }
    }

    #[test]
    fn full_fill_gives_complete_band() {
        let m = banded(50, 2, 1.0, 2);
        // Interior rows have 5 entries: diag +/- 2.
        assert_eq!(m.row_len(25), 5);
        assert_eq!(m.row_len(0), 3);
    }

    #[test]
    fn diagonal_always_present() {
        let m = banded(30, 4, 0.1, 3);
        for r in 0..30 {
            assert!(m.row(r).0.contains(&(r as u32)));
        }
    }
}
