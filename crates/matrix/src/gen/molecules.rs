//! Molecule-union generator — stands in for the TC-GNN graph-classification
//! batches (YeastH, OVCAR-8H, Yeast, DD): disjoint unions of thousands of
//! small molecular graphs, AvgL ≈ 2.1 and perfect block-diagonal locality.

use crate::csr::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a disjoint union of small "molecules" totalling ~`n` atoms.
///
/// Each molecule is a chain of `mol_min..=mol_max` atoms with ring-closing
/// and branch bonds sprinkled in, giving the degree ~2 pattern of chemical
/// graph datasets. With `shuffle` the atom ids are interleaved across
/// molecules (as in the shipped datasets, where nodes of different graphs
/// in a batch are *not* contiguous) — this is precisely what gives
/// reordering algorithms their opportunity on these matrices.
pub fn molecule_union(
    n: usize,
    mol_min: usize,
    mol_max: usize,
    shuffle: bool,
    seed: u64,
) -> CsrMatrix {
    assert!(mol_min >= 2 && mol_max >= mol_min);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut base = 0usize;
    while base < n {
        let size = rng.gen_range(mol_min..=mol_max).min(n - base);
        if size >= 2 {
            // Backbone chain.
            for i in 0..size - 1 {
                edges.push(((base + i) as u32, (base + i + 1) as u32));
            }
            // Ring closure with 40% probability.
            if size >= 4 && rng.gen_bool(0.4) {
                edges.push((base as u32, (base + size - 1) as u32));
            }
            // A couple of branch bonds.
            let branches = rng.gen_range(0..=(size / 6));
            for _ in 0..branches {
                let a = rng.gen_range(0..size);
                let b = rng.gen_range(0..size);
                if a != b && a + 1 != b && b + 1 != a {
                    edges.push(((base + a) as u32, (base + b) as u32));
                }
            }
        }
        base += size.max(1);
    }
    let n = base;

    if shuffle {
        // Random relabeling across molecules — as in the shipped
        // datasets, nodes of different graphs in a batch are not
        // contiguous. (A Fisher-Yates shuffle, not a stride interleave:
        // strides introduce periodic cache reuse no real batch has.)
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for e in &mut edges {
            *e = (perm[e.0 as usize], perm[e.1 as usize]);
        }
    }
    super::edges_to_symmetric_csr(n, &edges, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_degree_is_molecular() {
        let m = molecule_union(8192, 8, 30, false, 1);
        let avg = m.avg_row_len();
        assert!((1.6..2.8).contains(&avg), "molecular avgL ~2, got {avg}");
    }

    #[test]
    fn unshuffled_is_block_diagonal() {
        let m = molecule_union(1024, 8, 20, false, 2);
        // Every edge should stay within a small window of the diagonal.
        for r in 0..m.nrows() {
            for &c in m.row(r).0 {
                assert!((r as i64 - c as i64).unsigned_abs() < 32);
            }
        }
    }

    #[test]
    fn shuffled_destroys_locality() {
        let m = molecule_union(4096, 8, 20, true, 3);
        // The stride-97 interleave spreads chain neighbours ~n/97 ≈ 42
        // ids apart for n=4096.
        let far = (0..m.nrows())
            .flat_map(|r| m.row(r).0.iter().map(move |&c| (r, c)))
            .filter(|&(r, c)| (r as i64 - c as i64).unsigned_abs() > 32)
            .count();
        assert!(far > m.nnz() / 4, "shuffle should scatter edges: {far}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            molecule_union(2048, 6, 24, true, 7),
            molecule_union(2048, 6, 24, true, 7)
        );
    }
}
