//! Clustered (planted-partition) generator — stands in for the dense
//! community-structured matrices: web-BerkStan (host blocks + hub pages),
//! FraudYelp-RSR (dense relational communities), and ogbn-proteins
//! (dense biological neighbourhoods).

use crate::csr::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

/// Configuration for the clustered generator.
#[derive(Debug, Clone, Copy)]
pub struct ClusteredConfig {
    /// Total number of vertices.
    pub n: usize,
    /// Vertices per community (last community may be smaller).
    pub cluster_size: usize,
    /// Average *within-cluster* neighbours per vertex.
    pub intra_deg: f64,
    /// Average *cross-cluster* neighbours per vertex.
    pub inter_deg: f64,
    /// Fraction of vertices promoted to hubs with `hub_factor`× degree
    /// (models web hub pages / high-degree fraud accounts). 0 disables.
    pub hub_fraction: f64,
    /// Degree multiplier for hub vertices.
    pub hub_factor: f64,
    /// Shuffle vertex ids so clusters are not contiguous in the natural
    /// ordering (gives reordering algorithms room to work).
    pub shuffle: bool,
    /// Per-vertex degree heterogeneity: each vertex's target degree is
    /// multiplied by a log-uniform factor in `[1/(1+s), 1+s]`. Real
    /// power-law community graphs have strongly varying member degrees,
    /// which is what keeps RowWindow workloads imbalanced (high IBD)
    /// even after reordering. 0 = uniform.
    pub degree_spread: f64,
    /// Cluster-size heterogeneity: sizes are drawn from
    /// `[cs·(1−v), cs·(1+2v)]`. 0 = all clusters equal.
    pub size_variance: f64,
}

impl Default for ClusteredConfig {
    fn default() -> Self {
        ClusteredConfig {
            n: 1024,
            cluster_size: 64,
            intra_deg: 8.0,
            inter_deg: 1.0,
            hub_fraction: 0.0,
            hub_factor: 1.0,
            shuffle: true,
            degree_spread: 0.0,
            size_variance: 0.0,
        }
    }
}

/// Generate a clustered graph per `cfg`.
pub fn clustered(cfg: ClusteredConfig, seed: u64) -> CsrMatrix {
    assert!(cfg.n > 0 && cfg.cluster_size >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = cfg.n;
    let cs = cfg.cluster_size;

    // Cluster boundaries, with optional size heterogeneity.
    let mut bounds = vec![0usize];
    while *bounds.last().unwrap() < n {
        let f = if cfg.size_variance > 0.0 {
            1.0 - cfg.size_variance + rng.gen::<f64>() * 3.0 * cfg.size_variance
        } else {
            1.0
        };
        let size = ((cs as f64 * f) as usize).clamp(2, n);
        bounds.push((bounds.last().unwrap() + size).min(n));
    }
    let nclusters = bounds.len() - 1;
    let cluster_of = |v: usize| match bounds.binary_search(&v) {
        Ok(i) => i.min(nclusters - 1),
        Err(i) => i - 1,
    };
    let cluster_range = |c: usize| (bounds[c], bounds[c + 1]);

    // Per-vertex degree factor (log-uniform in [1/(1+s), 1+s]).
    let spread = cfg.degree_spread.max(0.0);
    let degree_factor = |rng: &mut SmallRng| {
        if spread > 0.0 {
            let u: f64 = rng.gen_range(-1.0..1.0);
            (1.0 + spread).powf(u)
        } else {
            1.0
        }
    };

    let mut set = FxHashSet::default();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let add = |set: &mut FxHashSet<u64>, edges: &mut Vec<(u32, u32)>, a: u32, b: u32| {
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        if set.insert(((lo as u64) << 32) | hi as u64) {
            edges.push((lo, hi));
        }
    };

    for v in 0..n {
        let is_hub = cfg.hub_fraction > 0.0 && rng.gen_bool(cfg.hub_fraction);
        let boost = if is_hub { cfg.hub_factor } else { 1.0 } * degree_factor(&mut rng);
        let c = cluster_of(v);
        let (lo, hi) = cluster_range(c);
        // Within-cluster edges (halved: each undirected edge counted once).
        let intra = ((cfg.intra_deg * boost) / 2.0).round() as usize;
        for _ in 0..intra {
            let u = rng.gen_range(lo..hi);
            add(&mut set, &mut edges, v as u32, u as u32);
        }
        // Cross-cluster edges.
        let inter = ((cfg.inter_deg * boost) / 2.0).round() as usize;
        for _ in 0..inter {
            let oc = rng.gen_range(0..nclusters);
            let (olo, ohi) = cluster_range(oc);
            let u = rng.gen_range(olo..ohi);
            add(&mut set, &mut edges, v as u32, u as u32);
        }
    }

    if cfg.shuffle {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for e in &mut edges {
            *e = (perm[e.0 as usize], perm[e.1 as usize]);
        }
    }
    super::edges_to_symmetric_csr(n, &edges, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> ClusteredConfig {
        ClusteredConfig {
            n: 2048,
            cluster_size: 64,
            intra_deg: 12.0,
            inter_deg: 2.0,
            hub_fraction: 0.0,
            hub_factor: 1.0,
            shuffle: false,
            ..Default::default()
        }
    }

    #[test]
    fn density_near_target() {
        let m = clustered(base_cfg(), 1);
        let avg = m.avg_row_len();
        // Duplicate collisions lose a few edges; expect within 25%.
        assert!((9.0..15.0).contains(&avg), "avgL {avg}");
    }

    #[test]
    fn clusters_dominate_edges() {
        let cfg = base_cfg();
        let m = clustered(cfg, 2);
        let intra = (0..m.nrows())
            .flat_map(|r| m.row(r).0.iter().map(move |&c| (r, c as usize)))
            .filter(|&(r, c)| r / cfg.cluster_size == c / cfg.cluster_size)
            .count();
        assert!(
            intra as f64 > 0.7 * m.nnz() as f64,
            "intra-cluster edges should dominate: {intra}/{}",
            m.nnz()
        );
    }

    #[test]
    fn hubs_create_skew() {
        let mut cfg = base_cfg();
        cfg.hub_fraction = 0.02;
        cfg.hub_factor = 10.0;
        let m = clustered(cfg, 3);
        let max = (0..m.nrows()).map(|r| m.row_len(r)).max().unwrap() as f64;
        assert!(max > 3.0 * m.avg_row_len(), "hub degree skew expected");
    }

    #[test]
    fn deterministic() {
        assert_eq!(clustered(base_cfg(), 9), clustered(base_cfg(), 9));
    }
}
