//! Road-network generator — stands in for roadNet-CA / roadNet-PA
//! (near-planar graphs, AvgL ≈ 2.8, strong spatial locality).

use crate::csr::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a road-like network of ~`n` nodes: a 2-D grid (intersections)
/// with some edges removed (dead ends) and occasional diagonal shortcuts
/// (highways). Node ids are shuffled block-wise so the natural ordering is
/// only *partially* local — matching how SNAP road networks ship and
/// leaving headroom for reordering algorithms to improve locality.
pub fn road_network(n: usize, seed: u64) -> CsrMatrix {
    assert!(n >= 16);
    let side = (n as f64).sqrt().round() as usize;
    let n = side * side;
    let mut rng = SmallRng::seed_from_u64(seed);
    let node = |x: usize, y: usize| (x * side + y) as u32;

    let mut edges = Vec::with_capacity(2 * n);
    for x in 0..side {
        for y in 0..side {
            // Grid edges with 12% removed (dead ends / rivers).
            if x + 1 < side && !rng.gen_bool(0.12) {
                edges.push((node(x, y), node(x + 1, y)));
            }
            if y + 1 < side && !rng.gen_bool(0.12) {
                edges.push((node(x, y), node(x, y + 1)));
            }
            // Occasional diagonal shortcut (on/off-ramps).
            if x + 1 < side && y + 1 < side && rng.gen_bool(0.03) {
                edges.push((node(x, y), node(x + 1, y + 1)));
            }
        }
    }

    // Block shuffle: permute blocks of 64 consecutive ids so locality is
    // partially destroyed, as in real collected road data.
    let block = 64usize;
    let nblocks = n.div_ceil(block);
    let mut order: Vec<usize> = (0..nblocks).collect();
    for i in (1..nblocks).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut perm = vec![0u32; n];
    let mut next = 0u32;
    for &b in &order {
        let start = b * block;
        for p in perm[start..(start + block).min(n)].iter_mut() {
            *p = next;
            next += 1;
        }
    }
    let remapped: Vec<(u32, u32)> = edges
        .iter()
        .map(|&(a, b)| (perm[a as usize], perm[b as usize]))
        .collect();
    super::edges_to_symmetric_csr(n, &remapped, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_degree_matches_road_networks() {
        let m = road_network(4096, 1);
        let avg = m.avg_row_len();
        // Grid with 12% removal: ~2*0.88*2 ≈ 3.5 naive; boundary effects
        // and shortcuts land the SNAP-like 2.5..4 range.
        assert!((2.3..4.2).contains(&avg), "avgL {avg}");
    }

    #[test]
    fn low_max_degree() {
        let m = road_network(2048, 2);
        let max = (0..m.nrows()).map(|r| m.row_len(r)).max().unwrap();
        assert!(max <= 8, "road networks have bounded degree, got {max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(road_network(1024, 3), road_network(1024, 3));
    }
}
