//! Deterministic synthetic workload generators.
//!
//! The paper evaluates on SuiteSparse / SNAP / DGL / OGB matrices that are
//! not redistributable here, so each generator reproduces the *structural
//! class* of one dataset family: average row length (`AvgL`), degree
//! distribution shape, and locality structure — the three properties that
//! drive every result in the evaluation (type-1 vs type-2 behaviour,
//! TC-block density, cache hit rates, and load imbalance).
//!
//! All generators are seeded and fully deterministic across runs and
//! platforms (they use `StdRng`/`SmallRng` from a fixed seed and our own
//! splitmix64 for value assignment).

mod banded;
mod clustered;
mod molecules;
mod rmat;
mod road;
mod uniform;

pub use banded::banded;
pub use clustered::{clustered, ClusteredConfig};
pub use molecules::molecule_union;
pub use rmat::{rmat, RmatConfig};
pub use road::road_network;
pub use uniform::uniform_random;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use spmm_common::util::splitmix64;

/// Deterministic edge value shared by both directions of a symmetric edge.
/// Values live in `[0.5, 1.5)` so accumulations are well-conditioned (no
/// catastrophic cancellation when validating TF32 kernels).
#[inline]
pub(crate) fn edge_value(a: u32, b: u32, seed: u64) -> f32 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let h = splitmix64(seed ^ ((lo as u64) << 32 | hi as u64));
    0.5 + ((h >> 40) as f32) / (1u64 << 24) as f32
}

/// Finalize an edge list into a symmetric CSR adjacency matrix:
/// mirrors every edge, removes duplicates, and assigns deterministic
/// values.
pub(crate) fn edges_to_symmetric_csr(n: usize, edges: &[(u32, u32)], seed: u64) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for &(a, b) in edges {
        let v = edge_value(a, b, seed);
        coo.push(a, b, v);
        if a != b {
            coo.push(b, a, v);
        }
    }
    coo.dedup_keep_first();
    CsrMatrix::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_value_is_symmetric_and_deterministic() {
        assert_eq!(edge_value(3, 9, 1), edge_value(9, 3, 1));
        assert_eq!(edge_value(3, 9, 1), edge_value(3, 9, 1));
        assert_ne!(edge_value(3, 9, 1), edge_value(3, 9, 2));
        let v = edge_value(100, 7, 42);
        assert!((0.5..1.5).contains(&v));
    }

    #[test]
    fn edges_to_symmetric_handles_duplicates_and_loops() {
        let m = edges_to_symmetric_csr(3, &[(0, 1), (1, 0), (2, 2), (0, 1)], 7);
        assert_eq!(m.nnz(), 3, "(0,1),(1,0),(2,2)");
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), d.get(1, 0), "symmetric values");
    }
}
