//! R-MAT power-law graph generator — stands in for the large social /
//! GNN graphs (reddit and similar SNAP-style power-law matrices).

use crate::csr::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

/// R-MAT quadrant probabilities. The defaults `(0.57, 0.19, 0.19, 0.05)`
/// are the classic Graph500 parameters producing a heavy power-law degree
/// distribution with a dense "celebrity" corner — the structure of the
/// reddit graph.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of (undirected) neighbours per vertex.
    pub avg_deg: f64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            scale: 12,
            avg_deg: 16.0,
        }
    }
}

/// Generate a symmetric R-MAT graph adjacency matrix.
pub fn rmat(cfg: RmatConfig, seed: u64) -> CsrMatrix {
    assert!(
        cfg.a + cfg.b + cfg.c < 1.0,
        "quadrant probabilities must sum < 1"
    );
    let n = 1usize << cfg.scale;
    let target_edges = ((n as f64 * cfg.avg_deg) / 2.0).round() as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut set = FxHashSet::default();
    let mut edges = Vec::with_capacity(target_edges);
    let mut attempts = 0usize;
    // Duplicate edges are common in R-MAT; retry until the target count or
    // an attempt cap (the cap only matters for pathological configs).
    while edges.len() < target_edges && attempts < target_edges * 40 {
        attempts += 1;
        let (mut r, mut c) = (0usize, 0usize);
        for level in (0..cfg.scale).rev() {
            let p: f64 = rng.gen();
            let bit = 1usize << level;
            if p < cfg.a {
                // top-left: nothing to add
            } else if p < cfg.a + cfg.b {
                c |= bit;
            } else if p < cfg.a + cfg.b + cfg.c {
                r |= bit;
            } else {
                r |= bit;
                c |= bit;
            }
        }
        if r == c {
            continue;
        }
        let (a, b) = (r.min(c) as u32, r.max(c) as u32);
        if set.insert(((a as u64) << 32) | b as u64) {
            edges.push((a, b));
        }
    }
    super::edges_to_symmetric_csr(n, &edges, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_density() {
        let m = rmat(
            RmatConfig {
                scale: 10,
                avg_deg: 8.0,
                ..Default::default()
            },
            1,
        );
        assert_eq!(m.nrows(), 1024);
        let avg = m.avg_row_len();
        assert!((avg - 8.0).abs() < 1.5, "avgL {avg}");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let m = rmat(
            RmatConfig {
                scale: 11,
                avg_deg: 16.0,
                ..Default::default()
            },
            2,
        );
        let mut lens: Vec<usize> = (0..m.nrows()).map(|r| m.row_len(r)).collect();
        lens.sort_unstable();
        let max = *lens.last().unwrap() as f64;
        let median = lens[lens.len() / 2] as f64;
        assert!(
            max > median * 8.0,
            "power law expected: max {max} median {median}"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = RmatConfig {
            scale: 8,
            avg_deg: 4.0,
            ..Default::default()
        };
        assert_eq!(rmat(cfg, 5), rmat(cfg, 5));
    }
}
