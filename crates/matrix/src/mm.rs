//! Matrix Market (`.mtx`) reader/writer.
//!
//! Supports the `matrix coordinate (real|integer|pattern) (general|symmetric)`
//! subset, which covers every matrix in the paper's evaluation set. Pattern
//! entries are materialized with value `1.0` (the adjacency-matrix
//! convention the paper uses).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use spmm_common::{Result, SpmmError};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Parse a Matrix Market stream into COO form.
pub fn read_coo<R: BufRead>(reader: R) -> Result<CooMatrix> {
    let mut lines = reader.lines().enumerate();

    // Header line.
    let (_, header) = lines
        .next()
        .ok_or_else(|| SpmmError::Parse {
            line: 1,
            detail: "empty file".into(),
        })
        .and_then(|(i, l)| l.map(|l| (i, l)).map_err(SpmmError::from))?;
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SpmmError::Parse {
            line: 1,
            detail: format!("bad MatrixMarket header: {header}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SpmmError::Parse {
            line: 1,
            detail: "only coordinate format is supported".into(),
        });
    }
    let field = match tokens[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SpmmError::Parse {
                line: 1,
                detail: format!("unsupported field type: {other}"),
            })
        }
    };
    let symmetry = match tokens[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(SpmmError::Parse {
                line: 1,
                detail: format!("unsupported symmetry: {other}"),
            })
        }
    };

    // Size line (after comments).
    let mut size: Option<(usize, usize, usize)> = None;
    let mut coo: Option<CooMatrix> = None;
    let mut declared_nnz = 0usize;
    let mut seen = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let lineno = idx + 1;
        if size.is_none() {
            let mut it = line.split_whitespace();
            let parse = |t: Option<&str>| -> Result<usize> {
                t.ok_or(SpmmError::Parse {
                    line: lineno,
                    detail: "short size line".into(),
                })?
                .parse()
                .map_err(|_| SpmmError::Parse {
                    line: lineno,
                    detail: "bad size integer".into(),
                })
            };
            let m = parse(it.next())?;
            let n = parse(it.next())?;
            let nz = parse(it.next())?;
            size = Some((m, n, nz));
            declared_nnz = nz;
            coo = Some(CooMatrix::new(m, n));
            continue;
        }
        let coo = coo.as_mut().unwrap();
        let mut it = line.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(SpmmError::Parse {
                line: lineno,
                detail: "bad row index".into(),
            })?;
        let c: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(SpmmError::Parse {
                line: lineno,
                detail: "bad column index".into(),
            })?;
        if r == 0 || c == 0 || r > coo.nrows() || c > coo.ncols() {
            return Err(SpmmError::Parse {
                line: lineno,
                detail: format!("coordinate ({r},{c}) out of bounds (1-based)"),
            });
        }
        let v: f32 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => {
                it.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(SpmmError::Parse {
                        line: lineno,
                        detail: "bad value".into(),
                    })?
            }
        };
        let (r0, c0) = ((r - 1) as u32, (c - 1) as u32);
        coo.push(r0, c0, v);
        if symmetry == Symmetry::Symmetric && r0 != c0 {
            coo.push(c0, r0, v);
        }
        seen += 1;
    }
    let mut coo = coo.ok_or(SpmmError::Parse {
        line: 0,
        detail: "missing size line".into(),
    })?;
    if seen != declared_nnz {
        return Err(SpmmError::Parse {
            line: 0,
            detail: format!("declared {declared_nnz} entries but found {seen}"),
        });
    }
    coo.dedup_sum(false);
    Ok(coo)
}

/// Read a `.mtx` file into CSR.
pub fn read_csr_file(path: impl AsRef<Path>) -> Result<CsrMatrix> {
    let f = std::fs::File::open(path)?;
    let coo = read_coo(std::io::BufReader::new(f))?;
    Ok(CsrMatrix::from_coo(&coo))
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_csr<W: Write>(w: W, m: &CsrMatrix) -> Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for r in 0..m.nrows() {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            writeln!(w, "{} {} {}", r + 1, c + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Write a CSR matrix to a `.mtx` file.
pub fn write_csr_file(path: impl AsRef<Path>, m: &CsrMatrix) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_csr(f, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_real_general() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    2 3 3\n\
                    1 1 1.5\n\
                    2 3 -2\n\
                    1 2 0.25\n";
        let coo = read_coo(Cursor::new(text)).unwrap();
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_dense().get(0, 0), 1.5);
        assert_eq!(m.to_dense().get(1, 2), -2.0);
    }

    #[test]
    fn parse_pattern_symmetric() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let coo = read_coo(Cursor::new(text)).unwrap();
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 3, "off-diagonal mirrored, diagonal not");
        let d = m.to_dense();
        assert_eq!(d.get(1, 0), 1.0);
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(2, 2), 1.0);
    }

    #[test]
    fn rejects_bad_header_and_bounds() {
        assert!(read_coo(Cursor::new("%%NotMM\n1 1 0\n")).is_err());
        assert!(read_coo(Cursor::new(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"
        ))
        .is_err());
        assert!(read_coo(Cursor::new(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        ))
        .is_err());
    }

    #[test]
    fn roundtrip_through_text() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 3, 2.0);
        coo.push(2, 1, -1.0);
        coo.push(3, 3, 0.5);
        let m = CsrMatrix::from_coo(&coo);
        let mut buf = Vec::new();
        write_csr(&mut buf, &m).unwrap();
        let rt = CsrMatrix::from_coo(&read_coo(Cursor::new(buf)).unwrap());
        assert_eq!(m, rt);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("spmm_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.mtx");
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        let m = CsrMatrix::from_coo(&coo);
        write_csr_file(&path, &m).unwrap();
        let rt = read_csr_file(&path).unwrap();
        assert_eq!(m, rt);
    }
}
