//! Coordinate (COO) sparse format — the assembly representation every
//! generator and parser produces before conversion to CSR.

use spmm_common::{Result, SpmmError};

/// A sparse matrix in coordinate form: unordered `(row, col, value)`
/// triplets plus explicit dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    values: Vec<f32>,
}

impl CooMatrix {
    /// Empty matrix with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from parallel triplet arrays, validating bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if rows.len() != cols.len() || rows.len() != values.len() {
            return Err(SpmmError::Shape {
                context: format!(
                    "triplet arrays disagree: {} rows, {} cols, {} values",
                    rows.len(),
                    cols.len(),
                    values.len()
                ),
            });
        }
        if let Some(&r) = rows.iter().find(|&&r| r as usize >= nrows) {
            return Err(SpmmError::IndexOutOfBounds {
                what: "row",
                index: r as usize,
                bound: nrows,
            });
        }
        if let Some(&c) = cols.iter().find(|&&c| c as usize >= ncols) {
            return Err(SpmmError::IndexOutOfBounds {
                what: "column",
                index: c as usize,
                bound: ncols,
            });
        }
        Ok(CooMatrix {
            nrows,
            ncols,
            rows,
            cols,
            values,
        })
    }

    /// Append one entry. Panics (debug) on out-of-bounds indices; duplicate
    /// coordinates are allowed and summed by [`CooMatrix::dedup_sum`].
    #[inline]
    pub fn push(&mut self, row: u32, col: u32, value: f32) {
        debug_assert!((row as usize) < self.nrows && (col as usize) < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
    }

    /// Number of stored triplets (may include duplicates before dedup).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrow the triplet arrays `(rows, cols, values)`.
    pub fn triplets(&self) -> (&[u32], &[u32], &[f32]) {
        (&self.rows, &self.cols, &self.values)
    }

    /// Sort triplets by `(row, col)` and sum duplicates, dropping entries
    /// whose summed value is exactly zero only if `drop_zeros` is set
    /// (pattern semantics usually want them kept).
    pub fn dedup_sum(&mut self, drop_zeros: bool) {
        let n = self.nnz();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| {
            ((self.rows[i as usize] as u64) << 32) | self.cols[i as usize] as u64
        });
        let mut rows = Vec::with_capacity(n);
        let mut cols = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for &i in &order {
            let (r, c, v) = (
                self.rows[i as usize],
                self.cols[i as usize],
                self.values[i as usize],
            );
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *values.last_mut().unwrap() += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            values.push(v);
        }
        if drop_zeros {
            let keep: Vec<bool> = values.iter().map(|&v| v != 0.0).collect();
            let mut k = 0usize;
            rows.retain(|_| {
                k += 1;
                keep[k - 1]
            });
            k = 0;
            cols.retain(|_| {
                k += 1;
                keep[k - 1]
            });
            k = 0;
            values.retain(|_| {
                k += 1;
                keep[k - 1]
            });
        }
        self.rows = rows;
        self.cols = cols;
        self.values = values;
    }

    /// Make the pattern symmetric by adding the transpose of every
    /// off-diagonal entry (values mirrored), then deduplicating. Used to
    /// turn directed graph workloads into the undirected adjacency
    /// structure the reordering algorithms expect.
    pub fn symmetrize(&mut self) {
        assert_eq!(
            self.nrows, self.ncols,
            "symmetrize requires a square matrix"
        );
        let n = self.nnz();
        for i in 0..n {
            if self.rows[i] != self.cols[i] {
                self.rows.push(self.cols[i]);
                self.cols.push(self.rows[i]);
                self.values.push(self.values[i]);
            }
        }
        // Duplicate coordinates (already-symmetric pairs) would double the
        // value; keep the max-magnitude single value instead by averaging
        // mirrored sums. Simpler and sufficient: dedup by keeping first.
        self.dedup_keep_first();
    }

    /// Sort by `(row, col)` keeping only the first of each duplicate
    /// coordinate.
    pub fn dedup_keep_first(&mut self) {
        let n = self.nnz();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| {
            ((self.rows[i as usize] as u64) << 32) | self.cols[i as usize] as u64
        });
        let mut rows = Vec::with_capacity(n);
        let mut cols = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for &i in &order {
            let (r, c, v) = (
                self.rows[i as usize],
                self.cols[i as usize],
                self.values[i as usize],
            );
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            values.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.values = values;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_nnz() {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(2, 1, -2.0);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.nrows(), 3);
    }

    #[test]
    fn from_triplets_validates() {
        assert!(CooMatrix::from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0]).is_err());
        assert!(CooMatrix::from_triplets(2, 2, vec![2], vec![0], vec![1.0]).is_err());
        assert!(CooMatrix::from_triplets(2, 2, vec![1], vec![2], vec![1.0]).is_err());
        assert!(CooMatrix::from_triplets(2, 2, vec![1], vec![1], vec![1.0]).is_ok());
    }

    #[test]
    fn dedup_sums_duplicates() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 2.0);
        m.push(0, 0, 1.0);
        m.push(1, 1, 3.0);
        m.dedup_sum(false);
        let (r, c, v) = m.triplets();
        assert_eq!(r, &[0, 1]);
        assert_eq!(c, &[0, 1]);
        assert_eq!(v, &[1.0, 5.0]);
    }

    #[test]
    fn dedup_drops_zero_sums_when_asked() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, -1.0);
        m.push(1, 0, 2.0);
        m.dedup_sum(true);
        assert_eq!(m.nnz(), 1);
        let (r, _, _) = m.triplets();
        assert_eq!(r, &[1]);
    }

    #[test]
    fn symmetrize_mirrors_entries() {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 1, 1.0);
        m.push(2, 2, 4.0);
        m.symmetrize();
        let (r, c, _) = m.triplets();
        let pairs: Vec<(u32, u32)> = r.iter().copied().zip(c.iter().copied()).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 0)));
        assert!(pairs.contains(&(2, 2)));
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn symmetrize_does_not_duplicate_existing_pairs() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.0);
        m.push(1, 0, 1.0);
        m.symmetrize();
        assert_eq!(m.nnz(), 2);
    }
}
