//! # spmm-dist — sharded multi-node SpMM execution
//!
//! Executes one logical `C = A × B` across many workers: the
//! coordinator cuts `A` into nnz-balanced, window-aligned row blocks
//! (see [`partition`]), builds an independent [`PreparedKernel`] per
//! shard through the regular plan pipeline (optionally via the serving
//! engine's [`PlanCache`]), scatters `B`, runs the shards on a worker
//! pool, and gathers the row-block results — **bit-identical** to a
//! single-node `multiply_into`.
//!
//! Bit-identity across arbitrary row partitionings is a structural
//! property of the compute core: every output element accumulates
//! exactly its row's non-zero lanes in ascending column order
//! (zero-padded lanes are skipped), so cutting rows into blocks — or
//! reordering them differently per shard — cannot change a single bit.
//!
//! Transports ([`transport::Transport`]) price the data movement:
//! [`transport::ChannelTransport`] is the real-concurrency in-process
//! configuration; [`transport::ModeledTransport`] adds per-message
//! latency + bandwidth from `sim::arch` constants so scaling curves can
//! be reported for hardware the host doesn't have.
//!
//! Robustness follows the serving engine's semantics: a failing shard
//! is retried up to a bound, then surfaced as [`SpmmError::Shard`];
//! dropping the coordinator drains in-flight work before joining the
//! workers.

pub mod partition;
pub mod transport;
mod worker;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use spmm_balance::{ModelParams, PerfModel};
use spmm_common::{IsaTier, Result, SpmmError};
use spmm_delta::DeltaCsr;
use spmm_engine::{PlanCache, PlanKey, PlanStore, Priority};
use spmm_kernels::{
    AccConfig, DispatchDecision, DispatchPolicy, ExecutionPlan, KernelKind, MatrixFeatures,
    PreparedKernel, RepairReport,
};
use spmm_matrix::{CsrMatrix, DenseMatrix};
use spmm_sim::Arch;

pub use partition::{plan_shards, row_block, ShardPlan, ShardSpec};
pub use transport::{ChannelTransport, ModeledTransport, Route, Transport};

use worker::{Job, Operand, WorkerPool};

/// Builder for [`DistSpmm`] — mirrors `PreparedKernel::builder` plus
/// the distribution knobs.
pub struct DistBuilder<'a> {
    kind: KernelKind,
    a: &'a CsrMatrix,
    arch: Arch,
    feature_dim: usize,
    config: AccConfig,
    shards: usize,
    transport: Arc<dyn Transport>,
    cache: Option<Arc<PlanCache>>,
    plan_store: Option<Arc<PlanStore>>,
    max_retries: usize,
    decision: Option<DispatchDecision>,
    priority: Priority,
}

impl<'a> DistBuilder<'a> {
    /// Number of shards (workers). Default 2.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Target architecture (drives the shard cost model and per-shard
    /// balance planning).
    pub fn arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// Feature dimension the shard plans are specialized for.
    pub fn feature_dim(mut self, n: usize) -> Self {
        self.feature_dim = n;
        self
    }

    /// Acc ablation configuration.
    pub fn config(mut self, config: AccConfig) -> Self {
        self.config = config;
        self
    }

    /// Transport pricing the scatter/gather/halo movement. Default
    /// [`ChannelTransport`] (free in-process handoffs).
    pub fn transport(mut self, t: Arc<dyn Transport>) -> Self {
        self.transport = t;
        self
    }

    /// Resolve shard plans through a shared [`PlanCache`] (each shard's
    /// sub-matrix is keyed by its own content fingerprint, so repeated
    /// coordinators over the same operand reuse the builds).
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Resolve shard plans through a shared persistent [`PlanStore`]:
    /// a shard whose plan is already persisted receives the serialized
    /// bytes over the transport ([`Route::Plan`], priced like any other
    /// payload) instead of re-running preprocessing; a missing artifact
    /// builds locally and is written through; a *broken* artifact falls
    /// back to a local build (`dist.plan_fallbacks`).
    pub fn plan_store(mut self, store: Arc<PlanStore>) -> Self {
        self.plan_store = Some(store);
        self
    }

    /// How many times a failing shard execution is retried before the
    /// multiply fails with [`SpmmError::Shard`]. Default 1.
    pub fn max_retries(mut self, n: usize) -> Self {
        self.max_retries = n;
        self
    }

    /// Pin the hybrid dispatch decision instead of consulting the
    /// builtin policy — the sharded mirror of
    /// [`ExecutionPlan::build_auto_pinned`]. Only meaningful with
    /// [`KernelKind::Auto`]; `build` rejects it for concrete kernels.
    pub fn decision(mut self, decision: DispatchDecision) -> Self {
        self.decision = Some(decision);
        self
    }

    /// Serving-tier priority class every shard job of this coordinator
    /// carries (default [`Priority::Standard`]). Shard workers account
    /// executions under per-class `dist.jobs.<class>` trace counters,
    /// so a fleet mixing interactive coordinators with bulk backfills
    /// can see the split — and an engine-backed worker tier schedules
    /// the jobs under the same class the coordinator admitted.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Plan the shards, build every shard kernel, spawn the workers.
    pub fn build(self) -> Result<DistSpmm> {
        if self.shards == 0 {
            return Err(SpmmError::InvalidConfig("need at least one shard".into()));
        }
        let _span = spmm_trace::span("dist.build");
        let t0 = Instant::now();
        let spec = self.arch.spec();
        let model = PerfModel::new(ModelParams {
            feature_dim: self.feature_dim,
            bandwidth: spec.dram_bw_gbps * 1e9,
            flops: spec.tc_tf32_tflops * 1e12,
            num_sms: spec.num_sms,
        });
        let plan = plan_shards(self.a, self.shards, &model);

        // Hybrid dispatch under sharding: the coordinator decides ONCE
        // on the full operand and pins that decision for every shard
        // build, so a shard's local density can never flip a region's
        // kernel — the property that keeps sharded hybrid output
        // bit-identical to the single-node hybrid run. Pinned plans
        // bypass the plan cache and store: the decision is not part of
        // the `PlanKey`, and a cached entry built under a different
        // policy would silently change kernels.
        let pinned = if self.kind == KernelKind::Auto {
            Some(self.decision.unwrap_or_else(|| {
                DispatchPolicy::builtin().decide(&MatrixFeatures::of(self.a, self.feature_dim))
            }))
        } else if self.decision.is_some() {
            return Err(SpmmError::InvalidConfig(
                "a pinned dispatch decision requires KernelKind::Auto".into(),
            ));
        } else {
            None
        };

        let mut kernels: Vec<Option<Arc<PreparedKernel>>> = Vec::with_capacity(self.shards);
        let mut scatter_rows: Vec<u64> = Vec::with_capacity(self.shards);
        let mut halo_rows: Vec<Vec<u32>> = Vec::with_capacity(self.shards);
        let mut seen = vec![false; self.a.ncols()];
        let mut plans_shipped = 0u64;
        let mut plan_bytes = 0u64;
        let mut plan_ship_seconds = 0.0f64;
        let mut plan_fallbacks = 0u64;
        for (shard, s) in plan.shards.iter().enumerate() {
            if s.is_empty() {
                kernels.push(None);
                scatter_rows.push(0);
                halo_rows.push(Vec::new());
                continue;
            }
            let sub = row_block(self.a, s.row_lo, s.row_hi);
            let key = PlanKey {
                fingerprint: sub.content_fingerprint(),
                kind: self.kind,
                arch: self.arch,
                feature_dim: self.feature_dim,
                config: self.config,
            };
            // Acquire the shard kernel: ship a persisted plan when the
            // shared store has one, otherwise build locally (writing
            // through so the next coordinator ships instead of builds).
            let mut acquire = || -> Result<PreparedKernel> {
                let fresh = || {
                    PreparedKernel::builder(self.kind, &sub)
                        .arch(self.arch)
                        .feature_dim(self.feature_dim)
                        .config(self.config)
                        .build()
                };
                let Some(store) = &self.plan_store else {
                    return fresh();
                };
                match store.load(&key) {
                    Ok(Some(plan)) => {
                        let bytes = std::fs::metadata(store.path_for(&key))
                            .map(|m| m.len())
                            .unwrap_or(0);
                        plans_shipped += 1;
                        plan_bytes += bytes;
                        plan_ship_seconds += self.transport.transfer(Route::Plan { shard }, bytes);
                        Ok(PreparedKernel::from_plan(plan))
                    }
                    Ok(None) => {
                        let kernel = fresh()?;
                        let _ = store.save(&key, kernel.execution_plan());
                        Ok(kernel)
                    }
                    Err(_) => {
                        // Validation failure: the shard rebuilds rather
                        // than failing the coordinator, and the fresh
                        // plan replaces the broken artifact.
                        plan_fallbacks += 1;
                        let kernel = fresh()?;
                        let _ = store.save(&key, kernel.execution_plan());
                        Ok(kernel)
                    }
                }
            };
            let kernel = if let Some(decision) = pinned {
                Arc::new(PreparedKernel::from_plan(ExecutionPlan::build_auto_pinned(
                    &sub,
                    self.arch,
                    self.feature_dim,
                    self.config,
                    decision,
                )?))
            } else {
                match &self.cache {
                    Some(cache) => cache.get_or_build(key, acquire)?,
                    None => Arc::new(acquire()?),
                }
            };
            // Column coverage: how many B rows the shard references
            // (scatter payload), and which referenced rows live outside
            // the shard's own range (halo payload).
            seen.iter_mut().for_each(|x| *x = false);
            for &c in sub.col_idx() {
                seen[c as usize] = true;
            }
            let referenced = seen.iter().filter(|&&x| x).count() as u64;
            let halo: Vec<u32> = seen
                .iter()
                .enumerate()
                .filter(|&(c, &x)| x && !(s.row_lo..s.row_hi).contains(&c))
                .map(|(c, _)| c as u32)
                .collect();
            scatter_rows.push(referenced);
            halo_rows.push(halo);
            kernels.push(Some(kernel));
        }
        spmm_trace::counter_add("dist.shards", self.shards as u64);
        if plans_shipped > 0 {
            spmm_trace::counter_add("dist.plans_shipped", plans_shipped);
        }
        if plan_fallbacks > 0 {
            spmm_trace::counter_add("dist.plan_fallbacks", plan_fallbacks);
        }
        let shard_isa_tiers: Vec<Option<IsaTier>> = kernels
            .iter()
            .map(|k| k.as_ref().map(|k| k.execution_plan().isa_tier()))
            .collect();
        let pool = WorkerPool::spawn(&kernels);
        Ok(DistSpmm {
            nrows: self.a.nrows(),
            ncols: self.a.ncols(),
            feature_dim: self.feature_dim,
            kind: self.kind,
            arch: self.arch,
            transport: self.transport,
            max_retries: self.max_retries,
            priority: self.priority,
            plan,
            scatter_rows,
            halo_rows,
            shard_kernels: kernels,
            pool,
            epoch: AtomicU64::new(0),
            last_report: Mutex::new(None),
            halo_scratch: Mutex::new(Vec::new()),
            build_seconds: t0.elapsed().as_secs_f64(),
            plans_shipped,
            plan_bytes,
            plan_ship_seconds,
            plan_fallbacks,
            shard_isa_tiers,
        })
    }
}

/// One multiply's execution accounting.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct DistReport {
    /// Uncontended kernel seconds per shard (empty shards report 0).
    pub per_shard_busy: Vec<f64>,
    /// Modeled seconds scattering B rows to the shards (summed: the
    /// coordinator link serializes outbound messages).
    pub scatter_seconds: f64,
    /// Modeled seconds gathering result row blocks (summed, same link).
    pub gather_seconds: f64,
    /// Modeled seconds of shard-to-shard halo exchange (halo rounds
    /// only; 0 for plain multiplies).
    pub halo_seconds: f64,
    /// Modeled completion: scatter + slowest shard + gather (+ halo).
    /// On a host with one core per worker this is what wall-clock
    /// converges to; on this simulator it is the number scaling curves
    /// report.
    pub critical_path_seconds: f64,
    /// Wall-clock seconds of the whole round on the host.
    pub wall_seconds: f64,
    /// B bytes scattered (only rows each shard actually references).
    pub bytes_scattered: u64,
    /// Result bytes gathered.
    pub bytes_gathered: u64,
    /// Halo bytes exchanged (halo rounds only).
    pub bytes_halo: u64,
    /// Shard executions retried after a failure.
    pub retries: u64,
}

impl DistReport {
    /// Slowest shard's busy seconds.
    pub fn max_busy_seconds(&self) -> f64 {
        self.per_shard_busy.iter().cloned().fold(0.0, f64::max)
    }
}

/// Accounting of one [`DistSpmm::apply_delta`] round: which shards were
/// touched and the summed per-shard repair work.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct DistDeltaReport {
    /// Shards whose kernel was repaired (clean shards are skipped).
    pub shards_repaired: usize,
    /// Rows the delta touched, summed over repaired shards.
    pub rows_touched: usize,
    /// Overlay edge operations folded in, summed over repaired shards.
    pub edges_applied: usize,
    /// RowWindows across all repaired shard plans.
    pub windows_total: usize,
    /// RowWindows actually re-squeezed and re-converted.
    pub windows_rebuilt: usize,
    /// Wall seconds of the shard repairs (excludes pool respawn).
    pub repair_seconds: f64,
    /// Per shard: the repair report (`None` = empty or untouched shard).
    pub per_shard: Vec<Option<RepairReport>>,
}

/// Static description of a coordinator (for stats reporting).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DistStats {
    /// Shard ranges and per-shard modeled cost.
    pub shards: Vec<ShardSpec>,
    /// `max/mean` modeled cost over non-empty shards.
    pub imbalance: f64,
    /// Seconds spent planning + building every shard kernel.
    pub build_seconds: f64,
    /// Transport name ("channel", "modeled", ...).
    pub transport: &'static str,
    /// Shard plans served from the shared store (shipped, not rebuilt).
    pub plans_shipped: u64,
    /// Serialized plan bytes shipped over [`Route::Plan`].
    pub plan_bytes: u64,
    /// Modeled seconds the transport charged for the shipped plans.
    pub plan_ship_seconds: f64,
    /// Broken store artifacts that degraded to a local shard build.
    pub plan_fallbacks: u64,
    /// Per shard: the SIMD tier its kernel bound at build or load
    /// (`None` = empty shard, no kernel). Shipped plans re-bind to the
    /// executing host's tier at load, so these reflect where the shards
    /// *run*, not where their plans were built.
    pub shard_isa_tiers: Vec<Option<IsaTier>>,
}

/// A sharded SpMM coordinator bound to one operand.
///
/// ```
/// use spmm_dist::DistSpmm;
/// use spmm_kernels::KernelKind;
/// use spmm_matrix::{gen, DenseMatrix};
///
/// let a = gen::uniform_random(256, 6.0, 1);
/// let dist = DistSpmm::builder(KernelKind::AccSpmm, &a)
///     .shards(4)
///     .feature_dim(16)
///     .build()
///     .unwrap();
/// let b = DenseMatrix::random(256, 16, 2);
/// let c = dist.multiply(&b).unwrap();
/// assert_eq!(c.nrows(), 256);
/// ```
pub struct DistSpmm {
    nrows: usize,
    ncols: usize,
    feature_dim: usize,
    kind: KernelKind,
    arch: Arch,
    transport: Arc<dyn Transport>,
    max_retries: usize,
    priority: Priority,
    plan: ShardPlan,
    /// Per shard: how many B rows it references (scatter payload rows).
    scatter_rows: Vec<u64>,
    /// Per shard: referenced rows *outside* its own range (halo rows).
    halo_rows: Vec<Vec<u32>>,
    /// The shard kernels the pool's workers run (`None` = empty shard).
    /// Retained so dynamic-graph deltas can repair a subset and respawn.
    shard_kernels: Vec<Option<Arc<PreparedKernel>>>,
    pool: WorkerPool,
    epoch: AtomicU64,
    last_report: Mutex<Option<DistReport>>,
    /// Reusable per-shard halo assembly buffers.
    halo_scratch: Mutex<Vec<Option<Box<DenseMatrix>>>>,
    build_seconds: f64,
    plans_shipped: u64,
    plan_bytes: u64,
    plan_ship_seconds: f64,
    plan_fallbacks: u64,
    /// Per shard: the SIMD tier its kernel bound (`None` = empty shard).
    shard_isa_tiers: Vec<Option<IsaTier>>,
}

impl DistSpmm {
    /// Start building a coordinator for `kind` over operand `a`.
    pub fn builder(kind: KernelKind, a: &CsrMatrix) -> DistBuilder<'_> {
        DistBuilder {
            kind,
            a,
            arch: Arch::A800,
            feature_dim: 128,
            config: AccConfig::full(),
            shards: 2,
            transport: Arc::new(ChannelTransport),
            cache: None,
            plan_store: None,
            max_retries: 1,
            decision: None,
            priority: Priority::Standard,
        }
    }

    /// Rows of the operand (and of every multiply's output).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the operand.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.plan.shards.len()
    }

    /// The shard ranges.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.plan.shards
    }

    /// Kernel strategy every shard runs.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Architecture the shard plans target.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Feature dimension the shard plans are specialized for.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Static coordinator stats.
    pub fn stats(&self) -> DistStats {
        DistStats {
            shards: self.plan.shards.clone(),
            imbalance: self.plan.imbalance,
            build_seconds: self.build_seconds,
            transport: self.transport.name(),
            plans_shipped: self.plans_shipped,
            plan_bytes: self.plan_bytes,
            plan_ship_seconds: self.plan_ship_seconds,
            plan_fallbacks: self.plan_fallbacks,
            shard_isa_tiers: self.shard_isa_tiers.clone(),
        }
    }

    /// Accounting of the most recent multiply (or halo round).
    pub fn last_report(&self) -> Option<DistReport> {
        self.last_report.lock().unwrap().clone()
    }

    /// Sharded `C = A × B`. Bit-identical to the single-node kernel.
    pub fn multiply(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.nrows, b.ncols());
        self.multiply_into(b, &mut out)?;
        Ok(out)
    }

    /// [`DistSpmm::multiply`] into a caller-provided output.
    pub fn multiply_into(&self, b: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        self.run_multiply(b, out, false).map(|_| ())
    }

    /// [`DistSpmm::multiply`] with shards dispatched one at a time so
    /// each shard's busy seconds are measured uncontended (on a host
    /// with fewer cores than shards, concurrent dispatch time-slices
    /// the workers and inflates every per-shard measurement). The
    /// returned report's `critical_path_seconds` is the modeled
    /// completion a one-worker-per-node deployment would see.
    pub fn multiply_profiled(&self, b: &DenseMatrix) -> Result<(DenseMatrix, DistReport)> {
        let mut out = DenseMatrix::zeros(self.nrows, b.ncols());
        let report = self.run_multiply(b, &mut out, true)?;
        Ok((out, report))
    }

    fn check_b(&self, b: &DenseMatrix) -> Result<()> {
        if b.nrows() != self.ncols {
            return Err(SpmmError::shape(format!(
                "A is {}x{}, B is {}x{}",
                self.nrows,
                self.ncols,
                b.nrows(),
                b.ncols()
            )));
        }
        Ok(())
    }

    fn run_multiply(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        sequential: bool,
    ) -> Result<DistReport> {
        let _span = spmm_trace::span("dist.multiply");
        spmm_trace::counter_add("dist.multiplies", 1);
        self.check_b(b)?;
        if out.nrows() != self.nrows || out.ncols() != b.ncols() {
            return Err(SpmmError::shape(format!(
                "output is {}x{}, expected {}x{}",
                out.nrows(),
                out.ncols(),
                self.nrows,
                b.ncols()
            )));
        }
        let t_wall = Instant::now();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(b.clone());
        let elem = b.ncols() as u64 * 4;

        let mut report = DistReport {
            per_shard_busy: vec![0.0; self.num_shards()],
            ..DistReport::default()
        };
        // Scatter accounting: each shard receives only the B rows it
        // references; the coordinator link serializes the messages.
        {
            let _s = spmm_trace::span("dist.scatter");
            for s in &self.plan.shards {
                if s.is_empty() {
                    continue;
                }
                let bytes = self.scatter_rows[s.id] * elem;
                report.bytes_scattered += bytes;
                report.scatter_seconds += self
                    .transport
                    .transfer(Route::Scatter { shard: s.id }, bytes);
            }
            spmm_trace::counter_add("dist.bytes_scattered", report.bytes_scattered);
        }

        let shard_ids: Vec<usize> = self
            .plan
            .shards
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| s.id)
            .collect();
        let mut outs: Vec<Option<DenseMatrix>> = (0..self.num_shards()).map(|_| None).collect();
        if sequential {
            for &id in &shard_ids {
                self.submit_shared(id, epoch, &shared)?;
                self.collect(epoch, 1, &shared, &mut outs, &mut report)?;
            }
        } else {
            for &id in &shard_ids {
                self.submit_shared(id, epoch, &shared)?;
            }
            self.collect(epoch, shard_ids.len(), &shared, &mut outs, &mut report)?;
        }

        // Gather: copy each shard's rows into place; empty shards own
        // no rows but their (zero-row) ranges still cost nothing.
        {
            let _s = spmm_trace::span("dist.gather");
            for s in &self.plan.shards {
                match outs[s.id].take() {
                    Some(shard_out) => {
                        for r in 0..s.rows() {
                            out.row_mut(s.row_lo + r).copy_from_slice(shard_out.row(r));
                        }
                        let bytes = s.rows() as u64 * elem;
                        report.bytes_gathered += bytes;
                        report.gather_seconds += self
                            .transport
                            .transfer(Route::Gather { shard: s.id }, bytes);
                    }
                    None => debug_assert!(s.is_empty(), "non-empty shard produced no output"),
                }
            }
            spmm_trace::counter_add("dist.bytes_gathered", report.bytes_gathered);
        }

        report.wall_seconds = t_wall.elapsed().as_secs_f64();
        report.critical_path_seconds =
            report.scatter_seconds + report.max_busy_seconds() + report.gather_seconds;
        *self.last_report.lock().unwrap() = Some(report.clone());
        Ok(report)
    }

    fn submit_shared(&self, shard: usize, epoch: u64, b: &Arc<DenseMatrix>) -> Result<()> {
        self.pool.submit(
            shard,
            Job {
                epoch,
                b: Operand::Shared(Arc::clone(b)),
                priority: self.priority,
            },
        )
    }

    /// Receive `pending` outcomes for `epoch`, retrying failed shards
    /// up to the bound. `shared` reissues shared-operand jobs; owned
    /// operands come back with the failed outcome.
    fn collect(
        &self,
        epoch: u64,
        mut pending: usize,
        shared: &Arc<DenseMatrix>,
        outs: &mut [Option<DenseMatrix>],
        report: &mut DistReport,
    ) -> Result<()> {
        let mut attempts = vec![0usize; self.num_shards()];
        let mut terminal: Option<SpmmError> = None;
        while pending > 0 {
            let o = self.pool.recv()?;
            if o.epoch != epoch {
                continue; // stale outcome from an abandoned round
            }
            match o.result {
                Ok(shard_out) => {
                    report.per_shard_busy[o.shard] = o.busy_seconds;
                    outs[o.shard] = Some(shard_out);
                    pending -= 1;
                }
                Err(e) => {
                    attempts[o.shard] += 1;
                    if attempts[o.shard] <= self.max_retries {
                        spmm_trace::counter_add("dist.retries", 1);
                        report.retries += 1;
                        let operand = match o.operand_back {
                            Some(owned) => Operand::Owned(owned),
                            None => Operand::Shared(Arc::clone(shared)),
                        };
                        self.pool.submit(
                            o.shard,
                            Job {
                                epoch,
                                b: operand,
                                priority: self.priority,
                            },
                        )?;
                    } else {
                        spmm_trace::counter_add("dist.shard_failures", 1);
                        if terminal.is_none() {
                            terminal = Some(SpmmError::Shard {
                                shard: o.shard,
                                retries: self.max_retries,
                                cause: Box::new(e),
                            });
                        }
                        pending -= 1;
                    }
                }
            }
        }
        match terminal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Split a full-height dense matrix into per-shard row blocks
    /// (empty shards get zero-row matrices).
    pub fn split_rows(&self, x: &DenseMatrix) -> Result<Vec<DenseMatrix>> {
        if x.nrows() != self.nrows {
            return Err(SpmmError::shape(format!(
                "expected {} rows, got {}",
                self.nrows,
                x.nrows()
            )));
        }
        Ok(self
            .plan
            .shards
            .iter()
            .map(|s| {
                let mut part = DenseMatrix::zeros(s.rows(), x.ncols());
                for r in 0..s.rows() {
                    part.row_mut(r).copy_from_slice(x.row(s.row_lo + r));
                }
                part
            })
            .collect())
    }

    /// Reassemble per-shard row blocks into a full-height matrix.
    pub fn concat_rows(&self, parts: &[DenseMatrix]) -> Result<DenseMatrix> {
        self.check_parts(parts)?;
        let ncols = parts
            .iter()
            .map(DenseMatrix::ncols)
            .max()
            .unwrap_or(self.feature_dim);
        let mut out = DenseMatrix::zeros(self.nrows, ncols);
        for (s, part) in self.plan.shards.iter().zip(parts) {
            for r in 0..s.rows() {
                out.row_mut(s.row_lo + r).copy_from_slice(part.row(r));
            }
        }
        Ok(out)
    }

    fn check_parts(&self, parts: &[DenseMatrix]) -> Result<()> {
        if parts.len() != self.num_shards() {
            return Err(SpmmError::shape(format!(
                "expected {} shard parts, got {}",
                self.num_shards(),
                parts.len()
            )));
        }
        for (s, part) in self.plan.shards.iter().zip(parts) {
            if part.nrows() != s.rows() {
                return Err(SpmmError::shape(format!(
                    "shard {} part has {} rows, expected {}",
                    s.id,
                    part.nrows(),
                    s.rows()
                )));
            }
        }
        Ok(())
    }

    /// One sharded propagation round with **halo exchange**: `parts`
    /// are the per-shard row blocks of a full feature matrix `H`; the
    /// result is the per-shard row blocks of `A × H`. Instead of
    /// re-gathering `H` on the coordinator, each shard's operand is
    /// assembled from its own rows plus only the *boundary* rows other
    /// shards own that its columns reference — the layer-to-layer
    /// traffic a multi-layer sharded GCN actually needs.
    ///
    /// Requires a square operand (the output of one round feeds the
    /// next). Bit-identical to gathering `H` and calling
    /// [`DistSpmm::multiply`].
    pub fn propagate_halo(&self, parts: &[DenseMatrix]) -> Result<Vec<DenseMatrix>> {
        let _span = spmm_trace::span("dist.propagate_halo");
        if self.nrows != self.ncols {
            return Err(SpmmError::shape(format!(
                "halo propagation needs a square operand, got {}x{}",
                self.nrows, self.ncols
            )));
        }
        self.check_parts(parts)?;
        let d = parts
            .iter()
            .map(DenseMatrix::ncols)
            .max()
            .unwrap_or(self.feature_dim);
        for part in parts {
            if part.nrows() > 0 && part.ncols() != d {
                return Err(SpmmError::shape(
                    "halo parts must share one feature dimension",
                ));
            }
        }
        let t_wall = Instant::now();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        let elem = d as u64 * 4;
        let mut report = DistReport {
            per_shard_busy: vec![0.0; self.num_shards()],
            ..DistReport::default()
        };

        // Assemble each shard's operand: own rows in place, halo rows
        // copied from their owners; priced one message per (from, to).
        let mut scratch = self.halo_scratch.lock().unwrap();
        scratch.resize_with(self.num_shards(), || None);
        let owner_of = |row: usize| -> usize {
            self.plan
                .shards
                .iter()
                .position(|s| (s.row_lo..s.row_hi).contains(&row))
                .expect("shard ranges tile the row space")
        };
        let mut halo_row_total = 0u64;
        for s in &self.plan.shards {
            if s.is_empty() {
                continue;
            }
            let mut buf = match scratch[s.id].take() {
                Some(b) if b.nrows() == self.ncols && b.ncols() == d => b,
                _ => Box::new(DenseMatrix::zeros(self.ncols, d)),
            };
            for r in 0..s.rows() {
                buf.row_mut(s.row_lo + r)
                    .copy_from_slice(parts[s.id].row(r));
            }
            let mut from_counts = vec![0u64; self.num_shards()];
            for &h in &self.halo_rows[s.id] {
                let owner = owner_of(h as usize);
                buf.row_mut(h as usize)
                    .copy_from_slice(parts[owner].row(h as usize - self.plan.shards[owner].row_lo));
                from_counts[owner] += 1;
            }
            for (from, &rows) in from_counts.iter().enumerate() {
                if rows == 0 {
                    continue;
                }
                let bytes = rows * elem;
                report.bytes_halo += bytes;
                report.halo_seconds += self
                    .transport
                    .transfer(Route::Halo { from, to: s.id }, bytes);
                halo_row_total += rows;
            }
            self.pool.submit(
                s.id,
                Job {
                    epoch,
                    b: Operand::Owned(buf),
                    priority: self.priority,
                },
            )?;
        }
        spmm_trace::counter_add("dist.halo_rows", halo_row_total);
        spmm_trace::counter_add("dist.bytes_halo", report.bytes_halo);

        let pending = self.plan.shards.iter().filter(|s| !s.is_empty()).count();
        let mut outs: Vec<Option<DenseMatrix>> = (0..self.num_shards()).map(|_| None).collect();
        // Shared fallback never fires for owned jobs (operands travel
        // back with failures), but collect() needs one to satisfy its
        // signature cheaply.
        let dummy = Arc::new(DenseMatrix::zeros(0, 0));
        let collected = self.collect(epoch, pending, &dummy, &mut outs, &mut report);
        // Stash operand buffers for the next round before propagating
        // any failure.
        collected?;

        let result: Vec<DenseMatrix> = self
            .plan
            .shards
            .iter()
            .map(|s| match outs[s.id].take() {
                Some(o) => o,
                None => DenseMatrix::zeros(0, d),
            })
            .collect();
        report.wall_seconds = t_wall.elapsed().as_secs_f64();
        report.critical_path_seconds = report.halo_seconds + report.max_busy_seconds();
        *self.last_report.lock().unwrap() = Some(report.clone());
        Ok(result)
    }

    /// Total halo rows a propagation round moves, vs the rows a full
    /// re-gather would move — the traffic saving halo exchange exists
    /// for.
    pub fn halo_traffic_rows(&self) -> (u64, u64) {
        let halo: u64 = self.halo_rows.iter().map(|h| h.len() as u64).sum();
        let regather: u64 = self
            .plan
            .shards
            .iter()
            .filter(|s| !s.is_empty())
            .map(|_| self.nrows as u64)
            .sum();
        (halo, regather)
    }

    /// Apply a dynamic-graph edge delta **shard-locally**: the global
    /// overlay (based on the operand this coordinator was built from,
    /// or the compacted result of the previous delta) is sliced per
    /// shard with [`DeltaCsr::sub_range`]; each touched shard's plan is
    /// repaired in place via [`ExecutionPlan::repair`] — reusing its
    /// reorder permutation and untouched format windows — while clean
    /// shards keep their kernels untouched. Halo and scatter coverage
    /// are recomputed from the repaired operands (churn can add or drop
    /// boundary columns), and the worker pool is respawned on the new
    /// kernel set. Subsequent multiplies are bit-identical to a
    /// coordinator built from scratch on `delta.compact()`.
    pub fn apply_delta(&mut self, delta: &DeltaCsr) -> Result<DistDeltaReport> {
        let _span = spmm_trace::span("dist.apply_delta");
        if delta.nrows() != self.nrows || delta.ncols() != self.ncols {
            return Err(SpmmError::shape(format!(
                "delta base is {}x{}, coordinator operand is {}x{}",
                delta.nrows(),
                delta.ncols(),
                self.nrows,
                self.ncols
            )));
        }
        let mut report = DistDeltaReport {
            per_shard: vec![None; self.num_shards()],
            ..DistDeltaReport::default()
        };
        if delta.is_clean() {
            return Ok(report);
        }
        for s in &self.plan.shards {
            if s.is_empty() {
                continue;
            }
            let sub = delta.sub_range(s.row_lo, s.row_hi);
            if sub.is_clean() {
                continue;
            }
            let old = self.shard_kernels[s.id]
                .as_ref()
                .expect("non-empty shard has a kernel");
            let (repaired, rep) = old.execution_plan().repair(&sub)?;
            // Column coverage can change under churn: recompute this
            // shard's scatter payload and halo rows from the repaired
            // operand (row permutation never changes the column set).
            let mut seen = vec![false; self.ncols];
            for &c in repaired.csr().col_idx() {
                seen[c as usize] = true;
            }
            self.scatter_rows[s.id] = seen.iter().filter(|&&x| x).count() as u64;
            self.halo_rows[s.id] = seen
                .iter()
                .enumerate()
                .filter(|&(c, &x)| x && !(s.row_lo..s.row_hi).contains(&c))
                .map(|(c, _)| c as u32)
                .collect();
            self.shard_kernels[s.id] = Some(Arc::new(PreparedKernel::from_plan(repaired)));
            report.shards_repaired += 1;
            report.rows_touched += rep.rows_touched;
            report.edges_applied += rep.edges_applied;
            report.windows_total += rep.windows_total;
            report.windows_rebuilt += rep.windows_rebuilt;
            report.repair_seconds += rep.repair_seconds;
            report.per_shard[s.id] = Some(rep);
        }
        if report.shards_repaired > 0 {
            // Workers pin their kernel at spawn: swap the pool for one
            // over the repaired kernel set (dropping the old pool drains
            // and joins its workers) and discard halo assembly buffers.
            self.pool = WorkerPool::spawn(&self.shard_kernels);
            self.halo_scratch.lock().unwrap().clear();
            spmm_trace::counter_add("dist.deltas_applied", 1);
            spmm_trace::counter_add("dist.delta_shards_repaired", report.shards_repaired as u64);
        }
        Ok(report)
    }

    /// Test hook: make `shard` fail its next `times` executions with a
    /// synthetic error, exercising retry and failure surfacing.
    #[doc(hidden)]
    pub fn inject_shard_failures(&self, shard: usize, times: u32) {
        self.pool.inject_failures(shard, times);
    }

    /// Jobs fully processed by the workers since construction (drain
    /// observability; includes retried attempts).
    pub fn jobs_processed(&self) -> u64 {
        self.pool.processed()
    }
}

impl std::fmt::Debug for DistSpmm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistSpmm")
            .field("kind", &self.kind)
            .field("shards", &self.num_shards())
            .field("nrows", &self.nrows)
            .field("transport", &self.transport.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_kernels::Workspace;
    use spmm_matrix::gen;

    fn reference(m: &CsrMatrix, kind: KernelKind, b: &DenseMatrix) -> DenseMatrix {
        let k = PreparedKernel::builder(kind, m)
            .feature_dim(b.ncols())
            .build()
            .unwrap();
        let mut out = DenseMatrix::zeros(m.nrows(), b.ncols());
        let mut ws = Workspace::for_plan(k.execution_plan());
        k.execute_into(b, &mut out, &mut ws).unwrap();
        out
    }

    #[test]
    fn sharded_multiply_is_bit_identical() {
        let m = gen::clustered(
            gen::ClusteredConfig {
                n: 512,
                cluster_size: 64,
                intra_deg: 10.0,
                inter_deg: 2.0,
                ..Default::default()
            },
            3,
        );
        let b = DenseMatrix::random(m.ncols(), 16, 7);
        for kind in [
            KernelKind::AccSpmm,
            KernelKind::CusparseLike,
            KernelKind::Auto,
        ] {
            let expect = reference(&m, kind, &b);
            for shards in [1, 3, 4] {
                let dist = DistSpmm::builder(kind, &m)
                    .shards(shards)
                    .feature_dim(16)
                    .build()
                    .unwrap();
                let got = dist.multiply(&b).unwrap();
                assert_eq!(
                    got.as_slice()
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<_>>(),
                    expect
                        .as_slice()
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<_>>(),
                    "{kind:?} x{shards}"
                );
            }
        }
    }

    /// 64 dense rows (degree 32) over a 448-row degree-1 tail: high
    /// row-length variance at low AvgL, which the committed policy maps
    /// to a genuine hybrid split (TC head, scalar tail).
    fn skewed_matrix() -> CsrMatrix {
        let n = 512;
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..n {
            let mut cols: Vec<u32> = if r < 64 {
                (0..32).map(|j| ((r + j * 7) % n) as u32).collect()
            } else {
                vec![r as u32]
            };
            cols.sort_unstable();
            for c in cols {
                col_idx.push(c);
                values.push(1.0 + (r as f32) * 0.001 + (c as f32) * 0.0001);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::new(n, n, row_ptr, col_idx, values).unwrap()
    }

    #[test]
    fn hybrid_auto_sharding_is_bit_identical() {
        // Pin a hybrid split (the learned policy legitimately prefers a
        // single kernel on matrices like this one) so the test always
        // exercises cross-kernel stitching under sharding.
        let decision = DispatchDecision::Hybrid {
            dense: KernelKind::AccSpmm,
            sparse: KernelKind::CusparseLike,
            threshold: 8.0,
        };
        let m = skewed_matrix();
        let b = DenseMatrix::random(m.ncols(), 16, 11);
        // The skew must actually trigger a hybrid split, otherwise this
        // test silently degenerates to the single-kernel case.
        let probe = spmm_kernels::ExecutionPlan::build_auto_pinned(
            &m,
            Arch::A800,
            16,
            AccConfig::full(),
            decision,
        )
        .unwrap();
        let kinds: std::collections::BTreeSet<_> = probe
            .regions()
            .expect("Auto plan has regions")
            .iter()
            .map(|r| format!("{:?}", r.kind))
            .collect();
        assert!(kinds.len() >= 2, "expected a hybrid split, got {kinds:?}");

        let expect = {
            let k = PreparedKernel::from_plan(probe);
            let mut out = DenseMatrix::zeros(m.nrows(), b.ncols());
            let mut ws = Workspace::for_plan(k.execution_plan());
            k.execute_into(&b, &mut out, &mut ws).unwrap();
            out
        };
        for shards in [1, 2, 4] {
            let dist = DistSpmm::builder(KernelKind::Auto, &m)
                .shards(shards)
                .feature_dim(16)
                .decision(decision)
                .build()
                .unwrap();
            let got = dist.multiply(&b).unwrap();
            assert_eq!(
                got.as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                expect
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "Auto x{shards}"
            );
        }
    }

    #[test]
    fn pinned_decision_requires_auto() {
        let m = skewed_matrix();
        let err = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .decision(DispatchDecision::Single(KernelKind::AccSpmm))
            .build();
        assert!(
            err.is_err(),
            "pinning a decision on a concrete kernel must fail"
        );
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let m = gen::uniform_random(128, 5.0, 1);
        let b = DenseMatrix::random(128, 8, 2);
        let dist = DistSpmm::builder(KernelKind::CusparseLike, &m)
            .shards(2)
            .feature_dim(8)
            .max_retries(2)
            .build()
            .unwrap();
        dist.inject_shard_failures(1, 2);
        let expect = reference(&m, KernelKind::CusparseLike, &b);
        let got = dist.multiply(&b).unwrap();
        assert_eq!(got.as_slice(), expect.as_slice());
        assert_eq!(dist.last_report().unwrap().retries, 2);
    }

    #[test]
    fn exhausted_retries_surface_the_failing_shard() {
        let m = gen::uniform_random(128, 5.0, 1);
        let b = DenseMatrix::random(128, 8, 2);
        let dist = DistSpmm::builder(KernelKind::CusparseLike, &m)
            .shards(2)
            .feature_dim(8)
            .max_retries(1)
            .build()
            .unwrap();
        // 3 injected failures: attempt + retry exhaust the first
        // multiply (terminal), the third fails once more on the next
        // multiply and the retry then succeeds.
        dist.inject_shard_failures(1, 3);
        match dist.multiply(&b) {
            Err(SpmmError::Shard { shard, retries, .. }) => {
                assert_eq!(shard, 1);
                assert_eq!(retries, 1);
            }
            other => panic!("expected shard failure, got {other:?}"),
        }
        // The coordinator stays usable once the injection is spent.
        assert!(dist.multiply(&b).is_ok());
    }

    #[test]
    fn modeled_transport_prices_the_critical_path() {
        let m = gen::uniform_random(256, 6.0, 4);
        let b = DenseMatrix::random(256, 16, 5);
        let dist = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(4)
            .feature_dim(16)
            .transport(Arc::new(ModeledTransport::for_arch(Arch::A800)))
            .build()
            .unwrap();
        let (_, report) = dist.multiply_profiled(&b).unwrap();
        assert!(report.scatter_seconds > 0.0);
        assert!(report.gather_seconds > 0.0);
        assert!(report.bytes_scattered > 0 && report.bytes_gathered > 0);
        assert!(
            report.critical_path_seconds
                >= report.scatter_seconds + report.max_busy_seconds() + report.gather_seconds
                    - 1e-12
        );
        // Gather moves exactly the output matrix.
        assert_eq!(report.bytes_gathered, (256 * 16 * 4) as u64);
    }

    #[test]
    fn halo_propagation_matches_full_multiply_and_moves_less() {
        // Contiguous clusters (no shuffle): row-block shards align with
        // communities, so boundary rows are few.
        let m = gen::clustered(
            gen::ClusteredConfig {
                n: 512,
                cluster_size: 64,
                intra_deg: 12.0,
                inter_deg: 1.0,
                shuffle: false,
                ..Default::default()
            },
            9,
        );
        let h = DenseMatrix::random(512, 8, 3);
        let dist = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(4)
            .feature_dim(8)
            .build()
            .unwrap();
        let expect = dist.multiply(&h).unwrap();
        let parts = dist.split_rows(&h).unwrap();
        let out_parts = dist.propagate_halo(&parts).unwrap();
        let got = dist.concat_rows(&out_parts).unwrap();
        assert_eq!(got.as_slice(), expect.as_slice());
        // Clustered matrix: boundary rows are a small fraction of a
        // full re-gather.
        let (halo, regather) = dist.halo_traffic_rows();
        assert!(
            halo < regather / 2,
            "halo {halo} rows vs re-gather {regather} rows"
        );
    }

    #[test]
    fn plan_cache_is_reused_across_coordinators() {
        let m = gen::uniform_random(256, 5.0, 8);
        let cache = Arc::new(PlanCache::new(16));
        for _ in 0..2 {
            let _ = DistSpmm::builder(KernelKind::AccSpmm, &m)
                .shards(3)
                .feature_dim(8)
                .plan_cache(Arc::clone(&cache))
                .build()
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.builds, 3, "3 shard plans built once each");
        assert!(stats.hits >= 3, "second coordinator hits the cache");
    }

    #[test]
    fn empty_shards_are_tolerated() {
        let m = gen::uniform_random(16, 3.0, 2); // 2 windows, 7 shards
        let b = DenseMatrix::random(16, 4, 1);
        let dist = DistSpmm::builder(KernelKind::SputnikLike, &m)
            .shards(7)
            .feature_dim(4)
            .build()
            .unwrap();
        assert!(dist.shards().iter().any(|s| s.is_empty()));
        let expect = reference(&m, KernelKind::SputnikLike, &b);
        let got = dist.multiply(&b).unwrap();
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    fn shared_store(tag: &str) -> Arc<PlanStore> {
        let dir =
            std::env::temp_dir().join(format!("spmm-dist-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(PlanStore::open(dir).unwrap())
    }

    #[test]
    fn second_coordinator_ships_plans_instead_of_rebuilding() {
        let store = shared_store("ship");
        let m = gen::uniform_random(256, 6.0, 21);
        let b = DenseMatrix::random(256, 16, 6);
        let expect = reference(&m, KernelKind::AccSpmm, &b);

        // First coordinator: cold store, local builds, write-through.
        let first = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(3)
            .feature_dim(16)
            .plan_store(Arc::clone(&store))
            .build()
            .unwrap();
        assert_eq!(first.stats().plans_shipped, 0);
        assert!(!store.is_empty());

        // Second coordinator: every non-empty shard ships its plan,
        // priced in bytes by the modeled link.
        let second = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(3)
            .feature_dim(16)
            .transport(Arc::new(ModeledTransport::for_arch(Arch::A800)))
            .plan_store(Arc::clone(&store))
            .build()
            .unwrap();
        let stats = second.stats();
        let nonempty = second.shards().iter().filter(|s| !s.is_empty()).count() as u64;
        assert_eq!(stats.plans_shipped, nonempty);
        assert!(stats.plan_bytes > 0, "shipping is priced in bytes");
        assert!(
            stats.plan_ship_seconds > 0.0,
            "the modeled transport charges for plan movement"
        );
        assert_eq!(stats.plan_fallbacks, 0);

        // And the shipped plans compute the same bits.
        let got = second.multiply(&b).unwrap();
        assert_eq!(got.as_slice(), expect.as_slice());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn broken_store_artifacts_fall_back_to_local_shard_builds() {
        let store = shared_store("fallback");
        let m = gen::uniform_random(192, 5.0, 22);
        let b = DenseMatrix::random(192, 8, 7);
        let expect = reference(&m, KernelKind::AccSpmm, &b);

        DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(2)
            .feature_dim(8)
            .plan_store(Arc::clone(&store))
            .build()
            .unwrap();
        for entry in std::fs::read_dir(store.dir()).unwrap() {
            std::fs::write(entry.unwrap().path(), b"garbage").unwrap();
        }

        let dist = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(2)
            .feature_dim(8)
            .plan_store(Arc::clone(&store))
            .build()
            .unwrap();
        let stats = dist.stats();
        assert_eq!(stats.plans_shipped, 0);
        assert!(stats.plan_fallbacks >= 1, "broken artifacts are announced");
        let got = dist.multiply(&b).unwrap();
        assert_eq!(got.as_slice(), expect.as_slice());

        // The fallback builds repaired the store: a third coordinator
        // ships again.
        let third = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(2)
            .feature_dim(8)
            .plan_store(Arc::clone(&store))
            .build()
            .unwrap();
        assert!(third.stats().plans_shipped >= 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn shard_jobs_carry_the_coordinator_priority_class() {
        let m = gen::uniform_random(128, 5.0, 31);
        let b = DenseMatrix::random(128, 8, 5);
        let dist = DistSpmm::builder(KernelKind::CusparseLike, &m)
            .shards(3)
            .feature_dim(8)
            .priority(Priority::Interactive)
            .build()
            .unwrap();
        // Trace counters are process-global (other tests add to them)
        // and off by default, so enable recording and assert on the
        // delta across this multiply only.
        spmm_trace::enable();
        let before = spmm_trace::snapshot().counter("dist.jobs.interactive");
        dist.multiply(&b).unwrap();
        let after = spmm_trace::snapshot().counter("dist.jobs.interactive");
        assert!(
            after >= before + 3,
            "3 shard jobs labeled interactive (before {before}, after {after})"
        );
    }

    fn bits(m: &DenseMatrix) -> Vec<u32> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    /// Shard-local churn: upserts across several shards (including
    /// special payloads), an insert-then-delete that nets out, and a
    /// base-edge delete.
    fn churn(m: &CsrMatrix, seed: usize) -> DeltaCsr {
        let mut delta = DeltaCsr::new(m.clone());
        let n = m.nrows();
        let payloads = [1.5f32, -0.0, 1e-42, f32::INFINITY, -3.25];
        for (i, &v) in payloads.iter().enumerate() {
            let r = ((seed + 37 * i * i + 11 * i) * 97) % n;
            let c = ((seed + 53 * i + 7) * 89) % m.ncols();
            delta.upsert(r as u32, c as u32, v).unwrap();
        }
        let r = (seed * 131 + 5) % n;
        delta.upsert(r as u32, 3, 42.0).unwrap();
        assert!(delta.delete(r as u32, 3), "inserted edge deletes");
        let victim = (0..n).find(|&r| m.row_ptr()[r + 1] > m.row_ptr()[r]);
        if let Some(r) = victim {
            let c = m.col_idx()[m.row_ptr()[r]];
            assert!(delta.delete(r as u32, c), "base edge deletes");
        }
        delta
    }

    #[test]
    fn apply_delta_repairs_shards_and_stays_bit_identical() {
        let m = gen::uniform_random(512, 6.0, 41);
        let b = DenseMatrix::random(512, 16, 9);
        for kind in [KernelKind::AccSpmm, KernelKind::CusparseLike] {
            let mut dist = DistSpmm::builder(kind, &m)
                .shards(4)
                .feature_dim(16)
                .build()
                .unwrap();
            let delta = churn(&m, 3);
            let report = dist.apply_delta(&delta).unwrap();
            assert!(report.shards_repaired >= 1, "{kind:?}: churn hit shards");
            assert!(report.edges_applied >= 2);
            let compacted = delta.compact();
            let expect = reference(&compacted, kind, &b);
            let got = dist.multiply(&b).unwrap();
            assert_eq!(bits(&got), bits(&expect), "{kind:?} after delta");

            // A second round chained on the compacted operand: the
            // repaired shard plans are the new base line.
            let delta2 = churn(&compacted, 17);
            dist.apply_delta(&delta2).unwrap();
            let compacted2 = delta2.compact();
            let expect2 = reference(&compacted2, kind, &b);
            let got2 = dist.multiply(&b).unwrap();
            assert_eq!(bits(&got2), bits(&expect2), "{kind:?} second delta");
        }
    }

    #[test]
    fn apply_delta_repairs_only_touched_windows_per_shard() {
        let m = gen::uniform_random(768, 6.0, 43);
        let mut dist = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(4)
            .feature_dim(16)
            .build()
            .unwrap();
        // Touch exactly one row: at most one shard repairs, and within
        // it only a sliver of the windows rebuild.
        let mut delta = DeltaCsr::new(m.clone());
        delta.upsert(100, 9, 2.5).unwrap();
        let report = dist.apply_delta(&delta).unwrap();
        assert_eq!(report.shards_repaired, 1);
        assert!(
            report.windows_rebuilt < report.windows_total,
            "partial repair: {} of {} windows",
            report.windows_rebuilt,
            report.windows_total
        );
        let b = DenseMatrix::random(768, 16, 2);
        let expect = reference(&delta.compact(), KernelKind::AccSpmm, &b);
        assert_eq!(bits(&dist.multiply(&b).unwrap()), bits(&expect));
    }

    #[test]
    fn halo_exchange_stays_correct_under_churn() {
        let m = gen::clustered(
            gen::ClusteredConfig {
                n: 512,
                cluster_size: 64,
                intra_deg: 10.0,
                inter_deg: 2.0,
                ..Default::default()
            },
            13,
        );
        let mut dist = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(4)
            .feature_dim(8)
            .build()
            .unwrap();
        // Cross-shard churn: new boundary edges appear (fresh halo
        // columns), an old edge disappears.
        let mut delta = DeltaCsr::new(m.clone());
        delta.upsert(5, 500, 1.25).unwrap(); // shard 0 row -> far column
        delta.upsert(501, 2, -0.5).unwrap(); // last shard row -> early column
        let r0 = (0..m.nrows())
            .find(|&r| m.row_ptr()[r + 1] > m.row_ptr()[r])
            .unwrap();
        assert!(delta.delete(r0 as u32, m.col_idx()[m.row_ptr()[r0]]));
        dist.apply_delta(&delta).unwrap();

        let compacted = delta.compact();
        let h = DenseMatrix::random(512, 8, 4);
        // Halo propagation after the delta == plain multiply on the
        // compacted operand, bit for bit.
        let parts = dist.split_rows(&h).unwrap();
        let out_parts = dist.propagate_halo(&parts).unwrap();
        let got = dist.concat_rows(&out_parts).unwrap();
        let expect = reference(&compacted, KernelKind::AccSpmm, &h);
        assert_eq!(bits(&got), bits(&expect));
    }

    #[test]
    fn pinned_auto_coordinator_repairs_and_matches_scratch() {
        let decision = DispatchDecision::Hybrid {
            dense: KernelKind::AccSpmm,
            sparse: KernelKind::CusparseLike,
            threshold: 8.0,
        };
        let m = skewed_matrix();
        let b = DenseMatrix::random(m.ncols(), 16, 19);
        let mut dist = DistSpmm::builder(KernelKind::Auto, &m)
            .shards(3)
            .feature_dim(16)
            .decision(decision)
            .build()
            .unwrap();
        let delta = churn(&m, 7);
        dist.apply_delta(&delta).unwrap();
        // Scratch coordinator on the compacted operand under the SAME
        // pinned decision (repair keeps regions and kernels pinned; a
        // re-decide could legitimately change them).
        let scratch = DistSpmm::builder(KernelKind::Auto, &delta.compact())
            .shards(3)
            .feature_dim(16)
            .decision(decision)
            .build()
            .unwrap();
        assert_eq!(
            bits(&dist.multiply(&b).unwrap()),
            bits(&scratch.multiply(&b).unwrap())
        );
    }

    #[test]
    fn apply_delta_rejects_mismatch_and_skips_clean() {
        let m = gen::uniform_random(128, 4.0, 5);
        let mut dist = DistSpmm::builder(KernelKind::AccSpmm, &m)
            .shards(2)
            .feature_dim(8)
            .build()
            .unwrap();
        // Clean overlay: true no-op, pool untouched.
        let before = dist.jobs_processed();
        let report = dist.apply_delta(&DeltaCsr::new(m.clone())).unwrap();
        assert_eq!(report.shards_repaired, 0);
        assert_eq!(dist.jobs_processed(), before);
        // Wrong shape is rejected up front.
        let other = gen::uniform_random(64, 4.0, 6);
        assert!(dist.apply_delta(&DeltaCsr::new(other)).is_err());
        // Wrong base (right shape) is rejected by the per-shard
        // fingerprint check inside repair.
        let impostor = gen::uniform_random(128, 4.0, 99);
        let mut delta = DeltaCsr::new(impostor);
        delta.upsert(3, 3, 1.0).unwrap();
        assert!(dist.apply_delta(&delta).is_err());
    }
}
