//! The shard planner: contiguous, window-aligned, cost-balanced row
//! blocks.
//!
//! Sharding reuses the paper's Equation-(4) performance model (the
//! balance crate's [`PerfModel`]) one level up: instead of balancing TC
//! blocks across thread blocks *within* a GPU, it balances row windows
//! across *shards*. Each window's cost is priced as one model thread
//! block (`tb_time`) over a dense-packing lower bound of its TC blocks,
//! and a greedy prefix walk cuts the window sequence into `num_shards`
//! contiguous ranges of near-equal cost.
//!
//! Boundaries are aligned to [`TILE`]-row windows so
//! a shard's window partition is exactly a sub-range of the whole
//! matrix's — no window ever straddles two shards. Trailing shards may
//! be empty (zero rows) when the matrix has fewer populated windows
//! than shards; callers must tolerate them.

use spmm_balance::PerfModel;
use spmm_format::TILE;
use spmm_matrix::CsrMatrix;

/// The dense-packing lower bound used to price a window: a TC block
/// covers at most `TILE × TILE` entries, so a window with `nnz`
/// non-zeros holds at least `ceil(nnz / TILE²)` blocks.
fn window_blocks_lower_bound(window_nnz: usize) -> usize {
    window_nnz.div_ceil(TILE * TILE)
}

/// One shard's contiguous row range `[row_lo, row_hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// Shard index (0-based).
    pub id: usize,
    /// First row (inclusive), a multiple of [`TILE`].
    pub row_lo: usize,
    /// Past-the-end row (exclusive).
    pub row_hi: usize,
    /// Stored non-zeros in the range.
    pub nnz: usize,
    /// Modeled execution cost of the range (seconds under the
    /// Equation-(4) model; comparable across shards of one plan only).
    pub cost: f64,
}

impl ShardSpec {
    /// Rows in the shard.
    pub fn rows(&self) -> usize {
        self.row_hi - self.row_lo
    }

    /// Whether the shard holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.row_lo == self.row_hi
    }
}

/// The planner's output: every shard's range plus summary imbalance.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard ranges in row order; exactly `num_shards` entries, covering
    /// `0..nrows` without gaps or overlap.
    pub shards: Vec<ShardSpec>,
    /// `max(cost) / mean(cost)` over non-empty shards — 1.0 is perfect.
    pub imbalance: f64,
}

/// Cut `m`'s rows into `num_shards` contiguous window-aligned blocks of
/// near-equal modeled cost.
pub fn plan_shards(m: &CsrMatrix, num_shards: usize, model: &PerfModel) -> ShardPlan {
    assert!(num_shards >= 1, "need at least one shard");
    let nrows = m.nrows();
    let num_windows = nrows.div_ceil(TILE);

    // Price every window with the Equation-(4) thread-block time over
    // its dense-packing block bound (plus one write-back segment).
    let mut window_cost = Vec::with_capacity(num_windows);
    let mut window_nnz = Vec::with_capacity(num_windows);
    for w in 0..num_windows {
        let lo = w * TILE;
        let hi = ((w + 1) * TILE).min(nrows);
        let nnz = m.row_ptr()[hi] - m.row_ptr()[lo];
        window_nnz.push(nnz);
        window_cost.push(if nnz == 0 {
            0.0
        } else {
            model.tb_time(window_blocks_lower_bound(nnz), 1)
        });
    }
    let total_cost: f64 = window_cost.iter().sum();

    // Greedy prefix walk: close the current shard once it reaches the
    // remaining-average target, so later shards absorb rounding instead
    // of the last shard collecting all of it.
    let mut shards = Vec::with_capacity(num_shards);
    let mut w = 0usize;
    let mut spent = 0.0f64;
    for id in 0..num_shards {
        let lo_w = w;
        let remaining_shards = (num_shards - id) as f64;
        let target = (total_cost - spent) / remaining_shards;
        let mut cost = 0.0f64;
        let mut nnz = 0usize;
        // Leave at least one window per remaining shard when possible.
        let max_w = num_windows.saturating_sub(num_shards - id - 1);
        while w < max_w && (cost < target || cost == 0.0) {
            // Don't overshoot past the midpoint of the next window's
            // cost — take it only if that lands closer to the target.
            if cost > 0.0 && cost + window_cost[w] / 2.0 > target {
                break;
            }
            cost += window_cost[w];
            nnz += window_nnz[w];
            w += 1;
        }
        spent += cost;
        let row_lo = (lo_w * TILE).min(nrows);
        let row_hi = (w * TILE).min(nrows);
        shards.push(ShardSpec {
            id,
            row_lo,
            row_hi,
            nnz,
            cost,
        });
    }
    // Any leftover windows (rounding) join the last shard.
    if w < num_windows {
        let last = shards.last_mut().expect("num_shards >= 1");
        for win in w..num_windows {
            last.cost += window_cost[win];
            last.nnz += window_nnz[win];
        }
        last.row_hi = nrows;
    }

    let busy: Vec<f64> = shards
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| s.cost)
        .collect();
    let imbalance = if busy.is_empty() {
        1.0
    } else {
        let max = busy.iter().cloned().fold(0.0f64, f64::max);
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    };
    ShardPlan { shards, imbalance }
}

/// Extract the rectangular row-block sub-matrix `[lo, hi) × ncols`.
pub fn row_block(m: &CsrMatrix, lo: usize, hi: usize) -> CsrMatrix {
    let rp = m.row_ptr();
    let base = rp[lo];
    let row_ptr: Vec<usize> = rp[lo..=hi].iter().map(|&p| p - base).collect();
    CsrMatrix::new(
        hi - lo,
        m.ncols(),
        row_ptr,
        m.col_idx()[base..rp[hi]].to_vec(),
        m.values()[base..rp[hi]].to_vec(),
    )
    .expect("a row block of a valid CSR matrix is a valid CSR matrix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_balance::{ModelParams, PerfModel};
    use spmm_matrix::gen::uniform_random;

    fn model() -> PerfModel {
        PerfModel::new(ModelParams {
            feature_dim: 32,
            bandwidth: 1935.0e9,
            flops: 156.0e12,
            num_sms: 108,
        })
    }

    #[test]
    fn shards_tile_the_row_space() {
        let m = uniform_random(1000, 6.0, 1);
        for shards in [1, 2, 3, 7, 8] {
            let plan = plan_shards(&m, shards, &model());
            assert_eq!(plan.shards.len(), shards);
            assert_eq!(plan.shards[0].row_lo, 0);
            assert_eq!(plan.shards.last().unwrap().row_hi, m.nrows());
            for pair in plan.shards.windows(2) {
                assert_eq!(pair[0].row_hi, pair[1].row_lo, "contiguous, no gaps");
                assert_eq!(pair[0].row_hi % TILE, 0, "window-aligned boundary");
            }
            let nnz: usize = plan.shards.iter().map(|s| s.nnz).sum();
            assert_eq!(nnz, m.nnz());
        }
    }

    #[test]
    fn balanced_split_beats_worst_case() {
        // Cost balance: no shard should carry more than ~2x the mean on
        // a uniform matrix.
        let m = uniform_random(4096, 8.0, 2);
        let plan = plan_shards(&m, 4, &model());
        assert!(
            plan.imbalance < 1.5,
            "imbalance {} too high for a uniform matrix",
            plan.imbalance
        );
    }

    #[test]
    fn more_shards_than_windows_yields_empty_shards() {
        let m = uniform_random(16, 3.0, 3); // 2 windows
        let plan = plan_shards(&m, 7, &model());
        assert_eq!(plan.shards.len(), 7);
        assert!(plan.shards.iter().any(|s| s.is_empty()));
        assert_eq!(plan.shards.last().unwrap().row_hi, m.nrows());
        let covered: usize = plan.shards.iter().map(|s| s.rows()).sum();
        assert_eq!(covered, m.nrows());
    }

    #[test]
    fn row_block_preserves_rows() {
        let m = uniform_random(64, 5.0, 4);
        let blk = row_block(&m, 8, 24);
        assert_eq!(blk.nrows(), 16);
        assert_eq!(blk.ncols(), m.ncols());
        for r in 0..16 {
            assert_eq!(blk.row(r), m.row(8 + r));
        }
        let empty = row_block(&m, 16, 16);
        assert_eq!(empty.nrows(), 0);
        assert_eq!(empty.nnz(), 0);
    }
}
