//! The shard worker pool: one persistent thread per non-empty shard.
//!
//! Workers own their shard's [`PreparedKernel`] and a reusable
//! [`Workspace`], pull jobs off a per-shard channel, and push outcomes
//! onto one shared results channel. Dropping the pool closes every job
//! channel; workers **drain** jobs already queued before exiting, so
//! coordinator shutdown never abandons accepted work (the engine's
//! drain-on-drop semantics, one level up).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use spmm_common::{Result, SpmmError};
use spmm_engine::Priority;
use spmm_kernels::{PreparedKernel, Workspace};
use spmm_matrix::DenseMatrix;

/// The dense operand a job carries: shared (one `Arc` for every shard)
/// or owned (per-shard halo scratch, returned with the outcome for
/// reuse).
pub(crate) enum Operand {
    /// One B shared by every shard of the multiply.
    Shared(Arc<DenseMatrix>),
    /// A per-shard operand (halo-assembled); travels back with the
    /// outcome so the coordinator can reuse the allocation.
    Owned(Box<DenseMatrix>),
}

impl Operand {
    fn matrix(&self) -> &DenseMatrix {
        match self {
            Operand::Shared(b) => b,
            Operand::Owned(b) => b,
        }
    }
}

/// One unit of shard work.
pub(crate) struct Job {
    /// Multiply sequence number (guards against stale outcomes after a
    /// retry).
    pub epoch: u64,
    /// The dense operand.
    pub b: Operand,
    /// Serving-tier priority class the multiply was issued under —
    /// carried with every shard job so downstream accounting
    /// (`dist.jobs.<class>` counters, and an engine-backed worker tier)
    /// sees the same class the coordinator admitted.
    pub priority: Priority,
}

/// What a worker sends back.
pub(crate) struct Outcome {
    /// Which shard produced it.
    pub shard: usize,
    /// Echo of the job's epoch.
    pub epoch: u64,
    /// The shard's output rows (`rows × feature_dim`), or the failure.
    pub result: Result<DenseMatrix>,
    /// Uncontended execution seconds measured on the worker around the
    /// kernel call only (excludes queue wait).
    pub busy_seconds: f64,
    /// Owned operands travel back for reuse (also on failure, so a
    /// retry can resend without reassembly).
    pub operand_back: Option<Box<DenseMatrix>>,
}

struct ShardWorker {
    sender: mpsc::Sender<Job>,
    handle: Option<JoinHandle<()>>,
    /// Fail the next N jobs with a synthetic error (test hook for the
    /// retry path; see [`WorkerPool::inject_failures`]).
    fail_next: Arc<AtomicU32>,
}

/// The coordinator's handle to every shard worker.
pub(crate) struct WorkerPool {
    /// Indexed by shard id; `None` for empty shards (no thread).
    workers: Vec<Option<ShardWorker>>,
    results_rx: mpsc::Receiver<Outcome>,
    /// Jobs fully processed across all workers (drain observability).
    processed: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawn one worker per `Some` kernel; `None` slots (empty shards)
    /// get no thread.
    pub fn spawn(kernels: &[Option<Arc<PreparedKernel>>]) -> WorkerPool {
        let (results_tx, results_rx) = mpsc::channel::<Outcome>();
        let processed = Arc::new(AtomicU64::new(0));
        let workers = kernels
            .iter()
            .enumerate()
            .map(|(shard, kernel)| {
                let kernel = Arc::clone(kernel.as_ref()?);
                let results_tx = results_tx.clone();
                let fail_next = Arc::new(AtomicU32::new(0));
                let fail = Arc::clone(&fail_next);
                let processed = Arc::clone(&processed);
                let (sender, rx) = mpsc::channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("spmm-dist-{shard}"))
                    .spawn(move || worker_loop(shard, &kernel, &rx, &results_tx, &fail, &processed))
                    .expect("spawn dist worker");
                Some(ShardWorker {
                    sender,
                    handle: Some(handle),
                    fail_next,
                })
            })
            .collect();
        WorkerPool {
            workers,
            results_rx,
            processed,
        }
    }

    /// Whether `shard` has a live worker (false for empty shards).
    #[cfg(test)]
    pub fn has_worker(&self, shard: usize) -> bool {
        self.workers.get(shard).is_some_and(|w| w.is_some())
    }

    /// Queue a job on `shard`'s worker.
    pub fn submit(&self, shard: usize, job: Job) -> Result<()> {
        let worker = self.workers[shard].as_ref().ok_or(SpmmError::Capacity {
            what: "empty shard has no worker",
            capacity: 0,
        })?;
        worker.sender.send(job).map_err(|_| SpmmError::Capacity {
            what: "dist worker (shut down)",
            capacity: 0,
        })
    }

    /// Block for the next outcome from any shard.
    pub fn recv(&self) -> Result<Outcome> {
        self.results_rx.recv().map_err(|_| SpmmError::Capacity {
            what: "dist workers (all exited)",
            capacity: 0,
        })
    }

    /// Jobs fully processed since spawn.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Make `shard`'s worker fail its next `times` jobs with a
    /// synthetic error (exercises the coordinator's retry path).
    pub fn inject_failures(&self, shard: usize, times: u32) {
        if let Some(w) = self.workers[shard].as_ref() {
            w.fail_next.store(times, Ordering::SeqCst);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels lets each worker drain what's queued
        // and exit; joining makes the drain synchronous.
        for w in self.workers.iter_mut().flatten() {
            drop(std::mem::replace(&mut w.sender, dead_sender()));
        }
        for w in self.workers.iter_mut().flatten() {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// A sender whose receiver is already gone (placeholder after close).
fn dead_sender() -> mpsc::Sender<Job> {
    mpsc::channel().0
}

fn worker_loop(
    shard: usize,
    kernel: &PreparedKernel,
    rx: &mpsc::Receiver<Job>,
    results: &mpsc::Sender<Outcome>,
    fail_next: &AtomicU32,
    processed: &AtomicU64,
) {
    let mut ws = Workspace::for_plan(kernel.execution_plan());
    // `for` over the receiver drains queued jobs after the senders drop.
    for job in rx.iter() {
        let class = match job.priority {
            Priority::Interactive => "dist.jobs.interactive",
            Priority::Batch => "dist.jobs.batch",
            // `Priority` is non-exhaustive; account future classes as
            // standard rather than inventing counter names dynamically
            // (counter names must be 'static).
            _ => "dist.jobs.standard",
        };
        let outcome = run_job(shard, kernel, &mut ws, fail_next, job);
        processed.fetch_add(1, Ordering::Relaxed);
        spmm_trace::counter_add("dist.jobs", 1);
        spmm_trace::counter_add(class, 1);
        if results.send(outcome).is_err() {
            // Coordinator gone; keep draining so submitted work is
            // accounted, but nobody hears the results.
            continue;
        }
    }
}

fn run_job(
    shard: usize,
    kernel: &PreparedKernel,
    ws: &mut Workspace,
    fail_next: &AtomicU32,
    job: Job,
) -> Outcome {
    let epoch = job.epoch;
    if fail_next
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
    {
        spmm_trace::counter_add("dist.injected_failures", 1);
        return Outcome {
            shard,
            epoch,
            result: Err(SpmmError::Io(format!("injected failure on shard {shard}"))),
            busy_seconds: 0.0,
            operand_back: match job.b {
                Operand::Owned(b) => Some(b),
                Operand::Shared(_) => None,
            },
        };
    }
    let _span = spmm_trace::span("dist.shard_execute");
    let b = job.b.matrix();
    let mut out = DenseMatrix::zeros(kernel.csr().nrows(), b.ncols());
    let t0 = Instant::now();
    let result = kernel.execute_into(b, &mut out, ws).map(|()| out);
    let busy_seconds = t0.elapsed().as_secs_f64();
    Outcome {
        shard,
        epoch,
        result,
        busy_seconds,
        operand_back: match job.b {
            Operand::Owned(b) => Some(b),
            Operand::Shared(_) => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_kernels::KernelKind;
    use spmm_matrix::gen::uniform_random;

    fn kernel(n: usize) -> Arc<PreparedKernel> {
        let m = uniform_random(n, 4.0, 9);
        Arc::new(
            PreparedKernel::builder(KernelKind::CusparseLike, &m)
                .feature_dim(8)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let k = kernel(64);
        let pool = WorkerPool::spawn(&[Some(Arc::clone(&k))]);
        let b = Arc::new(DenseMatrix::random(64, 8, 1));
        for epoch in 0..5 {
            pool.submit(
                0,
                Job {
                    epoch,
                    b: Operand::Shared(Arc::clone(&b)),
                    priority: Priority::Standard,
                },
            )
            .unwrap();
        }
        // Drop without receiving: the worker must still process all 5.
        let processed = Arc::clone(&pool.processed);
        drop(pool);
        assert_eq!(processed.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn injected_failures_return_errors_then_recover() {
        let k = kernel(32);
        let pool = WorkerPool::spawn(&[Some(k)]);
        pool.inject_failures(0, 2);
        let b = Arc::new(DenseMatrix::random(32, 8, 2));
        for epoch in 0..3 {
            pool.submit(
                0,
                Job {
                    epoch,
                    b: Operand::Shared(Arc::clone(&b)),
                    priority: Priority::Batch,
                },
            )
            .unwrap();
        }
        let outcomes: Vec<Outcome> = (0..3).map(|_| pool.recv().unwrap()).collect();
        let failures = outcomes.iter().filter(|o| o.result.is_err()).count();
        assert_eq!(failures, 2);
        assert!(outcomes.iter().any(|o| o.result.is_ok()));
    }

    #[test]
    fn empty_shard_slots_have_no_worker() {
        let k = kernel(16);
        let pool = WorkerPool::spawn(&[None, Some(k)]);
        assert!(!pool.has_worker(0));
        assert!(pool.has_worker(1));
        assert!(pool
            .submit(
                0,
                Job {
                    epoch: 0,
                    b: Operand::Shared(Arc::new(DenseMatrix::zeros(16, 8))),
                    priority: Priority::Standard,
                }
            )
            .is_err());
    }
}
