//! Pluggable shard transports.
//!
//! The coordinator moves three kinds of payloads: dense-operand rows
//! *scattered* to shards, result rows *gathered* back, and boundary
//! feature rows exchanged between shards as a layer-to-layer *halo*.
//! A [`Transport`] prices each movement; the data itself always travels
//! in-process (the simulator has one address space), so transports
//! differ only in the **modeled** seconds they report:
//!
//! * [`ChannelTransport`] — the real-concurrency configuration: shards
//!   run on worker threads, payloads are shared-memory handoffs, and
//!   every transfer is free. Wall-clock time is the measurement.
//! * [`ModeledTransport`] — per-message latency + bandwidth accounting
//!   derived from `sim::arch` constants, for scaling curves on
//!   hardware the host doesn't have (1/2/4/8 GPUs per architecture).

use spmm_sim::Arch;

/// What a transfer is for; carriers may price directions differently
/// and observers use it to attribute bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Coordinator → shard: dense-operand rows the shard references.
    Scatter {
        /// Destination shard.
        shard: usize,
    },
    /// Shard → coordinator: the shard's output row block.
    Gather {
        /// Source shard.
        shard: usize,
    },
    /// Shard → shard: boundary feature rows between GCN layers.
    Halo {
        /// Owning shard of the rows.
        from: usize,
        /// Shard that references them.
        to: usize,
    },
    /// Coordinator → shard: a serialized execution plan (see
    /// `spmm_kernels::ir`) shipped instead of rebuilt on the shard.
    Plan {
        /// Destination shard.
        shard: usize,
    },
}

/// Prices one payload movement; returns modeled seconds (0 for
/// in-process transports).
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Short name recorded in stats and bench artifacts.
    fn name(&self) -> &'static str;
    /// Modeled seconds to move `bytes` along `route`.
    fn transfer(&self, route: Route, bytes: u64) -> f64;
}

/// In-process channel transport: shards are worker threads, payloads
/// are `Arc`/move handoffs, transfers cost nothing beyond the memory
/// traffic the execution itself already pays.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelTransport;

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn transfer(&self, _route: Route, _bytes: u64) -> f64 {
        0.0
    }
}

/// Latency + bandwidth model of an inter-GPU link.
///
/// [`ModeledTransport::for_arch`] derives the link from the
/// architecture's DRAM constants: an NVLink-class interconnect runs at
/// roughly a quarter of HBM bandwidth, and a hop costs roughly 20×
/// DRAM latency (µs-scale message overhead vs ~400 ns DRAM access).
#[derive(Debug, Clone, Copy)]
pub struct ModeledTransport {
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

/// Interconnect bandwidth as a fraction of the architecture's DRAM
/// bandwidth (NVLink ≈ HBM/4 across the modeled generations).
const LINK_BW_FRACTION: f64 = 0.25;
/// Per-message latency as a multiple of DRAM access latency.
const LINK_LATENCY_FACTOR: f64 = 20.0;

impl ModeledTransport {
    /// An explicit link.
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> Self {
        assert!(latency_s >= 0.0 && bandwidth_bps > 0.0);
        ModeledTransport {
            latency_s,
            bandwidth_bps,
        }
    }

    /// The link the architecture's `sim::arch` constants imply.
    pub fn for_arch(arch: Arch) -> Self {
        let spec = arch.spec();
        ModeledTransport {
            latency_s: spec.dram_latency_ns * 1e-9 * LINK_LATENCY_FACTOR,
            bandwidth_bps: spec.dram_bw_gbps * 1e9 * LINK_BW_FRACTION,
        }
    }
}

impl Transport for ModeledTransport {
    fn name(&self) -> &'static str {
        "modeled"
    }

    fn transfer(&self, _route: Route, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_transfers_are_free() {
        let t = ChannelTransport;
        assert_eq!(t.transfer(Route::Scatter { shard: 0 }, 1 << 30), 0.0);
        assert_eq!(t.name(), "channel");
    }

    #[test]
    fn modeled_transfer_is_latency_plus_bytes_over_bandwidth() {
        let t = ModeledTransport::new(1e-6, 100e9);
        let got = t.transfer(Route::Gather { shard: 1 }, 200_000_000);
        assert!((got - (1e-6 + 0.002)).abs() < 1e-12);
        // Empty messages still pay the latency.
        assert_eq!(t.transfer(Route::Halo { from: 0, to: 1 }, 0), 1e-6);
    }

    #[test]
    fn arch_links_scale_with_dram() {
        for arch in [Arch::Rtx4090, Arch::A800, Arch::H100] {
            let t = ModeledTransport::for_arch(arch);
            let spec = arch.spec();
            assert!(t.bandwidth_bps < spec.dram_bw_gbps * 1e9);
            assert!(t.latency_s > spec.dram_latency_ns * 1e-9);
        }
    }
}
