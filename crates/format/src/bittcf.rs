//! BitTCF — the paper's memory-efficient compressed format (§3.3).
//!
//! Four arrays represent the sparse matrix:
//! 1. `RowWindowOffset` — starting TC block of each RowWindow;
//! 2. `TCOffset` — starting nnz of each TC block;
//! 3. `SparseAToB` — original column index of each TC-block column slot
//!    (what the kernel uses to gather rows of the dense B);
//! 4. `TCLocalBit` — one `u64` per TC block whose bit `r·8+c` marks a
//!    non-zero at local position `(r, c)`.
//!
//! Index footprint: `(⌈M/8⌉ + NumTCBlock × 11 + 2) × 4` bytes, exactly
//! the paper's formula. Decompression mirrors the CUDA `__popcll` path:
//! the value index of the non-zero at bit `t` is the popcount of the bits
//! below `t`.

use crate::scratch::{BStage, TileScratch};
use crate::window::{WindowPartition, PAD_COL, TILE};
use spmm_common::simd::{mma_8x8_prerounded_tier, mma_8x8_rows_tier, to_tf32_slice_tier, IsaTier};
use spmm_common::{Result, SpmmError};
use spmm_matrix::{CooMatrix, CsrMatrix, DenseMatrix};

/// The BitTCF compressed sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BitTcf {
    nrows: usize,
    ncols: usize,
    /// Starting TC block per RowWindow (`⌈M/8⌉ + 1` entries).
    pub row_window_offset: Vec<u32>,
    /// Starting nnz per TC block (`NumTcBlock + 1` entries).
    pub tc_offset: Vec<u32>,
    /// Original column of each block column slot (`NumTcBlock × 8`,
    /// padded with `u32::MAX`).
    pub sparse_a_to_b: Vec<u32>,
    /// Non-zero occupancy bitmap per TC block.
    pub tc_local_bit: Vec<u64>,
    /// Values in block order, row-major within each block (bit order).
    pub values: Vec<f32>,
    /// Whether `values` have already been rounded to TF32
    /// ([`BitTcf::preround_values`]); when set, the SpMM paths skip the
    /// per-block operand rounding.
    values_tf32: bool,
}

impl BitTcf {
    /// Convert from CSR (via the shared window squeezing).
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let wp = WindowPartition::build(m);
        Self::from_partition(m, &wp)
    }

    /// Convert from CSR with a precomputed partition (lets converters
    /// share the squeezing cost, as the conversion-overhead comparison
    /// requires).
    ///
    /// This converter is the cheap path §4.3.2 measures: the bitmap is
    /// built with one OR per nnz, and because rows are visited in order
    /// (ascending local row, then ascending squeezed column) values
    /// arrive already in bit order — no per-block sort and no per-nnz id
    /// array, unlike the ME-TCF converter.
    /// Windows are independent in both passes, so each is built in
    /// parallel and the per-window pieces are stitched in window order —
    /// byte-identical to the former sequential construction.
    pub fn from_partition(m: &CsrMatrix, wp: &WindowPartition) -> Self {
        use rayon::prelude::*;
        let num_windows = wp.num_windows();
        let num_blocks = wp.num_tc_blocks();

        // Pass 1 (parallel per window): bitmaps + SparseAToB (one OR per
        // nnz).
        let per_window: Vec<(Vec<u64>, Vec<u32>)> = (0..num_windows)
            .into_par_iter()
            .map(|w| {
                let blocks = wp.window_blocks(w);
                let nb = blocks.len();
                let mut cols_out = vec![PAD_COL; nb * TILE];
                for bi in 0..nb {
                    let cols = wp.block_columns(w, bi);
                    cols_out[bi * TILE..(bi + 1) * TILE].copy_from_slice(&cols);
                }
                let mut bits = vec![0u64; nb];
                let wcols = wp.window_columns(w);
                let lo = w * TILE;
                let hi = ((w + 1) * TILE).min(m.nrows());
                for r in lo..hi {
                    let lr = (r - lo) as u8;
                    let (cols, _) = m.row(r);
                    for &c in cols {
                        // Position of c within the squeezed window columns.
                        let pos = wcols.binary_search(&c).expect("column must be in window");
                        let lc = (pos % TILE) as u8;
                        bits[pos / TILE] |= 1u64 << (lr * TILE as u8 + lc);
                    }
                }
                (bits, cols_out)
            })
            .collect();

        let mut row_window_offset = Vec::with_capacity(num_windows + 1);
        row_window_offset.push(0u32);
        let mut sparse_a_to_b = Vec::with_capacity(num_blocks * TILE);
        let mut tc_local_bit = Vec::with_capacity(num_blocks);
        for (w, (bits, cols)) in per_window.iter().enumerate() {
            row_window_offset.push(wp.window_blocks(w).end as u32);
            tc_local_bit.extend_from_slice(bits);
            sparse_a_to_b.extend_from_slice(cols);
        }

        // TCOffset from bitmap popcounts.
        let mut tc_offset = Vec::with_capacity(num_blocks + 1);
        let mut acc = 0u32;
        tc_offset.push(0u32);
        for &bits in &tc_local_bit {
            acc += bits.count_ones();
            tc_offset.push(acc);
        }

        // Pass 2 (parallel per window): scatter values straight to their
        // final slots. Within a block, the visit order (ascending row,
        // ascending column) IS ascending bit order, so a per-block
        // cursor suffices; a window's values occupy the contiguous
        // `tc_offset` span of its blocks.
        let value_chunks: Vec<Vec<f32>> = (0..num_windows)
            .into_par_iter()
            .map(|w| {
                let blocks = wp.window_blocks(w);
                let base = tc_offset[blocks.start] as usize;
                let len = tc_offset[blocks.end] as usize - base;
                let mut vals = vec![0f32; len];
                let mut cursor: Vec<usize> = blocks
                    .clone()
                    .map(|b| tc_offset[b] as usize - base)
                    .collect();
                let wcols = wp.window_columns(w);
                let lo = w * TILE;
                let hi = ((w + 1) * TILE).min(m.nrows());
                for r in lo..hi {
                    let (cols, rvals) = m.row(r);
                    for (&c, &v) in cols.iter().zip(rvals.iter()) {
                        let pos = wcols.binary_search(&c).expect("column must be in window");
                        let bi = pos / TILE;
                        vals[cursor[bi]] = v;
                        cursor[bi] += 1;
                    }
                }
                vals
            })
            .collect();
        let mut values = Vec::with_capacity(m.nnz());
        for chunk in &value_chunks {
            values.extend_from_slice(chunk);
        }

        BitTcf {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_window_offset,
            tc_offset,
            sparse_a_to_b,
            tc_local_bit,
            values,
            values_tf32: false,
        }
    }

    /// Incremental rebuild after an edge-delta update: `m_new` is the
    /// updated (permuted) matrix, `wp_new` its (incrementally rebuilt)
    /// partition, and `touched[w]` marks the windows whose rows
    /// changed. Untouched windows copy their bitmap / SparseAToB /
    /// value spans from `self` byte-for-byte (every per-window artifact
    /// depends only on that window's rows); touched windows re-run the
    /// per-window converter; `TCOffset` is restitched from the bitmap
    /// popcounts.
    ///
    /// The result reports [`BitTcf::is_prerounded`] `false`: when
    /// `self` was pre-rounded its untouched spans carry TF32 bits while
    /// touched windows carry raw values, and one idempotent
    /// [`BitTcf::preround_values_tier`] pass re-unifies them —
    /// byte-identical to building from scratch and pre-rounding.
    pub fn rebuild_windows(
        &self,
        m_new: &CsrMatrix,
        wp_new: &WindowPartition,
        touched: &[bool],
    ) -> BitTcf {
        assert_eq!(m_new.nrows(), self.nrows, "deltas cannot change nrows");
        assert_eq!(m_new.ncols(), self.ncols, "deltas cannot change ncols");
        assert_eq!(wp_new.num_windows(), self.num_windows());
        assert_eq!(touched.len(), self.num_windows(), "one flag per window");
        let num_windows = self.num_windows();
        let num_blocks = wp_new.num_tc_blocks();

        let mut row_window_offset = Vec::with_capacity(num_windows + 1);
        row_window_offset.push(0u32);
        let mut sparse_a_to_b = Vec::with_capacity(num_blocks * TILE);
        let mut tc_local_bit = Vec::with_capacity(num_blocks);
        let mut values = Vec::with_capacity(m_new.nnz());
        for (w, &is_touched) in touched.iter().enumerate() {
            row_window_offset.push(wp_new.window_blocks(w).end as u32);
            if !is_touched {
                let blocks = self.window_blocks(w);
                tc_local_bit.extend_from_slice(&self.tc_local_bit[blocks.clone()]);
                sparse_a_to_b
                    .extend_from_slice(&self.sparse_a_to_b[blocks.start * TILE..blocks.end * TILE]);
                let span =
                    self.tc_offset[blocks.start] as usize..self.tc_offset[blocks.end] as usize;
                values.extend_from_slice(&self.values[span]);
                continue;
            }
            // Touched window: the per-window converter from
            // `from_partition`, run against the new matrix.
            let blocks = wp_new.window_blocks(w);
            let nb = blocks.len();
            let mut cols_out = vec![PAD_COL; nb * TILE];
            for bi in 0..nb {
                cols_out[bi * TILE..(bi + 1) * TILE].copy_from_slice(&wp_new.block_columns(w, bi));
            }
            let mut bits = vec![0u64; nb];
            let wcols = wp_new.window_columns(w);
            let lo = w * TILE;
            let hi = ((w + 1) * TILE).min(m_new.nrows());
            for r in lo..hi {
                let lr = (r - lo) as u8;
                for &c in m_new.row(r).0 {
                    let pos = wcols.binary_search(&c).expect("column must be in window");
                    let lc = (pos % TILE) as u8;
                    bits[pos / TILE] |= 1u64 << (lr * TILE as u8 + lc);
                }
            }
            // Window-local value scatter: block b's values start at the
            // popcount prefix of the blocks before it.
            let mut cursor = Vec::with_capacity(nb);
            let mut acc = 0usize;
            for &b in &bits {
                cursor.push(acc);
                acc += b.count_ones() as usize;
            }
            let mut vals = vec![0f32; acc];
            for r in lo..hi {
                let (cols, rvals) = m_new.row(r);
                for (&c, &v) in cols.iter().zip(rvals.iter()) {
                    let pos = wcols.binary_search(&c).expect("column must be in window");
                    let bi = pos / TILE;
                    vals[cursor[bi]] = v;
                    cursor[bi] += 1;
                }
            }
            tc_local_bit.extend_from_slice(&bits);
            sparse_a_to_b.extend_from_slice(&cols_out);
            values.extend_from_slice(&vals);
        }

        let mut tc_offset = Vec::with_capacity(num_blocks + 1);
        let mut acc = 0u32;
        tc_offset.push(0u32);
        for &bits in &tc_local_bit {
            acc += bits.count_ones();
            tc_offset.push(acc);
        }

        BitTcf {
            nrows: self.nrows,
            ncols: self.ncols,
            row_window_offset,
            tc_offset,
            sparse_a_to_b,
            tc_local_bit,
            values,
            values_tf32: false,
        }
    }

    /// Round the stored values to TF32 in place, marking the format as
    /// pre-rounded so the SpMM paths skip per-block operand rounding.
    ///
    /// Because [`spmm_common::scalar::to_tf32`] is idempotent, every
    /// multiply result stays bit-identical to the non-prerounded path.
    /// This is lossy for the *stored* matrix ([`BitTcf::to_csr`] returns
    /// the rounded values), so it is meant for execution-plan-owned
    /// formats, not archival ones.
    pub fn preround_values(&mut self) {
        self.preround_values_tier(IsaTier::probe());
    }

    /// [`BitTcf::preround_values`] at an explicit ISA tier (every tier
    /// rounds bit-identically; the plan passes its resolved tier here).
    pub fn preround_values_tier(&mut self, tier: IsaTier) {
        if !self.values_tf32 {
            to_tf32_slice_tier(&mut self.values, tier);
            self.values_tf32 = true;
        }
    }

    /// Whether the stored values are already TF32-rounded.
    #[inline]
    pub fn is_prerounded(&self) -> bool {
        self.values_tf32
    }

    /// Reassemble from raw arrays (used by the binary loader, which
    /// validates the invariants before calling).
    pub(crate) fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_window_offset: Vec<u32>,
        tc_offset: Vec<u32>,
        sparse_a_to_b: Vec<u32>,
        tc_local_bit: Vec<u64>,
        values: Vec<f32>,
    ) -> Self {
        BitTcf {
            nrows,
            ncols,
            row_window_offset,
            tc_offset,
            sparse_a_to_b,
            tc_local_bit,
            values,
            values_tf32: false,
        }
    }

    /// Rows of the represented matrix.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the represented matrix.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of RowWindows.
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.row_window_offset.len() - 1
    }

    /// Number of TC blocks.
    #[inline]
    pub fn num_tc_blocks(&self) -> usize {
        self.tc_local_bit.len()
    }

    /// TC blocks of window `w` as a block-id range.
    #[inline]
    pub fn window_blocks(&self, w: usize) -> std::ops::Range<usize> {
        self.row_window_offset[w] as usize..self.row_window_offset[w + 1] as usize
    }

    /// Non-zeros in TC block `b` (popcount of its bitmap — by
    /// construction equal to `tc_offset[b+1] - tc_offset[b]`).
    #[inline]
    pub fn block_nnz(&self, b: usize) -> usize {
        self.tc_local_bit[b].count_ones() as usize
    }

    /// The 8 (padded) B-gather columns of block `b`.
    #[inline]
    pub fn block_cols(&self, b: usize) -> &[u32] {
        &self.sparse_a_to_b[b * TILE..(b + 1) * TILE]
    }

    /// Index-structure footprint in bytes — the paper's
    /// `(⌈M/8⌉ + NumTCBlock × 11 + 2) × 4` formula (values excluded, as
    /// in the Figure-12 comparison).
    pub fn index_bytes(&self) -> usize {
        (self.nrows.div_ceil(TILE) + self.num_tc_blocks() * 11 + 2) * 4
    }

    /// Decompress block `b` into a dense 8×8 tile, mirroring the CUDA
    /// two-warp `__popcll` decoder: each of the 64 positions is either
    /// zero or `values[tc_offset[b] + popcount(bits below position)]`.
    pub fn decompress_block(&self, b: usize) -> [f32; TILE * TILE] {
        let bits = self.tc_local_bit[b];
        let base = self.tc_offset[b] as usize;
        let mut tile = [0.0f32; TILE * TILE];
        for t in 0..(TILE * TILE) as u32 {
            if bits & (1u64 << t) != 0 {
                let below = bits & ((1u64 << t) - 1);
                tile[t as usize] = self.values[base + below.count_ones() as usize];
            }
        }
        tile
    }

    /// Functional SpMM through the TC path: every block is decompressed
    /// to a dense tile and multiplied with the gathered B rows by the
    /// software TF32 MMA, accumulating into C. This is numerically what
    /// the GPU kernel computes (TF32 operands, FP32 accumulate).
    ///
    /// RowWindows write disjoint C rows, so the window loop parallelizes
    /// over the output exactly like the GPU's thread-block grid.
    pub fn spmm(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        let mut c = DenseMatrix::zeros(self.nrows, b.ncols());
        self.spmm_into(b, &mut c)?;
        Ok(c)
    }

    /// [`BitTcf::spmm`] writing into a caller-provided output matrix.
    /// Rounds B into a fresh [`BStage`] and runs the window-parallel
    /// staged loop; callers that multiply repeatedly should hold their
    /// own stage and use [`BitTcf::spmm_into_staged`] instead.
    pub fn spmm_into(&self, b: &DenseMatrix, c: &mut DenseMatrix) -> Result<()> {
        self.check_shapes(b.nrows(), b.ncols(), c)?;
        let mut stage = BStage::new();
        stage.stage(b);
        self.spmm_into_staged(&stage, c)
    }

    /// The window-parallel SpMM over a pre-rounded B stage (one
    /// [`TileScratch`] per worker, the stage shared read-only), so the
    /// hot path allocates nothing proportional to the matrix and the MMA
    /// inner loop is a pure mul-add.
    pub fn spmm_into_staged(&self, stage: &BStage, c: &mut DenseMatrix) -> Result<()> {
        self.spmm_into_staged_tier(stage, c, IsaTier::probe())
    }

    /// [`BitTcf::spmm_into_staged`] with an explicit ISA tier for the
    /// MMA core (bit-identical across tiers; plans pass their resolved
    /// tier so the choice is made once at compile time).
    pub fn spmm_into_staged_tier(
        &self,
        stage: &BStage,
        c: &mut DenseMatrix,
        tier: IsaTier,
    ) -> Result<()> {
        use rayon::prelude::*;
        self.check_shapes(stage.nrows(), stage.ncols(), c)?;
        let n = stage.ncols();
        c.as_mut_slice()
            .par_chunks_mut(TILE * n)
            .enumerate()
            .for_each_init(
                || TileScratch::with_feature_dim(n),
                |scratch, (w, cslab)| {
                    let (_btile, ctile) = scratch.ensure(n);
                    ctile.iter_mut().for_each(|x| *x = 0.0);
                    self.window_product(w, stage, ctile, tier);
                    // Write the window's C rows back (last slab may be
                    // ragged).
                    cslab.copy_from_slice(&ctile[..cslab.len()]);
                },
            );
        Ok(())
    }

    /// Accumulate window `w`'s TC blocks into `ctile`. Both operands are
    /// pre-rounded here — B by the stage, A either at
    /// [`BitTcf::preround_values`] time or per block below — so the MMA
    /// core never rounds, and it reads B rows in place from the stage
    /// (no gather copy; padded columns carry structurally zero A values
    /// and are skipped, so their empty slices are never read).
    fn window_product(&self, w: usize, stage: &BStage, ctile: &mut [f32], tier: IsaTier) {
        let n = stage.ncols();
        for blk in self.window_blocks(w) {
            let mut a = self.decompress_block(blk);
            if !self.values_tf32 {
                to_tf32_slice_tier(&mut a, tier);
            }
            let cols = self.block_cols(blk);
            let rows: [&[f32]; TILE] = std::array::from_fn(|i| {
                if cols[i] == PAD_COL {
                    &[][..]
                } else {
                    stage.row(cols[i] as usize)
                }
            });
            mma_8x8_rows_tier(&a, &rows, ctile, n, tier);
        }
    }

    /// Accumulate window `w` into a combined ctile for the whole batch,
    /// decompressing each TC block **once** and running **one wide MMA**
    /// over the concatenated columns — the CPU analog of a batched GPU
    /// kernel keeping the A tile in registers while cycling B tiles.
    /// `btile` and `ctiles` are `TILE × Σ ncols` floats laid out
    /// row-major with the RHS column blocks side by side: row `i` is
    /// `[rhs0[i] | rhs1[i] | …]`. Unlike the single-RHS window product,
    /// this path keeps the gather: one wide contiguous MMA over
    /// `Σ ncols` columns measures faster here than cycling per-RHS row
    /// slices. Per output element the k-accumulation
    /// order is exactly [`BitTcf::spmm_into_seq`]'s, so results stay
    /// bit-identical to one-at-a-time execution.
    pub fn window_product_batch(
        &self,
        w: usize,
        stages: &[&BStage],
        btile: &mut [f32],
        ctiles: &mut [f32],
    ) {
        self.window_product_batch_tier(w, stages, btile, ctiles, IsaTier::probe())
    }

    /// [`BitTcf::window_product_batch`] with an explicit ISA tier.
    pub fn window_product_batch_tier(
        &self,
        w: usize,
        stages: &[&BStage],
        btile: &mut [f32],
        ctiles: &mut [f32],
        tier: IsaTier,
    ) {
        let total_n: usize = stages.iter().map(|s| s.ncols()).sum();
        for blk in self.window_blocks(w) {
            let mut a = self.decompress_block(blk);
            if !self.values_tf32 {
                to_tf32_slice_tier(&mut a, tier);
            }
            for (i, &col) in self.block_cols(blk).iter().enumerate() {
                let dst = &mut btile[i * total_n..(i + 1) * total_n];
                if col == PAD_COL {
                    dst.fill(0.0);
                } else {
                    let mut off = 0;
                    for s in stages {
                        let n = s.ncols();
                        dst[off..off + n].copy_from_slice(s.row(col as usize));
                        off += n;
                    }
                }
            }
            mma_8x8_prerounded_tier(
                &a,
                &btile[..TILE * total_n],
                &mut ctiles[..TILE * total_n],
                total_n,
                tier,
            );
        }
    }

    /// Sequential zero-allocation SpMM into a caller-provided output,
    /// borrowing tiles from `scratch`. Window-sequential execution
    /// computes exactly the same floats as the parallel [`BitTcf::spmm`]
    /// (windows write disjoint output rows and the per-window math is
    /// identical), which is what lets batched execution parallelize over
    /// RHS matrices instead and stay bit-identical.
    pub fn spmm_into_seq(
        &self,
        b: &DenseMatrix,
        c: &mut DenseMatrix,
        scratch: &mut TileScratch,
    ) -> Result<()> {
        self.spmm_into_seq_tier(b, c, scratch, IsaTier::probe())
    }

    /// [`BitTcf::spmm_into_seq`] with an explicit ISA tier.
    pub fn spmm_into_seq_tier(
        &self,
        b: &DenseMatrix,
        c: &mut DenseMatrix,
        scratch: &mut TileScratch,
        tier: IsaTier,
    ) -> Result<()> {
        self.check_shapes(b.nrows(), b.ncols(), c)?;
        let n = b.ncols();
        scratch.stage_b_tier(b, tier);
        let (stage, ctile) = scratch.staged_parts(n);
        for w in 0..self.num_windows() {
            ctile.iter_mut().for_each(|x| *x = 0.0);
            self.window_product(w, stage, ctile, tier);
            let lo = w * TILE;
            let hi = ((w + 1) * TILE).min(self.nrows);
            for r in lo..hi {
                c.row_mut(r)
                    .copy_from_slice(&ctile[(r - lo) * n..(r - lo + 1) * n]);
            }
        }
        Ok(())
    }

    fn check_shapes(&self, b_rows: usize, b_cols: usize, c: &DenseMatrix) -> Result<()> {
        if self.ncols != b_rows || c.nrows() != self.nrows || c.ncols() != b_cols {
            return Err(SpmmError::Shape {
                context: format!(
                    "A is {}x{}, B is {}x{}, C is {}x{}",
                    self.nrows,
                    self.ncols,
                    b_rows,
                    b_cols,
                    c.nrows(),
                    c.ncols()
                ),
            });
        }
        Ok(())
    }

    /// [`BitTcf::spmm`] with a selectable operand precision (TF32 is the
    /// paper's mode; FP16/BF16 model Magicube-style reduced-precision
    /// tensor-core paths, FP32 the exact reference).
    pub fn spmm_with_precision(
        &self,
        b: &DenseMatrix,
        precision: spmm_common::Precision,
    ) -> Result<DenseMatrix> {
        if self.ncols != b.nrows() {
            return Err(SpmmError::Shape {
                context: format!("A has {} cols, B has {} rows", self.ncols, b.nrows()),
            });
        }
        let n = b.ncols();
        let mut c = DenseMatrix::zeros(self.nrows, n);
        let mut btile = vec![0.0f32; TILE * n];
        let mut ctile = vec![0.0f32; TILE * n];
        for w in 0..self.num_windows() {
            ctile.iter_mut().for_each(|x| *x = 0.0);
            for blk in self.window_blocks(w) {
                let a = self.decompress_block(blk);
                for (i, &col) in self.block_cols(blk).iter().enumerate() {
                    if col == PAD_COL {
                        btile[i * n..(i + 1) * n].iter_mut().for_each(|x| *x = 0.0);
                    } else {
                        btile[i * n..(i + 1) * n].copy_from_slice(b.row(col as usize));
                    }
                }
                spmm_common::precision::mma_8x8_with_precision(
                    &a, &btile, &mut ctile, n, precision,
                );
            }
            let lo = w * TILE;
            let hi = ((w + 1) * TILE).min(self.nrows);
            for r in lo..hi {
                c.row_mut(r)
                    .copy_from_slice(&ctile[(r - lo) * n..(r - lo + 1) * n]);
            }
        }
        Ok(c)
    }

    /// Reconstruct the CSR matrix (round-trip used by tests).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for w in 0..self.num_windows() {
            let lo = w * TILE;
            for blk in self.window_blocks(w) {
                let tile = self.decompress_block(blk);
                let cols = self.block_cols(blk);
                let bits = self.tc_local_bit[blk];
                for (t, &v) in tile.iter().enumerate() {
                    if bits & (1u64 << t) != 0 {
                        let (lr, lc) = (t / TILE, t % TILE);
                        coo.push((lo + lr) as u32, cols[lc], v);
                    }
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::scalar::tf32_tolerance;
    use spmm_matrix::gen::uniform_random;

    fn small() -> CsrMatrix {
        let mut coo = CooMatrix::new(12, 12);
        let entries = [
            (0u32, 0u32, 1.0f32),
            (0, 9, 2.0),
            (1, 3, 3.0),
            (7, 0, 4.0),
            (8, 11, 5.0),
            (9, 2, 6.0),
        ];
        for &(r, c, v) in &entries {
            coo.push(r, c, v);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn structure_counts() {
        let t = BitTcf::from_csr(&small());
        assert_eq!(t.num_windows(), 2);
        assert_eq!(t.nnz(), 6);
        // Window 0 distinct cols {0,3,9} -> 1 block; window 1 {2,11} -> 1.
        assert_eq!(t.num_tc_blocks(), 2);
        assert_eq!(t.block_nnz(0), 4);
        assert_eq!(t.block_nnz(1), 2);
    }

    #[test]
    fn popcount_matches_offsets() {
        let m = uniform_random(128, 6.0, 3);
        let t = BitTcf::from_csr(&m);
        for b in 0..t.num_tc_blocks() {
            assert_eq!(
                t.block_nnz(b),
                (t.tc_offset[b + 1] - t.tc_offset[b]) as usize,
                "bitmap popcount must equal TCOffset span at block {b}"
            );
        }
        assert_eq!(t.tc_offset[t.num_tc_blocks()] as usize, m.nnz());
    }

    #[test]
    fn roundtrip_csr() {
        let m = uniform_random(200, 5.0, 9);
        let t = BitTcf::from_csr(&m);
        assert_eq!(t.to_csr(), m);
    }

    #[test]
    fn decompress_places_values_correctly() {
        let t = BitTcf::from_csr(&small());
        let tile = t.decompress_block(0);
        // Window 0 squeezed cols [0,3,9]: (0,0)=1 at (0,0); (0,9)=2 at
        // (0,2); (1,3)=3 at (1,1); (7,0)=4 at (7,0).
        assert_eq!(tile[0], 1.0);
        assert_eq!(tile[2], 2.0);
        assert_eq!(tile[TILE + 1], 3.0);
        assert_eq!(tile[7 * TILE], 4.0);
        assert_eq!(tile.iter().filter(|&&x| x != 0.0).count(), 4);
    }

    #[test]
    fn index_bytes_formula() {
        let t = BitTcf::from_csr(&small());
        // ceil(12/8)=2 windows, 2 blocks: (2 + 22 + 2) * 4 = 104.
        assert_eq!(t.index_bytes(), 104);
    }

    #[test]
    fn spmm_matches_reference_within_tf32() {
        let m = uniform_random(96, 7.0, 5);
        let b = DenseMatrix::random(96, 24, 1);
        let t = BitTcf::from_csr(&m);
        let c = t.spmm(&b).unwrap();
        let reference = m.spmm_dense(&b).unwrap();
        let tol = tf32_tolerance(96);
        assert!(
            c.approx_eq(&reference, tol, tol),
            "max diff {}",
            c.max_abs_diff(&reference)
        );
    }

    #[test]
    fn spmm_shape_mismatch_rejected() {
        let t = BitTcf::from_csr(&small());
        assert!(t.spmm(&DenseMatrix::zeros(5, 4)).is_err());
    }

    #[test]
    fn spmm_into_variants_are_bit_identical() {
        let m = uniform_random(200, 6.0, 11);
        let b = DenseMatrix::random(200, 20, 3);
        let t = BitTcf::from_csr(&m);
        let via_alloc = t.spmm(&b).unwrap();
        let mut via_into = DenseMatrix::zeros(200, 20);
        t.spmm_into(&b, &mut via_into).unwrap();
        assert_eq!(via_alloc, via_into);
        let mut scratch = TileScratch::new();
        let mut via_seq = DenseMatrix::zeros(200, 20);
        t.spmm_into_seq(&b, &mut via_seq, &mut scratch).unwrap();
        assert_eq!(via_alloc, via_seq, "sequential path must match parallel");
        // Reusing the (now dirty) scratch and output must still be exact.
        t.spmm_into_seq(&b, &mut via_seq, &mut scratch).unwrap();
        assert_eq!(via_alloc, via_seq);
    }

    #[test]
    fn window_product_batch_is_bit_identical_to_sequential() {
        let m = uniform_random(96, 6.0, 13);
        let t = BitTcf::from_csr(&m);
        // Mixed feature dims exercise the side-by-side ctile offsets.
        let bs: Vec<DenseMatrix> = (0..3)
            .map(|i| DenseMatrix::random(96, 8 + 4 * i, 50 + i as u64))
            .collect();
        let total_n: usize = bs.iter().map(|b| b.ncols()).sum();
        let mut scratch = TileScratch::new();
        let (btile, ctiles) = scratch.ensure(total_n);
        let stages: Vec<BStage> = bs
            .iter()
            .map(|b| {
                let mut s = BStage::new();
                s.stage(b);
                s
            })
            .collect();
        let srefs: Vec<&BStage> = stages.iter().collect();
        let mut got: Vec<DenseMatrix> = bs
            .iter()
            .map(|b| DenseMatrix::zeros(96, b.ncols()))
            .collect();
        for w in 0..t.num_windows() {
            ctiles.iter_mut().for_each(|x| *x = 0.0);
            t.window_product_batch(w, &srefs, btile, ctiles);
            let lo = w * TILE;
            let hi = ((w + 1) * TILE).min(96);
            for r in lo..hi {
                let crow = &ctiles[(r - lo) * total_n..(r - lo + 1) * total_n];
                let mut off = 0;
                for (j, b) in bs.iter().enumerate() {
                    let n = b.ncols();
                    got[j].row_mut(r).copy_from_slice(&crow[off..off + n]);
                    off += n;
                }
            }
        }
        for (j, b) in bs.iter().enumerate() {
            assert_eq!(got[j], t.spmm(b).unwrap(), "rhs {j} diverged");
        }
    }

    /// The pre-change execution path, kept verbatim as the bit-equality
    /// oracle: gather raw B rows and let the re-rounding
    /// [`spmm_common::scalar::tf32_mma_8x8`] round both operands at use.
    fn reference_spmm(t: &BitTcf, b: &DenseMatrix) -> DenseMatrix {
        use spmm_common::scalar::tf32_mma_8x8;
        let n = b.ncols();
        let mut c = DenseMatrix::zeros(t.nrows(), n);
        let mut btile = vec![0.0f32; TILE * n];
        let mut ctile = vec![0.0f32; TILE * n];
        for w in 0..t.num_windows() {
            ctile.iter_mut().for_each(|x| *x = 0.0);
            for blk in t.window_blocks(w) {
                let a = t.decompress_block(blk);
                for (i, &col) in t.block_cols(blk).iter().enumerate() {
                    if col == PAD_COL {
                        btile[i * n..(i + 1) * n].iter_mut().for_each(|x| *x = 0.0);
                    } else {
                        btile[i * n..(i + 1) * n].copy_from_slice(b.row(col as usize));
                    }
                }
                tf32_mma_8x8(&a, &btile, &mut ctile, n);
            }
            let lo = w * TILE;
            let hi = ((w + 1) * TILE).min(t.nrows());
            for r in lo..hi {
                c.row_mut(r)
                    .copy_from_slice(&ctile[(r - lo) * n..(r - lo + 1) * n]);
            }
        }
        c
    }

    #[test]
    fn prerounded_execution_is_bit_identical_to_reference() {
        let m = uniform_random(200, 6.0, 21);
        let b = DenseMatrix::random(200, 20, 5);
        let t = BitTcf::from_csr(&m);
        let want = reference_spmm(&t, &b);
        // Non-prerounded format: rounds the A tile per block.
        assert_eq!(t.spmm(&b).unwrap(), want);
        // Prerounded format: rounds the values once at compile time.
        let mut pre = t.clone();
        pre.preround_values();
        assert!(pre.is_prerounded());
        assert_eq!(pre.spmm(&b).unwrap(), want, "prerounded parallel path");
        let mut seq = DenseMatrix::zeros(200, 20);
        pre.spmm_into_seq(&b, &mut seq, &mut TileScratch::new())
            .unwrap();
        assert_eq!(seq, want, "prerounded sequential path");
        // Prerounding twice is a no-op.
        let mut twice = pre.clone();
        twice.preround_values();
        assert_eq!(twice.values, pre.values);
    }

    #[test]
    fn prerounded_execution_handles_non_finite_inputs() {
        let mut coo = CooMatrix::new(16, 16);
        coo.push(0, 0, f32::NAN);
        coo.push(0, 3, f32::INFINITY);
        coo.push(1, 3, 1.0e-41);
        coo.push(2, 5, -0.0);
        coo.push(9, 1, 2.5);
        coo.push(15, 15, f32::NEG_INFINITY);
        let m = CsrMatrix::from_coo(&coo);
        let mut b = DenseMatrix::random(16, 9, 4);
        b.set(3, 0, f32::NAN);
        b.set(5, 2, f32::INFINITY);
        b.set(1, 8, 1.0e-42);
        let t = BitTcf::from_csr(&m);
        let want = reference_spmm(&t, &b);
        let mut pre = t.clone();
        pre.preround_values();
        let got = pre.spmm(&b).unwrap();
        for r in 0..16 {
            for c in 0..9 {
                let (g, w) = (got.get(r, c), want.get(r, c));
                // NaN payloads are unspecified under commutation, so
                // compare NaN-position-exact, everything else bitwise.
                assert!(
                    g.to_bits() == w.to_bits() || (g.is_nan() && w.is_nan()),
                    "({r},{c}): {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn spmm_into_rejects_misshapen_output() {
        let t = BitTcf::from_csr(&small());
        let b = DenseMatrix::zeros(12, 4);
        let mut bad = DenseMatrix::zeros(11, 4);
        assert!(t.spmm_into(&b, &mut bad).is_err());
        let mut bad2 = DenseMatrix::zeros(12, 5);
        assert!(t
            .spmm_into_seq(&b, &mut bad2, &mut TileScratch::new())
            .is_err());
    }

    #[test]
    fn partition_footprint_formula_matches_built_format() {
        let m = uniform_random(300, 7.0, 2);
        let wp = WindowPartition::build(&m);
        let t = BitTcf::from_partition(&m, &wp);
        assert_eq!(wp.bittcf_index_bytes(), t.index_bytes());
    }

    #[test]
    fn precision_modes_order_by_error() {
        use spmm_common::Precision;
        let m = uniform_random(128, 8.0, 7);
        let b = DenseMatrix::random(128, 16, 2);
        let t = BitTcf::from_csr(&m);
        let exact = m.spmm_dense(&b).unwrap();
        let mut errs = Vec::new();
        for p in [Precision::Fp32, Precision::Tf32, Precision::Bf16] {
            let c = t.spmm_with_precision(&b, p).unwrap();
            errs.push(c.max_abs_diff(&exact) as f64);
        }
        assert!(errs[0] < 1e-4, "FP32 path ~exact: {}", errs[0]);
        assert!(errs[1] <= errs[2], "TF32 <= BF16 error: {errs:?}");
        assert!(errs[2] > 0.0, "BF16 must actually round");
        // TF32 mode must agree with the default spmm.
        let via_default = t.spmm(&b).unwrap();
        let via_precision = t.spmm_with_precision(&b, Precision::Tf32).unwrap();
        assert_eq!(via_default, via_precision);
    }

    #[test]
    fn rebuild_windows_is_byte_identical_to_full_build() {
        let m = uniform_random(100, 5.0, 3);
        let wp = WindowPartition::build(&m);
        let t = BitTcf::from_partition(&m, &wp);
        // Perturb rows 17 and 98 (windows 2 and 12), including a NaN
        // payload so value splicing is checked at the bit level.
        let mut coo = m.to_coo();
        coo.push(17, 40, f32::NAN);
        coo.push(98, 1, -0.0);
        let m2 = CsrMatrix::from_coo(&coo);
        let mut touched = vec![false; wp.num_windows()];
        touched[2] = true;
        touched[12] = true;
        let wp2 = wp.rebuild(&m2, &touched);
        let rebuilt = t.rebuild_windows(&m2, &wp2, &touched);
        let scratch = BitTcf::from_partition(&m2, &wp2);
        assert_eq!(rebuilt.tc_local_bit, scratch.tc_local_bit);
        assert_eq!(rebuilt.sparse_a_to_b, scratch.sparse_a_to_b);
        assert_eq!(rebuilt.tc_offset, scratch.tc_offset);
        assert_eq!(
            rebuilt
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            scratch
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        // Pre-rounded source: one idempotent re-round re-unifies.
        let mut tp = t.clone();
        tp.preround_values();
        let mut rebuilt_p = tp.rebuild_windows(&m2, &wp2, &touched);
        assert!(!rebuilt_p.is_prerounded());
        rebuilt_p.preround_values();
        let mut scratch_p = scratch.clone();
        scratch_p.preround_values();
        assert_eq!(
            rebuilt_p
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            scratch_p
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
