//! Binary serialization of preprocessed TC formats.
//!
//! Preprocessing (reorder + conversion + planning) is the expensive part
//! of the pipeline; iterative applications amortize it across thousands
//! of multiplies *within* a run, and this module amortizes it across
//! runs: a preprocessed [`BitTcf`], [`Tcf`], or [`MeTcf`] round-trips
//! through a compact versioned binary stream (little-endian, no unsafe,
//! no external codec). These per-format codecs are also the "format
//! blob" section of the plan IR container (`spmm-kernels::ir`).

use crate::bittcf::BitTcf;
use crate::metcf::MeTcf;
use crate::tcf::Tcf;
use crate::window::TILE;
use spmm_common::{Result, SpmmError};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: "BTCF" + format version.
const MAGIC: [u8; 4] = *b"BTCF";
const VERSION: u32 = 1;

/// Magic + version for the TCF codec.
const TCF_MAGIC: [u8; 4] = *b"TCF1";
const TCF_VERSION: u32 = 1;

/// Magic + version for the ME-TCF codec.
const METCF_MAGIC: [u8; 4] = *b"METC";
const METCF_VERSION: u32 = 1;

/// Sanity bound on array lengths shared by every reader.
const CAP: u64 = 1 << 34;

fn put_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn put_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn get_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn put_u32_slice(w: &mut impl Write, v: &[u32]) -> Result<()> {
    put_u64(w, v.len() as u64)?;
    for &x in v {
        put_u32(w, x)?;
    }
    Ok(())
}

fn get_u32_vec(r: &mut impl Read, cap: u64) -> Result<Vec<u32>> {
    let len = get_u64(r)?;
    if len > cap {
        return Err(SpmmError::MalformedFormat {
            detail: format!("array length {len} exceeds sanity cap {cap}"),
        });
    }
    let mut v = Vec::with_capacity(len as usize);
    for _ in 0..len {
        v.push(get_u32(r)?);
    }
    Ok(v)
}

fn put_u8_slice(w: &mut impl Write, v: &[u8]) -> Result<()> {
    put_u64(w, v.len() as u64)?;
    w.write_all(v)?;
    Ok(())
}

fn get_u8_vec(r: &mut impl Read, cap: u64) -> Result<Vec<u8>> {
    let len = get_u64(r)?;
    if len > cap {
        return Err(SpmmError::MalformedFormat {
            detail: format!("array length {len} exceeds sanity cap {cap}"),
        });
    }
    let mut v = vec![0u8; len as usize];
    r.read_exact(&mut v)?;
    Ok(v)
}

fn put_f32_slice(w: &mut impl Write, v: &[f32]) -> Result<()> {
    put_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn get_f32_vec(r: &mut impl Read, cap: u64) -> Result<Vec<f32>> {
    let len = get_u64(r)?;
    if len > cap {
        return Err(SpmmError::MalformedFormat {
            detail: format!("array length {len} exceeds sanity cap {cap}"),
        });
    }
    let mut v = Vec::with_capacity(len as usize);
    let mut b = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        v.push(f32::from_le_bytes(b));
    }
    Ok(v)
}

fn check_magic(r: &mut impl Read, expected: [u8; 4], what: &str) -> Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != expected {
        return Err(SpmmError::MalformedFormat {
            detail: format!("not a {what} stream (bad magic)"),
        });
    }
    Ok(())
}

fn check_version(r: &mut impl Read, expected: u32, what: &str) -> Result<()> {
    let version = get_u32(r)?;
    if version != expected {
        return Err(SpmmError::MalformedFormat {
            detail: format!("unsupported {what} version {version}"),
        });
    }
    Ok(())
}

/// Serialize a BitTCF matrix.
pub fn write_bittcf<W: Write>(w: W, t: &BitTcf) -> Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(&MAGIC)?;
    put_u32(&mut w, VERSION)?;
    put_u64(&mut w, t.nrows() as u64)?;
    put_u64(&mut w, t.ncols() as u64)?;
    put_u32_slice(&mut w, &t.row_window_offset)?;
    put_u32_slice(&mut w, &t.tc_offset)?;
    put_u32_slice(&mut w, &t.sparse_a_to_b)?;
    put_u64(&mut w, t.tc_local_bit.len() as u64)?;
    for &bits in &t.tc_local_bit {
        put_u64(&mut w, bits)?;
    }
    put_u64(&mut w, t.values.len() as u64)?;
    for &v in &t.values {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Deserialize a BitTCF matrix, validating structural invariants.
pub fn read_bittcf<R: Read>(r: R) -> Result<BitTcf> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(SpmmError::MalformedFormat {
            detail: "not a BitTCF file (bad magic)".into(),
        });
    }
    let version = get_u32(&mut r)?;
    if version != VERSION {
        return Err(SpmmError::MalformedFormat {
            detail: format!("unsupported BitTCF version {version}"),
        });
    }
    let nrows = get_u64(&mut r)? as usize;
    let ncols = get_u64(&mut r)? as usize;
    const CAP: u64 = 1 << 34; // sanity bound on array lengths
    let row_window_offset = get_u32_vec(&mut r, CAP)?;
    let tc_offset = get_u32_vec(&mut r, CAP)?;
    let sparse_a_to_b = get_u32_vec(&mut r, CAP)?;
    let nbits = get_u64(&mut r)?;
    if nbits > CAP {
        return Err(SpmmError::MalformedFormat {
            detail: "bitmap array too large".into(),
        });
    }
    let mut tc_local_bit = Vec::with_capacity(nbits as usize);
    for _ in 0..nbits {
        tc_local_bit.push(get_u64(&mut r)?);
    }
    let nvals = get_u64(&mut r)?;
    if nvals > CAP {
        return Err(SpmmError::MalformedFormat {
            detail: "value array too large".into(),
        });
    }
    let mut values = Vec::with_capacity(nvals as usize);
    let mut b = [0u8; 4];
    for _ in 0..nvals {
        r.read_exact(&mut b)?;
        values.push(f32::from_le_bytes(b));
    }

    // Structural validation before constructing.
    let blocks = tc_local_bit.len();
    if tc_offset.len() != blocks + 1
        || sparse_a_to_b.len() != blocks * TILE
        || row_window_offset.len() != nrows.div_ceil(TILE) + 1
        || row_window_offset.last().copied().unwrap_or(0) as usize != blocks
        || tc_offset.last().copied().unwrap_or(0) as usize != values.len()
    {
        return Err(SpmmError::MalformedFormat {
            detail: "BitTCF arrays are inconsistent".into(),
        });
    }
    for b in 0..blocks {
        let span = tc_offset[b + 1].saturating_sub(tc_offset[b]);
        if tc_local_bit[b].count_ones() != span {
            return Err(SpmmError::MalformedFormat {
                detail: format!("block {b}: popcount != offset span"),
            });
        }
    }
    if !row_window_offset.windows(2).all(|w| w[0] <= w[1])
        || !tc_offset.windows(2).all(|w| w[0] <= w[1])
    {
        return Err(SpmmError::MalformedFormat {
            detail: "offsets not monotone".into(),
        });
    }

    Ok(BitTcf::from_raw_parts(
        nrows,
        ncols,
        row_window_offset,
        tc_offset,
        sparse_a_to_b,
        tc_local_bit,
        values,
    ))
}

/// Save to a file.
pub fn save_bittcf(path: impl AsRef<Path>, t: &BitTcf) -> Result<()> {
    write_bittcf(std::fs::File::create(path)?, t)
}

/// Load from a file.
pub fn load_bittcf(path: impl AsRef<Path>) -> Result<BitTcf> {
    read_bittcf(std::fs::File::open(path)?)
}

/// Serialize a TCF matrix.
pub fn write_tcf<W: Write>(w: W, t: &Tcf) -> Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(&TCF_MAGIC)?;
    put_u32(&mut w, TCF_VERSION)?;
    put_u64(&mut w, t.nrows() as u64)?;
    put_u64(&mut w, t.ncols() as u64)?;
    put_u32_slice(&mut w, &t.window_nnz_offset)?;
    put_u32_slice(&mut w, &t.edge_list)?;
    put_u32_slice(&mut w, &t.edge_to_column)?;
    put_u32_slice(&mut w, &t.edge_to_row)?;
    put_f32_slice(&mut w, &t.values)?;
    put_u32_slice(&mut w, &t.blocks_per_window)?;
    w.flush()?;
    Ok(())
}

/// Deserialize a TCF matrix, validating structural invariants.
pub fn read_tcf<R: Read>(r: R) -> Result<Tcf> {
    let mut r = BufReader::new(r);
    check_magic(&mut r, TCF_MAGIC, "TCF")?;
    check_version(&mut r, TCF_VERSION, "TCF")?;
    let nrows = get_u64(&mut r)? as usize;
    let ncols = get_u64(&mut r)? as usize;
    let window_nnz_offset = get_u32_vec(&mut r, CAP)?;
    let edge_list = get_u32_vec(&mut r, CAP)?;
    let edge_to_column = get_u32_vec(&mut r, CAP)?;
    let edge_to_row = get_u32_vec(&mut r, CAP)?;
    let values = get_f32_vec(&mut r, CAP)?;
    let blocks_per_window = get_u32_vec(&mut r, CAP)?;

    // Structural validation before constructing.
    let nnz = values.len();
    let num_windows = nrows.div_ceil(TILE);
    if window_nnz_offset.len() != num_windows + 1
        || blocks_per_window.len() != num_windows
        || edge_list.len() != nnz
        || edge_to_column.len() != nnz
        || edge_to_row.len() != nnz
        || window_nnz_offset.first().copied().unwrap_or(u32::MAX) != 0
        || window_nnz_offset.last().copied().unwrap_or(0) as usize != nnz
    {
        return Err(SpmmError::MalformedFormat {
            detail: "TCF arrays are inconsistent".into(),
        });
    }
    if !window_nnz_offset.windows(2).all(|w| w[0] <= w[1]) {
        return Err(SpmmError::MalformedFormat {
            detail: "TCF window offsets not monotone".into(),
        });
    }
    if edge_to_row.iter().any(|&e| e as usize >= nrows)
        || edge_list.iter().any(|&c| c as usize >= ncols)
    {
        return Err(SpmmError::MalformedFormat {
            detail: "TCF edge index out of bounds".into(),
        });
    }
    for w in 0..num_windows {
        let span = window_nnz_offset[w] as usize..window_nnz_offset[w + 1] as usize;
        let cap = blocks_per_window[w] as usize * TILE;
        if edge_to_column[span].iter().any(|&c| c as usize >= cap) {
            return Err(SpmmError::MalformedFormat {
                detail: format!("TCF window {w}: squeezed column beyond its blocks"),
            });
        }
    }

    Ok(Tcf::from_raw_parts(
        nrows,
        ncols,
        window_nnz_offset,
        edge_list,
        edge_to_column,
        edge_to_row,
        values,
        blocks_per_window,
    ))
}

/// Serialize an ME-TCF matrix.
pub fn write_metcf<W: Write>(w: W, t: &MeTcf) -> Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(&METCF_MAGIC)?;
    put_u32(&mut w, METCF_VERSION)?;
    put_u64(&mut w, t.nrows() as u64)?;
    put_u64(&mut w, t.ncols() as u64)?;
    put_u32_slice(&mut w, &t.row_window_offset)?;
    put_u32_slice(&mut w, &t.tc_offset)?;
    put_u32_slice(&mut w, &t.sparse_a_to_b)?;
    put_u8_slice(&mut w, &t.tc_local_id)?;
    put_f32_slice(&mut w, &t.values)?;
    w.flush()?;
    Ok(())
}

/// Deserialize an ME-TCF matrix, validating structural invariants.
pub fn read_metcf<R: Read>(r: R) -> Result<MeTcf> {
    let mut r = BufReader::new(r);
    check_magic(&mut r, METCF_MAGIC, "ME-TCF")?;
    check_version(&mut r, METCF_VERSION, "ME-TCF")?;
    let nrows = get_u64(&mut r)? as usize;
    let ncols = get_u64(&mut r)? as usize;
    let row_window_offset = get_u32_vec(&mut r, CAP)?;
    let tc_offset = get_u32_vec(&mut r, CAP)?;
    let sparse_a_to_b = get_u32_vec(&mut r, CAP)?;
    let tc_local_id = get_u8_vec(&mut r, CAP)?;
    let values = get_f32_vec(&mut r, CAP)?;

    // Structural validation before constructing.
    let blocks = tc_offset.len().saturating_sub(1);
    if tc_offset.is_empty()
        || sparse_a_to_b.len() != blocks * TILE
        || row_window_offset.len() != nrows.div_ceil(TILE) + 1
        || row_window_offset.last().copied().unwrap_or(0) as usize != blocks
        || tc_offset.last().copied().unwrap_or(0) as usize != values.len()
        || tc_local_id.len() != values.len()
    {
        return Err(SpmmError::MalformedFormat {
            detail: "ME-TCF arrays are inconsistent".into(),
        });
    }
    if !row_window_offset.windows(2).all(|w| w[0] <= w[1])
        || !tc_offset.windows(2).all(|w| w[0] <= w[1])
    {
        return Err(SpmmError::MalformedFormat {
            detail: "ME-TCF offsets not monotone".into(),
        });
    }
    if tc_local_id.iter().any(|&id| id as usize >= TILE * TILE) {
        return Err(SpmmError::MalformedFormat {
            detail: "ME-TCF local id beyond the 8x8 tile".into(),
        });
    }
    for b in 0..blocks {
        let span = tc_offset[b] as usize..tc_offset[b + 1] as usize;
        // Local ids are unique and position-sorted within a block.
        if !tc_local_id[span].windows(2).all(|w| w[0] < w[1]) {
            return Err(SpmmError::MalformedFormat {
                detail: format!("ME-TCF block {b}: local ids not strictly increasing"),
            });
        }
    }

    Ok(MeTcf::from_raw_parts(
        nrows,
        ncols,
        row_window_offset,
        tc_offset,
        sparse_a_to_b,
        tc_local_id,
        values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen::uniform_random;

    #[test]
    fn roundtrip_through_memory() {
        let m = uniform_random(300, 7.0, 1);
        let t = BitTcf::from_csr(&m);
        let mut buf = Vec::new();
        write_bittcf(&mut buf, &t).unwrap();
        let rt = read_bittcf(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(t, rt);
        assert_eq!(rt.to_csr(), m, "full fidelity");
    }

    #[test]
    fn roundtrip_through_file() {
        let m = uniform_random(100, 4.0, 2);
        let t = BitTcf::from_csr(&m);
        let path = std::env::temp_dir().join("spmm_bittcf_io_test.btcf");
        save_bittcf(&path, &t).unwrap();
        assert_eq!(load_bittcf(&path).unwrap(), t);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(read_bittcf(std::io::Cursor::new(b"nope".to_vec())).is_err());
        // Truncate a valid stream at every eighth byte: must error, never
        // panic or return success.
        let m = uniform_random(64, 4.0, 3);
        let t = BitTcf::from_csr(&m);
        let mut buf = Vec::new();
        write_bittcf(&mut buf, &t).unwrap();
        for cut in (5..buf.len() - 1).step_by(8) {
            let r = read_bittcf(std::io::Cursor::new(buf[..cut].to_vec()));
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn rejects_corrupted_bitmap() {
        let m = uniform_random(64, 4.0, 4);
        let t = BitTcf::from_csr(&m);
        let mut buf = Vec::new();
        write_bittcf(&mut buf, &t).unwrap();
        // Flip a bit somewhere in the middle (bitmap/offset region).
        let mid = buf.len() / 2;
        buf[mid] ^= 0x10;
        // Either a structural invariant fires, or (if only a value was
        // touched) the matrix still parses; both are acceptable, but a
        // panic is not.
        let _ = read_bittcf(std::io::Cursor::new(buf));
    }

    #[test]
    fn rejects_wrong_version() {
        let m = uniform_random(32, 3.0, 5);
        let t = BitTcf::from_csr(&m);
        let mut buf = Vec::new();
        write_bittcf(&mut buf, &t).unwrap();
        buf[4] = 99; // version field
        assert!(matches!(
            read_bittcf(std::io::Cursor::new(buf)),
            Err(SpmmError::MalformedFormat { .. })
        ));
    }

    #[test]
    fn tcf_roundtrip_through_memory() {
        let m = uniform_random(200, 6.0, 11);
        let t = Tcf::from_csr(&m);
        let mut buf = Vec::new();
        write_tcf(&mut buf, &t).unwrap();
        let rt = read_tcf(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(t, rt);
        assert_eq!(rt.to_csr(), m, "full fidelity");
    }

    #[test]
    fn metcf_roundtrip_through_memory() {
        let m = uniform_random(200, 6.0, 12);
        let t = MeTcf::from_csr(&m);
        let mut buf = Vec::new();
        write_metcf(&mut buf, &t).unwrap();
        let rt = read_metcf(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(t, rt);
        assert_eq!(rt.to_csr(), m, "full fidelity");
    }

    #[test]
    fn tcf_and_metcf_reject_truncation_and_cross_magic() {
        let m = uniform_random(64, 4.0, 13);
        let t = Tcf::from_csr(&m);
        let me = MeTcf::from_csr(&m);
        let mut tb = Vec::new();
        write_tcf(&mut tb, &t).unwrap();
        let mut mb = Vec::new();
        write_metcf(&mut mb, &me).unwrap();
        for cut in (5..tb.len() - 1).step_by(16) {
            assert!(
                read_tcf(std::io::Cursor::new(tb[..cut].to_vec())).is_err(),
                "TCF truncation at {cut} must fail"
            );
        }
        for cut in (5..mb.len() - 1).step_by(16) {
            assert!(
                read_metcf(std::io::Cursor::new(mb[..cut].to_vec())).is_err(),
                "ME-TCF truncation at {cut} must fail"
            );
        }
        // One codec's stream is not another's.
        assert!(read_metcf(std::io::Cursor::new(tb.clone())).is_err());
        assert!(read_tcf(std::io::Cursor::new(mb.clone())).is_err());
        assert!(read_bittcf(std::io::Cursor::new(tb)).is_err());
    }

    #[test]
    fn tcf_and_metcf_reject_wrong_version() {
        let m = uniform_random(32, 3.0, 14);
        let mut tb = Vec::new();
        write_tcf(&mut tb, &Tcf::from_csr(&m)).unwrap();
        tb[4] = 42;
        assert!(matches!(
            read_tcf(std::io::Cursor::new(tb)),
            Err(SpmmError::MalformedFormat { .. })
        ));
        let mut mb = Vec::new();
        write_metcf(&mut mb, &MeTcf::from_csr(&m)).unwrap();
        mb[4] = 42;
        assert!(matches!(
            read_metcf(std::io::Cursor::new(mb)),
            Err(SpmmError::MalformedFormat { .. })
        ));
    }
}
