//! ME-TCF — DTC-SpMM's memory-efficient TC format (the baseline BitTCF
//! improves upon).
//!
//! Same RowWindow/TCOffset/SparseAToB skeleton as BitTCF, but non-zero
//! positions are stored as one `int8` *per nnz* (`TCLocalId`): a block
//! with `k` non-zeros costs `k` bytes of position data versus BitTCF's
//! flat 8 bytes, so ME-TCF loses ground as blocks densify (> 8 nnz per
//! block) — the effect Figure 12 measures.

use crate::scratch::{BStage, TileScratch};
use crate::window::{WindowPartition, PAD_COL, TILE};
use spmm_common::simd::{mma_8x8_prerounded_tier, mma_8x8_rows_tier, to_tf32_slice_tier, IsaTier};
use spmm_common::{Result, SpmmError};
use spmm_matrix::{CooMatrix, CsrMatrix, DenseMatrix};

/// The ME-TCF compressed sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MeTcf {
    nrows: usize,
    ncols: usize,
    /// Starting TC block per RowWindow.
    pub row_window_offset: Vec<u32>,
    /// Starting nnz per TC block.
    pub tc_offset: Vec<u32>,
    /// Original column per block column slot (padded).
    pub sparse_a_to_b: Vec<u32>,
    /// Local position (`row·8 + col`) of each nnz, one `u8` per nnz.
    pub tc_local_id: Vec<u8>,
    /// Values in block order, position-sorted.
    pub values: Vec<f32>,
    /// Whether `values` are already TF32-rounded
    /// ([`MeTcf::preround_values`]).
    values_tf32: bool,
}

impl MeTcf {
    /// Convert from CSR.
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let wp = WindowPartition::build(m);
        Self::from_partition(m, &wp)
    }

    /// Convert from CSR with a shared partition. Windows are
    /// independent, so each one's blocks are collected and sorted in
    /// parallel and stitched in window order — byte-identical to the
    /// former sequential construction.
    pub fn from_partition(m: &CsrMatrix, wp: &WindowPartition) -> Self {
        use rayon::prelude::*;
        let num_windows = wp.num_windows();
        let num_blocks = wp.num_tc_blocks();

        // Per window: the block column slots plus the position-sorted
        // (id, value) entries of each block.
        type WindowBlocks = (Vec<u32>, Vec<Vec<(u8, f32)>>);
        let per_window: Vec<WindowBlocks> = (0..num_windows)
            .into_par_iter()
            .map(|w| {
                let blocks = wp.window_blocks(w);
                let nb = blocks.len();
                let mut cols_out = vec![PAD_COL; nb * TILE];
                for bi in 0..nb {
                    let cols = wp.block_columns(w, bi);
                    cols_out[bi * TILE..(bi + 1) * TILE].copy_from_slice(&cols);
                }
                let mut entries: Vec<Vec<(u8, f32)>> = vec![Vec::new(); nb];
                let wcols = wp.window_columns(w);
                let lo = w * TILE;
                let hi = ((w + 1) * TILE).min(m.nrows());
                for r in lo..hi {
                    let lr = (r - lo) as u8;
                    let (cols, vals) = m.row(r);
                    for (&c, &v) in cols.iter().zip(vals.iter()) {
                        let pos = wcols.binary_search(&c).expect("column must be in window");
                        let lc = (pos % TILE) as u8;
                        entries[pos / TILE].push((lr * TILE as u8 + lc, v));
                    }
                }
                for e in entries.iter_mut() {
                    // Local ids are unique within a block, so the
                    // unstable sort is deterministic.
                    e.sort_unstable_by_key(|&(id, _)| id);
                }
                (cols_out, entries)
            })
            .collect();

        let mut row_window_offset = Vec::with_capacity(num_windows + 1);
        row_window_offset.push(0u32);
        let mut sparse_a_to_b = Vec::with_capacity(num_blocks * TILE);
        let mut tc_offset = Vec::with_capacity(num_blocks + 1);
        let mut tc_local_id = Vec::with_capacity(m.nnz());
        let mut values = Vec::with_capacity(m.nnz());
        for (w, (cols, entries)) in per_window.iter().enumerate() {
            row_window_offset.push(wp.window_blocks(w).end as u32);
            sparse_a_to_b.extend_from_slice(cols);
            for block in entries {
                tc_offset.push((values.len()) as u32);
                for &(id, v) in block {
                    tc_local_id.push(id);
                    values.push(v);
                }
            }
        }
        tc_offset.push(values.len() as u32);

        MeTcf {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_window_offset,
            tc_offset,
            sparse_a_to_b,
            tc_local_id,
            values,
            values_tf32: false,
        }
    }

    /// Incremental rebuild after an edge-delta update (see
    /// [`crate::BitTcf::rebuild_windows`] for the contract): untouched
    /// windows copy their SparseAToB / local-id / value spans from
    /// `self`, touched windows re-run the per-window converter against
    /// `m_new` + `wp_new`, and `TCOffset` is restitched. The result
    /// reports [`MeTcf::is_prerounded`] `false`; one idempotent
    /// [`MeTcf::preround_values_tier`] pass makes it byte-identical to
    /// a pre-rounded from-scratch build.
    pub fn rebuild_windows(
        &self,
        m_new: &CsrMatrix,
        wp_new: &WindowPartition,
        touched: &[bool],
    ) -> MeTcf {
        assert_eq!(m_new.nrows(), self.nrows, "deltas cannot change nrows");
        assert_eq!(m_new.ncols(), self.ncols, "deltas cannot change ncols");
        assert_eq!(wp_new.num_windows(), self.num_windows());
        assert_eq!(touched.len(), self.num_windows(), "one flag per window");
        let num_windows = self.num_windows();
        let num_blocks = wp_new.num_tc_blocks();

        let mut row_window_offset = Vec::with_capacity(num_windows + 1);
        row_window_offset.push(0u32);
        let mut sparse_a_to_b = Vec::with_capacity(num_blocks * TILE);
        let mut tc_offset = Vec::with_capacity(num_blocks + 1);
        let mut tc_local_id = Vec::with_capacity(m_new.nnz());
        let mut values = Vec::with_capacity(m_new.nnz());
        for (w, &is_touched) in touched.iter().enumerate() {
            row_window_offset.push(wp_new.window_blocks(w).end as u32);
            if !is_touched {
                let blocks = self.window_blocks(w);
                sparse_a_to_b
                    .extend_from_slice(&self.sparse_a_to_b[blocks.start * TILE..blocks.end * TILE]);
                for b in blocks.clone() {
                    let span = self.tc_offset[b] as usize..self.tc_offset[b + 1] as usize;
                    tc_offset.push(values.len() as u32);
                    tc_local_id.extend_from_slice(&self.tc_local_id[span.clone()]);
                    values.extend_from_slice(&self.values[span]);
                }
                continue;
            }
            let blocks = wp_new.window_blocks(w);
            let nb = blocks.len();
            for bi in 0..nb {
                sparse_a_to_b.extend_from_slice(&wp_new.block_columns(w, bi));
            }
            let mut entries: Vec<Vec<(u8, f32)>> = vec![Vec::new(); nb];
            let wcols = wp_new.window_columns(w);
            let lo = w * TILE;
            let hi = ((w + 1) * TILE).min(m_new.nrows());
            for r in lo..hi {
                let lr = (r - lo) as u8;
                let (cols, vals) = m_new.row(r);
                for (&c, &v) in cols.iter().zip(vals.iter()) {
                    let pos = wcols.binary_search(&c).expect("column must be in window");
                    let lc = (pos % TILE) as u8;
                    entries[pos / TILE].push((lr * TILE as u8 + lc, v));
                }
            }
            for block in entries.iter_mut() {
                block.sort_unstable_by_key(|&(id, _)| id);
                tc_offset.push(values.len() as u32);
                for &(id, v) in block.iter() {
                    tc_local_id.push(id);
                    values.push(v);
                }
            }
        }
        tc_offset.push(values.len() as u32);

        MeTcf {
            nrows: self.nrows,
            ncols: self.ncols,
            row_window_offset,
            tc_offset,
            sparse_a_to_b,
            tc_local_id,
            values,
            values_tf32: false,
        }
    }

    /// Reassemble from raw arrays (used by the binary loader, which
    /// validates the invariants before calling).
    pub(crate) fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_window_offset: Vec<u32>,
        tc_offset: Vec<u32>,
        sparse_a_to_b: Vec<u32>,
        tc_local_id: Vec<u8>,
        values: Vec<f32>,
    ) -> Self {
        MeTcf {
            nrows,
            ncols,
            row_window_offset,
            tc_offset,
            sparse_a_to_b,
            tc_local_id,
            values,
            values_tf32: false,
        }
    }

    /// Round the stored values to TF32 in place (idempotent, so every
    /// multiply stays bit-identical; lossy for [`MeTcf::to_csr`] — see
    /// [`crate::BitTcf::preround_values`]).
    pub fn preround_values(&mut self) {
        self.preround_values_tier(IsaTier::probe());
    }

    /// [`MeTcf::preround_values`] at an explicit ISA tier.
    pub fn preround_values_tier(&mut self, tier: IsaTier) {
        if !self.values_tf32 {
            to_tf32_slice_tier(&mut self.values, tier);
            self.values_tf32 = true;
        }
    }

    /// Whether the stored values are already TF32-rounded.
    #[inline]
    pub fn is_prerounded(&self) -> bool {
        self.values_tf32
    }

    /// Rows of the represented matrix.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the represented matrix.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of RowWindows.
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.row_window_offset.len() - 1
    }

    /// Number of TC blocks.
    #[inline]
    pub fn num_tc_blocks(&self) -> usize {
        self.tc_offset.len() - 1
    }

    /// TC blocks of window `w`.
    #[inline]
    pub fn window_blocks(&self, w: usize) -> std::ops::Range<usize> {
        self.row_window_offset[w] as usize..self.row_window_offset[w + 1] as usize
    }

    /// Index-structure footprint in bytes: the BitTCF skeleton with the
    /// bitmap replaced by one byte per nnz.
    pub fn index_bytes(&self) -> usize {
        (self.nrows.div_ceil(TILE) + 1 + self.num_tc_blocks() + 1 + self.num_tc_blocks() * TILE) * 4
            + self.nnz()
    }

    /// Decompress block `b` by scattering each nnz to its `TCLocalId`
    /// position (the DTC-SpMM decode path — one scatter per nnz, versus
    /// BitTCF's branch-free popcount).
    pub fn decompress_block(&self, b: usize) -> [f32; TILE * TILE] {
        let mut tile = [0.0f32; TILE * TILE];
        for k in self.tc_offset[b] as usize..self.tc_offset[b + 1] as usize {
            tile[self.tc_local_id[k] as usize] = self.values[k];
        }
        tile
    }

    /// Functional SpMM through the TC path (same numerics as
    /// [`crate::BitTcf::spmm`]).
    pub fn spmm(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        let mut c = DenseMatrix::zeros(self.nrows, b.ncols());
        self.spmm_into(b, &mut c)?;
        Ok(c)
    }

    /// [`MeTcf::spmm`] writing into a caller-provided output, parallel
    /// over RowWindows with one [`TileScratch`] per worker (windows own
    /// disjoint output rows, so this computes the same floats as the
    /// sequential path).
    pub fn spmm_into(&self, b: &DenseMatrix, c: &mut DenseMatrix) -> Result<()> {
        self.check_shapes(b.nrows(), b.ncols(), c)?;
        let mut stage = BStage::new();
        stage.stage(b);
        self.spmm_into_staged(&stage, c)
    }

    /// The window-parallel SpMM over a pre-rounded B stage (see
    /// [`crate::BitTcf::spmm_into_staged`]).
    pub fn spmm_into_staged(&self, stage: &BStage, c: &mut DenseMatrix) -> Result<()> {
        self.spmm_into_staged_tier(stage, c, IsaTier::probe())
    }

    /// [`MeTcf::spmm_into_staged`] with an explicit ISA tier (see
    /// [`crate::BitTcf::spmm_into_staged_tier`]).
    pub fn spmm_into_staged_tier(
        &self,
        stage: &BStage,
        c: &mut DenseMatrix,
        tier: IsaTier,
    ) -> Result<()> {
        use rayon::prelude::*;
        self.check_shapes(stage.nrows(), stage.ncols(), c)?;
        let n = stage.ncols();
        c.as_mut_slice()
            .par_chunks_mut(TILE * n)
            .enumerate()
            .for_each_init(
                || TileScratch::with_feature_dim(n),
                |scratch, (w, cslab)| {
                    let (_btile, ctile) = scratch.ensure(n);
                    ctile.iter_mut().for_each(|x| *x = 0.0);
                    self.window_product(w, stage, ctile, tier);
                    cslab.copy_from_slice(&ctile[..cslab.len()]);
                },
            );
        Ok(())
    }

    /// Sequential zero-allocation SpMM with caller-owned scratch.
    pub fn spmm_into_seq(
        &self,
        b: &DenseMatrix,
        c: &mut DenseMatrix,
        scratch: &mut TileScratch,
    ) -> Result<()> {
        self.spmm_into_seq_tier(b, c, scratch, IsaTier::probe())
    }

    /// [`MeTcf::spmm_into_seq`] with an explicit ISA tier.
    pub fn spmm_into_seq_tier(
        &self,
        b: &DenseMatrix,
        c: &mut DenseMatrix,
        scratch: &mut TileScratch,
        tier: IsaTier,
    ) -> Result<()> {
        self.check_shapes(b.nrows(), b.ncols(), c)?;
        let n = b.ncols();
        scratch.stage_b_tier(b, tier);
        let (stage, ctile) = scratch.staged_parts(n);
        for w in 0..self.num_windows() {
            ctile.iter_mut().for_each(|x| *x = 0.0);
            self.window_product(w, stage, ctile, tier);
            let lo = w * TILE;
            let hi = ((w + 1) * TILE).min(self.nrows);
            for r in lo..hi {
                c.row_mut(r)
                    .copy_from_slice(&ctile[(r - lo) * n..(r - lo + 1) * n]);
            }
        }
        Ok(())
    }

    /// Accumulate window `w`'s TC blocks into `ctile` (pre-rounded
    /// operands, gather-free pure mul-add MMA — see
    /// [`crate::BitTcf::window_product`] for the rounding and padding
    /// contracts).
    fn window_product(&self, w: usize, stage: &BStage, ctile: &mut [f32], tier: IsaTier) {
        let n = stage.ncols();
        for blk in self.window_blocks(w) {
            let mut a = self.decompress_block(blk);
            if !self.values_tf32 {
                to_tf32_slice_tier(&mut a, tier);
            }
            let base = blk * TILE;
            let rows: [&[f32]; TILE] = std::array::from_fn(|i| {
                let col = self.sparse_a_to_b[base + i];
                if col == PAD_COL {
                    &[][..]
                } else {
                    stage.row(col as usize)
                }
            });
            mma_8x8_rows_tier(&a, &rows, ctile, n, tier);
        }
    }

    /// Accumulate window `w` into a combined ctile for the whole batch,
    /// scattering each block's nnz **once** and running **one wide MMA**
    /// over the concatenated columns (see
    /// [`crate::BitTcf::window_product_batch`] for the layout contract
    /// and why the batched path keeps the gather; bit-identical to
    /// per-RHS [`MeTcf::spmm_into_seq`]).
    pub fn window_product_batch(
        &self,
        w: usize,
        stages: &[&BStage],
        btile: &mut [f32],
        ctiles: &mut [f32],
    ) {
        self.window_product_batch_tier(w, stages, btile, ctiles, IsaTier::probe())
    }

    /// [`MeTcf::window_product_batch`] with an explicit ISA tier.
    pub fn window_product_batch_tier(
        &self,
        w: usize,
        stages: &[&BStage],
        btile: &mut [f32],
        ctiles: &mut [f32],
        tier: IsaTier,
    ) {
        let total_n: usize = stages.iter().map(|s| s.ncols()).sum();
        for blk in self.window_blocks(w) {
            let mut a = self.decompress_block(blk);
            if !self.values_tf32 {
                to_tf32_slice_tier(&mut a, tier);
            }
            for i in 0..TILE {
                let col = self.sparse_a_to_b[blk * TILE + i];
                let dst = &mut btile[i * total_n..(i + 1) * total_n];
                if col == PAD_COL {
                    dst.fill(0.0);
                } else {
                    let mut off = 0;
                    for s in stages {
                        let n = s.ncols();
                        dst[off..off + n].copy_from_slice(s.row(col as usize));
                        off += n;
                    }
                }
            }
            mma_8x8_prerounded_tier(
                &a,
                &btile[..TILE * total_n],
                &mut ctiles[..TILE * total_n],
                total_n,
                tier,
            );
        }
    }

    fn check_shapes(&self, b_rows: usize, b_cols: usize, c: &DenseMatrix) -> Result<()> {
        if self.ncols != b_rows || c.nrows() != self.nrows || c.ncols() != b_cols {
            return Err(SpmmError::Shape {
                context: format!(
                    "A is {}x{}, B is {}x{}, C is {}x{}",
                    self.nrows,
                    self.ncols,
                    b_rows,
                    b_cols,
                    c.nrows(),
                    c.ncols()
                ),
            });
        }
        Ok(())
    }

    /// Reconstruct CSR (round-trip for tests).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for w in 0..self.num_windows() {
            let lo = w * TILE;
            for blk in self.window_blocks(w) {
                for k in self.tc_offset[blk] as usize..self.tc_offset[blk + 1] as usize {
                    let id = self.tc_local_id[k] as usize;
                    let (lr, lc) = (id / TILE, id % TILE);
                    let col = self.sparse_a_to_b[blk * TILE + lc];
                    coo.push((lo + lr) as u32, col, self.values[k]);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bittcf::BitTcf;
    use spmm_matrix::gen::uniform_random;

    #[test]
    fn roundtrip_csr() {
        let m = uniform_random(150, 5.0, 2);
        assert_eq!(MeTcf::from_csr(&m).to_csr(), m);
    }

    #[test]
    fn same_block_structure_as_bittcf() {
        let m = uniform_random(256, 8.0, 7);
        let me = MeTcf::from_csr(&m);
        let bit = BitTcf::from_csr(&m);
        assert_eq!(me.num_tc_blocks(), bit.num_tc_blocks());
        assert_eq!(me.row_window_offset, bit.row_window_offset);
        assert_eq!(me.tc_offset, bit.tc_offset);
        assert_eq!(me.sparse_a_to_b, bit.sparse_a_to_b);
        for b in 0..me.num_tc_blocks() {
            assert_eq!(me.decompress_block(b), bit.decompress_block(b));
        }
    }

    #[test]
    fn spmm_agrees_with_bittcf() {
        let m = uniform_random(120, 6.0, 4);
        let b = DenseMatrix::random(120, 16, 3);
        let me = MeTcf::from_csr(&m).spmm(&b).unwrap();
        let bit = BitTcf::from_csr(&m).spmm(&b).unwrap();
        assert_eq!(me, bit, "identical TC-path numerics expected");
    }

    #[test]
    fn byte_accounting_grows_with_nnz_unlike_bittcf() {
        // Dense 8x8 blocks: ME-TCF pays 64 position bytes per block,
        // BitTCF pays 8.
        let mut coo = spmm_matrix::CooMatrix::new(64, 64);
        for r in 0..64u32 {
            for c in 0..8u32 {
                coo.push(r, c, 1.0);
            }
        }
        let m = CsrMatrix::from_coo(&coo);
        let me = MeTcf::from_csr(&m);
        let bit = BitTcf::from_csr(&m);
        assert!(me.index_bytes() > bit.index_bytes());
    }

    #[test]
    fn rebuild_windows_is_byte_identical_to_full_build() {
        let m = uniform_random(100, 5.0, 3);
        let wp = WindowPartition::build(&m);
        let t = MeTcf::from_partition(&m, &wp);
        let mut coo = m.to_coo();
        coo.push(17, 40, f32::NAN);
        coo.push(98, 1, -0.0);
        let m2 = CsrMatrix::from_coo(&coo);
        let mut touched = vec![false; wp.num_windows()];
        touched[2] = true;
        touched[12] = true;
        let wp2 = wp.rebuild(&m2, &touched);
        let rebuilt = t.rebuild_windows(&m2, &wp2, &touched);
        let scratch = MeTcf::from_partition(&m2, &wp2);
        assert_eq!(rebuilt.row_window_offset, scratch.row_window_offset);
        assert_eq!(rebuilt.tc_offset, scratch.tc_offset);
        assert_eq!(rebuilt.sparse_a_to_b, scratch.sparse_a_to_b);
        assert_eq!(rebuilt.tc_local_id, scratch.tc_local_id);
        assert_eq!(
            rebuilt
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            scratch
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
