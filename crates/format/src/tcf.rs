//! TCF — TC-GNN's original tensor-core format (the Figure-12 baseline).
//!
//! TC-GNN keeps three *per-edge* arrays alongside the window pointers:
//! `edgeList` (original column), `edgeToColumn` (squeezed column within
//! the window) and `edgeToRow` (row of the edge), i.e. 12 bytes per nnz
//! plus the window pointer — the redundancy both ME-TCF and BitTCF
//! eliminate.

use crate::scratch::BStage;
use crate::window::{WindowPartition, TILE};
use spmm_common::simd::{axpy_tier, to_tf32_slice_tier, IsaTier};
use spmm_common::{Result, SpmmError};
use spmm_matrix::{CooMatrix, CsrMatrix, DenseMatrix};

/// The TCF compressed sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tcf {
    nrows: usize,
    ncols: usize,
    /// Starting nnz of each RowWindow (`⌈M/8⌉ + 1` entries, TC-GNN's
    /// `nodePointer` analog).
    pub window_nnz_offset: Vec<u32>,
    /// Original column index of each nnz (TC-GNN `edgeList`).
    pub edge_list: Vec<u32>,
    /// Squeezed column of each nnz within its window (`edgeToColumn`).
    pub edge_to_column: Vec<u32>,
    /// Row of each nnz (`edgeToRow`).
    pub edge_to_row: Vec<u32>,
    /// Values, window order.
    pub values: Vec<f32>,
    /// TC blocks per window (derived; `blockPartition` in TC-GNN).
    pub blocks_per_window: Vec<u32>,
    /// Whether `values` are already TF32-rounded
    /// ([`Tcf::preround_values`]).
    values_tf32: bool,
}

impl Tcf {
    /// Convert from CSR.
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let wp = WindowPartition::build(m);
        Self::from_partition(m, &wp)
    }

    /// Convert from CSR with a shared partition. Each window's edge
    /// arrays are computed in parallel and stitched in window order —
    /// byte-identical to the former sequential construction.
    pub fn from_partition(m: &CsrMatrix, wp: &WindowPartition) -> Self {
        use rayon::prelude::*;
        let num_windows = wp.num_windows();

        struct WindowEdges {
            edge_list: Vec<u32>,
            edge_to_column: Vec<u32>,
            edge_to_row: Vec<u32>,
            values: Vec<f32>,
            blocks: u32,
        }
        let per_window: Vec<WindowEdges> = (0..num_windows)
            .into_par_iter()
            .map(|w| {
                let wcols = wp.window_columns(w);
                let lo = w * TILE;
                let hi = ((w + 1) * TILE).min(m.nrows());
                let mut out = WindowEdges {
                    edge_list: Vec::new(),
                    edge_to_column: Vec::new(),
                    edge_to_row: Vec::new(),
                    values: Vec::new(),
                    blocks: wcols.len().div_ceil(TILE) as u32,
                };
                for r in lo..hi {
                    let (cols, vals) = m.row(r);
                    for (&c, &v) in cols.iter().zip(vals.iter()) {
                        let pos = wcols.binary_search(&c).expect("column in window") as u32;
                        out.edge_list.push(c);
                        out.edge_to_column.push(pos);
                        out.edge_to_row.push(r as u32);
                        out.values.push(v);
                    }
                }
                out
            })
            .collect();

        let mut window_nnz_offset = Vec::with_capacity(num_windows + 1);
        window_nnz_offset.push(0u32);
        let mut edge_list = Vec::with_capacity(m.nnz());
        let mut edge_to_column = Vec::with_capacity(m.nnz());
        let mut edge_to_row = Vec::with_capacity(m.nnz());
        let mut values = Vec::with_capacity(m.nnz());
        let mut blocks_per_window = Vec::with_capacity(num_windows);
        for we in &per_window {
            blocks_per_window.push(we.blocks);
            edge_list.extend_from_slice(&we.edge_list);
            edge_to_column.extend_from_slice(&we.edge_to_column);
            edge_to_row.extend_from_slice(&we.edge_to_row);
            values.extend_from_slice(&we.values);
            window_nnz_offset.push(values.len() as u32);
        }
        Tcf {
            nrows: m.nrows(),
            ncols: m.ncols(),
            window_nnz_offset,
            edge_list,
            edge_to_column,
            edge_to_row,
            values,
            blocks_per_window,
            values_tf32: false,
        }
    }

    /// Incremental rebuild after an edge-delta update (see
    /// [`crate::BitTcf::rebuild_windows`] for the contract): untouched
    /// windows copy their `window_nnz_offset[w]..window_nnz_offset[w+1]`
    /// spans of all four per-edge arrays from `self` (`edge_to_row`
    /// holds global row ids, which stay valid because row indices never
    /// shift under an edge delta), touched windows re-run the per-window
    /// converter against `m_new` + `wp_new`, and the offsets are
    /// restitched. The result reports [`Tcf::is_prerounded`] `false`;
    /// one idempotent [`Tcf::preround_values_tier`] pass makes it
    /// byte-identical to a pre-rounded from-scratch build.
    pub fn rebuild_windows(
        &self,
        m_new: &CsrMatrix,
        wp_new: &WindowPartition,
        touched: &[bool],
    ) -> Tcf {
        assert_eq!(m_new.nrows(), self.nrows, "deltas cannot change nrows");
        assert_eq!(m_new.ncols(), self.ncols, "deltas cannot change ncols");
        assert_eq!(wp_new.num_windows(), self.num_windows());
        assert_eq!(touched.len(), self.num_windows(), "one flag per window");
        let num_windows = self.num_windows();

        let mut window_nnz_offset = Vec::with_capacity(num_windows + 1);
        window_nnz_offset.push(0u32);
        let mut edge_list = Vec::with_capacity(m_new.nnz());
        let mut edge_to_column = Vec::with_capacity(m_new.nnz());
        let mut edge_to_row = Vec::with_capacity(m_new.nnz());
        let mut values = Vec::with_capacity(m_new.nnz());
        let mut blocks_per_window = Vec::with_capacity(num_windows);
        for (w, &is_touched) in touched.iter().enumerate() {
            if !is_touched {
                let span =
                    self.window_nnz_offset[w] as usize..self.window_nnz_offset[w + 1] as usize;
                blocks_per_window.push(self.blocks_per_window[w]);
                edge_list.extend_from_slice(&self.edge_list[span.clone()]);
                edge_to_column.extend_from_slice(&self.edge_to_column[span.clone()]);
                edge_to_row.extend_from_slice(&self.edge_to_row[span.clone()]);
                values.extend_from_slice(&self.values[span]);
                window_nnz_offset.push(values.len() as u32);
                continue;
            }
            let wcols = wp_new.window_columns(w);
            let lo = w * TILE;
            let hi = ((w + 1) * TILE).min(m_new.nrows());
            blocks_per_window.push(wcols.len().div_ceil(TILE) as u32);
            for r in lo..hi {
                let (cols, vals) = m_new.row(r);
                for (&c, &v) in cols.iter().zip(vals.iter()) {
                    let pos = wcols.binary_search(&c).expect("column in window") as u32;
                    edge_list.push(c);
                    edge_to_column.push(pos);
                    edge_to_row.push(r as u32);
                    values.push(v);
                }
            }
            window_nnz_offset.push(values.len() as u32);
        }

        Tcf {
            nrows: self.nrows,
            ncols: self.ncols,
            window_nnz_offset,
            edge_list,
            edge_to_column,
            edge_to_row,
            values,
            blocks_per_window,
            values_tf32: false,
        }
    }

    /// Reassemble from raw arrays (used by the binary loader, which
    /// validates the invariants before calling).
    #[allow(clippy::too_many_arguments)] // mirrors the serialized field list
    pub(crate) fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        window_nnz_offset: Vec<u32>,
        edge_list: Vec<u32>,
        edge_to_column: Vec<u32>,
        edge_to_row: Vec<u32>,
        values: Vec<f32>,
        blocks_per_window: Vec<u32>,
    ) -> Self {
        Tcf {
            nrows,
            ncols,
            window_nnz_offset,
            edge_list,
            edge_to_column,
            edge_to_row,
            values,
            blocks_per_window,
            values_tf32: false,
        }
    }

    /// Round the stored values to TF32 in place (idempotent, so every
    /// multiply stays bit-identical; lossy for [`Tcf::to_csr`] — see
    /// [`crate::BitTcf::preround_values`]).
    pub fn preround_values(&mut self) {
        self.preround_values_tier(IsaTier::probe());
    }

    /// [`Tcf::preround_values`] at an explicit ISA tier.
    pub fn preround_values_tier(&mut self, tier: IsaTier) {
        if !self.values_tf32 {
            to_tf32_slice_tier(&mut self.values, tier);
            self.values_tf32 = true;
        }
    }

    /// Whether the stored values are already TF32-rounded.
    #[inline]
    pub fn is_prerounded(&self) -> bool {
        self.values_tf32
    }

    /// Rows of the represented matrix.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the represented matrix.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of RowWindows.
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.window_nnz_offset.len() - 1
    }

    /// Total TC blocks.
    pub fn num_tc_blocks(&self) -> usize {
        self.blocks_per_window.iter().map(|&b| b as usize).sum()
    }

    /// Index-structure footprint in bytes: window pointers + blocks per
    /// window + three u32 arrays per nnz.
    pub fn index_bytes(&self) -> usize {
        (self.num_windows() + 1) * 4 + self.num_windows() * 4 + self.nnz() * 12
    }

    /// Functional SpMM (window-dense accumulate, numerically the TC
    /// path: TF32 operands, FP32 accumulation).
    pub fn spmm(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        let mut c = DenseMatrix::zeros(self.nrows, b.ncols());
        self.spmm_into(b, &mut c)?;
        Ok(c)
    }

    /// [`Tcf::spmm`] writing into a caller-provided output (zeroed here;
    /// the edge loop accumulates). TC-GNN's per-edge layout scatters
    /// writes across rows, so this path stays sequential.
    pub fn spmm_into(&self, b: &DenseMatrix, c: &mut DenseMatrix) -> Result<()> {
        if self.ncols != b.nrows() || c.nrows() != self.nrows || c.ncols() != b.ncols() {
            return Err(SpmmError::Shape {
                context: format!(
                    "A is {}x{}, B is {}x{}, C is {}x{}",
                    self.nrows,
                    self.ncols,
                    b.nrows(),
                    b.ncols(),
                    c.nrows(),
                    c.ncols()
                ),
            });
        }
        let mut stage = BStage::new();
        stage.stage(b);
        self.spmm_into_staged(&stage, c)
    }

    /// [`Tcf::spmm_into`] over a pre-rounded B stage: the per-edge inner
    /// loop is a pure mul-add (the value is rounded once per edge — or
    /// not at all when [`Tcf::preround_values`] ran — instead of once
    /// per output column).
    pub fn spmm_into_staged(&self, stage: &BStage, c: &mut DenseMatrix) -> Result<()> {
        self.spmm_into_staged_tier(stage, c, IsaTier::probe())
    }

    /// [`Tcf::spmm_into_staged`] with an explicit ISA tier for the
    /// per-edge row accumulation (bit-identical across tiers; note the
    /// per-edge loop has no zero-value skip, and neither does
    /// [`axpy_tier`]).
    pub fn spmm_into_staged_tier(
        &self,
        stage: &BStage,
        c: &mut DenseMatrix,
        tier: IsaTier,
    ) -> Result<()> {
        if self.ncols != stage.nrows() || c.nrows() != self.nrows || c.ncols() != stage.ncols() {
            return Err(SpmmError::Shape {
                context: format!(
                    "A is {}x{}, B is {}x{}, C is {}x{}",
                    self.nrows,
                    self.ncols,
                    stage.nrows(),
                    stage.ncols(),
                    c.nrows(),
                    c.ncols()
                ),
            });
        }
        c.as_mut_slice().iter_mut().for_each(|x| *x = 0.0);
        use spmm_common::scalar::to_tf32;
        for k in 0..self.nnz() {
            let r = self.edge_to_row[k] as usize;
            let col = self.edge_list[k] as usize;
            let v = if self.values_tf32 {
                self.values[k]
            } else {
                to_tf32(self.values[k])
            };
            axpy_tier(v, stage.row(col), c.row_mut(r), tier);
        }
        Ok(())
    }

    /// Reconstruct CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for k in 0..self.nnz() {
            coo.push(self.edge_to_row[k], self.edge_list[k], self.values[k]);
        }
        CsrMatrix::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bittcf::BitTcf;
    use spmm_matrix::gen::uniform_random;

    #[test]
    fn roundtrip_csr() {
        let m = uniform_random(100, 4.0, 1);
        assert_eq!(Tcf::from_csr(&m).to_csr(), m);
    }

    #[test]
    fn block_count_matches_bittcf() {
        let m = uniform_random(256, 8.0, 2);
        assert_eq!(
            Tcf::from_csr(&m).num_tc_blocks(),
            BitTcf::from_csr(&m).num_tc_blocks()
        );
    }

    #[test]
    fn tcf_is_the_largest_index_structure() {
        let m = uniform_random(256, 8.0, 3);
        let tcf = Tcf::from_csr(&m);
        let bit = BitTcf::from_csr(&m);
        assert!(
            tcf.index_bytes() > bit.index_bytes(),
            "TCF {} vs BitTCF {}",
            tcf.index_bytes(),
            bit.index_bytes()
        );
    }

    #[test]
    fn spmm_matches_bittcf_numerics() {
        let m = uniform_random(80, 5.0, 4);
        let b = DenseMatrix::random(80, 8, 2);
        let c1 = Tcf::from_csr(&m).spmm(&b).unwrap();
        let c2 = BitTcf::from_csr(&m).spmm(&b).unwrap();
        // Different accumulation orders: equal within TF32 tolerance.
        let tol = spmm_common::scalar::tf32_tolerance(80);
        assert!(c1.approx_eq(&c2, tol, tol));
    }

    #[test]
    fn edge_to_column_stays_in_window_bounds() {
        let m = uniform_random(64, 6.0, 5);
        let t = Tcf::from_csr(&m);
        for w in 0..t.num_windows() {
            let max_col = (t.blocks_per_window[w] as usize) * TILE;
            for k in t.window_nnz_offset[w] as usize..t.window_nnz_offset[w + 1] as usize {
                assert!((t.edge_to_column[k] as usize) < max_col);
            }
        }
    }

    #[test]
    fn rebuild_windows_is_byte_identical_to_full_build() {
        let m = uniform_random(100, 5.0, 3);
        let wp = WindowPartition::build(&m);
        let t = Tcf::from_partition(&m, &wp);
        let mut coo = m.to_coo();
        coo.push(17, 40, f32::NAN);
        coo.push(98, 1, -0.0);
        let m2 = CsrMatrix::from_coo(&coo);
        let mut touched = vec![false; wp.num_windows()];
        touched[2] = true;
        touched[12] = true;
        let wp2 = wp.rebuild(&m2, &touched);
        let rebuilt = t.rebuild_windows(&m2, &wp2, &touched);
        let scratch = Tcf::from_partition(&m2, &wp2);
        assert_eq!(rebuilt.window_nnz_offset, scratch.window_nnz_offset);
        assert_eq!(rebuilt.edge_list, scratch.edge_list);
        assert_eq!(rebuilt.edge_to_column, scratch.edge_to_column);
        assert_eq!(rebuilt.edge_to_row, scratch.edge_to_row);
        assert_eq!(rebuilt.blocks_per_window, scratch.blocks_per_window);
        assert_eq!(
            rebuilt
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            scratch
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
