//! RowWindow partitioning and column squeezing (the SGT step shared by
//! every TC format).

use spmm_matrix::CsrMatrix;

/// Tile edge: TC blocks are `TILE × TILE` and RowWindows span `TILE`
/// rows. The paper fixes 8 so each block's occupancy fits one `u64`.
pub const TILE: usize = 8;

/// Sentinel padding for unused SparseAToB slots (blocks whose window has
/// fewer than a multiple of [`TILE`] distinct columns).
pub const PAD_COL: u32 = u32::MAX;

/// The squeezed window structure every TC format builds on:
/// for each RowWindow, the sorted distinct columns its rows touch, and
/// the derived TC-block boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPartition {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// Start TC block of each window; `num_windows() + 1` entries.
    window_block_offset: Vec<u32>,
    /// Concatenated sorted distinct columns per window.
    window_cols: Vec<u32>,
    /// Offsets into `window_cols`; `num_windows() + 1` entries.
    window_col_offset: Vec<u32>,
}

impl WindowPartition {
    /// Partition `m` into RowWindows of [`TILE`] rows and squeeze each
    /// window's columns. Windows are independent, so the squeeze runs in
    /// parallel (rayon) and the offsets are stitched with a prefix scan.
    pub fn build(m: &CsrMatrix) -> Self {
        use rayon::prelude::*;
        let nrows = m.nrows();
        let num_windows = nrows.div_ceil(TILE);
        let per_window: Vec<Vec<u32>> = (0..num_windows)
            .into_par_iter()
            .map(|w| {
                let lo = w * TILE;
                let hi = ((w + 1) * TILE).min(nrows);
                let mut cols: Vec<u32> = Vec::new();
                for r in lo..hi {
                    cols.extend_from_slice(m.row(r).0);
                }
                cols.sort_unstable();
                cols.dedup();
                cols
            })
            .collect();
        let mut window_block_offset = Vec::with_capacity(num_windows + 1);
        let mut window_col_offset = Vec::with_capacity(num_windows + 1);
        let total_cols: usize = per_window.iter().map(|c| c.len()).sum();
        let mut window_cols = Vec::with_capacity(total_cols);
        window_block_offset.push(0u32);
        window_col_offset.push(0u32);
        let mut blocks = 0u32;
        for cols in &per_window {
            window_cols.extend_from_slice(cols);
            blocks += cols.len().div_ceil(TILE) as u32;
            window_block_offset.push(blocks);
            window_col_offset.push(window_cols.len() as u32);
        }
        WindowPartition {
            nrows,
            ncols: m.ncols(),
            nnz: m.nnz(),
            window_block_offset,
            window_cols,
            window_col_offset,
        }
    }

    /// Incremental rebuild after an edge-delta update: `m_new` is the
    /// updated matrix (same `nrows`/`ncols` — deltas are edge-level)
    /// and `touched[w]` marks the windows whose rows changed. Untouched
    /// windows copy their squeezed-column spans from `self` without
    /// re-reading the matrix; touched windows re-squeeze from `m_new`;
    /// both offset arrays are restitched. Because a window's squeeze
    /// depends only on its own rows, the result is **equal** to
    /// [`WindowPartition::build`] on `m_new` (asserted by tests — the
    /// invariant incremental plan repair rests on).
    pub fn rebuild(&self, m_new: &CsrMatrix, touched: &[bool]) -> WindowPartition {
        assert_eq!(m_new.nrows(), self.nrows, "deltas cannot change nrows");
        assert_eq!(m_new.ncols(), self.ncols, "deltas cannot change ncols");
        assert_eq!(touched.len(), self.num_windows(), "one flag per window");
        let nrows = self.nrows;
        let num_windows = self.num_windows();
        let mut window_block_offset = Vec::with_capacity(num_windows + 1);
        let mut window_col_offset = Vec::with_capacity(num_windows + 1);
        let mut window_cols = Vec::with_capacity(self.window_cols.len());
        window_block_offset.push(0u32);
        window_col_offset.push(0u32);
        let mut blocks = 0u32;
        let mut fresh: Vec<u32> = Vec::new();
        for (w, &is_touched) in touched.iter().enumerate() {
            let cols: &[u32] = if is_touched {
                let lo = w * TILE;
                let hi = ((w + 1) * TILE).min(nrows);
                fresh.clear();
                for r in lo..hi {
                    fresh.extend_from_slice(m_new.row(r).0);
                }
                fresh.sort_unstable();
                fresh.dedup();
                &fresh
            } else {
                self.window_columns(w)
            };
            window_cols.extend_from_slice(cols);
            blocks += cols.len().div_ceil(TILE) as u32;
            window_block_offset.push(blocks);
            window_col_offset.push(window_cols.len() as u32);
        }
        WindowPartition {
            nrows,
            ncols: self.ncols,
            nnz: m_new.nnz(),
            window_block_offset,
            window_cols,
            window_col_offset,
        }
    }

    /// Rows of the original matrix.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the original matrix.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Non-zeros of the original matrix.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of RowWindows (`⌈M / TILE⌉`).
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.window_block_offset.len() - 1
    }

    /// Total number of TC blocks.
    #[inline]
    pub fn num_tc_blocks(&self) -> usize {
        *self.window_block_offset.last().unwrap() as usize
    }

    /// TC blocks of window `w` as a `start..end` block-id range.
    #[inline]
    pub fn window_blocks(&self, w: usize) -> std::ops::Range<usize> {
        self.window_block_offset[w] as usize..self.window_block_offset[w + 1] as usize
    }

    /// Squeezed (sorted, distinct) columns of window `w`.
    #[inline]
    pub fn window_columns(&self, w: usize) -> &[u32] {
        &self.window_cols
            [self.window_col_offset[w] as usize..self.window_col_offset[w + 1] as usize]
    }

    /// TC blocks per window — the `TCBlockPerRowWindow` array of the IBD
    /// metric (Equation 3).
    pub fn blocks_per_window(&self) -> Vec<usize> {
        (0..self.num_windows())
            .map(|w| self.window_blocks(w).len())
            .collect()
    }

    /// BitTCF index-structure footprint in bytes for a matrix with this
    /// partition — the paper's `(⌈M/8⌉ + NumTCBlock × 11 + 2) × 4`
    /// formula depends only on the partition shape, so callers holding a
    /// partition (e.g. an execution plan) can report the footprint
    /// without materializing a [`crate::BitTcf`].
    pub fn bittcf_index_bytes(&self) -> usize {
        (self.nrows().div_ceil(TILE) + self.num_tc_blocks() * 11 + 2) * 4
    }

    /// The paper's `MeanNNZTC` metric.
    pub fn mean_nnz_tc(&self) -> f64 {
        let b = self.num_tc_blocks();
        if b == 0 {
            0.0
        } else {
            self.nnz as f64 / b as f64
        }
    }

    /// The 8 (padded) original column ids of TC block `b` within window
    /// `w`, where `b` is the block's index *within the window*.
    pub fn block_columns(&self, w: usize, b: usize) -> [u32; TILE] {
        let cols = self.window_columns(w);
        let mut out = [PAD_COL; TILE];
        let start = b * TILE;
        for (i, slot) in out.iter_mut().enumerate() {
            if let Some(&c) = cols.get(start + i) {
                *slot = c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::{CooMatrix, CsrMatrix};

    fn matrix(n: usize, entries: &[(u32, u32)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c) in entries {
            coo.push(r, c, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn window_counts() {
        let m = matrix(17, &[(0, 0), (8, 1), (16, 2)]);
        let wp = WindowPartition::build(&m);
        assert_eq!(wp.num_windows(), 3);
        assert_eq!(wp.num_tc_blocks(), 3);
        assert_eq!(wp.blocks_per_window(), vec![1, 1, 1]);
    }

    #[test]
    fn columns_squeezed_and_deduped() {
        // Window 0 rows touch columns {9, 3, 9, 12} -> distinct {3, 9, 12}.
        let m = matrix(16, &[(0, 9), (1, 3), (2, 9), (5, 12)]);
        let wp = WindowPartition::build(&m);
        assert_eq!(wp.window_columns(0), &[3, 9, 12]);
        assert_eq!(wp.num_tc_blocks(), 1);
        let bc = wp.block_columns(0, 0);
        assert_eq!(&bc[..3], &[3, 9, 12]);
        assert!(bc[3..].iter().all(|&c| c == PAD_COL));
    }

    #[test]
    fn nine_columns_make_two_blocks() {
        let entries: Vec<(u32, u32)> = (0..9).map(|c| (0, c)).collect();
        let m = matrix(16, &entries);
        let wp = WindowPartition::build(&m);
        assert_eq!(wp.num_tc_blocks(), 2);
        assert_eq!(wp.block_columns(0, 1)[0], 8);
        assert_eq!(wp.block_columns(0, 1)[1], PAD_COL);
    }

    #[test]
    fn mean_nnz_tc_matches_reorder_metric() {
        let m = spmm_matrix::gen::uniform_random(256, 6.0, 11);
        let wp = WindowPartition::build(&m);
        // Cross-check against the independent implementation in
        // spmm-reorder is done in integration tests; here check bounds.
        let v = wp.mean_nnz_tc();
        assert!(v > 0.0 && v <= (TILE * TILE) as f64);
        assert_eq!(
            wp.blocks_per_window().iter().sum::<usize>(),
            wp.num_tc_blocks()
        );
    }

    #[test]
    fn ragged_final_window() {
        let m = matrix(10, &[(9, 4)]);
        let wp = WindowPartition::build(&m);
        assert_eq!(wp.num_windows(), 2);
        assert_eq!(wp.window_columns(1), &[4]);
    }

    #[test]
    fn rebuild_equals_full_build() {
        let m = spmm_matrix::gen::uniform_random(100, 5.0, 3);
        let wp = WindowPartition::build(&m);
        // Perturb rows 17 and 98 (windows 2 and 12): rebuild with only
        // those windows touched must equal a from-scratch build.
        let mut coo = m.to_coo();
        coo.push(17, 40, 2.0);
        coo.push(98, 1, -1.0);
        let m2 = CsrMatrix::from_coo(&coo);
        let mut touched = vec![false; wp.num_windows()];
        touched[2] = true;
        touched[12] = true;
        let rebuilt = wp.rebuild(&m2, &touched);
        assert_eq!(rebuilt, WindowPartition::build(&m2));
        // All windows touched degenerates to a full build too.
        assert_eq!(
            wp.rebuild(&m2, &vec![true; wp.num_windows()]),
            WindowPartition::build(&m2)
        );
    }
}
