//! TC-block compressed sparse formats.
//!
//! Tensor-core SpMM kernels consume the sparse operand as **RowWindows**
//! (groups of [`TILE`] consecutive rows) whose distinct columns are
//! squeezed together and chunked into **TC blocks** of `TILE × TILE`
//! (8×8, matching the swapped `m16n8k8` mma the paper uses). Three
//! formats encode the blocks:
//!
//! * [`Tcf`] — TC-GNN's format (per-nnz edge/row/column arrays);
//! * [`MeTcf`] — DTC-SpMM's memory-efficient format (per-nnz `int8`
//!   local position);
//! * [`BitTcf`] — the paper's format: one `u64` bitmap per TC block
//!   ([`BitTcf::tc_local_bit`]), decompressed with popcount.
//!
//! [`window::WindowPartition`] is the shared squeezing step;
//! [`compression`] reproduces the Figure-12 byte accounting.

pub mod bittcf;
pub mod compression;
pub mod io;
pub mod metcf;
pub mod scratch;
pub mod tcf;
pub mod window;

pub use bittcf::BitTcf;
pub use metcf::MeTcf;
pub use scratch::{BStage, TileScratch};
pub use tcf::Tcf;
pub use window::{WindowPartition, PAD_COL, TILE};
