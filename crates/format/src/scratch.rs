//! Reusable per-call scratch for the TC SpMM paths.
//!
//! Every window iteration of the block formats needs an 8×N accumulator
//! tile. Allocating it per call (let alone per window) dominates small
//! multiplies, so the zero-allocation entry points
//! ([`crate::BitTcf::spmm_into`] and friends) borrow it from a
//! caller-owned `TileScratch` that grows monotonically and is reused
//! across calls — the CPU analogue of the GPU kernel's persistent
//! shared-memory tiles.
//!
//! [`BStage`] is the second half of the pre-rounded operand scheme: one
//! TF32-rounded copy of the dense operand, refreshed once per multiply.
//! The single-RHS MMA core reads its rows *in place*
//! ([`spmm_common::scalar::tf32_mma_8x8_rows`]), so there is no per-block
//! gather tile and the inner loop stays a pure mul-add; only the batched
//! path still gathers, into `btile`, where one wide MMA over the
//! concatenated RHS columns measures faster than per-RHS row cycling.

use crate::window::TILE;
use spmm_common::simd::{to_tf32_slice_into_tier, IsaTier};
use spmm_matrix::DenseMatrix;

/// A TF32-rounded staging copy of a dense operand.
///
/// `stage` rounds the whole matrix once (idempotent, so bit-identical to
/// rounding at every use); the buffer grows monotonically and is reused
/// across multiplies. Windows read it concurrently through shared
/// references, matching the read-only B slab in GPU global memory.
#[derive(Debug, Clone, Default)]
pub struct BStage {
    data: Vec<f32>,
    nrows: usize,
    ncols: usize,
}

impl BStage {
    /// An empty stage; the buffer is grown on first use.
    pub fn new() -> Self {
        BStage::default()
    }

    /// Pre-size the backing buffer for an `nrows × ncols` operand.
    pub fn reserve(&mut self, nrows: usize, ncols: usize) {
        let want = nrows * ncols;
        if self.data.len() < want {
            self.data.resize(want, 0.0);
        }
    }

    /// Round `b` into the stage (growing the buffer if needed) at the
    /// process-default ISA tier.
    pub fn stage(&mut self, b: &DenseMatrix) {
        self.stage_tier(b, IsaTier::probe());
    }

    /// [`BStage::stage`] at an explicit ISA tier (plan-resolved; every
    /// tier rounds bit-identically, so the choice is pure speed).
    pub fn stage_tier(&mut self, b: &DenseMatrix, tier: IsaTier) {
        let want = b.nrows() * b.ncols();
        self.data.resize(want.max(self.data.len()), 0.0);
        to_tf32_slice_into_tier(b.as_slice(), &mut self.data[..want], tier);
        self.nrows = b.nrows();
        self.ncols = b.ncols();
    }

    /// Rows of the staged operand.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the staged operand.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row `r` of the staged (pre-rounded) operand.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Bytes of backing storage currently retained by the stage (the
    /// quantity a paged workspace allocator meters).
    pub fn footprint_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }
}

/// Caller-owned tile buffers for the sequential SpMM paths.
#[derive(Debug, Clone, Default)]
pub struct TileScratch {
    btile: Vec<f32>,
    ctile: Vec<f32>,
    bstage: BStage,
}

impl TileScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        TileScratch::default()
    }

    /// A scratch pre-sized for dense operands with `n` columns.
    pub fn with_feature_dim(n: usize) -> Self {
        let mut s = TileScratch::new();
        s.ensure(n);
        s
    }

    /// Grow (never shrink) the tiles to hold `TILE × n` floats and hand
    /// them out zeroed (`btile`) / untouched (`ctile` — callers reset it
    /// per window anyway). Only the batched path reads `btile`; the
    /// single-RHS paths accumulate straight from the stage.
    pub fn ensure(&mut self, n: usize) -> (&mut [f32], &mut [f32]) {
        let want = TILE * n;
        if self.btile.len() < want {
            self.btile.resize(want, 0.0);
            self.ctile.resize(want, 0.0);
        }
        (&mut self.btile[..want], &mut self.ctile[..want])
    }

    /// Round `b` into this scratch's owned [`BStage`] and hand it back.
    pub fn stage_b(&mut self, b: &DenseMatrix) -> &BStage {
        self.bstage.stage(b);
        &self.bstage
    }

    /// [`TileScratch::stage_b`] at an explicit ISA tier.
    pub fn stage_b_tier(&mut self, b: &DenseMatrix, tier: IsaTier) -> &BStage {
        self.bstage.stage_tier(b, tier);
        &self.bstage
    }

    /// Pre-size the owned [`BStage`] (avoids the first-call growth for
    /// callers that know the operand shape up front).
    pub fn reserve_stage(&mut self, nrows: usize, ncols: usize) {
        self.bstage.reserve(nrows, ncols);
    }

    /// Split-borrow the staged operand together with the accumulator
    /// tile: the sequential SpMM paths read B rows straight from the
    /// stage while accumulating in `ctile`, so both must be live at
    /// once. The stage must have been filled by [`TileScratch::stage_b`]
    /// for the current operand.
    pub fn staged_parts(&mut self, n: usize) -> (&BStage, &mut [f32]) {
        let want = TILE * n;
        if self.ctile.len() < want {
            self.ctile.resize(want, 0.0);
        }
        (&self.bstage, &mut self.ctile[..want])
    }

    /// Current tile capacity in floats.
    pub fn capacity(&self) -> usize {
        self.ctile.len()
    }

    /// Bytes of backing storage currently retained by the tiles and the
    /// owned [`BStage`].
    pub fn footprint_bytes(&self) -> usize {
        (self.btile.capacity() + self.ctile.capacity()) * std::mem::size_of::<f32>()
            + self.bstage.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::scalar::to_tf32;

    #[test]
    fn ensure_grows_monotonically() {
        let mut s = TileScratch::new();
        assert_eq!(s.capacity(), 0);
        {
            let (b, c) = s.ensure(16);
            assert_eq!(b.len(), TILE * 16);
            assert_eq!(c.len(), TILE * 16);
        }
        s.ensure(4);
        assert_eq!(s.capacity(), TILE * 16, "never shrinks");
        s.ensure(32);
        assert_eq!(s.capacity(), TILE * 32);
    }

    #[test]
    fn with_feature_dim_presizes() {
        let s = TileScratch::with_feature_dim(8);
        assert_eq!(s.capacity(), TILE * 8);
    }

    #[test]
    fn stage_rounds_every_element() {
        let b = DenseMatrix::from_fn(5, 3, |r, c| 1.2345678 + r as f32 * 0.1 + c as f32);
        let mut stage = BStage::new();
        stage.stage(&b);
        assert_eq!(stage.nrows(), 5);
        assert_eq!(stage.ncols(), 3);
        for r in 0..5 {
            for c in 0..3 {
                assert_eq!(stage.row(r)[c].to_bits(), to_tf32(b.get(r, c)).to_bits());
            }
        }
    }

    #[test]
    fn stage_reuse_across_shapes_is_exact() {
        let mut stage = BStage::new();
        let big = DenseMatrix::random(16, 8, 1);
        stage.stage(&big);
        // Restaging a smaller matrix must not read stale tail data.
        let small = DenseMatrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32 + 0.5);
        stage.stage(&small);
        assert_eq!(stage.nrows(), 2);
        assert_eq!(stage.ncols(), 2);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(
                    stage.row(r)[c].to_bits(),
                    to_tf32(small.get(r, c)).to_bits()
                );
            }
        }
    }

    #[test]
    fn scratch_staged_parts_returns_filled_stage() {
        let mut s = TileScratch::new();
        let b = DenseMatrix::random(8, 4, 2);
        s.stage_b(&b);
        let (stage, ctile) = s.staged_parts(4);
        assert_eq!(stage.nrows(), 8);
        assert_eq!(ctile.len(), TILE * 4);
    }
}
