//! Reusable per-call scratch for the TC SpMM paths.
//!
//! Every window iteration of the block formats needs an 8×N gather tile
//! for the dense operand and an 8×N accumulator tile. Allocating them
//! per call (let alone per window) dominates small multiplies, so the
//! zero-allocation entry points ([`crate::BitTcf::spmm_into`] and
//! friends) borrow them from a caller-owned `TileScratch` that grows
//! monotonically and is reused across calls — the CPU analogue of the
//! GPU kernel's persistent shared-memory tiles.

use crate::window::TILE;

/// Caller-owned tile buffers for the sequential SpMM paths.
#[derive(Debug, Clone, Default)]
pub struct TileScratch {
    btile: Vec<f32>,
    ctile: Vec<f32>,
}

impl TileScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        TileScratch::default()
    }

    /// A scratch pre-sized for dense operands with `n` columns.
    pub fn with_feature_dim(n: usize) -> Self {
        let mut s = TileScratch::new();
        s.ensure(n);
        s
    }

    /// Grow (never shrink) the tiles to hold `TILE × n` floats and hand
    /// them out zeroed (`btile`) / untouched (`ctile` — callers reset it
    /// per window anyway).
    pub fn ensure(&mut self, n: usize) -> (&mut [f32], &mut [f32]) {
        let want = TILE * n;
        if self.btile.len() < want {
            self.btile.resize(want, 0.0);
            self.ctile.resize(want, 0.0);
        }
        (&mut self.btile[..want], &mut self.ctile[..want])
    }

    /// Current tile capacity in floats.
    pub fn capacity(&self) -> usize {
        self.btile.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_grows_monotonically() {
        let mut s = TileScratch::new();
        assert_eq!(s.capacity(), 0);
        {
            let (b, c) = s.ensure(16);
            assert_eq!(b.len(), TILE * 16);
            assert_eq!(c.len(), TILE * 16);
        }
        s.ensure(4);
        assert_eq!(s.capacity(), TILE * 16, "never shrinks");
        s.ensure(32);
        assert_eq!(s.capacity(), TILE * 32);
    }

    #[test]
    fn with_feature_dim_presizes() {
        let s = TileScratch::with_feature_dim(8);
        assert_eq!(s.capacity(), TILE * 8);
    }
}
