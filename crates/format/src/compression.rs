//! Figure-12 byte accounting: compression ratios of CSR, ME-TCF and
//! BitTCF normalized to TCF, plus the conversion-cost comparison.

use crate::{BitTcf, MeTcf, Tcf, WindowPartition, TILE};
use spmm_matrix::CsrMatrix;
use std::time::{Duration, Instant};

/// CSR index-structure bytes (row pointer as u32 + u32 column indices;
/// values excluded, consistent with the other formats' accounting).
pub fn csr_index_bytes(m: &CsrMatrix) -> usize {
    (m.nrows() + 1) * 4 + m.nnz() * 4
}

/// Byte footprint and compression ratios of all formats for one matrix.
#[derive(Debug, Clone, Copy)]
pub struct CompressionReport {
    /// TCF index bytes (the normalization baseline).
    pub tcf_bytes: usize,
    /// CSR index bytes.
    pub csr_bytes: usize,
    /// ME-TCF index bytes.
    pub metcf_bytes: usize,
    /// BitTCF index bytes.
    pub bittcf_bytes: usize,
}

impl CompressionReport {
    /// Measure a matrix.
    pub fn measure(m: &CsrMatrix) -> Self {
        let wp = WindowPartition::build(m);
        let tcf = Tcf::from_partition(m, &wp);
        let metcf = MeTcf::from_partition(m, &wp);
        let bittcf = BitTcf::from_partition(m, &wp);
        CompressionReport {
            tcf_bytes: tcf.index_bytes(),
            csr_bytes: csr_index_bytes(m),
            metcf_bytes: metcf.index_bytes(),
            bittcf_bytes: bittcf.index_bytes(),
        }
    }

    /// Compression ratio of CSR relative to TCF (higher = smaller).
    pub fn csr_ratio(&self) -> f64 {
        self.tcf_bytes as f64 / self.csr_bytes as f64
    }

    /// Compression ratio of ME-TCF relative to TCF.
    pub fn metcf_ratio(&self) -> f64 {
        self.tcf_bytes as f64 / self.metcf_bytes as f64
    }

    /// Compression ratio of BitTCF relative to TCF.
    pub fn bittcf_ratio(&self) -> f64 {
        self.tcf_bytes as f64 / self.bittcf_bytes as f64
    }
}

/// Wall-clock conversion cost from CSR (the §4.3.2 claim: BitTCF
/// conversion is ~15% cheaper than ME-TCF because it ORs one bit per nnz
/// instead of materializing and sorting per-nnz `int8` ids — both share
/// the window-squeeze, so the delta is in the per-nnz encode).
#[derive(Debug, Clone, Copy)]
pub struct ConversionCost {
    /// Time to build the shared window partition.
    pub partition: Duration,
    /// ME-TCF encode time (partition excluded).
    pub metcf: Duration,
    /// BitTCF encode time (partition excluded).
    pub bittcf: Duration,
    /// TCF encode time (partition excluded).
    pub tcf: Duration,
}

/// Measure conversion costs for one matrix, averaging `reps` repetitions.
pub fn conversion_cost(m: &CsrMatrix, reps: usize) -> ConversionCost {
    assert!(reps >= 1);
    let t0 = Instant::now();
    let mut wp = WindowPartition::build(m);
    for _ in 1..reps {
        wp = WindowPartition::build(m);
    }
    let partition = t0.elapsed() / reps as u32;

    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(MeTcf::from_partition(m, &wp));
    }
    let metcf = t0.elapsed() / reps as u32;

    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(BitTcf::from_partition(m, &wp));
    }
    let bittcf = t0.elapsed() / reps as u32;

    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(Tcf::from_partition(m, &wp));
    }
    let tcf = t0.elapsed() / reps as u32;

    ConversionCost {
        partition,
        metcf,
        bittcf,
        tcf,
    }
}

/// Analytic conversion work model (used where wall time is too noisy):
/// both conversions pay one window-squeeze pass; ME-TCF then writes and
/// sorts one id+value pair per nnz, BitTCF ORs one bit and writes one
/// value per nnz.
pub fn conversion_ops(m: &CsrMatrix) -> (usize, usize) {
    let wp = WindowPartition::build(m);
    let squeeze = m.nnz() + wp.num_windows();
    // Rough op counts per nnz: ME-TCF = binary search + id write + value
    // write + sort share (~log 8); BitTCF = binary search + bit OR +
    // value write.
    let metcf = squeeze + m.nnz() * 6;
    let bittcf = squeeze + m.nnz() * 5;
    (metcf, bittcf)
}

/// Sanity helper: all formats must agree on TC-block structure.
pub fn structures_agree(m: &CsrMatrix) -> bool {
    let wp = WindowPartition::build(m);
    let tcf = Tcf::from_partition(m, &wp);
    let metcf = MeTcf::from_partition(m, &wp);
    let bittcf = BitTcf::from_partition(m, &wp);
    tcf.num_tc_blocks() == metcf.num_tc_blocks()
        && metcf.num_tc_blocks() == bittcf.num_tc_blocks()
        && metcf.row_window_offset == bittcf.row_window_offset
        && wp.nnz() == m.nnz()
        && wp.num_windows() == m.nrows().div_ceil(TILE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen::{clustered, uniform_random, ClusteredConfig};

    #[test]
    fn ratios_ordered_on_dense_blocks() {
        // Dense community structure -> high MeanNNZTC -> BitTCF must beat
        // ME-TCF and CSR, all must beat TCF (ratio > 1).
        let m = clustered(
            ClusteredConfig {
                n: 512,
                cluster_size: 32,
                intra_deg: 16.0,
                inter_deg: 1.0,
                hub_fraction: 0.0,
                hub_factor: 1.0,
                shuffle: false,
                ..Default::default()
            },
            1,
        );
        let r = CompressionReport::measure(&m);
        assert!(r.bittcf_ratio() > 1.0);
        assert!(r.metcf_ratio() > 1.0);
        assert!(r.csr_ratio() > 1.0);
        assert!(
            r.bittcf_ratio() > r.metcf_ratio(),
            "BitTCF {} vs ME-TCF {}",
            r.bittcf_ratio(),
            r.metcf_ratio()
        );
        assert!(r.bittcf_ratio() > r.csr_ratio());
    }

    #[test]
    fn structures_agree_across_formats() {
        let m = uniform_random(300, 7.0, 2);
        assert!(structures_agree(&m));
    }

    #[test]
    fn conversion_ops_favor_bittcf() {
        let m = uniform_random(256, 8.0, 3);
        let (metcf, bittcf) = conversion_ops(&m);
        assert!(bittcf < metcf);
    }

    #[test]
    fn conversion_cost_runs() {
        let m = uniform_random(128, 4.0, 4);
        let c = conversion_cost(&m, 2);
        assert!(c.partition.as_nanos() > 0 || c.metcf.as_nanos() > 0 || c.bittcf.as_nanos() > 0);
    }
}
