//! Trace-layer behavior: nesting across threads, counter aggregation,
//! and export round-trips. Every test mutates the process-global
//! registry, so they serialize on one lock.

use spmm_common::json::Json;
use spmm_trace::TraceSnapshot;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Enable tracing on a clean registry; disable + clear on drop even if
/// the test panics (so one failure doesn't poison the others' state).
struct Window<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

fn window() -> Window<'static> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    spmm_trace::reset();
    spmm_trace::enable();
    Window(guard)
}

impl Drop for Window<'_> {
    fn drop(&mut self) {
        spmm_trace::disable();
        spmm_trace::reset();
    }
}

#[test]
fn spans_nest_per_thread_and_record_across_threads() {
    let _w = window();
    let workers = 4;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _outer = spmm_trace::span("test.outer");
                for _ in 0..3 {
                    let _inner = spmm_trace::span("test.inner");
                    let _leaf = spmm_trace::span("test.leaf");
                }
            });
        }
    });
    let snap = spmm_trace::snapshot();
    assert_eq!(snap.span_count("test.outer"), workers);
    assert_eq!(snap.span_count("test.inner"), 3 * workers);
    assert_eq!(snap.span_count("test.leaf"), 3 * workers);
    for s in &snap.spans {
        let depth = match s.name.as_str() {
            "test.outer" => 0,
            "test.inner" => 1,
            "test.leaf" => 2,
            other => panic!("unexpected span {other}"),
        };
        assert_eq!(s.depth, depth, "{} at wrong depth", s.name);
    }
    // Each worker got its own thread id, and within a thread every
    // child span lies inside its parent's window.
    let outer_threads: std::collections::BTreeSet<u64> = snap
        .spans
        .iter()
        .filter(|s| s.name == "test.outer")
        .map(|s| s.thread)
        .collect();
    assert_eq!(outer_threads.len(), workers, "one outer span per thread");
    for outer in snap.spans.iter().filter(|s| s.name == "test.outer") {
        for child in snap
            .spans
            .iter()
            .filter(|s| s.thread == outer.thread && s.depth > 0)
        {
            assert!(child.start_ns >= outer.start_ns);
            assert!(child.start_ns + child.dur_ns <= outer.start_ns + outer.dur_ns);
        }
    }
}

#[test]
fn counters_aggregate_across_threads() {
    let _w = window();
    let threads = 8;
    let adds_per_thread = 1000u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let handle = spmm_trace::counter("test.handle_total");
                for _ in 0..adds_per_thread {
                    handle.add(3);
                    spmm_trace::counter_add("test.named_total", 2);
                }
            });
        }
    });
    let snap = spmm_trace::snapshot();
    assert_eq!(
        snap.counter("test.handle_total"),
        3 * adds_per_thread * threads as u64
    );
    assert_eq!(
        snap.counter("test.named_total"),
        2 * adds_per_thread * threads as u64
    );
    // Reset zeroes totals but keeps names registered.
    spmm_trace::reset();
    let snap = spmm_trace::snapshot();
    assert_eq!(snap.counter("test.handle_total"), 0);
    assert!(snap.counters.contains_key("test.named_total"));
}

#[test]
fn disabled_call_sites_record_nothing() {
    let _w = window();
    spmm_trace::disable();
    {
        let _s = spmm_trace::span("test.invisible");
        spmm_trace::counter_add("test.invisible", 7);
        spmm_trace::counter("test.invisible_handle").add(7);
    }
    let snap = spmm_trace::snapshot();
    assert_eq!(snap.span_count("test.invisible"), 0);
    assert_eq!(snap.counter("test.invisible"), 0);
    assert_eq!(snap.counter("test.invisible_handle"), 0);
}

#[test]
fn snapshot_round_trips_through_common_json() {
    let _w = window();
    {
        let _a = spmm_trace::span("test.roundtrip.a");
        let _b = spmm_trace::span("test.roundtrip.b");
        spmm_trace::counter_add("test.roundtrip.bytes", 123_456);
    }
    let snap = spmm_trace::snapshot();
    assert!(!snap.spans.is_empty());

    // Structured JSON: render → parse → rebuild must be lossless.
    let text = snap.to_json().to_string_pretty();
    let parsed = Json::parse(&text).expect("snapshot JSON parses");
    let rebuilt = TraceSnapshot::from_json(&parsed).expect("snapshot rebuilds");
    assert_eq!(rebuilt, snap);

    // Chrome trace: must parse, with one X event per span (µs units)
    // and one C event per counter.
    let chrome = snap.chrome_trace().to_string_pretty();
    let events = Json::parse(&chrome).expect("chrome JSON parses");
    let events = events.as_array().unwrap();
    let xs: Vec<&Json> = events.iter().filter(|e| e["ph"] == "X").collect();
    let cs: Vec<&Json> = events.iter().filter(|e| e["ph"] == "C").collect();
    assert_eq!(xs.len(), snap.spans.len());
    assert_eq!(cs.len(), snap.counters.len());
    for (event, span) in xs.iter().zip(snap.spans.iter()) {
        assert_eq!(event["name"].as_str(), Some(span.name.as_str()));
        let us = event["dur"].as_f64().unwrap();
        assert!((us * 1e3 - span.dur_ns as f64).abs() < 1.0);
    }
}

#[test]
fn bad_snapshot_documents_are_rejected() {
    for bad in [
        r#"{"spans": [], "counters": {}}"#,
        r#"{"schema_version": 999, "spans": [], "counters": {}}"#,
        r#"{"schema_version": 1, "spans": 3, "counters": {}}"#,
        r#"{"schema_version": 1, "spans": [{"name": "x"}], "counters": {}}"#,
    ] {
        let doc = Json::parse(bad).unwrap();
        assert!(TraceSnapshot::from_json(&doc).is_err(), "{bad}");
    }
}
