//! Performance observability for the Acc-SpMM stack.
//!
//! The paper's argument is quantitative — bytes moved, cache hit rates,
//! pipeline bubbles, load imbalance — so the reproduction needs a way to
//! *record* those quantities across the whole stack and across runs.
//! This crate provides the measurement substrate every other crate
//! instruments itself with:
//!
//! * **RAII spans** ([`span`]): scoped wall-time measurements that nest
//!   (a per-thread depth is recorded) and work from any thread. A span
//!   is recorded when its guard drops.
//! * **Atomic counters** ([`counter`], [`counter_add`]): named monotonic
//!   `u64` totals (bytes, hits, iterations) aggregated across threads
//!   with relaxed atomics.
//! * **A global registry**: spans and counters accumulate into one
//!   process-wide, thread-safe store; [`snapshot`] drains a consistent
//!   copy and [`reset`] clears it between measurement windows.
//! * **Export** ([`TraceSnapshot`]): structured JSON through
//!   [`spmm_common::json`] and the Chrome tracing format
//!   (`chrome://tracing` / Perfetto) for timeline eyeballing.
//!
//! Tracing is **disabled by default** and the disabled path is
//! near-zero cost: one relaxed atomic load per call site, no clock
//! reads, no locks, no allocation. Hot loops that fire even when a
//! measurement window is open should hold a [`Counter`] handle instead
//! of calling [`counter_add`] (the handle skips the registry lookup).
//!
//! ```
//! spmm_trace::enable();
//! {
//!     let _outer = spmm_trace::span("demo.outer");
//!     let _inner = spmm_trace::span("demo.inner");
//!     spmm_trace::counter_add("demo.bytes", 4096);
//! }
//! let snap = spmm_trace::snapshot();
//! assert!(snap.spans.len() >= 2);
//! assert!(snap.counter("demo.bytes") >= 4096);
//! spmm_trace::disable();
//! spmm_trace::reset();
//! ```

mod export;
mod registry;

pub use export::TraceSnapshot;
pub use registry::{
    counter, counter_add, counter_set, disable, enable, is_enabled, reset, snapshot, span, Counter,
    SpanData, SpanGuard,
};
