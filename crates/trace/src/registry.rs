//! The process-wide span/counter registry and its cheap front doors.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::export::TraceSnapshot;

/// One finished span as stored in the registry and in snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanData {
    /// Span name (dot-separated taxonomy, e.g. `plan.reorder`).
    pub name: String,
    /// Small dense thread id (assigned in first-use order, not the OS id).
    pub thread: u64,
    /// Nesting depth on its thread at open time (0 = top level).
    pub depth: u32,
    /// Open time in nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
}

struct Registry {
    epoch: Instant,
    spans: Mutex<Vec<SpanData>>,
    /// Counter cells are leaked once per distinct name so [`Counter`]
    /// handles can hold a `'static` reference and add lock-free.
    counters: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
    next_thread: AtomicU64,
}

/// The enabled flag lives outside the lazy registry so the disabled
/// fast path is a single relaxed load with no initialization check.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        epoch: Instant::now(),
        spans: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        next_thread: AtomicU64::new(0),
    })
}

thread_local! {
    static THREAD_ID: u64 = registry().next_thread.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Turn recording on. Spans/counters at already-running call sites take
/// effect immediately; a span opened while disabled stays unrecorded
/// even if recording is enabled before it closes.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Spans opened while enabled still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Is recording currently on?
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open a named span; the returned guard records the span when dropped.
/// When tracing is disabled this is one atomic load and a no-op guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { live: None };
    }
    let reg = registry();
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        live: Some(LiveSpan {
            name,
            depth,
            start_ns: reg.epoch.elapsed().as_nanos() as u64,
        }),
    }
}

struct LiveSpan {
    name: &'static str,
    depth: u32,
    start_ns: u64,
}

/// RAII guard returned by [`span`]; dropping it closes the span.
#[must_use = "a span measures the scope holding its guard; binding to _ drops it immediately"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let reg = registry();
        let end_ns = reg.epoch.elapsed().as_nanos() as u64;
        let rec = SpanData {
            name: live.name.to_string(),
            thread: THREAD_ID.with(|t| *t),
            depth: live.depth,
            start_ns: live.start_ns,
            dur_ns: end_ns.saturating_sub(live.start_ns),
        };
        reg.spans.lock().unwrap().push(rec);
    }
}

/// A handle to one named counter. Adding through a handle is a single
/// relaxed `fetch_add` (no registry lock), so hot loops should resolve
/// the handle once (e.g. in a `OnceLock`) and reuse it.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Add `delta`; a no-op while tracing is disabled.
    #[inline]
    pub fn add(&self, delta: u64) {
        if is_enabled() {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Overwrite the value (gauge semantics — last write wins); a no-op
    /// while tracing is disabled.
    #[inline]
    pub fn set(&self, value: u64) {
        if is_enabled() {
            self.cell.store(value, Ordering::Relaxed);
        }
    }
}

/// Resolve (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    let reg = registry();
    let mut map = reg.counters.lock().unwrap();
    let cell = *map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
    Counter { cell }
}

/// Add `delta` to the counter named `name`. Convenience for cold call
/// sites; when tracing is disabled this is one atomic load and returns.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    counter(name).cell.fetch_add(delta, Ordering::Relaxed);
}

/// Overwrite the counter named `name` (gauge semantics — last write
/// wins; snapshots report the most recent value, not a running sum).
/// Used for enumeration-valued facts like `plan.isa_tier`. A no-op
/// while tracing is disabled.
#[inline]
pub fn counter_set(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    counter(name).cell.store(value, Ordering::Relaxed);
}

/// Copy out everything recorded so far (spans in completion order plus
/// all counter totals). Recording state is unaffected.
pub fn snapshot() -> TraceSnapshot {
    let reg = registry();
    let spans = reg.spans.lock().unwrap().clone();
    let counters = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect();
    TraceSnapshot { spans, counters }
}

/// Clear recorded spans and zero every counter (names stay registered).
pub fn reset() {
    let reg = registry();
    reg.spans.lock().unwrap().clear();
    for cell in reg.counters.lock().unwrap().values() {
        cell.store(0, Ordering::Relaxed);
    }
}
