//! Snapshot export: structured JSON (schema-versioned, round-trippable
//! through [`spmm_common::json`]) and the Chrome tracing event format.

use crate::registry::SpanData;
use spmm_common::json::{Json, ToJson};
use spmm_common::Result;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Schema version stamped on every exported snapshot; bump on any
/// incompatible change to the JSON layout.
pub const SCHEMA_VERSION: u64 = 1;

/// A consistent copy of the registry at one point in time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSnapshot {
    /// Finished spans in completion order.
    pub spans: Vec<SpanData>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
}

impl TraceSnapshot {
    /// Total of the counter named `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of `dur_ns` over all spans named `name`.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Number of spans named `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Structured JSON document:
    /// `{schema_version, spans: [{name, thread, depth, start_ns, dur_ns}], counters: {..}}`.
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let mut m = BTreeMap::new();
                m.insert("name".into(), Json::Str(s.name.clone()));
                m.insert("thread".into(), Json::Num(s.thread as f64));
                m.insert("depth".into(), Json::Num(s.depth as f64));
                m.insert("start_ns".into(), Json::Num(s.start_ns as f64));
                m.insert("dur_ns".into(), Json::Num(s.dur_ns as f64));
                Json::Obj(m)
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
            .collect();
        let mut doc = BTreeMap::new();
        doc.insert("schema_version".into(), Json::Num(SCHEMA_VERSION as f64));
        doc.insert("spans".into(), Json::Arr(spans));
        doc.insert("counters".into(), Json::Obj(counters));
        Json::Obj(doc)
    }

    /// Rebuild a snapshot from [`TraceSnapshot::to_json`] output.
    pub fn from_json(doc: &Json) -> std::result::Result<TraceSnapshot, String> {
        let version = doc["schema_version"]
            .as_f64()
            .ok_or("missing schema_version")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema {version} unsupported (expected {SCHEMA_VERSION})"
            ));
        }
        let num = |j: &Json, field: &str| -> std::result::Result<u64, String> {
            j[field]
                .as_f64()
                .map(|x| x as u64)
                .ok_or_else(|| format!("span field {field} missing or non-numeric"))
        };
        let spans = doc["spans"]
            .as_array()
            .ok_or("spans is not an array")?
            .iter()
            .map(|s| {
                Ok(SpanData {
                    name: s["name"].as_str().ok_or("span name missing")?.to_string(),
                    thread: num(s, "thread")?,
                    depth: num(s, "depth")? as u32,
                    start_ns: num(s, "start_ns")?,
                    dur_ns: num(s, "dur_ns")?,
                })
            })
            .collect::<std::result::Result<Vec<_>, String>>()?;
        let counters = doc["counters"]
            .as_object()
            .ok_or("counters is not an object")?
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|x| (k.clone(), x as u64))
                    .ok_or_else(|| format!("counter {k} is non-numeric"))
            })
            .collect::<std::result::Result<BTreeMap<_, _>, String>>()?;
        Ok(TraceSnapshot { spans, counters })
    }

    /// Chrome tracing document (a JSON array loadable in
    /// `chrome://tracing` / Perfetto): one `"X"` complete event per span
    /// (µs timestamps, `tid` = recording thread, depth in `args`) and
    /// one `"C"` counter event per counter.
    pub fn chrome_trace(&self) -> Json {
        let mut events: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                let mut m = BTreeMap::new();
                m.insert("name".into(), Json::Str(s.name.clone()));
                m.insert("cat".into(), Json::Str("span".into()));
                m.insert("ph".into(), Json::Str("X".into()));
                m.insert("ts".into(), Json::Num(s.start_ns as f64 / 1e3));
                m.insert("dur".into(), Json::Num(s.dur_ns as f64 / 1e3));
                m.insert("pid".into(), Json::Num(1.0));
                m.insert("tid".into(), Json::Num(s.thread as f64));
                let mut args = BTreeMap::new();
                args.insert("depth".into(), Json::Num(s.depth as f64));
                m.insert("args".into(), Json::Obj(args));
                Json::Obj(m)
            })
            .collect();
        let end_ts = self
            .spans
            .iter()
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap_or(0) as f64
            / 1e3;
        for (name, &value) in &self.counters {
            let mut m = BTreeMap::new();
            m.insert("name".into(), Json::Str(name.clone()));
            m.insert("ph".into(), Json::Str("C".into()));
            m.insert("ts".into(), Json::Num(end_ts));
            m.insert("pid".into(), Json::Num(1.0));
            let mut args = BTreeMap::new();
            args.insert("value".into(), Json::Num(value as f64));
            m.insert("args".into(), Json::Obj(args));
            events.push(Json::Obj(m));
        }
        Json::Arr(events)
    }

    /// Write the structured JSON document to `path`.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().to_string_pretty().as_bytes())?;
        Ok(())
    }

    /// Write the Chrome tracing document to `path`.
    pub fn save_chrome_trace(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.chrome_trace().to_string_pretty().as_bytes())?;
        Ok(())
    }
}

impl ToJson for TraceSnapshot {
    fn to_json(&self) -> Json {
        TraceSnapshot::to_json(self)
    }
}
