//! Hybrid (`KernelKind::Auto`) dispatch: stitching edge cases and
//! bit-identity guarantees.
//!
//! The load-bearing property is *row-partition invariance*: each output
//! row accumulates exactly its own row's lanes in ascending column
//! order, so a region's rows must come out bit-identical to a
//! whole-matrix run of the same kernel — NaN payloads and Inf
//! propagation included. Every test here compares raw `f32::to_bits`.

use spmm_kernels::{
    DispatchDecision, ExecutionPlan, KernelKind, PlanIr, PlanLoader, PreparedKernel, Workspace,
};
use spmm_matrix::{gen, CsrMatrix, DenseMatrix};
use spmm_sim::Arch;

const DIM: usize = 16;

fn acc_config() -> spmm_kernels::AccConfig {
    spmm_kernels::AccConfig::full()
}

fn execute(plan: ExecutionPlan, b: &DenseMatrix) -> DenseMatrix {
    let kernel = PreparedKernel::from_plan(plan);
    let mut out = DenseMatrix::zeros(kernel.execution_plan().csr().nrows(), b.ncols());
    let mut ws = Workspace::new();
    kernel.execute_into(b, &mut out, &mut ws).unwrap();
    out
}

fn single(kind: KernelKind, m: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
    let plan = ExecutionPlan::build(kind, m, Arch::A800, DIM, acc_config()).unwrap();
    execute(plan, b)
}

fn pinned(
    m: &CsrMatrix,
    decision: DispatchDecision,
    b: &DenseMatrix,
) -> (ExecutionPlan, DenseMatrix) {
    let plan =
        ExecutionPlan::build_auto_pinned(m, Arch::A800, DIM, acc_config(), decision).unwrap();
    let out = execute(plan.clone(), b);
    (plan, out)
}

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// Dense 64-row head (degree 32), degree-1 tail, with empty rows
/// spliced in — the worst case for stitching: region boundaries, empty
/// windows, and both kernel classes in one matrix.
fn skewed(n: usize) -> CsrMatrix {
    let mut row_ptr = vec![0usize];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for r in 0..n {
        let mut cols: Vec<u32> = if r < 64 {
            (0..32).map(|j| ((r + j * 7) % n) as u32).collect()
        } else if r % 5 == 0 {
            Vec::new() // empty rows inside the sparse tail
        } else {
            vec![r as u32]
        };
        cols.sort_unstable();
        for c in cols {
            col_idx.push(c);
            values.push(0.5 + (r as f32) * 0.01 + (c as f32) * 0.001);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::new(n, n, row_ptr, col_idx, values).unwrap()
}

fn hybrid_decision(threshold: f64) -> DispatchDecision {
    DispatchDecision::Hybrid {
        dense: KernelKind::AccSpmm,
        sparse: KernelKind::CusparseLike,
        threshold,
    }
}

#[test]
fn all_dense_degenerates_to_pure_tc() {
    // Threshold 0 classifies every window dense: the hybrid must
    // collapse to ONE AccSpmm region and reproduce its bits exactly.
    let m = gen::uniform_random(128, 12.0, 3);
    let b = DenseMatrix::random(m.ncols(), DIM, 5);
    let (plan, out) = pinned(&m, hybrid_decision(0.0), &b);
    let regions = plan.regions().unwrap();
    assert_eq!(regions.len(), 1);
    assert_eq!(regions[0].kind, KernelKind::AccSpmm);
    assert_eq!(regions[0].row_lo, 0);
    assert_eq!(regions[0].row_hi, m.nrows());
    assert_eq!(bits(&out), bits(&single(KernelKind::AccSpmm, &m, &b)));
}

#[test]
fn all_sparse_degenerates_to_pure_scalar() {
    // An unreachable threshold classifies every window sparse.
    let m = gen::uniform_random(128, 12.0, 3);
    let b = DenseMatrix::random(m.ncols(), DIM, 5);
    let (plan, out) = pinned(&m, hybrid_decision(1e9), &b);
    let regions = plan.regions().unwrap();
    assert_eq!(regions.len(), 1);
    assert_eq!(regions[0].kind, KernelKind::CusparseLike);
    assert_eq!(bits(&out), bits(&single(KernelKind::CusparseLike, &m, &b)));
}

#[test]
fn hybrid_regions_stitch_bit_identical_to_single_kernel_references() {
    let m = skewed(512);
    let b = DenseMatrix::random(m.ncols(), DIM, 9);
    let (plan, out) = pinned(&m, hybrid_decision(8.0), &b);
    let regions = plan.regions().unwrap();
    assert!(regions.len() >= 2, "skewed matrix must split");
    // Regions tile [0, nrows) contiguously.
    let mut cursor = 0;
    for r in regions {
        assert_eq!(r.row_lo, cursor);
        cursor = r.row_hi;
    }
    assert_eq!(cursor, m.nrows());
    // Each region's rows are bit-identical to a WHOLE-matrix run of
    // that region's kernel, restricted to those rows (row-partition
    // invariance) — this is the "bit-identical to the single-kernel
    // reference" acceptance criterion.
    for kind in [KernelKind::AccSpmm, KernelKind::CusparseLike] {
        let reference = single(kind, &m, &b);
        for r in regions.iter().filter(|r| r.kind == kind) {
            for row in r.row_lo..r.row_hi {
                let got: Vec<u32> = out.row(row).iter().map(|x| x.to_bits()).collect();
                let want: Vec<u32> = reference.row(row).iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want, "row {row} ({kind:?})");
            }
        }
    }
}

#[test]
fn empty_row_regions_produce_zero_rows() {
    // A fully empty matrix still plans and multiplies: every output
    // row is exactly +0.0.
    let n = 64;
    let m = CsrMatrix::new(n, n, vec![0; n + 1], Vec::new(), Vec::new()).unwrap();
    let b = DenseMatrix::random(n, DIM, 2);
    let (plan, out) = pinned(&m, hybrid_decision(8.0), &b);
    assert!(plan.regions().unwrap().len() <= 1);
    assert!(out.as_slice().iter().all(|x| x.to_bits() == 0));
}

#[test]
fn nan_inf_splices_are_bit_identical() {
    // NaN payload bits and Inf signs must survive the stitch unchanged
    // relative to each region's single-kernel reference.
    let m = skewed(512);
    let mut b = DenseMatrix::random(m.ncols(), DIM, 13);
    b.set(0, 0, f32::NAN);
    b.set(1, 1, f32::INFINITY);
    b.set(2, 2, f32::NEG_INFINITY);
    b.set(100, 3, f32::from_bits(0x7fc0_dead)); // NaN with payload
    let (plan, out) = pinned(&m, hybrid_decision(8.0), &b);
    let regions = plan.regions().unwrap();
    assert!(regions.len() >= 2);
    for kind in [KernelKind::AccSpmm, KernelKind::CusparseLike] {
        let reference = single(kind, &m, &b);
        for r in regions.iter().filter(|r| r.kind == kind) {
            for row in r.row_lo..r.row_hi {
                let got: Vec<u32> = out.row(row).iter().map(|x| x.to_bits()).collect();
                let want: Vec<u32> = reference.row(row).iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want, "row {row} ({kind:?}) with NaN/Inf operands");
            }
        }
    }
}

#[test]
fn auto_policy_build_executes_and_reports_decision() {
    // The default-policy path (no pinning): plan must carry a decision
    // and regions, and repeated multiplies through one workspace must
    // be bit-stable.
    let m = skewed(512);
    let b = DenseMatrix::random(m.ncols(), DIM, 21);
    let kernel = PreparedKernel::builder(KernelKind::Auto, &m)
        .feature_dim(DIM)
        .build()
        .unwrap();
    assert!(kernel.execution_plan().decision().is_some());
    assert!(kernel.execution_plan().regions().is_some());
    let mut ws = Workspace::new();
    let mut out1 = DenseMatrix::zeros(m.nrows(), DIM);
    let mut out2 = DenseMatrix::zeros(m.nrows(), DIM);
    kernel.execute_into(&b, &mut out1, &mut ws).unwrap();
    kernel.execute_into(&b, &mut out2, &mut ws).unwrap();
    assert_eq!(bits(&out1), bits(&out2));
}

#[test]
fn auto_plan_ir_roundtrip_is_bit_identical() {
    let m = skewed(512);
    let b = DenseMatrix::random(m.ncols(), DIM, 17);
    let (plan, out) = pinned(&m, hybrid_decision(8.0), &b);
    assert!(plan.regions().unwrap().len() >= 2);
    let ir_bytes = plan.to_ir().to_bytes().unwrap();
    let rt = PlanIr::read_from(std::io::Cursor::new(&ir_bytes)).unwrap();
    assert_eq!(rt.kind, KernelKind::Auto);
    assert_eq!(rt.regions.len(), plan.regions().unwrap().len());
    let loaded = PlanLoader::new()
        .expect_arch(Arch::A800)
        .expect_kind(KernelKind::Auto)
        .expect_fingerprint(plan.input_fingerprint())
        .rehydrate(rt)
        .unwrap();
    assert_eq!(
        loaded.decision(),
        plan.decision(),
        "pinned decision survives the roundtrip"
    );
    let replayed = execute(loaded, &b);
    assert_eq!(bits(&replayed), bits(&out));
}

#[test]
fn decisions_naming_auto_are_rejected() {
    let m = gen::uniform_random(64, 4.0, 1);
    let err = ExecutionPlan::build_auto_pinned(
        &m,
        Arch::A800,
        DIM,
        acc_config(),
        DispatchDecision::Single(KernelKind::Auto),
    );
    assert!(err.is_err(), "Auto-in-Auto must be rejected");
    let err = ExecutionPlan::build_auto_pinned(
        &m,
        Arch::A800,
        DIM,
        acc_config(),
        DispatchDecision::Hybrid {
            dense: KernelKind::Auto,
            sparse: KernelKind::CusparseLike,
            threshold: 4.0,
        },
    );
    assert!(err.is_err());
}
