//! Observability contract of the execution path: enabling tracing must
//! not change results, and the disabled-path cost of the instrumentation
//! must be negligible (≤2% of a multiply). Both tests mutate the
//! process-global trace registry, so they serialize on one lock.

use spmm_kernels::{KernelKind, PreparedKernel, Workspace};
use spmm_matrix::{gen, DenseMatrix};
use spmm_sim::Arch;
use std::sync::Mutex;
use std::time::Instant;

static SERIAL: Mutex<()> = Mutex::new(());

fn workload() -> (PreparedKernel, DenseMatrix) {
    let m = gen::uniform_random(1024, 8.0, 11);
    let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
        .arch(Arch::A800)
        .feature_dim(64)
        .build()
        .unwrap();
    let b = DenseMatrix::random(1024, 64, 5);
    (k, b)
}

#[test]
fn execute_into_is_bit_identical_with_tracing_enabled() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (k, b) = workload();
    let mut ws = Workspace::for_plan(k.execution_plan());
    let mut disabled_out = DenseMatrix::zeros(1024, 64);
    let mut enabled_out = DenseMatrix::zeros(1024, 64);

    spmm_trace::disable();
    k.execute_into(&b, &mut disabled_out, &mut ws).unwrap();

    spmm_trace::reset();
    spmm_trace::enable();
    k.execute_into(&b, &mut enabled_out, &mut ws).unwrap();
    let snap = spmm_trace::snapshot();
    spmm_trace::disable();
    spmm_trace::reset();

    assert_eq!(
        disabled_out, enabled_out,
        "tracing must be purely observational"
    );
    // The window actually observed the multiply.
    assert!(snap.span_count("kernel.execute") >= 1);
    assert!(snap.counter("kernel.multiplies") >= 1);
}

#[test]
fn disabled_path_overhead_is_under_two_percent() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (k, b) = workload();
    let mut ws = Workspace::for_plan(k.execution_plan());
    let mut out = DenseMatrix::zeros(1024, 64);
    spmm_trace::disable();

    // Per-call cost of a disabled span + disabled counter add (the two
    // primitives every instrumented site pays when tracing is off).
    let probes = 1_000_000u32;
    let t0 = Instant::now();
    for _ in 0..probes {
        let g = spmm_trace::span("overhead.probe");
        spmm_trace::counter_add("overhead.probe", 1);
        std::hint::black_box(&g);
    }
    let per_call_s = t0.elapsed().as_secs_f64() / probes as f64;

    // How many instrumented call sites one multiply actually crosses.
    spmm_trace::reset();
    spmm_trace::enable();
    k.execute_into(&b, &mut out, &mut ws).unwrap();
    let snap = spmm_trace::snapshot();
    spmm_trace::disable();
    spmm_trace::reset();
    let events = snap.spans.len() + snap.counters.len();

    // Median multiply time with tracing disabled.
    let times: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            k.execute_into(&b, &mut out, &mut ws).unwrap();
            t.elapsed().as_secs_f64()
        })
        .collect();
    let multiply_s = spmm_common::stats::median(&times);

    // 4x margin on the event count; the budget is 2% of the multiply.
    let overhead_s = per_call_s * (events * 4) as f64;
    assert!(
        overhead_s <= 0.02 * multiply_s,
        "disabled-path overhead {:.1}ns ({events} events) vs 2% of multiply {:.1}µs",
        overhead_s * 1e9,
        multiply_s * 1e6 * 0.02
    );
}
