//! Round-trip properties of the persistent plan IR: for every kernel,
//! a saved-and-reloaded plan must execute **bit-identically** to the
//! plan it was snapshotted from — including NaN positions, infinities,
//! and subnormals spliced into the operand values — and corrupted
//! containers must be rejected with typed errors, never mis-loaded.

use proptest::prelude::*;
use spmm_common::{PlanLoadError, SpmmError};
use spmm_kernels::{AccConfig, ExecutionPlan, KernelKind, PlanIr, PlanLoader, PreparedKernel};
use spmm_matrix::{gen, CsrMatrix, DenseMatrix};
use spmm_sim::Arch;

/// Splice non-finite / subnormal values into a matrix at deterministic
/// positions (structure unchanged: `CsrMatrix::new` validates structure
/// but deliberately not value finiteness).
fn splice_special_values(m: &CsrMatrix, seed: u64) -> CsrMatrix {
    const SPECIALS: [f32; 6] = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        1.0e-40, // subnormal
        -1.0e-41,
        -0.0,
    ];
    let mut values = m.values().to_vec();
    if !values.is_empty() {
        for (i, &s) in SPECIALS.iter().enumerate() {
            let at = (spmm_common::util::splitmix64(seed.wrapping_add(i as u64)) as usize)
                % values.len();
            values[at] = s;
        }
    }
    CsrMatrix::new(
        m.nrows(),
        m.ncols(),
        m.row_ptr().to_vec(),
        m.col_idx().to_vec(),
        values,
    )
    .unwrap()
}

fn build_plan(kind: KernelKind, m: &CsrMatrix, dim: usize) -> ExecutionPlan {
    ExecutionPlan::build(kind, m, Arch::A800, dim, AccConfig::full()).unwrap()
}

/// Bit-exact output comparison: NaNs must match *by position and bit
/// pattern*, which `==` on floats cannot express.
fn assert_bits_identical(a: &DenseMatrix, b: &DenseMatrix, kind: KernelKind) {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{kind:?}: output {i} differs after reload: {x} vs {y}"
        );
    }
}

proptest! {
    // Plan builds are the expensive half of the workflow; a handful of
    // randomized operands per kernel exercises the codec paths
    // (empty/full windows, permutations, balance chunks) without
    // minutes of runtime.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn reloaded_plans_execute_bit_identically_for_every_kernel(
        n in 48usize..160,
        density in 2.0f64..8.0,
        seed in 0u64..1_000,
        dim_sel in 0usize..3,
    ) {
        let dim = [8usize, 16, 32][dim_sel];
        let m = splice_special_values(&gen::uniform_random(n, density, seed), seed);
        let b = DenseMatrix::random(n, dim, seed.wrapping_add(7));
        for kind in KernelKind::ALL {
            let plan = build_plan(kind, &m, dim);
            let bytes = plan.to_ir().to_bytes().unwrap();

            let reference = PreparedKernel::from_plan(plan).execute(&b).unwrap();
            let loaded = PlanLoader::new()
                .expect_kind(kind)
                .expect_arch(Arch::A800)
                .expect_fingerprint(m.content_fingerprint())
                .expect_feature_dim(dim)
                .expect_config(AccConfig::full())
                .read(std::io::Cursor::new(&bytes))
                .unwrap();
            let replayed = PreparedKernel::from_plan(loaded).execute(&b).unwrap();
            assert_bits_identical(&reference, &replayed, kind);
        }
    }

    #[test]
    fn truncated_containers_never_load(
        n in 48usize..96,
        seed in 0u64..1_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let m = gen::uniform_random(n, 4.0, seed);
        let plan = build_plan(KernelKind::AccSpmm, &m, 16);
        let bytes = plan.to_ir().to_bytes().unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(PlanIr::read_from(std::io::Cursor::new(&bytes[..cut])).is_err());
    }

    #[test]
    fn single_byte_corruption_never_loads_a_wrong_plan(
        n in 48usize..96,
        seed in 0u64..1_000,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let m = gen::uniform_random(n, 4.0, seed);
        let plan = build_plan(KernelKind::AccSpmm, &m, 16);
        let mut bytes = plan.to_ir().to_bytes().unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        // Either the container is rejected, or — when the flip hits a
        // value byte inside the CSR section — the stored-fingerprint
        // cross-check catches it. A successful load must only happen if
        // the flipped byte was outside every checked region AND the
        // plan still binds to the same identity; reject-or-identical is
        // the invariant.
        match PlanIr::read_from(std::io::Cursor::new(&bytes)) {
            Err(_) => {}
            Ok(ir) => {
                // Loadable implies the artifacts re-validated; the
                // binding must be untouched.
                prop_assert_eq!(ir.kind, KernelKind::AccSpmm);
                prop_assert_eq!(ir.feature_dim, 16);
            }
        }
    }
}

#[test]
fn save_and_load_through_files_round_trips() {
    let dir = std::env::temp_dir().join(format!("spmm-plan-ir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let m = splice_special_values(&gen::uniform_random(128, 5.0, 3), 3);
    let b = DenseMatrix::random(128, 16, 9);
    for kind in KernelKind::ALL {
        let path = dir.join(format!("{kind:?}.plan"));
        let plan = build_plan(kind, &m, 16);
        plan.save(&path).unwrap();
        let reference = PreparedKernel::from_plan(plan).execute(&b).unwrap();

        let loaded = PlanLoader::new().load(&path).unwrap();
        let replayed = PreparedKernel::from_plan(loaded).execute(&b).unwrap();
        assert_bits_identical(&reference, &replayed, kind);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_header_is_a_typed_rejection() {
    let m = gen::uniform_random(64, 4.0, 1);
    let plan = build_plan(KernelKind::DtcSpmm, &m, 8);
    let mut bytes = plan.to_ir().to_bytes().unwrap();

    // Magic.
    bytes[0] = b'X';
    assert!(matches!(
        PlanIr::read_from(std::io::Cursor::new(&bytes)).unwrap_err(),
        SpmmError::PlanLoad(PlanLoadError::NotPlanIr { .. })
    ));
    bytes[0] = b'S';

    // Version.
    bytes[4] = 42;
    assert!(matches!(
        PlanIr::read_from(std::io::Cursor::new(&bytes)).unwrap_err(),
        SpmmError::PlanLoad(PlanLoadError::VersionMismatch { found: 42, .. })
    ));
    bytes[4] = spmm_kernels::PLAN_IR_VERSION as u8;

    // JSON header body.
    let json_start = 4 + 4 + 8;
    bytes[json_start] = b'}';
    assert!(matches!(
        PlanIr::read_from(std::io::Cursor::new(&bytes)).unwrap_err(),
        SpmmError::PlanLoad(PlanLoadError::NotPlanIr { .. })
    ));
}

#[test]
fn foreign_isa_tier_rebinds_to_the_host_probe_at_load() {
    use spmm_common::IsaTier;
    let m = gen::uniform_random(96, 5.0, 7);
    let plan = build_plan(KernelKind::AccSpmm, &m, 16);
    let host = IsaTier::probe();
    assert_eq!(plan.isa_tier(), host);
    assert_eq!(plan.compiled_trace().isa_tier, host);

    // Forge an artifact recorded on a "different host": stamp a tier
    // that is not this host's probe result into the IR (the header is
    // derived from the trace at write time, so the container stays
    // self-consistent and parses cleanly).
    let mut ir = plan.to_ir();
    let foreign = IsaTier::ALL
        .into_iter()
        .find(|t| *t != host)
        .expect("more than one tier exists");
    ir.trace.isa_tier = foreign;
    let bytes = ir.to_bytes().unwrap();

    let parsed = PlanIr::read_from(std::io::Cursor::new(&bytes)).unwrap();
    assert_eq!(
        parsed.trace.isa_tier, foreign,
        "the recorded tier survives structural parsing untouched"
    );

    // Rehydration re-resolves against the loading host: the recorded
    // tier is advisory provenance, not a binding.
    let loaded = PlanLoader::new()
        .read(std::io::Cursor::new(&bytes))
        .unwrap();
    assert_eq!(loaded.isa_tier(), host);
    assert_eq!(loaded.compiled_trace().isa_tier, host);

    // And the re-bound plan executes bit-identically to the original
    // (every tier computes the same bits, so a re-bind is invisible).
    let b = DenseMatrix::random(96, 16, 11);
    let reference = PreparedKernel::from_plan(plan).execute(&b).unwrap();
    let replayed = PreparedKernel::from_plan(loaded).execute(&b).unwrap();
    assert_bits_identical(&reference, &replayed, KernelKind::AccSpmm);
}

#[test]
fn pinned_unavailable_isa_tier_is_a_build_error() {
    use spmm_common::IsaTier;
    // NEON and the x86 tiers are mutually exclusive, so every host has
    // at least one unavailable tier to pin.
    let unavailable = IsaTier::ALL
        .into_iter()
        .find(|t| !t.is_available())
        .expect("no host implements every ISA");
    let m = gen::uniform_random(64, 4.0, 5);
    let config = AccConfig {
        isa: Some(unavailable),
        ..AccConfig::full()
    };
    let err = ExecutionPlan::build(KernelKind::AccSpmm, &m, Arch::A800, 16, config).unwrap_err();
    assert!(
        matches!(err, SpmmError::InvalidConfig(_)),
        "expected InvalidConfig, got {err:?}"
    );
}
