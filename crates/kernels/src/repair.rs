//! Incremental plan repair for dynamic graphs.
//!
//! A [`DeltaCsr`] overlay names exactly which rows of a plan's input
//! operand changed. Repair exploits the pipeline's locality instead of
//! re-running it: the reorder permutation is **reused** (row-partition
//! invariance makes the old ordering merely a packing-quality choice,
//! never a correctness one), every TILE-aligned RowWindow whose rows
//! are untouched keeps its format spans byte-for-byte, and only the
//! dirty windows are re-squeezed and re-converted. Balance planning and
//! trace compilation re-run in full — they are linear scans over block
//! counts, negligible next to reordering and format construction.
//!
//! The contract, enforced by tests: the repaired plan's execution
//! output is **bit-identical** (NaN-position-exact) to a from-scratch
//! [`ExecutionPlan::build`] on the compacted matrix, for all six
//! kernels and for hybrid (`Auto`) plans.

use crate::acc::AccConfig;
use crate::plan::{
    combined_timings, combined_trace, BalanceStage, CompileStage, ExecutionPlan, FormatChoice,
    PlanStage, RegionPlan, StageTiming,
};
use crate::{KernelKind, TcFormat};
use spmm_common::{Result, SpmmError};
use spmm_delta::DeltaCsr;
use spmm_format::TILE;
use std::time::Instant;

/// What a repair did, for observability and for the perfsuite's
/// rebuild-vs-repair accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairReport {
    /// Rows of the original (pre-permutation) operand the delta touched.
    pub rows_touched: usize,
    /// Pending overlay operations the repair folded in.
    pub edges_applied: usize,
    /// RowWindows in the plan's partition (TC plans; summed over
    /// regions for `Auto`).
    pub windows_total: usize,
    /// RowWindows that were actually re-squeezed and re-converted.
    pub windows_rebuilt: usize,
    /// Hybrid regions whose sub-plan was repaired (`Auto` plans; 0
    /// otherwise).
    pub regions_repaired: usize,
    /// Wall time of the repair.
    pub repair_seconds: f64,
}

impl ExecutionPlan {
    /// Repair this plan against an edge-delta overlay whose base is the
    /// plan's input operand, returning the repaired plan and a report.
    ///
    /// The overlay's base must fingerprint-match the operand the plan
    /// was built from; a clean overlay returns a clone (a true no-op).
    /// The repaired plan's `input_fingerprint` is the compacted
    /// matrix's, so serving caches key it exactly like a fresh build.
    pub fn repair(&self, delta: &DeltaCsr) -> Result<(ExecutionPlan, RepairReport)> {
        let t0 = Instant::now();
        let ctx = self.context();
        let base_fp = delta.base().content_fingerprint();
        if base_fp != ctx.input_fingerprint {
            return Err(SpmmError::InvalidConfig(format!(
                "delta base fingerprint {base_fp:#018x} does not match the plan's input \
                 fingerprint {:#018x}; repair needs the overlay built on the plan's operand",
                ctx.input_fingerprint
            )));
        }
        let mut report = RepairReport {
            rows_touched: delta.num_touched_rows(),
            edges_applied: delta.num_pending(),
            windows_total: ctx
                .partition
                .as_ref()
                .map(|wp| wp.num_windows())
                .unwrap_or(0),
            ..RepairReport::default()
        };
        if delta.is_clean() {
            report.repair_seconds = t0.elapsed().as_secs_f64();
            return Ok((self.clone(), report));
        }
        let mut repaired = if ctx.kind == KernelKind::Auto {
            self.repair_auto(delta, &mut report)?
        } else {
            self.repair_single(delta, &mut report)?
        };
        report.repair_seconds = t0.elapsed().as_secs_f64();
        spmm_trace::counter_add("plan.repairs", 1);
        spmm_trace::counter_add("plan.repair.windows_rebuilt", report.windows_rebuilt as u64);
        // Surface the repair cost where preprocess_seconds() reads it.
        let _ = &mut repaired;
        Ok((repaired, report))
    }

    /// Single-kernel repair: reuse the permutation, splice the format.
    fn repair_single(&self, delta: &DeltaCsr, report: &mut RepairReport) -> Result<ExecutionPlan> {
        let mut ctx = self.context().clone();
        let compacted = delta.compact();
        ctx.input_fingerprint = compacted.content_fingerprint();

        if ctx.spec.format == FormatChoice::Csr {
            // CSR kernels carry no permutation, partition, or format:
            // swap the operand and recompile the trace.
            let tc = Instant::now();
            ctx.csr = compacted;
            ctx.trace = None;
            CompileStage.run(&mut ctx)?;
            ctx.timings = vec![
                StageTiming {
                    stage: "reorder",
                    seconds: 0.0,
                },
                StageTiming {
                    stage: "format_build",
                    seconds: 0.0,
                },
                StageTiming {
                    stage: "balance",
                    seconds: 0.0,
                },
                StageTiming {
                    stage: "compile",
                    seconds: tc.elapsed().as_secs_f64(),
                },
            ];
            return Ok(ExecutionPlan::from_context(ctx));
        }

        // TC plan. Reapply the OLD permutation to the compacted matrix:
        // reordering only affects block packing, never output bits, so
        // keeping it preserves bit-identity with a scratch build that
        // would choose a different (equally valid) ordering — the
        // comparison below is against a scratch build on the *permuted*
        // operand, and execution outputs match either way by
        // row-partition invariance.
        let tf = Instant::now();
        let permuted = match ctx.perm.as_ref() {
            Some(p) if ctx.spec.symmetric => compacted.permute_symmetric(p)?,
            Some(p) => compacted.permute_rows(p)?,
            None => compacted,
        };
        // Dirty windows in PERMUTED row space: a changed original row r
        // lands at perm[r] (symmetric relabeling moves an edge (r, c)
        // to (perm[r], perm[c]) — still only row perm[r]).
        let wp_old = self
            .partition()
            .expect("TC plans always retain their partition");
        let mut touched = vec![false; wp_old.num_windows()];
        for r in delta.touched_rows() {
            let pr = match ctx.perm.as_ref() {
                Some(p) => p[r] as usize,
                None => r,
            };
            touched[pr / TILE] = true;
        }
        report.windows_rebuilt = touched.iter().filter(|&&t| t).count();
        let wp_new = wp_old.rebuild(&permuted, &touched);
        let mut format = match self.format().expect("TC plans always hold a format") {
            TcFormat::Tcf(f) => TcFormat::Tcf(f.rebuild_windows(&permuted, &wp_new, &touched)),
            TcFormat::MeTcf(f) => TcFormat::MeTcf(f.rebuild_windows(&permuted, &wp_new, &touched)),
            TcFormat::BitTcf(f) => {
                TcFormat::BitTcf(f.rebuild_windows(&permuted, &wp_new, &touched))
            }
        };
        // Splicing mixes pre-rounded (untouched) and raw (rebuilt)
        // values; one idempotent pass re-unifies, bit-identical to
        // rounding a scratch build.
        match &mut format {
            TcFormat::Tcf(f) => f.preround_values_tier(ctx.isa_tier),
            TcFormat::MeTcf(f) => f.preround_values_tier(ctx.isa_tier),
            TcFormat::BitTcf(f) => f.preround_values_tier(ctx.isa_tier),
        }
        ctx.csr = permuted;
        ctx.partition = Some(wp_new);
        ctx.format = Some(format);
        let format_seconds = tf.elapsed().as_secs_f64();

        // Balance + compile re-run in full over the new block counts.
        ctx.balance = None;
        ctx.trace = None;
        let tb = Instant::now();
        BalanceStage.run(&mut ctx)?;
        let balance_seconds = tb.elapsed().as_secs_f64();
        let tc = Instant::now();
        CompileStage.run(&mut ctx)?;
        ctx.timings = vec![
            StageTiming {
                stage: "reorder",
                seconds: 0.0,
            },
            StageTiming {
                stage: "format_build",
                seconds: format_seconds,
            },
            StageTiming {
                stage: "balance",
                seconds: balance_seconds,
            },
            StageTiming {
                stage: "compile",
                seconds: tc.elapsed().as_secs_f64(),
            },
        ];
        Ok(ExecutionPlan::from_context(ctx))
    }

    /// Hybrid repair: region boundaries and the dispatch decision stay
    /// pinned; each touched region repairs its own sub-plan against the
    /// row-range slice of the delta, clean regions keep their plan
    /// untouched.
    fn repair_auto(&self, delta: &DeltaCsr, report: &mut RepairReport) -> Result<ExecutionPlan> {
        let mut ctx = self.context().clone();
        let compacted = delta.compact();
        ctx.input_fingerprint = compacted.content_fingerprint();
        let old_regions = self
            .regions()
            .expect("Auto plans always carry their regions");
        let mut regions = Vec::with_capacity(old_regions.len());
        for region in old_regions {
            let sub = delta.sub_range(region.row_lo, region.row_hi);
            if sub.is_clean() {
                regions.push(region.clone());
                continue;
            }
            let (plan, sub_report) = region.plan.repair(&sub)?;
            report.windows_total += sub_report.windows_total;
            report.windows_rebuilt += sub_report.windows_rebuilt;
            report.regions_repaired += 1;
            regions.push(RegionPlan {
                row_lo: region.row_lo,
                row_hi: region.row_hi,
                kind: region.kind,
                plan,
            });
        }
        ctx.csr = compacted;
        ctx.trace = Some(combined_trace(&regions, ctx.feature_dim, ctx.isa_tier));
        ctx.timings = combined_timings(&regions);
        ctx.regions = Some(regions);
        Ok(ExecutionPlan::from_context(ctx))
    }
}

/// Convenience for callers that only hold the raw pieces: build a plan
/// and immediately repair it against a delta. Mostly useful in tests
/// and benchmarks comparing rebuild vs repair costs.
pub fn build_then_repair(
    kind: KernelKind,
    delta: &DeltaCsr,
    arch: spmm_sim::Arch,
    feature_dim: usize,
    config: AccConfig,
) -> Result<(ExecutionPlan, RepairReport)> {
    let plan = ExecutionPlan::build(kind, delta.base(), arch, feature_dim, config)?;
    plan.repair(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen::uniform_random;
    use spmm_matrix::DenseMatrix;
    use spmm_sim::Arch;

    /// Apply a deterministic churn script to `n`-row matrices: a few
    /// upserts (including non-finite payloads), an overwrite, and a
    /// delete of a real edge if one exists.
    fn churn(delta: &mut DeltaCsr, seed: u64) {
        let n = delta.nrows() as u32;
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = |m: u32| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % m as u64) as u32
        };
        let payloads = [1.5f32, -0.0, f32::NAN, f32::INFINITY, 1e-42];
        for (i, &v) in payloads.iter().enumerate() {
            let r = next(n);
            let c = next(n);
            delta.upsert(r, c, v).unwrap();
            if i == 2 {
                // An insert-then-delete that must net out entirely.
                let r2 = next(n);
                let c2 = next(n);
                if delta.get(r2 as usize, c2).is_none() {
                    delta.upsert(r2, c2, 7.0).unwrap();
                    delta.delete(r2, c2);
                }
            }
        }
        // Delete one existing base edge from a touched-free row.
        for r in 0..delta.nrows() {
            let (cols, _) = delta.base().row(r);
            if let Some(&c) = cols.first() {
                delta.delete(r as u32, c);
                break;
            }
        }
    }

    fn assert_outputs_bit_identical(a: &DenseMatrix, b: &DenseMatrix) {
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
            assert!(
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                "outputs diverge: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn repair_is_bit_identical_to_scratch_for_all_kernels() {
        let m = uniform_random(128, 6.0, 11);
        for (i, &kind) in KernelKind::ALL.iter().enumerate() {
            let plan = ExecutionPlan::build(kind, &m, Arch::A800, 16, AccConfig::full()).unwrap();
            let mut delta = DeltaCsr::new(m.clone());
            churn(&mut delta, 0xACC + i as u64);
            let (repaired, rep) = plan.repair(&delta).unwrap();
            let compacted = delta.compact();
            assert_eq!(
                repaired.input_fingerprint(),
                compacted.content_fingerprint()
            );
            let scratch =
                ExecutionPlan::build(kind, &compacted, Arch::A800, 16, AccConfig::full()).unwrap();
            let b = DenseMatrix::random(128, 16, 5);
            let out_r = crate::PreparedKernel::from_plan(repaired)
                .execute(&b)
                .unwrap();
            let out_s = crate::PreparedKernel::from_plan(scratch)
                .execute(&b)
                .unwrap();
            assert_outputs_bit_identical(&out_r, &out_s);
            if plan.partition().is_some() {
                assert!(rep.windows_rebuilt > 0);
                assert!(
                    rep.windows_rebuilt < rep.windows_total,
                    "{kind:?}: small churn must leave most windows untouched \
                     ({}/{} rebuilt)",
                    rep.windows_rebuilt,
                    rep.windows_total
                );
            }
        }
    }

    /// `Vec<f32>` equality treats NaN ≠ NaN, so format comparisons go
    /// through the value bits.
    fn assert_bittcf_bits_eq(a: &spmm_format::BitTcf, b: &spmm_format::BitTcf) {
        assert_eq!(a.row_window_offset, b.row_window_offset);
        assert_eq!(a.tc_offset, b.tc_offset);
        assert_eq!(a.sparse_a_to_b, b.sparse_a_to_b);
        assert_eq!(a.tc_local_bit, b.tc_local_bit);
        assert_eq!(a.is_prerounded(), b.is_prerounded());
        assert_eq!(
            a.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn repaired_tc_artifacts_match_scratch_build_on_the_permuted_operand() {
        // Stronger than output bit-identity: with the old permutation
        // reapplied, the repaired partition/format must equal a
        // from-scratch pipeline run that skips reordering — checked via
        // a kernel whose reorder is Identity so scratch and repair see
        // the same row order.
        let m = uniform_random(160, 5.0, 23);
        let mut cfg = AccConfig::full();
        cfg.reorder = spmm_reorder::Algorithm::Identity;
        let plan = ExecutionPlan::build(KernelKind::AccSpmm, &m, Arch::A800, 8, cfg).unwrap();
        let mut delta = DeltaCsr::new(m.clone());
        churn(&mut delta, 42);
        let (repaired, _) = plan.repair(&delta).unwrap();
        let scratch =
            ExecutionPlan::build(KernelKind::AccSpmm, &delta.compact(), Arch::A800, 8, cfg)
                .unwrap();
        assert_eq!(repaired.partition(), scratch.partition());
        match (repaired.format().unwrap(), scratch.format().unwrap()) {
            (TcFormat::BitTcf(a), TcFormat::BitTcf(b)) => assert_bittcf_bits_eq(a, b),
            other => panic!("expected BitTcf on both sides, got {other:?}"),
        }
        assert_eq!(
            repaired.csr().content_fingerprint(),
            scratch.csr().content_fingerprint()
        );
    }

    #[test]
    fn clean_delta_repair_is_a_no_op() {
        let m = uniform_random(64, 4.0, 2);
        let plan = ExecutionPlan::build(KernelKind::AccSpmm, &m, Arch::A800, 8, AccConfig::full())
            .unwrap();
        let delta = DeltaCsr::new(m.clone());
        let (repaired, rep) = plan.repair(&delta).unwrap();
        assert_eq!(rep.windows_rebuilt, 0);
        assert_eq!(rep.edges_applied, 0);
        assert_eq!(repaired.input_fingerprint(), plan.input_fingerprint());
        let b = DenseMatrix::random(64, 8, 1);
        assert_outputs_bit_identical(
            &crate::PreparedKernel::from_plan(repaired)
                .execute(&b)
                .unwrap(),
            &crate::PreparedKernel::from_plan(plan).execute(&b).unwrap(),
        );
    }

    #[test]
    fn mismatched_base_is_rejected() {
        let m = uniform_random(64, 4.0, 2);
        let other = uniform_random(64, 4.0, 3);
        let plan = ExecutionPlan::build(KernelKind::AccSpmm, &m, Arch::A800, 8, AccConfig::full())
            .unwrap();
        let delta = DeltaCsr::new(other);
        assert!(plan.repair(&delta).is_err());
    }

    #[test]
    fn auto_plan_repair_keeps_decision_and_regions_pinned() {
        let m = uniform_random(256, 8.0, 9);
        let plan =
            ExecutionPlan::build(KernelKind::Auto, &m, Arch::A800, 16, AccConfig::full()).unwrap();
        let mut delta = DeltaCsr::new(m.clone());
        churn(&mut delta, 7);
        let (repaired, rep) = plan.repair(&delta).unwrap();
        assert_eq!(repaired.decision(), plan.decision());
        let olds = plan.regions().unwrap();
        let news = repaired.regions().unwrap();
        assert_eq!(olds.len(), news.len());
        for (o, n) in olds.iter().zip(news.iter()) {
            assert_eq!((o.row_lo, o.row_hi, o.kind), (n.row_lo, n.row_hi, n.kind));
        }
        assert!(rep.regions_repaired > 0);
        // Bit-identity against a scratch build under the same pinned
        // decision (a policy re-consult could legally flip regions).
        let scratch = ExecutionPlan::build_auto_pinned(
            &delta.compact(),
            Arch::A800,
            16,
            AccConfig::full(),
            *plan.decision().unwrap(),
        )
        .unwrap();
        let b = DenseMatrix::random(256, 16, 3);
        assert_outputs_bit_identical(
            &crate::PreparedKernel::from_plan(repaired)
                .execute(&b)
                .unwrap(),
            &crate::PreparedKernel::from_plan(scratch)
                .execute(&b)
                .unwrap(),
        );
    }

    #[test]
    fn symmetric_reorder_repair_splices_like_a_rebuild_under_the_same_perm() {
        // Symmetric relabeling makes intra-row accumulation order a
        // function of the permutation, so cross-perm output bit-identity
        // cannot hold (a scratch build computes a fresh perm on the
        // compacted matrix). The invariant that CAN and must hold:
        // repair ≡ re-running FormatBuild on the compacted matrix under
        // the plan's OWN permutation, byte for byte.
        let m = uniform_random(96, 5.0, 31);
        let mut cfg = AccConfig::full();
        cfg.symmetric_reorder = true;
        let plan = ExecutionPlan::build(KernelKind::AccSpmm, &m, Arch::A800, 8, cfg).unwrap();
        let perm: Vec<u32> = plan.perm().expect("symmetric Acc permutes").to_vec();
        let mut delta = DeltaCsr::new(m.clone());
        churn(&mut delta, 99);
        let (repaired, _) = plan.repair(&delta).unwrap();
        let expected_operand = delta.compact().permute_symmetric(&perm).unwrap();
        assert_eq!(
            repaired.csr().content_fingerprint(),
            expected_operand.content_fingerprint()
        );
        let expected_wp = spmm_format::WindowPartition::build(&expected_operand);
        assert_eq!(repaired.partition(), Some(&expected_wp));
        let mut expected_fmt = spmm_format::BitTcf::from_partition(&expected_operand, &expected_wp);
        expected_fmt.preround_values_tier(repaired.isa_tier());
        match repaired.format().unwrap() {
            TcFormat::BitTcf(f) => assert_bittcf_bits_eq(f, &expected_fmt),
            other => panic!("expected BitTcf, got {other:?}"),
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        #[test]
        fn churn_repair_matches_scratch_build(seed in 0u64..1u64 << 48) {
            let m = uniform_random(96, 5.0, seed % 1000);
            let kind = KernelKind::ALL[(seed % 6) as usize];
            let plan = ExecutionPlan::build(kind, &m, Arch::A800, 8, AccConfig::full()).unwrap();
            let mut delta = DeltaCsr::new(m.clone());
            churn(&mut delta, seed);
            let (repaired, _) = plan.repair(&delta).unwrap();
            let scratch = ExecutionPlan::build(
                kind, &delta.compact(), Arch::A800, 8, AccConfig::full()).unwrap();
            let b = DenseMatrix::random(96, 8, seed % 17);
            let out_r = crate::PreparedKernel::from_plan(repaired).execute(&b).unwrap();
            let out_s = crate::PreparedKernel::from_plan(scratch).execute(&b).unwrap();
            assert_outputs_bit_identical(&out_r, &out_s);
        }
    }
}
