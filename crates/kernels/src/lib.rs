//! The six SpMM kernel strategies the paper evaluates.
//!
//! Every kernel has two faces:
//! * **functional** — [`PreparedKernel::execute`] computes the numeric
//!   result on the CPU with the same arithmetic the GPU kernel would use
//!   (FP32 FMA for CUDA-core kernels, TF32-operand MMA for tensor-core
//!   kernels), always returning C in *original* row order;
//! * **timing** — [`PreparedKernel::trace`] returns the kernel's work
//!   compiled into a [`spmm_sim::KernelDesc`] and
//!   [`PreparedKernel::profile`] simulates it on a chosen architecture.
//!
//! Preprocessing runs through the staged pipeline in [`plan`]
//! (Reorder → FormatBuild → BalancePlan → Compile); a kernel is one
//! [`plan::StageSpec`] configuration, and [`PreparedKernel`] is a thin
//! execution wrapper around the finished [`ExecutionPlan`]. The
//! [`Workspace`] buffer pool plus [`PreparedKernel::execute_into`] /
//! [`PreparedKernel::execute_batch`] serve the paper's
//! preprocess-once-multiply-many pattern without per-call allocation.
//!
//! | kernel | cores | format | reorder | pipeline | balancing |
//! |---|---|---|---|---|---|
//! | cuSPARSE-like | CUDA | CSR | — | occupancy | row-major |
//! | Sputnik-like | CUDA | CSR (1-D tiles) | — | occupancy | nnz-split |
//! | SparseTIR-like | CUDA | CSR (row buckets) | — | occupancy | bucket |
//! | TC-GNN | TC | TCF | SGT (identity) | synchronous | per-window |
//! | DTC-SpMM | TC | ME-TCF | DTC-LSH | Fig 5a double buffer | DTC split |
//! | Acc-SpMM | TC | BitTCF | data-affinity | Fig 5b least-bubble | adaptive |

pub mod acc;
pub mod dispatch;
pub mod ir;
pub mod plan;
pub mod repair;
pub mod scalar;
pub mod tc;
pub mod workspace;

pub use acc::AccConfig;
pub use dispatch::{
    region_partition, DispatchDecision, DispatchPolicy, MatrixFeatures, PolicyRule, RegionSpec,
    RuleBounds, POLICY_SCHEMA_VERSION,
};
pub use ir::{acc_config_hash, PlanIr, PlanLoader, PLAN_IR_VERSION};
pub use plan::{
    ExecutionPlan, FormatChoice, PlanContext, PlanStage, RegionPlan, StageSpec, StageTiming,
};
pub use repair::{build_then_repair, RepairReport};
pub use workspace::{Workspace, WorkspacePool};

use crate::workspace::ensure_staging;
use spmm_balance::BalancePlan;
use spmm_common::{Result, SpmmError};
use spmm_format::{BStage, BitTcf, MeTcf, Tcf, TileScratch, WindowPartition};
use spmm_matrix::{CsrMatrix, DenseMatrix};
use spmm_sim::{Arch, KernelDesc, KernelReport, SimOptions};

/// The compared kernels, in paper legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// cuSPARSE CSR SpMM on CUDA cores (the baseline of every figure).
    CusparseLike,
    /// Sputnik's 1-D tiled SpMM on CUDA cores.
    SputnikLike,
    /// SparseTIR's composable row-bucket SpMM on CUDA cores.
    SparseTirLike,
    /// TC-GNN SpMM on tensor cores.
    TcGnn,
    /// DTC-SpMM on tensor cores.
    DtcSpmm,
    /// Acc-SpMM (this paper).
    AccSpmm,
    /// Density-adaptive dispatch: the committed autotuner policy picks
    /// a concrete kernel — or a per-row-region hybrid of one TC and
    /// one scalar kernel — from the matrix's features (see
    /// [`dispatch`]). Not a seventh hand-written kernel, so it is
    /// deliberately absent from [`KernelKind::ALL`].
    Auto,
}

impl KernelKind {
    /// All *concrete* kernels, baseline first ([`KernelKind::Auto`]
    /// resolves to these and is not listed).
    pub const ALL: [KernelKind; 6] = [
        KernelKind::CusparseLike,
        KernelKind::SputnikLike,
        KernelKind::SparseTirLike,
        KernelKind::TcGnn,
        KernelKind::DtcSpmm,
        KernelKind::AccSpmm,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::CusparseLike => "cuSPARSE",
            KernelKind::SputnikLike => "Sputnik",
            KernelKind::SparseTirLike => "SparseTIR",
            KernelKind::TcGnn => "TCGNN",
            KernelKind::DtcSpmm => "DTC-SpMM",
            KernelKind::AccSpmm => "Acc-SpMM",
            KernelKind::Auto => "Auto",
        }
    }

    /// Does this kernel run on tensor cores? `Auto` answers `true`: its
    /// dense regions may compile TC formats, so consumers that gate
    /// TC-only degradation paths (the engine's CSR fallback) must treat
    /// it as TC-capable.
    pub fn uses_tensor_cores(&self) -> bool {
        matches!(
            self,
            KernelKind::TcGnn | KernelKind::DtcSpmm | KernelKind::AccSpmm | KernelKind::Auto
        )
    }

    /// The pipeline stage configuration this kernel corresponds to.
    pub fn stage_spec(&self, config: &AccConfig) -> StageSpec {
        StageSpec::for_kernel(*self, config)
    }
}

/// Format data held by a prepared TC kernel.
#[derive(Debug, Clone)]
pub enum TcFormat {
    /// TC-GNN's per-edge format.
    Tcf(Tcf),
    /// DTC-SpMM's per-nnz-id format.
    MeTcf(MeTcf),
    /// The paper's bitmap format.
    BitTcf(BitTcf),
}

impl TcFormat {
    /// Index-structure footprint in bytes of the held format.
    pub fn index_bytes(&self) -> usize {
        match self {
            TcFormat::Tcf(f) => f.index_bytes(),
            TcFormat::MeTcf(f) => f.index_bytes(),
            TcFormat::BitTcf(f) => f.index_bytes(),
        }
    }
}

/// A kernel after preprocessing — a thin execution wrapper around the
/// staged [`ExecutionPlan`], ready to execute or profile any number of
/// times (the amortized-preprocessing pattern the paper evaluates).
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    plan: ExecutionPlan,
}

/// Builder for [`PreparedKernel`] — the single construction path.
///
/// Defaults: [`Arch::A800`], feature dimension 128, [`AccConfig::full`].
///
/// ```
/// use spmm_kernels::{KernelKind, PreparedKernel};
/// use spmm_matrix::gen;
///
/// let a = gen::uniform_random(128, 4.0, 1);
/// let k = PreparedKernel::builder(KernelKind::AccSpmm, &a)
///     .feature_dim(32)
///     .build()
///     .unwrap();
/// assert_eq!(k.feature_dim(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder<'a> {
    kind: KernelKind,
    a: &'a CsrMatrix,
    arch: Arch,
    feature_dim: usize,
    config: AccConfig,
}

impl<'a> KernelBuilder<'a> {
    /// Target architecture (the balance model needs its bandwidth/FLOPS).
    pub fn arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// Feature dimension (columns of B) the plan is specialized for.
    pub fn feature_dim(mut self, n: usize) -> Self {
        self.feature_dim = n;
        self
    }

    /// Explicit (e.g. ablation) configuration — only meaningful for
    /// [`KernelKind::AccSpmm`].
    pub fn config(mut self, config: AccConfig) -> Self {
        self.config = config;
        self
    }

    /// Run the staged preprocessing pipeline. Failures surface as
    /// [`SpmmError::Build`] tagged with the kernel's display name.
    pub fn build(self) -> Result<PreparedKernel> {
        let plan =
            ExecutionPlan::build(self.kind, self.a, self.arch, self.feature_dim, self.config)
                .map_err(|e| match e {
                    e @ SpmmError::Build { .. } => e,
                    other => SpmmError::build(self.kind.name(), other),
                })?;
        Ok(PreparedKernel { plan })
    }
}

impl PreparedKernel {
    /// Start building a prepared kernel for `kind` over operand `m`.
    pub fn builder(kind: KernelKind, m: &CsrMatrix) -> KernelBuilder<'_> {
        KernelBuilder {
            kind,
            a: m,
            arch: Arch::A800,
            feature_dim: 128,
            config: AccConfig::full(),
        }
    }

    /// Wrap an already-built plan.
    pub fn from_plan(plan: ExecutionPlan) -> Self {
        PreparedKernel { plan }
    }

    /// The underlying execution plan with every preprocessing artifact.
    pub fn execution_plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Kernel identity.
    pub fn kind(&self) -> KernelKind {
        self.plan.kind()
    }

    /// The (possibly permuted) sparse operand.
    pub fn csr(&self) -> &CsrMatrix {
        self.plan.csr()
    }

    /// The balance plan (TC kernels only).
    pub fn plan(&self) -> Option<&BalancePlan> {
        self.plan.balance()
    }

    /// The shared window partition (TC kernels only).
    pub fn partition(&self) -> Option<&WindowPartition> {
        self.plan.partition()
    }

    /// The compressed format (TC kernels only).
    pub fn format(&self) -> Option<&TcFormat> {
        self.plan.format()
    }

    /// Row permutation applied during preprocessing, if any.
    pub fn perm(&self) -> Option<&[u32]> {
        self.plan.perm()
    }

    /// The feature dimension this kernel was prepared for.
    pub fn feature_dim(&self) -> usize {
        self.plan.feature_dim()
    }

    /// Functional SpMM: `C = A × B` in original row order.
    pub fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.csr().nrows(), b.ncols());
        let mut ws = Workspace::new();
        self.execute_into_impl(b, &mut out, &mut ws, true)?;
        Ok(out)
    }

    /// [`PreparedKernel::execute`] writing into a caller-provided output
    /// with reusable buffers: after the first call everything (staging
    /// matrices, tile scratch) comes from `ws`, so steady-state
    /// multiplies allocate nothing beyond the per-worker tiles of the
    /// window-parallel loop.
    pub fn execute_into(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        self.execute_into_impl(b, out, ws, true)
    }

    /// Execute many RHS matrices over the shared plan. The batch is
    /// split into one contiguous group per worker (a single spawn round
    /// instead of one per RHS), and within a group the TC formats run a
    /// *batched* window loop: each compressed block is decompressed once
    /// and applied to every RHS, and window results scatter straight to
    /// the original row order without a staging matrix. Per RHS the
    /// gather/MMA sequence is exactly the sequential single-RHS path's,
    /// so results are bit-identical to calling
    /// [`PreparedKernel::execute`] per matrix.
    pub fn execute_batch(&self, bs: &[DenseMatrix]) -> Result<Vec<DenseMatrix>> {
        use rayon::prelude::*;
        let _span = spmm_trace::span("kernel.execute_batch");
        spmm_trace::counter_add("kernel.batch_rhs", bs.len() as u64);
        if bs.is_empty() {
            return Ok(Vec::new());
        }
        let a_rows = self.csr().nrows();
        let a_cols = self.csr().ncols();
        // Validate every shape up front so the parallel region cannot
        // fail on malformed input halfway through.
        for b in bs {
            if b.nrows() != a_cols {
                return Err(SpmmError::Shape {
                    context: format!("A is {a_rows}x{a_cols}, B is {}x{}", b.nrows(), b.ncols()),
                });
            }
        }
        let mut outs: Vec<DenseMatrix> = bs
            .iter()
            .map(|b| DenseMatrix::zeros(a_rows, b.ncols()))
            .collect();
        let group = bs.len().div_ceil(rayon::current_num_threads()).max(1);
        // Keep the *first* failure (lowest group index) — groups finish
        // in arbitrary order, and a last-writer-wins slot would surface
        // a different error on every run. Every failed group is counted
        // so multi-failure batches stay observable in traces.
        let failure: std::sync::Mutex<Option<(usize, SpmmError)>> = std::sync::Mutex::new(None);
        let failed_groups = std::sync::atomic::AtomicU64::new(0);
        outs.as_mut_slice()
            .par_chunks_mut(group)
            .enumerate()
            .for_each_init(Workspace::new, |ws, (g, out_group)| {
                let b_group = &bs[g * group..g * group + out_group.len()];
                if let Err(e) = self.execute_group(b_group, out_group, ws) {
                    failed_groups.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let mut slot = failure.lock().unwrap();
                    if slot.as_ref().is_none_or(|(held, _)| g < *held) {
                        *slot = Some((g, e));
                    }
                }
            });
        let failed = failed_groups.into_inner();
        if failed > 0 {
            spmm_trace::counter_add("kernel.batch_group_failures", failed);
        }
        match failure.into_inner().unwrap() {
            Some((_, e)) => Err(e),
            None => Ok(outs),
        }
    }

    /// Sequential batch entry point for callers that manage their own
    /// threads (the serving engine's micro-batching workers): executes
    /// every RHS in `bs` into the matching slot of `outs` on the
    /// *calling* thread, sharing one reusable [`Workspace`] and — on the
    /// compressed TC formats — decoding each block once for the whole
    /// batch. Results are bit-identical to calling
    /// [`PreparedKernel::execute`] per RHS.
    pub fn execute_batch_into(
        &self,
        bs: &[DenseMatrix],
        outs: &mut [DenseMatrix],
        ws: &mut Workspace,
    ) -> Result<()> {
        if bs.len() != outs.len() {
            return Err(SpmmError::shape(format!(
                "batch has {} inputs but {} outputs",
                bs.len(),
                outs.len()
            )));
        }
        let (a_rows, a_cols) = (self.csr().nrows(), self.csr().ncols());
        for (b, out) in bs.iter().zip(outs.iter()) {
            if b.nrows() != a_cols || out.nrows() != a_rows || out.ncols() != b.ncols() {
                return Err(SpmmError::shape(format!(
                    "A is {a_rows}x{a_cols}, B is {}x{}, C is {}x{}",
                    b.nrows(),
                    b.ncols(),
                    out.nrows(),
                    out.ncols()
                )));
            }
        }
        if bs.is_empty() {
            return Ok(());
        }
        spmm_trace::counter_add("kernel.batch_rhs", bs.len() as u64);
        self.execute_group(bs, outs, ws)
    }

    /// Run one worker's contiguous slice of the batch.
    fn execute_group(
        &self,
        bs: &[DenseMatrix],
        outs: &mut [DenseMatrix],
        ws: &mut Workspace,
    ) -> Result<()> {
        // Worker-side span: one per batch group, recorded on the rayon
        // thread that ran it (the trace layer tags spans per thread).
        let _span = spmm_trace::span("kernel.execute_group");
        // Symmetric mode needs a permuted copy of every B alive at once,
        // which defeats the batched window loop — fall back to the
        // per-RHS path (still sharing this worker's staging buffers).
        let batched = !self.plan.symmetric()
            && matches!(
                self.plan.format(),
                Some(TcFormat::BitTcf(_)) | Some(TcFormat::MeTcf(_))
            );
        if !batched {
            for (b, out) in bs.iter().zip(outs.iter_mut()) {
                self.execute_into_impl(b, out, ws, false)?;
            }
            return Ok(());
        }
        let nrows = self.csr().nrows();
        let total_n: usize = bs.iter().map(|b| b.ncols()).sum();
        let Workspace {
            tiles,
            batch_stages,
            ..
        } = ws;
        // Round every RHS once per batch into its own reusable stage —
        // the batched window loop then gathers pre-rounded rows only.
        if batch_stages.len() < bs.len() {
            batch_stages.resize_with(bs.len(), BStage::new);
        }
        for (stage, b) in batch_stages.iter_mut().zip(bs.iter()) {
            stage.stage_tier(b, self.plan.isa_tier());
        }
        let stage_refs: Vec<&BStage> = batch_stages[..bs.len()].iter().collect();
        let (btile, ctiles) = tiles.ensure(total_n);
        // With a row reorder in effect, window w computes rows of the
        // *permuted* matrix; inverting the permutation lets each window
        // write its rows directly in original order, skipping the
        // staging matrix the single-RHS path uses.
        let inv: Option<Vec<u32>> = self.plan.perm().map(|perm| {
            let mut inv = vec![0u32; perm.len()];
            for (old, &p) in perm.iter().enumerate() {
                inv[p as usize] = old as u32;
            }
            inv
        });
        let num_windows = nrows.div_ceil(spmm_format::TILE);
        for w in 0..num_windows {
            ctiles.iter_mut().for_each(|x| *x = 0.0);
            match self.plan.format() {
                Some(TcFormat::BitTcf(f)) => {
                    f.window_product_batch_tier(w, &stage_refs, btile, ctiles, self.plan.isa_tier())
                }
                Some(TcFormat::MeTcf(f)) => {
                    f.window_product_batch_tier(w, &stage_refs, btile, ctiles, self.plan.isa_tier())
                }
                _ => unreachable!("batched path is TC-only"),
            }
            let lo = w * spmm_format::TILE;
            let hi = ((w + 1) * spmm_format::TILE).min(nrows);
            // ctiles row (r - lo) holds every RHS's row side by side.
            for r in lo..hi {
                let dst = match &inv {
                    Some(inv) => inv[r] as usize,
                    None => r,
                };
                let crow = &ctiles[(r - lo) * total_n..(r - lo + 1) * total_n];
                let mut off = 0;
                for (j, b) in bs.iter().enumerate() {
                    let n = b.ncols();
                    outs[j].row_mut(dst).copy_from_slice(&crow[off..off + n]);
                    off += n;
                }
            }
        }
        Ok(())
    }

    fn execute_into_impl(
        &self,
        b: &DenseMatrix,
        out: &mut DenseMatrix,
        ws: &mut Workspace,
        parallel: bool,
    ) -> Result<()> {
        plan_execute_into(&self.plan, b, out, ws, parallel)
    }

    /// The kernel's work compiled into a simulator trace (cached on the
    /// plan at prepare time; this clones the cached description). For
    /// `Auto` plans this is the synthesized whole-matrix descriptor;
    /// profiling sums the per-region simulations instead (regions run
    /// different pipelines, so one combined trace cannot price them).
    pub fn trace(&self) -> KernelDesc {
        self.plan.compiled_trace().clone()
    }

    /// Simulate on the given architecture. Hybrid (`Auto`) plans are
    /// priced as the sum of their per-region simulations, each region
    /// profiled exactly as a standalone kernel of its kind would be.
    pub fn profile(&self, arch: Arch, opts: &SimOptions) -> KernelReport {
        match self.plan.regions() {
            Some(regions) => {
                let reports: Vec<KernelReport> = regions
                    .iter()
                    .map(|r| profile_plan(&r.plan, arch, opts))
                    .collect();
                combine_reports(&reports)
            }
            None => profile_plan(&self.plan, arch, opts),
        }
    }
}

/// Execute one plan (hybrid-aware). Region sub-plans of an `Auto` plan
/// carry no regions themselves, so the recursion is exactly one level.
fn plan_execute_into(
    plan: &ExecutionPlan,
    b: &DenseMatrix,
    out: &mut DenseMatrix,
    ws: &mut Workspace,
    parallel: bool,
) -> Result<()> {
    if let Some(regions) = plan.regions() {
        return execute_hybrid(plan, regions, b, out, ws, parallel);
    }
    let _span = spmm_trace::span("kernel.execute");
    spmm_trace::counter_add("kernel.multiplies", 1);
    let Workspace {
        tiles,
        staging_b,
        staging_c,
        ..
    } = ws;
    // Symmetric-reorder mode multiplies (P A Pᵀ)(P B) = P (A B): the
    // dense operand is row-permuted on the way in, and the usual
    // scatter below restores original row order on the way out.
    let b_eff: &DenseMatrix = match (plan.perm(), plan.symmetric()) {
        (Some(perm), true) => {
            let staged = ensure_staging(staging_b, b.nrows(), b.ncols());
            b.permute_rows_into(perm, staged)?;
            staged
        }
        _ => b,
    };
    match plan.perm() {
        None => spmm_dispatch(plan, b_eff, out, tiles, parallel),
        Some(perm) => {
            if out.nrows() != plan.csr().nrows() || out.ncols() != b.ncols() {
                return Err(SpmmError::Shape {
                    context: format!(
                        "output is {}x{}, expected {}x{}",
                        out.nrows(),
                        out.ncols(),
                        plan.csr().nrows(),
                        b.ncols()
                    ),
                });
            }
            let staged = ensure_staging(staging_c, plan.csr().nrows(), b.ncols());
            spmm_dispatch(plan, b_eff, staged, tiles, parallel)?;
            // Scatter back: C_orig[old] = C_perm[perm[old]].
            for (old, &p) in perm.iter().enumerate() {
                out.row_mut(old).copy_from_slice(staged.row(p as usize));
            }
            Ok(())
        }
    }
}

/// Run the plan's format SpMM into `c`, choosing the window-parallel or
/// window-sequential (zero-allocation) inner loop.
fn spmm_dispatch(
    plan: &ExecutionPlan,
    b: &DenseMatrix,
    c: &mut DenseMatrix,
    tiles: &mut TileScratch,
    parallel: bool,
) -> Result<()> {
    match (plan.format(), parallel) {
        // TC formats consume a TF32 pre-rounded B stage owned by the
        // workspace scratch, so repeated multiplies re-round B into
        // the same buffer instead of allocating (and the rounding
        // happens once per multiply, not once per gathered element).
        // The plan's compile-time SIMD tier drives both the staging
        // round and the MMA cores (bit-identical across tiers).
        (Some(TcFormat::Tcf(f)), _) => {
            f.spmm_into_staged_tier(tiles.stage_b_tier(b, plan.isa_tier()), c, plan.isa_tier())
        }
        (Some(TcFormat::MeTcf(f)), true) => {
            f.spmm_into_staged_tier(tiles.stage_b_tier(b, plan.isa_tier()), c, plan.isa_tier())
        }
        (Some(TcFormat::MeTcf(f)), false) => f.spmm_into_seq_tier(b, c, tiles, plan.isa_tier()),
        (Some(TcFormat::BitTcf(f)), true) => {
            f.spmm_into_staged_tier(tiles.stage_b_tier(b, plan.isa_tier()), c, plan.isa_tier())
        }
        (Some(TcFormat::BitTcf(f)), false) => f.spmm_into_seq_tier(b, c, tiles, plan.isa_tier()),
        // CUDA-core kernels are FP32 FMA — no operand rounding.
        (None, true) => plan.csr().spmm_dense_into(b, c),
        (None, false) => plan.csr().spmm_dense_into_seq(b, c),
    }
}

/// The hybrid stitch: execute every region's sub-plan over the shared
/// B, then gather the region rows into the caller's output. Each
/// sub-plan already returns its rows in the region's original order
/// (row-partition invariance: a row accumulates exactly its own lanes
/// in ascending column order regardless of the partition), so the
/// stitch is a bit-exact row copy — no arithmetic crosses a region
/// boundary.
fn execute_hybrid(
    plan: &ExecutionPlan,
    regions: &[plan::RegionPlan],
    b: &DenseMatrix,
    out: &mut DenseMatrix,
    ws: &mut Workspace,
    parallel: bool,
) -> Result<()> {
    let _span = spmm_trace::span("kernel.execute_hybrid");
    spmm_trace::counter_add("kernel.hybrid_multiplies", 1);
    let (a_rows, a_cols) = (plan.csr().nrows(), plan.csr().ncols());
    if b.nrows() != a_cols || out.nrows() != a_rows || out.ncols() != b.ncols() {
        return Err(SpmmError::shape(format!(
            "A is {a_rows}x{a_cols}, B is {}x{}, C is {}x{}",
            b.nrows(),
            b.ncols(),
            out.nrows(),
            out.ncols()
        )));
    }
    let scratch = ws.region_scratch_mut(regions.len());
    for (r, rs) in regions.iter().zip(scratch.iter_mut()) {
        let rows = r.row_hi - r.row_lo;
        let staged = ensure_staging(&mut rs.out, rows, b.ncols());
        plan_execute_into(&r.plan, b, staged, &mut rs.ws, parallel)?;
        for i in 0..rows {
            out.row_mut(r.row_lo + i).copy_from_slice(staged.row(i));
        }
    }
    Ok(())
}

/// Simulate one plan as a standalone kernel of its kind (the
/// cuSPARSE-like kernel gets the architecture's CSR-library boost).
fn profile_plan(plan: &ExecutionPlan, arch: Arch, opts: &SimOptions) -> KernelReport {
    let spec = arch.spec();
    let cached = plan.compiled_trace();
    if plan.kind() == KernelKind::CusparseLike {
        let mut desc = cached.clone();
        desc.arch_boost = spec.cusparse_boost;
        return spmm_sim::profile(arch, &desc, opts);
    }
    spmm_sim::profile(arch, cached, opts)
}

/// Aggregate per-region simulation reports into one whole-matrix
/// report: times, bytes, and thread blocks add; rates recompute from
/// the totals; ratio metrics average weighted by region time.
fn combine_reports(reports: &[KernelReport]) -> KernelReport {
    let time_s: f64 = reports.iter().map(|r| r.time_s).sum();
    let dram_bytes: u64 = reports.iter().map(|r| r.dram_bytes).sum();
    let l2_bytes: u64 = reports.iter().map(|r| r.l2_bytes).sum();
    let l1_bytes: u64 = reports.iter().map(|r| r.l1_bytes).sum();
    let bubble_s: f64 = reports.iter().map(|r| r.bubble_s).sum();
    let busy_s: f64 = reports.iter().map(|r| r.busy_s).sum();
    let num_tbs: usize = reports.iter().map(|r| r.num_tbs).sum();
    let weighted = |f: fn(&KernelReport) -> f64| -> f64 {
        if time_s > 0.0 {
            reports.iter().map(|r| f(r) * r.time_s).sum::<f64>() / time_s
        } else {
            0.0
        }
    };
    // gflops fields are rates: recover each region's work from
    // rate × time, then divide the summed work by the summed time.
    let rate_total = |f: fn(&KernelReport) -> f64| -> f64 {
        if time_s > 0.0 {
            reports.iter().map(|r| f(r) * r.time_s).sum::<f64>() / time_s
        } else {
            0.0
        }
    };
    KernelReport {
        time_s,
        gflops: rate_total(|r| r.gflops),
        dense_gflops: rate_total(|r| r.dense_gflops),
        dram_bytes,
        l2_bytes,
        l1_bytes,
        l1_hit_rate: weighted(|r| r.l1_hit_rate),
        l2_hit_rate: weighted(|r| r.l2_hit_rate),
        bubble_s,
        busy_s,
        mem_throughput_gbps: rate_total(|r| r.mem_throughput_gbps),
        compute_throughput_gflops: rate_total(|r| r.compute_throughput_gflops),
        num_tbs,
        sm_utilization: weighted(|r| r.sm_utilization),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::scalar::tf32_tolerance;
    use spmm_matrix::gen::{clustered, molecule_union, ClusteredConfig};

    fn workload() -> (CsrMatrix, DenseMatrix) {
        let m = molecule_union(512, 6, 16, true, 3);
        let n = m.nrows();
        (m, DenseMatrix::random(n, 32, 7))
    }

    #[test]
    fn every_kernel_matches_the_dense_reference() {
        let (m, b) = workload();
        let reference = m.spmm_dense(&b).unwrap();
        let tol = tf32_tolerance(m.nrows());
        for kind in KernelKind::ALL {
            let k = PreparedKernel::builder(kind, &m)
                .arch(Arch::A800)
                .feature_dim(b.ncols())
                .build()
                .unwrap();
            let c = k.execute(&b).unwrap();
            assert!(
                c.approx_eq(&reference, tol, tol),
                "{} diverges: max diff {}",
                kind.name(),
                c.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn execute_into_reuses_workspace_and_matches_execute() {
        let (m, b) = workload();
        for kind in KernelKind::ALL {
            let k = PreparedKernel::builder(kind, &m)
                .arch(Arch::A800)
                .feature_dim(b.ncols())
                .build()
                .unwrap();
            let expect = k.execute(&b).unwrap();
            let mut ws = Workspace::for_plan(k.execution_plan());
            let mut out = DenseMatrix::zeros(m.nrows(), b.ncols());
            k.execute_into(&b, &mut out, &mut ws).unwrap();
            assert_eq!(out, expect, "{} execute_into differs", kind.name());
            // Second call with the (dirty) workspace and output is exact.
            k.execute_into(&b, &mut out, &mut ws).unwrap();
            assert_eq!(out, expect, "{} workspace reuse differs", kind.name());
        }
    }

    #[test]
    fn execute_batch_is_bit_identical_to_looped_execute() {
        let (m, _) = workload();
        let bs: Vec<DenseMatrix> = (0..9)
            .map(|i| DenseMatrix::random(m.nrows(), 24, 100 + i))
            .collect();
        for kind in [
            KernelKind::AccSpmm,
            KernelKind::DtcSpmm,
            KernelKind::CusparseLike,
        ] {
            let k = PreparedKernel::builder(kind, &m)
                .arch(Arch::A800)
                .feature_dim(24)
                .build()
                .unwrap();
            let batched = k.execute_batch(&bs).unwrap();
            assert_eq!(batched.len(), bs.len());
            for (i, b) in bs.iter().enumerate() {
                let single = k.execute(b).unwrap();
                assert_eq!(batched[i], single, "{} RHS {i} differs", kind.name());
            }
        }
        // Empty batch is fine.
        let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::A800)
            .feature_dim(24)
            .build()
            .unwrap();
        assert!(k.execute_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn plan_artifacts_are_exposed() {
        let (m, _) = workload();
        let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::A800)
            .feature_dim(32)
            .build()
            .unwrap();
        let wp = k.partition().expect("partition artifact retained");
        assert_eq!(wp.num_windows(), m.nrows().div_ceil(8));
        assert!(k.perm().is_some(), "affinity reorder ran");
        assert!(matches!(k.format(), Some(TcFormat::BitTcf(_))));
        assert_eq!(k.execution_plan().stage_timings().len(), 4);
        // CSR kernels carry no TC artifacts.
        let base = PreparedKernel::builder(KernelKind::CusparseLike, &m)
            .arch(Arch::A800)
            .feature_dim(32)
            .build()
            .unwrap();
        assert!(base.partition().is_none() && base.format().is_none() && base.perm().is_none());
    }

    #[test]
    fn traces_preserve_effective_flops() {
        let (m, _) = workload();
        let n = 32;
        let expect = 2 * m.nnz() as u64 * n as u64;
        for kind in KernelKind::ALL {
            let k = PreparedKernel::builder(kind, &m)
                .arch(Arch::A800)
                .feature_dim(n)
                .build()
                .unwrap();
            let desc = k.trace();
            assert_eq!(desc.effective_flops, expect, "{}", kind.name());
            assert!(
                desc.executed_flops() >= desc.effective_flops,
                "{} executes at least the effective work",
                kind.name()
            );
        }
    }

    #[test]
    fn tc_kernels_profile_faster_than_baseline_on_clusters() {
        // Dense-community matrix: TC kernels must beat cuSPARSE.
        let m = clustered(
            ClusteredConfig {
                n: 1024,
                cluster_size: 64,
                intra_deg: 24.0,
                inter_deg: 3.0,
                hub_fraction: 0.0,
                hub_factor: 1.0,
                shuffle: true,
                ..Default::default()
            },
            5,
        );
        let opts = SimOptions::default();
        let base = PreparedKernel::builder(KernelKind::CusparseLike, &m)
            .arch(Arch::A800)
            .feature_dim(128)
            .build()
            .unwrap()
            .profile(Arch::A800, &opts);
        let acc = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::A800)
            .feature_dim(128)
            .build()
            .unwrap()
            .profile(Arch::A800, &opts);
        assert!(
            acc.time_s < base.time_s,
            "Acc {} vs cuSPARSE {}",
            acc.time_s,
            base.time_s
        );
    }

    #[test]
    fn symmetric_reorder_mode_is_numerically_identical() {
        let (m, b) = workload();
        let reference = m.spmm_dense(&b).unwrap();
        let tol = tf32_tolerance(m.nrows());
        let mut cfg = AccConfig::full();
        cfg.symmetric_reorder = true;
        let k = PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::A800)
            .feature_dim(b.ncols())
            .config(cfg)
            .build()
            .unwrap();
        let c = k.execute(&b).unwrap();
        assert!(
            c.approx_eq(&reference, tol, tol),
            "symmetric mode diverges: max diff {}",
            c.max_abs_diff(&reference)
        );
        // The zero-alloc and batched paths agree in symmetric mode too.
        let mut ws = Workspace::new();
        let mut out = DenseMatrix::zeros(m.nrows(), b.ncols());
        k.execute_into(&b, &mut out, &mut ws).unwrap();
        assert_eq!(out, c);
        let batched = k.execute_batch(std::slice::from_ref(&b)).unwrap();
        assert_eq!(batched[0], c);
    }

    #[test]
    fn symmetric_reorder_improves_dense_locality() {
        // The §6 future-work claim: with columns relabeled alongside rows
        // (and B permuted to match), the B-gather stream becomes local.
        let m = clustered(
            ClusteredConfig {
                n: 1024,
                cluster_size: 128,
                intra_deg: 24.0,
                inter_deg: 3.0,
                hub_fraction: 0.0,
                hub_factor: 1.0,
                shuffle: true,
                ..Default::default()
            },
            8,
        );
        let opts = SimOptions::scaled(8.0);
        let run = |symmetric: bool| {
            let mut cfg = AccConfig::full();
            cfg.symmetric_reorder = symmetric;
            PreparedKernel::builder(KernelKind::AccSpmm, &m)
                .arch(Arch::A800)
                .feature_dim(128)
                .config(cfg)
                .build()
                .unwrap()
                .profile(Arch::A800, &opts)
        };
        let rows_only = run(false);
        let symmetric = run(true);
        assert!(
            symmetric.l1_hit_rate >= rows_only.l1_hit_rate,
            "symmetric {:.3} vs rows-only {:.3}",
            symmetric.l1_hit_rate,
            rows_only.l1_hit_rate
        );
        assert!(symmetric.time_s <= rows_only.time_s * 1.01);
    }

    #[test]
    fn invalid_feature_dim_rejected() {
        let (m, _) = workload();
        assert!(PreparedKernel::builder(KernelKind::AccSpmm, &m)
            .arch(Arch::H100)
            .feature_dim(0)
            .build()
            .is_err());
    }
}
