//! The six SpMM kernel strategies the paper evaluates.
//!
//! Every kernel has two faces:
//! * **functional** — [`PreparedKernel::execute`] computes the numeric
//!   result on the CPU with the same arithmetic the GPU kernel would use
//!   (FP32 FMA for CUDA-core kernels, TF32-operand MMA for tensor-core
//!   kernels), always returning C in *original* row order;
//! * **timing** — [`PreparedKernel::trace`] compiles the kernel's work
//!   into a [`spmm_sim::KernelDesc`] and [`PreparedKernel::profile`]
//!   simulates it on a chosen architecture.
//!
//! | kernel | cores | format | reorder | pipeline | balancing |
//! |---|---|---|---|---|---|
//! | cuSPARSE-like | CUDA | CSR | — | occupancy | row-major |
//! | Sputnik-like | CUDA | CSR (1-D tiles) | — | occupancy | nnz-split |
//! | SparseTIR-like | CUDA | CSR (row buckets) | — | occupancy | bucket |
//! | TC-GNN | TC | TCF | SGT (identity) | synchronous | per-window |
//! | DTC-SpMM | TC | ME-TCF | DTC-LSH | Fig 5a double buffer | DTC split |
//! | Acc-SpMM | TC | BitTCF | data-affinity | Fig 5b least-bubble | adaptive |

pub mod acc;
pub mod scalar;
pub mod tc;

pub use acc::AccConfig;

use spmm_balance::{BalancePlan, BalanceStrategy, ModelParams, PerfModel};
use spmm_common::{Result, SpmmError};
use spmm_format::{BitTcf, MeTcf, Tcf};
use spmm_matrix::{CsrMatrix, DenseMatrix};
use spmm_reorder::Algorithm;
use spmm_sim::{simulate, Arch, KernelDesc, KernelReport, SimOptions};

/// The compared kernels, in paper legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// cuSPARSE CSR SpMM on CUDA cores (the baseline of every figure).
    CusparseLike,
    /// Sputnik's 1-D tiled SpMM on CUDA cores.
    SputnikLike,
    /// SparseTIR's composable row-bucket SpMM on CUDA cores.
    SparseTirLike,
    /// TC-GNN SpMM on tensor cores.
    TcGnn,
    /// DTC-SpMM on tensor cores.
    DtcSpmm,
    /// Acc-SpMM (this paper).
    AccSpmm,
}

impl KernelKind {
    /// All kernels, baseline first.
    pub const ALL: [KernelKind; 6] = [
        KernelKind::CusparseLike,
        KernelKind::SputnikLike,
        KernelKind::SparseTirLike,
        KernelKind::TcGnn,
        KernelKind::DtcSpmm,
        KernelKind::AccSpmm,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::CusparseLike => "cuSPARSE",
            KernelKind::SputnikLike => "Sputnik",
            KernelKind::SparseTirLike => "SparseTIR",
            KernelKind::TcGnn => "TCGNN",
            KernelKind::DtcSpmm => "DTC-SpMM",
            KernelKind::AccSpmm => "Acc-SpMM",
        }
    }

    /// Does this kernel run on tensor cores?
    pub fn uses_tensor_cores(&self) -> bool {
        matches!(
            self,
            KernelKind::TcGnn | KernelKind::DtcSpmm | KernelKind::AccSpmm
        )
    }
}

/// Format data held by a prepared TC kernel.
#[derive(Debug, Clone)]
pub enum TcFormat {
    /// TC-GNN's per-edge format.
    Tcf(Tcf),
    /// DTC-SpMM's per-nnz-id format.
    MeTcf(MeTcf),
    /// The paper's bitmap format.
    BitTcf(BitTcf),
}

/// A kernel after preprocessing (reordering, format conversion, balance
/// planning) — ready to execute or profile any number of times, matching
/// how the amortized-preprocessing evaluation works.
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    kind: KernelKind,
    /// The (possibly permuted) sparse operand.
    csr: CsrMatrix,
    /// Row permutation applied (`perm[old] = new`), if any.
    perm: Option<Vec<u32>>,
    /// TC format, for tensor-core kernels.
    format: Option<TcFormat>,
    /// Balance plan, for tensor-core kernels.
    plan: Option<BalancePlan>,
    /// Acc ablation configuration (always present for `AccSpmm`).
    acc_config: AccConfig,
    /// Whether the permutation was applied symmetrically (columns too).
    symmetric: bool,
    feature_dim: usize,
}

impl PreparedKernel {
    /// Preprocess `m` for the given kernel and feature dimension on the
    /// given architecture (the balance model needs its bandwidth/FLOPS).
    pub fn prepare(kind: KernelKind, m: &CsrMatrix, arch: Arch, feature_dim: usize) -> Result<Self> {
        let config = match kind {
            KernelKind::AccSpmm => AccConfig::full(),
            _ => AccConfig::full(),
        };
        Self::prepare_with_config(kind, m, arch, feature_dim, config)
    }

    /// Like [`PreparedKernel::prepare`] but with an explicit Acc ablation
    /// configuration (only meaningful for `AccSpmm`).
    pub fn prepare_with_config(
        kind: KernelKind,
        m: &CsrMatrix,
        arch: Arch,
        feature_dim: usize,
        acc_config: AccConfig,
    ) -> Result<Self> {
        if feature_dim == 0 {
            return Err(SpmmError::InvalidConfig("feature_dim must be > 0".into()));
        }
        let spec = arch.spec();
        let model = PerfModel::new(ModelParams {
            feature_dim,
            bandwidth: spec.dram_bw_gbps * 1e9,
            flops: spec.tc_tf32_tflops * 1e12,
            num_sms: spec.num_sms,
        });
        let reorder_alg = match kind {
            KernelKind::TcGnn => Some(Algorithm::Sgt),
            KernelKind::DtcSpmm => Some(Algorithm::DtcLsh),
            KernelKind::AccSpmm => Some(acc_config.reorder),
            _ => None,
        };
        let symmetric = kind == KernelKind::AccSpmm && acc_config.symmetric_reorder;
        let (csr, perm) = match reorder_alg {
            Some(alg) if alg != Algorithm::Identity && alg != Algorithm::Sgt => {
                let perm = spmm_reorder::reorder(m, alg);
                let pm = if symmetric {
                    // Future-work mode (§6): relabel rows AND columns; B's
                    // rows are permuted to match at execution time.
                    m.permute_symmetric(&perm)?
                } else {
                    m.permute_rows(&perm)?
                };
                (pm, Some(perm))
            }
            _ => (m.clone(), None),
        };
        let (format, plan) = match kind {
            KernelKind::TcGnn => {
                let f = Tcf::from_csr(&csr);
                let bpw: Vec<usize> = f.blocks_per_window.iter().map(|&b| b as usize).collect();
                let plan = spmm_balance::plan(&bpw, BalanceStrategy::None, &model);
                (Some(TcFormat::Tcf(f)), Some(plan))
            }
            KernelKind::DtcSpmm => {
                let f = MeTcf::from_csr(&csr);
                let bpw = blocks_per_window_of(&f.row_window_offset);
                let plan = spmm_balance::plan(&bpw, BalanceStrategy::DtcStyle, &model);
                (Some(TcFormat::MeTcf(f)), Some(plan))
            }
            KernelKind::AccSpmm => {
                let (format, bpw) = if acc_config.use_bittcf {
                    let f = BitTcf::from_csr(&csr);
                    let bpw = blocks_per_window_of(&f.row_window_offset);
                    (TcFormat::BitTcf(f), bpw)
                } else {
                    let f = MeTcf::from_csr(&csr);
                    let bpw = blocks_per_window_of(&f.row_window_offset);
                    (TcFormat::MeTcf(f), bpw)
                };
                let plan = spmm_balance::plan(&bpw, acc_config.balance, &model);
                (Some(format), Some(plan))
            }
            _ => (None, None),
        };
        Ok(PreparedKernel {
            kind,
            csr,
            perm,
            format,
            plan,
            acc_config,
            symmetric,
            feature_dim,
        })
    }

    /// Kernel identity.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The (possibly permuted) sparse operand.
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    /// The balance plan (TC kernels only).
    pub fn plan(&self) -> Option<&BalancePlan> {
        self.plan.as_ref()
    }

    /// The feature dimension this kernel was prepared for.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Functional SpMM: `C = A × B` in original row order.
    pub fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        // Symmetric-reorder mode multiplies (P A Pᵀ)(P B) = P (A B): the
        // dense operand is row-permuted on the way in, and the usual
        // scatter below restores original row order on the way out.
        let permuted_b;
        let b = match (&self.perm, self.symmetric) {
            (Some(perm), true) => {
                permuted_b = b.permute_rows(perm)?;
                &permuted_b
            }
            _ => b,
        };
        let c_permuted = match (&self.format, self.kind) {
            (Some(TcFormat::Tcf(f)), _) => f.spmm(b)?,
            (Some(TcFormat::MeTcf(f)), _) => f.spmm(b)?,
            (Some(TcFormat::BitTcf(f)), _) => f.spmm(b)?,
            (None, _) => self.csr.spmm_dense(b)?,
        };
        Ok(match &self.perm {
            None => c_permuted,
            Some(perm) => {
                // Scatter back: C_orig[old] = C_perm[perm[old]].
                let n = c_permuted.ncols();
                let mut c = DenseMatrix::zeros(c_permuted.nrows(), n);
                for old in 0..c_permuted.nrows() {
                    let new = perm[old] as usize;
                    c.row_mut(old).copy_from_slice(c_permuted.row(new));
                }
                c
            }
        })
    }

    /// Compile the kernel's work into a simulator trace.
    pub fn trace(&self) -> KernelDesc {
        match self.kind {
            KernelKind::CusparseLike => scalar::cusparse_trace(&self.csr, self.feature_dim),
            KernelKind::SputnikLike => scalar::sputnik_trace(&self.csr, self.feature_dim),
            KernelKind::SparseTirLike => scalar::sparsetir_trace(&self.csr, self.feature_dim),
            KernelKind::TcGnn => tc::tcgnn_trace(
                match self.format.as_ref().unwrap() {
                    TcFormat::Tcf(f) => f,
                    _ => unreachable!("TcGnn always holds Tcf"),
                },
                self.plan.as_ref().unwrap(),
                self.feature_dim,
            ),
            KernelKind::DtcSpmm => tc::dtc_trace(
                match self.format.as_ref().unwrap() {
                    TcFormat::MeTcf(f) => f,
                    _ => unreachable!("DtcSpmm always holds MeTcf"),
                },
                self.plan.as_ref().unwrap(),
                self.feature_dim,
            ),
            KernelKind::AccSpmm => tc::acc_trace(
                self.format.as_ref().unwrap(),
                self.plan.as_ref().unwrap(),
                self.feature_dim,
                &self.acc_config,
            ),
        }
    }

    /// Simulate on the given architecture.
    pub fn profile(&self, arch: Arch, opts: &SimOptions) -> KernelReport {
        let spec = arch.spec();
        let mut desc = self.trace();
        if self.kind == KernelKind::CusparseLike {
            desc.arch_boost = spec.cusparse_boost;
        }
        simulate(&spec, &desc, opts)
    }
}

/// Blocks-per-window from a RowWindowOffset array.
fn blocks_per_window_of(row_window_offset: &[u32]) -> Vec<usize> {
    row_window_offset
        .windows(2)
        .map(|w| (w[1] - w[0]) as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_common::scalar::tf32_tolerance;
    use spmm_matrix::gen::{clustered, molecule_union, ClusteredConfig};

    fn workload() -> (CsrMatrix, DenseMatrix) {
        let m = molecule_union(512, 6, 16, true, 3);
        let n = m.nrows();
        (m, DenseMatrix::random(n, 32, 7))
    }

    #[test]
    fn every_kernel_matches_the_dense_reference() {
        let (m, b) = workload();
        let reference = m.spmm_dense(&b).unwrap();
        let tol = tf32_tolerance(m.nrows());
        for kind in KernelKind::ALL {
            let k = PreparedKernel::prepare(kind, &m, Arch::A800, b.ncols()).unwrap();
            let c = k.execute(&b).unwrap();
            assert!(
                c.approx_eq(&reference, tol, tol),
                "{} diverges: max diff {}",
                kind.name(),
                c.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn traces_preserve_effective_flops() {
        let (m, _) = workload();
        let n = 32;
        let expect = 2 * m.nnz() as u64 * n as u64;
        for kind in KernelKind::ALL {
            let k = PreparedKernel::prepare(kind, &m, Arch::A800, n).unwrap();
            let desc = k.trace();
            assert_eq!(desc.effective_flops, expect, "{}", kind.name());
            assert!(
                desc.executed_flops() >= desc.effective_flops,
                "{} executes at least the effective work",
                kind.name()
            );
        }
    }

    #[test]
    fn tc_kernels_profile_faster_than_baseline_on_clusters() {
        // Dense-community matrix: TC kernels must beat cuSPARSE.
        let m = clustered(
            ClusteredConfig {
                n: 1024,
                cluster_size: 64,
                intra_deg: 24.0,
                inter_deg: 3.0,
                hub_fraction: 0.0,
                hub_factor: 1.0,
                shuffle: true,
                ..Default::default()
            },
            5,
        );
        let opts = SimOptions::default();
        let base = PreparedKernel::prepare(KernelKind::CusparseLike, &m, Arch::A800, 128)
            .unwrap()
            .profile(Arch::A800, &opts);
        let acc = PreparedKernel::prepare(KernelKind::AccSpmm, &m, Arch::A800, 128)
            .unwrap()
            .profile(Arch::A800, &opts);
        assert!(
            acc.time_s < base.time_s,
            "Acc {} vs cuSPARSE {}",
            acc.time_s,
            base.time_s
        );
    }

    #[test]
    fn symmetric_reorder_mode_is_numerically_identical() {
        let (m, b) = workload();
        let reference = m.spmm_dense(&b).unwrap();
        let tol = tf32_tolerance(m.nrows());
        let mut cfg = AccConfig::full();
        cfg.symmetric_reorder = true;
        let k =
            PreparedKernel::prepare_with_config(KernelKind::AccSpmm, &m, Arch::A800, b.ncols(), cfg)
                .unwrap();
        let c = k.execute(&b).unwrap();
        assert!(
            c.approx_eq(&reference, tol, tol),
            "symmetric mode diverges: max diff {}",
            c.max_abs_diff(&reference)
        );
    }

    #[test]
    fn symmetric_reorder_improves_dense_locality() {
        // The §6 future-work claim: with columns relabeled alongside rows
        // (and B permuted to match), the B-gather stream becomes local.
        let m = clustered(
            ClusteredConfig {
                n: 1024,
                cluster_size: 128,
                intra_deg: 24.0,
                inter_deg: 3.0,
                hub_fraction: 0.0,
                hub_factor: 1.0,
                shuffle: true,
                ..Default::default()
            },
            8,
        );
        let opts = SimOptions::scaled(8.0);
        let run = |symmetric: bool| {
            let mut cfg = AccConfig::full();
            cfg.symmetric_reorder = symmetric;
            PreparedKernel::prepare_with_config(KernelKind::AccSpmm, &m, Arch::A800, 128, cfg)
                .unwrap()
                .profile(Arch::A800, &opts)
        };
        let rows_only = run(false);
        let symmetric = run(true);
        assert!(
            symmetric.l1_hit_rate >= rows_only.l1_hit_rate,
            "symmetric {:.3} vs rows-only {:.3}",
            symmetric.l1_hit_rate,
            rows_only.l1_hit_rate
        );
        assert!(symmetric.time_s <= rows_only.time_s * 1.01);
    }

    #[test]
    fn invalid_feature_dim_rejected() {
        let (m, _) = workload();
        assert!(PreparedKernel::prepare(KernelKind::AccSpmm, &m, Arch::H100, 0).is_err());
    }
}
