//! The staged execution-plan pipeline.
//!
//! Preprocessing is decomposed into four explicit, trait-backed stages —
//! **Reorder → FormatBuild → BalancePlan → Compile** — each writing its
//! artifacts into a shared [`PlanContext`]. The six [`KernelKind`]s stop
//! being six hand-rolled prepare branches and become *stage
//! configurations* ([`StageSpec`]): which reordering to run, which
//! compressed format to materialize, which balance strategy to apply.
//!
//! The finished [`ExecutionPlan`] owns every intermediate the paper's
//! evaluation wants to inspect (row permutation, shared
//! [`WindowPartition`], compressed format, [`BalancePlan`], compiled
//! simulator trace, per-stage wall times), so downstream consumers —
//! stats reporting, profiling, batched execution — read artifacts
//! instead of recomputing them. This is the *preprocess once, use many
//! times* structure the paper amortizes across GNN training epochs.

use crate::acc::AccConfig;
use crate::dispatch::{
    region_partition, row_block, DispatchDecision, DispatchPolicy, MatrixFeatures,
};
use crate::{scalar, tc, KernelKind, TcFormat};
use spmm_balance::{BalancePlan, BalanceStrategy, ModelParams, PerfModel};
use spmm_common::{IsaTier, Result, SpmmError};
use spmm_format::{BitTcf, MeTcf, Tcf, WindowPartition};
use spmm_matrix::CsrMatrix;
use spmm_reorder::Algorithm;
use spmm_sim::{Arch, CacheOp, CachePolicy, KernelDesc, PipelineKind};
use std::time::Instant;

/// Which compressed format the FormatBuild stage materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatChoice {
    /// Keep CSR — the CUDA-core kernels consume the operand directly.
    Csr,
    /// TC-GNN's per-edge TCF.
    Tcf,
    /// DTC-SpMM's memory-efficient ME-TCF.
    MeTcf,
    /// The paper's bitmap BitTCF.
    BitTcf,
}

/// One kernel expressed as pipeline configuration: what each stage
/// should do. This is the whole difference between the six kernels on
/// the preprocessing side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// Row-reordering algorithm, if any. `Identity` and `Sgt` are
    /// no-permutation markers (SGT's squeezing lives in FormatBuild).
    pub reorder: Option<Algorithm>,
    /// Permute columns symmetrically alongside rows (§6 future work).
    pub symmetric: bool,
    /// Compressed format to build.
    pub format: FormatChoice,
    /// Balance strategy for the TC-block plan.
    pub balance: BalanceStrategy,
}

impl StageSpec {
    /// The stage configuration for `kind` under an Acc ablation
    /// `config` (the config only affects [`KernelKind::AccSpmm`]).
    pub fn for_kernel(kind: KernelKind, config: &AccConfig) -> StageSpec {
        match kind {
            KernelKind::CusparseLike | KernelKind::SputnikLike | KernelKind::SparseTirLike => {
                StageSpec {
                    reorder: None,
                    symmetric: false,
                    format: FormatChoice::Csr,
                    balance: BalanceStrategy::None,
                }
            }
            KernelKind::TcGnn => StageSpec {
                reorder: Some(Algorithm::Sgt),
                symmetric: false,
                format: FormatChoice::Tcf,
                balance: BalanceStrategy::None,
            },
            KernelKind::DtcSpmm => StageSpec {
                reorder: Some(Algorithm::DtcLsh),
                symmetric: false,
                format: FormatChoice::MeTcf,
                balance: BalanceStrategy::DtcStyle,
            },
            KernelKind::AccSpmm => StageSpec {
                reorder: Some(config.reorder),
                symmetric: config.symmetric_reorder,
                format: if config.use_bittcf {
                    FormatChoice::BitTcf
                } else {
                    FormatChoice::MeTcf
                },
                balance: config.balance,
            },
            // Auto is a dispatcher, not a pipeline: the parent plan
            // keeps the raw CSR operand and delegates every stage to
            // its per-region sub-plans.
            KernelKind::Auto => StageSpec {
                reorder: None,
                symmetric: false,
                format: FormatChoice::Csr,
                balance: BalanceStrategy::None,
            },
        }
    }
}

/// Wall time of one pipeline stage.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// Stage name (matches [`PlanStage::name`]).
    pub stage: &'static str,
    /// Elapsed seconds.
    pub seconds: f64,
}

/// One row region of a hybrid ([`KernelKind::Auto`]) plan: a half-open
/// row range of the parent operand and the single-kernel plan that
/// serves it. Row-partition invariance (each output row accumulates
/// exactly its own row's lanes, in ascending column order) makes the
/// region boundary bit-invisible: the region's rows come out
/// bit-identical to the same kernel run over any row partition.
#[derive(Debug, Clone)]
pub struct RegionPlan {
    /// First parent row the region covers.
    pub row_lo: usize,
    /// One past the last parent row the region covers.
    pub row_hi: usize,
    /// The concrete kernel serving the region (never `Auto`).
    pub kind: KernelKind,
    /// The region's own plan, built on the parent's row block.
    pub plan: ExecutionPlan,
}

/// The shared artifact store the stages read from and write into.
#[derive(Debug, Clone)]
pub struct PlanContext {
    /// Which kernel this plan is for.
    pub kind: KernelKind,
    /// Target architecture (the balance model needs its spec).
    pub arch: Arch,
    /// Dense-operand feature dimension.
    pub feature_dim: usize,
    /// Acc ablation configuration (trace compilation reads it).
    pub config: AccConfig,
    /// The stage configuration derived from `kind` + `config`.
    pub spec: StageSpec,
    /// The sparse operand; Reorder replaces it with the permuted matrix.
    pub csr: CsrMatrix,
    /// Content fingerprint of the *unprocessed* input operand, taken
    /// before any permutation — the stable identity serving caches key
    /// plans by.
    pub input_fingerprint: u64,
    /// Row permutation applied (`perm[old] = new`), if any.
    pub perm: Option<Vec<u32>>,
    /// Shared window squeezing, built once by FormatBuild for all TC
    /// formats (and retained for stats).
    pub partition: Option<WindowPartition>,
    /// The materialized compressed format (TC kernels).
    pub format: Option<TcFormat>,
    /// The balance plan (TC kernels).
    pub balance: Option<BalancePlan>,
    /// The compiled simulator trace.
    pub trace: Option<KernelDesc>,
    /// Per-stage wall times, in execution order.
    pub timings: Vec<StageTiming>,
    /// Hybrid per-region sub-plans (`Auto` plans only).
    pub regions: Option<Vec<RegionPlan>>,
    /// The dispatch decision an `Auto` plan compiled under, pinned at
    /// build time so reloads and shards never re-consult the policy.
    pub decision: Option<DispatchDecision>,
    /// The host SIMD tier the CPU compute core is bound to, resolved
    /// once here at plan build (config pin → `SPMM_FORCE_ISA` →
    /// capability probe) and threaded through format pre-rounding and
    /// every execution path. Every tier is bit-identical, so this is
    /// pure speed plus provenance.
    pub isa_tier: IsaTier,
}

impl PlanContext {
    /// A fresh context holding the unprocessed operand.
    pub fn new(
        kind: KernelKind,
        csr: CsrMatrix,
        arch: Arch,
        feature_dim: usize,
        config: AccConfig,
    ) -> Self {
        let input_fingerprint = csr.content_fingerprint();
        PlanContext {
            kind,
            arch,
            feature_dim,
            config,
            spec: StageSpec::for_kernel(kind, &config),
            csr,
            input_fingerprint,
            perm: None,
            partition: None,
            format: None,
            balance: None,
            trace: None,
            timings: Vec::new(),
            regions: None,
            decision: None,
            // An unavailable pin falls back to the probe here; the
            // build entry points validate the pin first and surface it
            // as an InvalidConfig error instead.
            isa_tier: IsaTier::resolve(config.isa).unwrap_or_else(|_| IsaTier::probe()),
        }
    }
}

/// One step of the preprocessing pipeline: reads earlier artifacts from
/// the context, writes its own.
pub trait PlanStage {
    /// Stage name for timings and diagnostics.
    fn name(&self) -> &'static str;
    /// Run the stage against the shared context.
    fn run(&self, ctx: &mut PlanContext) -> Result<()>;
}

/// Stage 1 — row (or symmetric) reordering per the spec's algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReorderStage;

impl PlanStage for ReorderStage {
    fn name(&self) -> &'static str {
        "reorder"
    }

    fn run(&self, ctx: &mut PlanContext) -> Result<()> {
        let alg = match ctx.spec.reorder {
            // Identity and SGT reorder nothing: SGT's contribution is the
            // column squeezing every TC format already performs.
            Some(alg) if alg != Algorithm::Identity && alg != Algorithm::Sgt => alg,
            _ => return Ok(()),
        };
        // Graph-based orderings need square adjacency semantics. Sharded
        // row-blocks are rectangular, so those fall back to DTC-LSH row
        // clustering — reorder choice never affects output bits (only
        // block packing), so the fallback is purely a quality trade.
        let alg = if ctx.csr.nrows() != ctx.csr.ncols() && alg.requires_square() {
            if ctx.spec.symmetric {
                return Err(SpmmError::InvalidConfig(
                    "symmetric reordering requires a square operand".into(),
                ));
            }
            Algorithm::DtcLsh
        } else {
            alg
        };
        let perm = spmm_reorder::reorder(&ctx.csr, alg);
        ctx.csr = if ctx.spec.symmetric {
            // Future-work mode (§6): relabel rows AND columns; B's rows
            // are permuted to match at execution time.
            ctx.csr.permute_symmetric(&perm)?
        } else {
            ctx.csr.permute_rows(&perm)?
        };
        ctx.perm = Some(perm);
        Ok(())
    }
}

/// Stage 2 — build the shared window partition and materialize the
/// spec's compressed format from it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FormatBuildStage;

impl PlanStage for FormatBuildStage {
    fn name(&self) -> &'static str {
        "format_build"
    }

    fn run(&self, ctx: &mut PlanContext) -> Result<()> {
        if ctx.spec.format == FormatChoice::Csr {
            return Ok(());
        }
        let wp = WindowPartition::build(&ctx.csr);
        spmm_trace::counter_add("plan.format_build.windows", wp.num_windows() as u64);
        spmm_trace::counter_add("plan.parallel_workers", rayon::current_num_threads() as u64);
        let mut format = match ctx.spec.format {
            FormatChoice::Tcf => TcFormat::Tcf(Tcf::from_partition(&ctx.csr, &wp)),
            FormatChoice::MeTcf => TcFormat::MeTcf(MeTcf::from_partition(&ctx.csr, &wp)),
            FormatChoice::BitTcf => TcFormat::BitTcf(BitTcf::from_partition(&ctx.csr, &wp)),
            FormatChoice::Csr => unreachable!(),
        };
        // TC execution rounds A to TF32 anyway; rounding once at compile
        // time is bit-identical (idempotent) and turns every block
        // multiply into a pure mul-add. Plan-owned formats are execution
        // artifacts, so the lossy in-place rounding is safe here.
        match &mut format {
            TcFormat::Tcf(f) => f.preround_values_tier(ctx.isa_tier),
            TcFormat::MeTcf(f) => f.preround_values_tier(ctx.isa_tier),
            TcFormat::BitTcf(f) => f.preround_values_tier(ctx.isa_tier),
        }
        ctx.format = Some(format);
        ctx.partition = Some(wp);
        Ok(())
    }
}

/// Stage 3 — TC-block balance planning over the partition's
/// blocks-per-window distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalanceStage;

impl PlanStage for BalanceStage {
    fn name(&self) -> &'static str {
        "balance"
    }

    fn run(&self, ctx: &mut PlanContext) -> Result<()> {
        let Some(wp) = ctx.partition.as_ref() else {
            return Ok(()); // CSR kernels schedule by row, not by block.
        };
        let spec = ctx.arch.spec();
        let model = PerfModel::new(ModelParams {
            feature_dim: ctx.feature_dim,
            bandwidth: spec.dram_bw_gbps * 1e9,
            flops: spec.tc_tf32_tflops * 1e12,
            num_sms: spec.num_sms,
        });
        ctx.balance = Some(spmm_balance::plan(
            &wp.blocks_per_window(),
            ctx.spec.balance,
            &model,
        ));
        Ok(())
    }
}

/// Stage 4 — compile the kernel's work into a simulator trace, cached
/// on the plan so repeated profiling never re-walks the format.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileStage;

impl PlanStage for CompileStage {
    fn name(&self) -> &'static str {
        "compile"
    }

    fn run(&self, ctx: &mut PlanContext) -> Result<()> {
        let mut desc =
            match ctx.kind {
                KernelKind::CusparseLike => scalar::cusparse_trace(&ctx.csr, ctx.feature_dim),
                KernelKind::SputnikLike => scalar::sputnik_trace(&ctx.csr, ctx.feature_dim),
                KernelKind::SparseTirLike => scalar::sparsetir_trace(&ctx.csr, ctx.feature_dim),
                KernelKind::TcGnn => tc::tcgnn_trace(
                    match ctx.format.as_ref() {
                        Some(TcFormat::Tcf(f)) => f,
                        _ => return Err(missing_artifact("TcGnn", "Tcf format")),
                    },
                    ctx.balance
                        .as_ref()
                        .ok_or_else(|| missing_artifact("TcGnn", "balance plan"))?,
                    ctx.feature_dim,
                ),
                KernelKind::DtcSpmm => tc::dtc_trace(
                    match ctx.format.as_ref() {
                        Some(TcFormat::MeTcf(f)) => f,
                        _ => return Err(missing_artifact("DtcSpmm", "MeTcf format")),
                    },
                    ctx.balance
                        .as_ref()
                        .ok_or_else(|| missing_artifact("DtcSpmm", "balance plan"))?,
                    ctx.feature_dim,
                ),
                KernelKind::AccSpmm => tc::acc_trace(
                    ctx.format
                        .as_ref()
                        .ok_or_else(|| missing_artifact("AccSpmm", "TC format"))?,
                    ctx.balance
                        .as_ref()
                        .ok_or_else(|| missing_artifact("AccSpmm", "balance plan"))?,
                    ctx.feature_dim,
                    &ctx.config,
                ),
                KernelKind::Auto => return Err(SpmmError::InvalidConfig(
                    "Auto plans compile through the hybrid dispatch path, not the stage pipeline"
                        .into(),
                )),
            };
        // The trace builders don't know the tier; the compile stage is
        // where the plan-level binding gets stamped into the artifact.
        desc.isa_tier = ctx.isa_tier;
        ctx.trace = Some(desc);
        Ok(())
    }
}

/// Span name for a pipeline stage (span names must be `'static`, so the
/// four stage names map onto a fixed taxonomy under `plan.`).
fn stage_span_name(stage: &str) -> &'static str {
    match stage {
        "reorder" => "plan.reorder",
        "format_build" => "plan.format_build",
        "balance" => "plan.balance",
        "compile" => "plan.compile",
        _ => "plan.stage",
    }
}

fn missing_artifact(kernel: &str, what: &str) -> SpmmError {
    SpmmError::InvalidConfig(format!(
        "{kernel} trace compilation needs the {what} artifact; run the earlier stages first"
    ))
}

/// The default stage order.
pub fn default_stages() -> Vec<Box<dyn PlanStage>> {
    vec![
        Box::new(ReorderStage),
        Box::new(FormatBuildStage),
        Box::new(BalanceStage),
        Box::new(CompileStage),
    ]
}

/// A finished plan: every preprocessing artifact for one (kernel,
/// matrix, architecture, feature-dim) binding.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    ctx: PlanContext,
}

impl ExecutionPlan {
    /// Run the full pipeline.
    pub fn build(
        kind: KernelKind,
        m: &CsrMatrix,
        arch: Arch,
        feature_dim: usize,
        config: AccConfig,
    ) -> Result<Self> {
        if feature_dim == 0 {
            return Err(SpmmError::InvalidConfig("feature_dim must be > 0".into()));
        }
        // Resolve the SIMD tier up front so a pinned-but-unavailable
        // tier is a build error, not a silent scalar fallback.
        IsaTier::resolve(config.isa)?;
        if kind == KernelKind::Auto {
            return Self::build_auto_with(m, arch, feature_dim, config, None);
        }
        let _plan_span = spmm_trace::span("plan.build");
        let mut ctx = PlanContext::new(kind, m.clone(), arch, feature_dim, config);
        for stage in default_stages() {
            let _stage_span = spmm_trace::span(stage_span_name(stage.name()));
            let t0 = Instant::now();
            stage.run(&mut ctx)?;
            ctx.timings.push(StageTiming {
                stage: stage.name(),
                seconds: t0.elapsed().as_secs_f64(),
            });
        }
        spmm_trace::counter_add("plan.builds", 1);
        record_isa_counters(ctx.isa_tier);
        Ok(ExecutionPlan { ctx })
    }

    /// Build a hybrid plan under a caller-supplied dispatch decision
    /// instead of consulting the committed policy. This is how sharded
    /// (dist) builds stay bit-identical: the coordinator decides once
    /// on the full matrix and pins that decision for every shard, so
    /// shard-local densities can never flip a region's kernel.
    pub fn build_auto_pinned(
        m: &CsrMatrix,
        arch: Arch,
        feature_dim: usize,
        config: AccConfig,
        decision: DispatchDecision,
    ) -> Result<Self> {
        if feature_dim == 0 {
            return Err(SpmmError::InvalidConfig("feature_dim must be > 0".into()));
        }
        IsaTier::resolve(config.isa)?;
        Self::build_auto_with(m, arch, feature_dim, config, Some(decision))
    }

    /// The hybrid build path: decide (or accept a pinned decision),
    /// partition rows into regions, build one single-kernel plan per
    /// region on its row block, and synthesize the parent context.
    fn build_auto_with(
        m: &CsrMatrix,
        arch: Arch,
        feature_dim: usize,
        config: AccConfig,
        pinned: Option<DispatchDecision>,
    ) -> Result<Self> {
        let _plan_span = spmm_trace::span("plan.build_auto");
        let decision = match pinned {
            Some(d) => d,
            None => DispatchPolicy::builtin().decide(&MatrixFeatures::of(m, feature_dim)),
        };
        decision.validate()?;
        let specs = region_partition(m, &decision);
        let mut regions = Vec::with_capacity(specs.len());
        for spec in &specs {
            let block = row_block(m, spec.row_lo, spec.row_hi);
            let plan = ExecutionPlan::build(spec.kind, &block, arch, feature_dim, config)?;
            regions.push(RegionPlan {
                row_lo: spec.row_lo,
                row_hi: spec.row_hi,
                kind: spec.kind,
                plan,
            });
        }
        let mut ctx = PlanContext::new(KernelKind::Auto, m.clone(), arch, feature_dim, config);
        ctx.trace = Some(combined_trace(&regions, feature_dim, ctx.isa_tier));
        ctx.timings = combined_timings(&regions);
        ctx.regions = Some(regions);
        ctx.decision = Some(decision);
        spmm_trace::counter_add("plan.builds", 1);
        spmm_trace::counter_add("plan.hybrid_builds", 1);
        record_isa_counters(ctx.isa_tier);
        Ok(ExecutionPlan { ctx })
    }

    /// Wrap an already-populated context (the plan-IR loader's
    /// rehydration path; see [`crate::ir`]). The caller is responsible
    /// for the context's cross-artifact consistency.
    pub(crate) fn from_context(ctx: PlanContext) -> Self {
        ExecutionPlan { ctx }
    }

    /// The full artifact store (incremental repair reads and rewrites
    /// it; see [`crate::repair`]).
    pub(crate) fn context(&self) -> &PlanContext {
        &self.ctx
    }

    /// Kernel identity.
    pub fn kind(&self) -> KernelKind {
        self.ctx.kind
    }

    /// Target architecture.
    pub fn arch(&self) -> Arch {
        self.ctx.arch
    }

    /// Feature dimension the plan was built for.
    pub fn feature_dim(&self) -> usize {
        self.ctx.feature_dim
    }

    /// The Acc ablation configuration.
    pub fn config(&self) -> &AccConfig {
        &self.ctx.config
    }

    /// The stage configuration this plan executed.
    pub fn stage_spec(&self) -> &StageSpec {
        &self.ctx.spec
    }

    /// The (possibly permuted) sparse operand.
    pub fn csr(&self) -> &CsrMatrix {
        &self.ctx.csr
    }

    /// Content fingerprint of the unprocessed input operand (taken
    /// before reordering) — the identity plan caches key on.
    pub fn input_fingerprint(&self) -> u64 {
        self.ctx.input_fingerprint
    }

    /// Row permutation applied, if any.
    pub fn perm(&self) -> Option<&[u32]> {
        self.ctx.perm.as_deref()
    }

    /// Whether the permutation was applied to columns too.
    pub fn symmetric(&self) -> bool {
        self.ctx.spec.symmetric
    }

    /// The shared window partition (TC kernels).
    pub fn partition(&self) -> Option<&WindowPartition> {
        self.ctx.partition.as_ref()
    }

    /// The compressed format (TC kernels).
    pub fn format(&self) -> Option<&TcFormat> {
        self.ctx.format.as_ref()
    }

    /// The balance plan (TC kernels).
    pub fn balance(&self) -> Option<&BalancePlan> {
        self.ctx.balance.as_ref()
    }

    /// The compiled trace.
    pub fn compiled_trace(&self) -> &KernelDesc {
        self.ctx
            .trace
            .as_ref()
            .expect("ExecutionPlan::build always compiles a trace")
    }

    /// Hybrid per-region sub-plans (`Some` exactly for `Auto` plans).
    pub fn regions(&self) -> Option<&[RegionPlan]> {
        self.ctx.regions.as_deref()
    }

    /// The dispatch decision an `Auto` plan was compiled under.
    pub fn decision(&self) -> Option<&DispatchDecision> {
        self.ctx.decision.as_ref()
    }

    /// The host SIMD tier the plan's CPU compute core is bound to.
    pub fn isa_tier(&self) -> IsaTier {
        self.ctx.isa_tier
    }

    /// Per-stage wall times in execution order.
    pub fn stage_timings(&self) -> &[StageTiming] {
        &self.ctx.timings
    }

    /// Total preprocessing wall time (sum over stages).
    pub fn preprocess_seconds(&self) -> f64 {
        self.ctx.timings.iter().map(|t| t.seconds).sum()
    }
}

/// Synthesize a whole-matrix descriptor from per-region traces so the
/// parent plan satisfies every `KernelDesc` consumer (IR serialization,
/// stats). Profiling does NOT price this aggregate — regions run
/// different pipelines, so `PreparedKernel::profile` sums per-region
/// simulations instead.
pub(crate) fn combined_trace(
    regions: &[RegionPlan],
    feature_dim: usize,
    isa_tier: IsaTier,
) -> KernelDesc {
    let mut tbs = Vec::new();
    let mut effective_flops = 0u64;
    let mut weighted_eff = 0.0f64;
    let mut use_tensor_cores = false;
    let mut pipeline = None;
    let mut policy = None;
    for r in regions {
        let t = r.plan.compiled_trace();
        tbs.extend(t.tbs.iter().cloned());
        effective_flops += t.effective_flops;
        weighted_eff += t.mem_efficiency * t.effective_flops as f64;
        if t.use_tensor_cores {
            use_tensor_cores = true;
            if pipeline.is_none() {
                pipeline = Some(t.pipeline);
            }
        }
        if policy.is_none() {
            policy = Some(t.policy);
        }
    }
    KernelDesc {
        tbs,
        pipeline: pipeline.unwrap_or(PipelineKind::SerialScalar),
        policy: policy.unwrap_or(CachePolicy {
            a_op: CacheOp::Ca,
            b_op: CacheOp::Ca,
            c_op: CacheOp::Wb,
        }),
        mem_efficiency: if effective_flops > 0 {
            weighted_eff / effective_flops as f64
        } else {
            1.0
        },
        use_tensor_cores,
        feature_dim,
        effective_flops,
        arch_boost: 1.0,
        isa_tier,
    }
}

/// Record the plan's tier binding as trace gauges: the tier's stable
/// code and its vector width (f32 lanes).
fn record_isa_counters(tier: IsaTier) {
    spmm_trace::counter_set("plan.isa_tier", tier.code() as u64);
    spmm_trace::counter_set("kernel.simd_lanes", tier.simd_lanes() as u64);
}

/// Sum region stage timings into the four canonical stage slots, so an
/// `Auto` plan's preprocessing cost reads the same way as any other
/// plan's.
pub(crate) fn combined_timings(regions: &[RegionPlan]) -> Vec<StageTiming> {
    ["reorder", "format_build", "balance", "compile"]
        .into_iter()
        .map(|stage| StageTiming {
            stage,
            seconds: regions
                .iter()
                .flat_map(|r| r.plan.stage_timings())
                .filter(|t| t.stage == stage)
                .map(|t| t.seconds)
                .sum(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen::uniform_random;

    fn ctx_for(kind: KernelKind) -> PlanContext {
        let m = uniform_random(96, 6.0, 3);
        PlanContext::new(kind, m, Arch::A800, 32, AccConfig::full())
    }

    #[test]
    fn stage_specs_encode_the_six_kernels() {
        let full = AccConfig::full();
        for kind in [
            KernelKind::CusparseLike,
            KernelKind::SputnikLike,
            KernelKind::SparseTirLike,
        ] {
            let s = StageSpec::for_kernel(kind, &full);
            assert_eq!(s.format, FormatChoice::Csr);
            assert_eq!(s.reorder, None);
            assert_eq!(s.balance, BalanceStrategy::None);
        }
        let tcgnn = StageSpec::for_kernel(KernelKind::TcGnn, &full);
        assert_eq!(tcgnn.format, FormatChoice::Tcf);
        let dtc = StageSpec::for_kernel(KernelKind::DtcSpmm, &full);
        assert_eq!(dtc.format, FormatChoice::MeTcf);
        assert_eq!(dtc.reorder, Some(Algorithm::DtcLsh));
        let acc = StageSpec::for_kernel(KernelKind::AccSpmm, &full);
        assert_eq!(acc.format, FormatChoice::BitTcf);
        assert_eq!(acc.balance, BalanceStrategy::AccAdaptive);
        // The ablation base flips Acc back to the DTC-style format.
        let base = StageSpec::for_kernel(KernelKind::AccSpmm, &AccConfig::base());
        assert_eq!(base.format, FormatChoice::MeTcf);
        assert_eq!(base.reorder, Some(Algorithm::DtcLsh));
    }

    #[test]
    fn reorder_stage_permutes_only_when_asked() {
        let mut ctx = ctx_for(KernelKind::CusparseLike);
        ReorderStage.run(&mut ctx).unwrap();
        assert!(ctx.perm.is_none(), "CSR kernels never reorder");

        let mut ctx = ctx_for(KernelKind::TcGnn);
        ReorderStage.run(&mut ctx).unwrap();
        assert!(ctx.perm.is_none(), "SGT is a no-permutation marker");

        let mut ctx = ctx_for(KernelKind::AccSpmm);
        let nnz = ctx.csr.nnz();
        ReorderStage.run(&mut ctx).unwrap();
        let perm = ctx.perm.as_ref().expect("affinity reorder permutes");
        assert_eq!(perm.len(), ctx.csr.nrows());
        assert!(spmm_common::util::is_permutation(perm));
        assert_eq!(ctx.csr.nnz(), nnz, "permutation preserves nnz");
    }

    #[test]
    fn format_stage_builds_partition_and_format_together() {
        let mut ctx = ctx_for(KernelKind::AccSpmm);
        FormatBuildStage.run(&mut ctx).unwrap();
        let wp = ctx.partition.as_ref().expect("partition retained");
        match ctx.format.as_ref().expect("format built") {
            TcFormat::BitTcf(f) => {
                assert_eq!(f.num_tc_blocks(), wp.num_tc_blocks());
                assert_eq!(f.num_windows(), wp.num_windows());
            }
            other => panic!("full Acc config must build BitTcf, got {other:?}"),
        }

        let mut ctx = ctx_for(KernelKind::SputnikLike);
        FormatBuildStage.run(&mut ctx).unwrap();
        assert!(ctx.partition.is_none() && ctx.format.is_none());
    }

    #[test]
    fn balance_stage_plans_over_the_partition() {
        let mut ctx = ctx_for(KernelKind::AccSpmm);
        BalanceStage.run(&mut ctx).unwrap();
        assert!(ctx.balance.is_none(), "no partition yet, nothing to plan");
        FormatBuildStage.run(&mut ctx).unwrap();
        BalanceStage.run(&mut ctx).unwrap();
        let plan = ctx.balance.as_ref().expect("balance planned");
        let total: usize = ctx
            .partition
            .as_ref()
            .unwrap()
            .blocks_per_window()
            .iter()
            .sum();
        assert_eq!(
            plan.tbs.iter().map(|tb| tb.num_blocks()).sum::<usize>(),
            total,
            "plan covers every TC block exactly once"
        );
    }

    #[test]
    fn compile_stage_requires_upstream_artifacts() {
        let mut ctx = ctx_for(KernelKind::AccSpmm);
        assert!(CompileStage.run(&mut ctx).is_err(), "no format yet");
        FormatBuildStage.run(&mut ctx).unwrap();
        BalanceStage.run(&mut ctx).unwrap();
        CompileStage.run(&mut ctx).unwrap();
        let desc = ctx.trace.as_ref().expect("trace compiled");
        assert_eq!(
            desc.effective_flops,
            2 * ctx.csr.nnz() as u64 * ctx.feature_dim as u64
        );
    }

    #[test]
    fn full_plan_records_every_stage_timing() {
        let m = uniform_random(128, 5.0, 7);
        let plan = ExecutionPlan::build(KernelKind::AccSpmm, &m, Arch::A800, 64, AccConfig::full())
            .unwrap();
        let names: Vec<&str> = plan.stage_timings().iter().map(|t| t.stage).collect();
        assert_eq!(names, ["reorder", "format_build", "balance", "compile"]);
        assert!(plan.stage_timings().iter().all(|t| t.seconds >= 0.0));
        assert!(plan.preprocess_seconds() >= 0.0);
        assert!(plan.partition().is_some());
        assert!(plan.balance().is_some());
        assert!(plan.compiled_trace().effective_flops > 0);
    }

    #[test]
    fn zero_feature_dim_rejected() {
        let m = uniform_random(32, 4.0, 1);
        assert!(
            ExecutionPlan::build(KernelKind::AccSpmm, &m, Arch::A800, 0, AccConfig::full())
                .is_err()
        );
    }
}
